#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "telemetry/json.hpp"

namespace bgpsdn::lint {
namespace {

// ---------------------------------------------------------------------------
// Source stripping: blank out comments and literal contents so token
// matching never fires inside a string or a comment, while collecting the
// comment text per line for pragma parsing.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                   // same length/lines, literals blanked
  std::vector<std::string> comments;  // per-line comment text
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Stripped strip(std::string_view text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  Stripped out;
  out.code.reserve(text.size());
  out.comments.emplace_back();
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: ")delim" terminator

  const auto comment_char = [&](char c) {
    out.comments.back().push_back(c);
    out.code.push_back(c == '\n' ? '\n' : ' ');
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // Newline always ends the physical line regardless of state (an
      // unterminated string would otherwise eat the rest of the file).
      if (state == State::kLine) state = State::kCode;
      out.code.push_back('\n');
      out.comments.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_char(' ');  // the two slashes themselves are not pragma text
          ++i;
          out.code.back() = ' ';
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '"') {
          const char prev = i > 0 ? text[i - 1] : '\0';
          if (prev == 'R') {
            // Raw string literal: R"delim( ... )delim"
            std::size_t p = i + 1;
            std::string delim;
            while (p < text.size() && text[p] != '(') delim.push_back(text[p++]);
            raw_delim = ")" + delim + "\"";
            state = State::kRaw;
            out.code.push_back('"');
            for (std::size_t k = i + 1; k <= p && k < text.size(); ++k) {
              out.code.push_back(' ');
            }
            i = p;
            break;
          }
          state = State::kString;
          out.code.push_back('"');
          break;
        }
        if (c == '\'') {
          const char prev = i > 0 ? text[i - 1] : '\0';
          if (is_ident_char(prev)) {
            out.code.push_back(' ');  // digit separator: 1'000'000
            break;
          }
          state = State::kChar;
          out.code.push_back('\'');
          break;
        }
        out.code.push_back(c);
        break;
      case State::kLine:
        comment_char(c);
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.comments.back().push_back(' ');
          out.code.append("  ");
          ++i;
          break;
        }
        comment_char(c);
        break;
      case State::kString:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '"') {
          state = State::kCode;
          out.code.push_back('"');
          break;
        }
        out.code.push_back(' ');
        break;
      case State::kChar:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '\'') {
          state = State::kCode;
          out.code.push_back('\'');
          break;
        }
        out.code.push_back(' ');
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (char d : raw_delim) {
            out.code.push_back(d == '"' ? '"' : ' ');
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
          break;
        }
        out.code.push_back(' ');
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over the blanked code. Identifiers and numbers are whole
// tokens; `::` and `->` are merged so "std :: thread" and member access
// read as single punctuators.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;        // 1-based
  bool ident = false;  // identifier (or number — never matches a rule name)
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> toks;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back({std::string{code.substr(i, j - i)}, line, true});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({"->", line, false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Suppression pragmas: `// lint: <tag>(reason)`. The tag names the rule
// being waived; the reason is mandatory — an exemption must document why
// the construct is outside the determinism contract. The `hotpath` tag is
// special: it is not a suppression but an *annotation* that arms the A2
// allocation pass over the following function body.
// ---------------------------------------------------------------------------

struct Pragma {
  int line = 0;  // 1-based
  std::string tag;
  std::string reason;
  bool known = false;
};

const std::unordered_map<std::string, std::string>& pragma_tags() {
  static const std::unordered_map<std::string, std::string> kTags = {
      {"wall-clock-ok", "D1"}, {"random-ok", "D2"},
      {"unordered-ok", "D3"},  {"ptr-order-ok", "D4"},
      {"float-order-ok", "D5"}, {"thread-ok", "T1"},
      {"header-ok", "H1"},     {"alloc-ok", "A2"},
      {"layer-ok", "A1"},
  };
  return kTags;
}

bool known_tag(const std::string& tag) {
  return tag == "hotpath" || pragma_tags().contains(tag);
}

std::vector<Pragma> parse_pragmas(const std::vector<std::string>& comments) {
  std::vector<Pragma> pragmas;
  for (std::size_t ln = 0; ln < comments.size(); ++ln) {
    const std::string& com = comments[ln];
    std::size_t pos = 0;
    while ((pos = com.find("lint:", pos)) != std::string::npos) {
      std::size_t p = pos + 5;
      while (p < com.size() && com[p] == ' ') ++p;
      std::size_t tag_start = p;
      while (p < com.size() &&
             (std::islower(static_cast<unsigned char>(com[p])) != 0 ||
              com[p] == '-')) {
        ++p;
      }
      const std::string tag = com.substr(tag_start, p - tag_start);
      pos = p;
      if (tag.empty()) continue;  // prose like "lint: <tag>(...)", not a pragma
      Pragma pr;
      pr.line = static_cast<int>(ln) + 1;
      pr.tag = tag;
      pr.known = known_tag(tag);
      if (p < com.size() && com[p] == '(') {
        // The reason runs to the closing paren, or to the end of the
        // comment line when the sentence wraps onto the next line.
        const std::size_t close = com.find(')', p);
        const std::size_t end = close == std::string::npos ? com.size() : close;
        pr.reason = com.substr(p + 1, end - p - 1);
        pos = end;
      }
      // Trim the reason; "( )" counts as missing.
      while (!pr.reason.empty() && pr.reason.front() == ' ') {
        pr.reason.erase(pr.reason.begin());
      }
      while (!pr.reason.empty() && pr.reason.back() == ' ') pr.reason.pop_back();
      pragmas.push_back(std::move(pr));
    }
  }
  return pragmas;
}

// ---------------------------------------------------------------------------
// Rule context shared by the matchers.
// ---------------------------------------------------------------------------

struct FileContext {
  std::string path;         // normalized, forward slashes
  bool is_header = false;
  bool is_emitter = false;  // D3/D4/D5 apply
  bool t1_allowlisted = false;
  std::vector<std::string> raw_lines;
  std::vector<Tok> toks;
  std::vector<Pragma> pragmas;
  std::vector<bool> line_has_code;            // index 0 = line 1
  std::unordered_set<std::string> unordered;  // vars/aliases of unordered type
  std::unordered_set<std::string> floats;     // vars declared float/double
  std::vector<Finding> findings;

  bool line_holds_code(int line) const {
    const std::size_t idx = static_cast<std::size_t>(line) - 1;
    return idx < line_has_code.size() && line_has_code[idx];
  }

  // The code line a comment-line pragma covers: its own line when it holds
  // code, else the next line that does.
  int pragma_target(const Pragma& pr) const {
    if (line_holds_code(pr.line)) return pr.line;
    int target = pr.line + 1;
    while (target <= static_cast<int>(line_has_code.size()) &&
           !line_holds_code(target)) {
      ++target;
    }
    return target;
  }

  bool suppressed(const std::string& rule, int line) const {
    for (const Pragma& pr : pragmas) {
      if (!pr.known || pr.reason.empty()) continue;
      const auto it = pragma_tags().find(pr.tag);
      if (it == pragma_tags().end() || it->second != rule) continue;
      if (pr.line == line || pragma_target(pr) == line) return true;
    }
    return false;
  }

  void add(const std::string& rule, int line, std::string token,
           std::string message) {
    if (suppressed(rule, line)) return;
    findings.push_back(
        {path, line, rule, std::move(token), std::move(message), {}});
  }
};

std::vector<std::string> split_raw_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_has_dir(const std::string& path, std::string_view dir) {
  std::string needle = "/";
  needle += dir;
  needle += "/";
  if (path.find(needle) != std::string::npos) return true;
  std::string head{dir};
  head += "/";
  return path.rfind(head, 0) == 0;
}

// Previous token, skipping nothing; nullptr at the start.
const Tok* prev_tok(const std::vector<Tok>& toks, std::size_t i) {
  return i == 0 ? nullptr : &toks[i - 1];
}
const Tok* next_tok(const std::vector<Tok>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

// True when toks[i] is reached through `.` or `->` (a member, not the
// global/std function of the same name).
bool is_member_access(const std::vector<Tok>& toks, std::size_t i) {
  const Tok* p = prev_tok(toks, i);
  return p != nullptr && (p->text == "." || p->text == "->");
}

// True when toks[i] is qualified as `std::X` or `::X` (global scope).
bool is_std_or_global(const std::vector<Tok>& toks, std::size_t i) {
  const Tok* p = prev_tok(toks, i);
  if (p == nullptr || p->text != "::") return true;  // unqualified
  const Tok* pp = i >= 2 ? &toks[i - 2] : nullptr;
  if (pp == nullptr || !pp->ident) return true;  // leading :: = global
  return pp->text == "std" || pp->text == "chrono";
}

// ---------------------------------------------------------------------------
// Declaration harvesting for D3 (unordered containers) and D5 (float
// accumulators): collect names declared with a given type family, including
// `using` aliases for D3 (e.g. metrics.hpp's `template <typename T>
// using Map = std::unordered_map<...>` and members declared `Map<Counter>
// counters_;`).
// ---------------------------------------------------------------------------

bool is_unordered_type_name(const std::unordered_set<std::string>& aliases,
                            const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset" ||
         aliases.contains(name);
}

// Skip a balanced `<...>` starting at toks[i] == "<"; returns the index
// one past the matching ">", or i when unbalanced.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (toks[j].text == ";") break;  // statement ended: unbalanced
  }
  return i;
}

void harvest_unordered_names(const std::vector<Tok>& toks,
                             std::unordered_set<std::string>& names) {
  // Aliases first: `using X = ...unordered_map...;` (covers template
  // aliases too — the `using` token pattern is identical).
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "using")) continue;
    if (!toks[i + 1].ident || toks[i + 2].text != "=") continue;
    for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].ident && is_unordered_type_name(names, toks[j].text)) {
        names.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Declarations: `<unordered-type>[<...>] [const|&|*]* name [;=,){]`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || !is_unordered_type_name(names, toks[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    j = skip_template_args(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "const" || toks[j].text == "&" ||
            toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].ident) continue;
    const Tok* after = next_tok(toks, j);
    if (after == nullptr) continue;
    if (after->text == ";" || after->text == "=" || after->text == "{" ||
        after->text == ")" || after->text == ",") {
      names.insert(toks[j].text);
    }
  }
}

void harvest_float_names(const std::vector<Tok>& toks,
                         std::unordered_set<std::string>& names) {
  // Declarations: `double|float [const|&]* name [;=,){]`. Pointers to
  // floats are deliberately excluded — `*p += x` is not the accumulator
  // pattern D5 is after.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident ||
        (toks[i].text != "double" && toks[i].text != "float")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (toks[j].text == "const" || toks[j].text == "&")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].ident) continue;
    const Tok* after = next_tok(toks, j);
    if (after == nullptr) continue;
    if (after->text == ";" || after->text == "=" || after->text == "{" ||
        after->text == ")" || after->text == ",") {
      names.insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// The token rules.
// ---------------------------------------------------------------------------

void rule_d1_wall_clock(FileContext& ctx) {
  static const std::unordered_set<std::string> kClockIdents = {
      "system_clock",     "steady_clock", "high_resolution_clock",
      "clock_gettime",    "gettimeofday", "timespec_get",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    if (kClockIdents.contains(toks[i].text)) {
      if (is_member_access(toks, i)) continue;
      ctx.add("D1", toks[i].line, toks[i].text,
              "wall clock outside the allowlisted wall-footer paths; "
              "simulations must use virtual time (core::TimePoint)");
      continue;
    }
    if (toks[i].text == "time") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (is_member_access(toks, i)) continue;
      if (!is_std_or_global(toks, i)) continue;
      ctx.add("D1", toks[i].line, "time()",
              "libc wall clock; simulations must use virtual time");
    }
  }
}

void rule_d2_randomness(FileContext& ctx) {
  static const std::unordered_set<std::string> kEngines = {
      "mt19937",       "mt19937_64", "minstd_rand", "minstd_rand0",
      "ranlux24_base", "ranlux48_base", "ranlux24", "ranlux48", "knuth_b",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string& t = toks[i].text;
    if (t == "random_device" || t == "default_random_engine" ||
        t == "random_shuffle") {
      if (is_member_access(toks, i)) continue;
      ctx.add("D2", toks[i].line, t,
              "ambient randomness; all draws must flow from the trial seed "
              "through core::Rng");
      continue;
    }
    if (t == "rand" || t == "srand") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (is_member_access(toks, i)) continue;
      if (!is_std_or_global(toks, i)) continue;
      ctx.add("D2", toks[i].line, t + "()",
              "libc randomness; all draws must flow from the trial seed "
              "through core::Rng");
      continue;
    }
    if (kEngines.contains(t)) {
      // Default-seeded engine: `mt19937 g;` or `mt19937{}` — fixed default
      // seed silently decouples the stream from the trial seed.
      std::size_t j = i + 1;
      if (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) {
        continue;  // reference/pointer type position, no construction
      }
      if (j < toks.size() && toks[j].text == "{" && j + 1 < toks.size() &&
          toks[j + 1].text == "}") {
        ctx.add("D2", toks[i].line, t + "{}",
                "default-seeded engine; seed it from the trial seed");
        continue;
      }
      if (j < toks.size() && toks[j].ident && j + 1 < toks.size()) {
        const std::string& after = toks[j + 1].text;
        if (after == ";") {
          ctx.add("D2", toks[i].line, t + " " + toks[j].text,
                  "default-seeded engine declaration; seed it from the "
                  "trial seed");
        } else if (after == "{" && j + 2 < toks.size() &&
                   toks[j + 2].text == "}") {
          ctx.add("D2", toks[i].line, t + " " + toks[j].text + "{}",
                  "default-seeded engine declaration; seed it from the "
                  "trial seed");
        }
      }
    }
  }
}

// Range-for loop header starting at toks[i] == "for": returns the indices
// of the depth-1 `:` and the closing `)`, or {0, 0} when this is not a
// range-for.
std::pair<std::size_t, std::size_t> range_for_bounds(
    const std::vector<Tok>& toks, std::size_t i) {
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return {0, 0};
  int depth = 0;
  std::size_t colon = 0, close = 0;
  for (std::size_t j = i + 1; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")") {
      --depth;
      if (depth == 0) {
        close = j;
        break;
      }
    }
    if (depth == 1 && toks[j].text == ":" && colon == 0) colon = j;
    if (toks[j].text == ";") break;  // classic for loop
  }
  if (colon == 0 || close == 0) return {0, 0};
  return {colon, close};
}

// Body token range of a statement starting right after toks[close] == ")":
// a braced block spans to its matching `}`, a single statement to its `;`.
std::pair<std::size_t, std::size_t> statement_body(
    const std::vector<Tok>& toks, std::size_t close) {
  std::size_t begin = close + 1;
  if (begin >= toks.size()) return {begin, begin};
  if (toks[begin].text == "{") {
    int depth = 0;
    for (std::size_t j = begin; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}") {
        --depth;
        if (depth == 0) return {begin + 1, j};
      }
    }
    return {begin + 1, toks.size()};
  }
  for (std::size_t j = begin; j < toks.size(); ++j) {
    if (toks[j].text == ";") return {begin, j};
  }
  return {begin, toks.size()};
}

void rule_d3_unordered_iteration(FileContext& ctx) {
  if (!ctx.is_emitter) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "for")) continue;
    const auto [colon, close] = range_for_bounds(toks, i);
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (!toks[j].ident) continue;
      const bool unordered_type = toks[j].text == "unordered_map" ||
                                  toks[j].text == "unordered_set" ||
                                  toks[j].text == "unordered_multimap" ||
                                  toks[j].text == "unordered_multiset";
      if (unordered_type || ctx.unordered.contains(toks[j].text)) {
        ctx.add("D3", toks[i].line, toks[j].text,
                "range-for over an unordered container in an emitter code "
                "path; sort before output or annotate with "
                "unordered-ok(reason)");
        break;
      }
    }
  }
}

// D4: ordering or hashing by pointer value in emitter paths. Pointer
// values vary run-to-run (ASLR, allocator history); any order derived from
// them that reaches serialized output breaks byte-identity.
void rule_d4_pointer_order(FileContext& ctx) {
  if (!ctx.is_emitter) return;
  const auto& toks = ctx.toks;
  static const std::unordered_set<std::string> kComparators = {"less", "hash"};
  static const std::unordered_set<std::string> kOrderedContainers = {
      "set", "map", "multiset", "multimap"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string& t = toks[i].text;
    if (kComparators.contains(t) && toks[i + 1].text == "<") {
      // `*` anywhere in the template argument list makes the comparator /
      // hasher operate on a raw pointer.
      int depth = 0;
      bool ptr = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") {
          --depth;
          if (depth == 0) break;
        }
        if (toks[j].text == ";") break;
        if (toks[j].text == "*") ptr = true;
      }
      if (ptr) {
        ctx.add("D4", toks[i].line, t + "<T*>",
                "ordering/hashing by raw pointer value in an emitter code "
                "path; key on a stable id instead or annotate with "
                "ptr-order-ok(reason)");
      }
      continue;
    }
    if (kOrderedContainers.contains(t) && toks[i + 1].text == "<") {
      // Pointer *key*: `*` in the first template argument. Pointer mapped
      // values (map<Id, T*>) are fine — iteration order comes from the key.
      int depth = 0;
      bool ptr = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") {
          --depth;
          if (depth == 0) break;
        }
        if (toks[j].text == ";") break;
        if (depth == 1 && toks[j].text == ",") break;  // end of key arg
        if (toks[j].text == "*") ptr = true;
      }
      if (ptr) {
        ctx.add("D4", toks[i].line, t + "<T*>",
                "ordered container keyed on a raw pointer in an emitter "
                "code path; iteration order is the pointer order — key on "
                "a stable id instead or annotate with ptr-order-ok(reason)");
      }
      continue;
    }
  }
  // Comparator lambdas over raw pointers: `[..](const T* a, const T* b)`
  // whose body compares the two pointer parameters directly.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "[") continue;
    // Match the capture list (no nesting of `[` occurs in practice).
    std::size_t cap_end = i + 1;
    while (cap_end < toks.size() && toks[cap_end].text != "]" &&
           toks[cap_end].text != ";") {
      ++cap_end;
    }
    if (cap_end >= toks.size() || toks[cap_end].text != "]") continue;
    if (cap_end + 1 >= toks.size() || toks[cap_end + 1].text != "(") continue;
    // Parameter list: collect names of raw-pointer parameters.
    std::unordered_set<std::string> ptr_params;
    int depth = 0;
    std::size_t params_end = 0;
    bool cur_ptr = false;
    std::string cur_name;
    for (std::size_t j = cap_end + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") {
        --depth;
        if (depth == 0) {
          if (cur_ptr && !cur_name.empty()) ptr_params.insert(cur_name);
          params_end = j;
          break;
        }
      }
      if (depth == 1 && toks[j].text == ",") {
        if (cur_ptr && !cur_name.empty()) ptr_params.insert(cur_name);
        cur_ptr = false;
        cur_name.clear();
        continue;
      }
      if (toks[j].text == "*") cur_ptr = true;
      if (toks[j].ident) cur_name = toks[j].text;
    }
    if (params_end == 0 || ptr_params.size() < 2) continue;
    // Find the lambda body (skip specifiers / trailing return type).
    std::size_t body = params_end + 1;
    while (body < toks.size() && toks[body].text != "{" &&
           toks[body].text != ";" && toks[body].text != ")") {
      ++body;
    }
    if (body >= toks.size() || toks[body].text != "{") continue;
    const auto [bbegin, bend] = statement_body(toks, body - 1);
    for (std::size_t j = bbegin; j < bend && j + 1 < toks.size(); ++j) {
      if (toks[j].text != "<" && toks[j].text != ">") continue;
      const Tok* a = prev_tok(toks, j);
      const Tok* b = next_tok(toks, j);
      if (a == nullptr || b == nullptr) continue;
      if (a->ident && b->ident && ptr_params.contains(a->text) &&
          ptr_params.contains(b->text)) {
        ctx.add("D4", toks[j].line, a->text + toks[j].text + b->text,
                "comparator lambda orders by raw pointer value in an "
                "emitter code path; compare stable ids instead or annotate "
                "with ptr-order-ok(reason)");
      }
    }
  }
}

// D5: order-sensitive float accumulation in emitter paths. Float addition
// is not associative, so a sum's value depends on visitation order; sums
// that reach serialized output must come from a sorted or index-ordered
// source (and say so in a float-order-ok reason).
void rule_d5_float_accumulation(FileContext& ctx) {
  if (!ctx.is_emitter) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || toks[i].text != "accumulate") continue;
    if (is_member_access(toks, i)) continue;
    const Tok* nx = next_tok(toks, i);
    if (nx == nullptr || nx->text != "(") continue;
    ctx.add("D5", toks[i].line, "accumulate",
            "std::accumulate in an emitter code path; accumulation order "
            "must be pinned to a sorted or indexed source — annotate with "
            "float-order-ok(reason) once it is");
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "for")) continue;
    const auto [colon, close] = range_for_bounds(toks, i);
    if (colon == 0) continue;
    const auto [bbegin, bend] = statement_body(toks, close);
    for (std::size_t j = bbegin; j < bend && j + 1 < toks.size(); ++j) {
      if (toks[j].text != "+" || toks[j + 1].text != "=") continue;
      const Tok* lhs = prev_tok(toks, j);
      if (lhs == nullptr || !lhs->ident || !ctx.floats.contains(lhs->text)) {
        continue;
      }
      ctx.add("D5", toks[j].line, lhs->text + " +=",
              "float accumulation inside a range-for in an emitter code "
              "path; the sum depends on iteration order — accumulate from "
              "a sorted or indexed source and annotate with "
              "float-order-ok(reason)");
    }
  }
}

void rule_t1_threads(FileContext& ctx) {
  if (ctx.t1_allowlisted) return;
  static const std::unordered_set<std::string> kStdQualified = {
      "thread", "atomic", "mutex",   "shared_mutex", "recursive_mutex",
      "async",  "future", "promise", "condition_variable",
      "atomic_flag",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string& t = toks[i].text;
    if (t == "jthread") {
      ctx.add("T1", toks[i].line, t,
              "raw threading outside src/framework/trial.*; all "
              "parallelism goes through TrialRunner");
      continue;
    }
    if (kStdQualified.contains(t)) {
      const Tok* p = prev_tok(toks, i);
      const Tok* pp = i >= 2 ? &toks[i - 2] : nullptr;
      const bool std_qualified = p != nullptr && p->text == "::" &&
                                 pp != nullptr && pp->text == "std";
      if (!std_qualified) continue;
      ctx.add("T1", toks[i].line, "std::" + t,
              "raw threading/synchronization outside src/framework/trial.*; "
              "all parallelism goes through TrialRunner");
      continue;
    }
    if (t == "detach") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (!is_member_access(toks, i)) continue;
      ctx.add("T1", toks[i].line, "detach()",
              "detached threads can outlive the trial; all parallelism "
              "goes through TrialRunner");
    }
  }
}

void rule_h1_header_hygiene(FileContext& ctx) {
  if (!ctx.is_header) return;
  bool has_pragma_once = false;
  for (std::size_t ln = 0; ln < ctx.raw_lines.size(); ++ln) {
    const std::string& raw = ctx.raw_lines[ln];
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::string_view trimmed = std::string_view{raw}.substr(first);
    if (trimmed.rfind("#pragma", 0) == 0 &&
        trimmed.find("once") != std::string_view::npos) {
      has_pragma_once = true;
    }
    if (trimmed.rfind("#include", 0) == 0 &&
        trimmed.find("<iostream>") != std::string_view::npos &&
        (path_has_dir(ctx.path, "src"))) {
      ctx.add("H1", static_cast<int>(ln) + 1, "<iostream>",
              "iostream in a library header drags static init and bloats "
              "every consumer; use <cstdio> in a .cpp instead");
    }
  }
  if (!has_pragma_once && !ctx.toks.empty()) {
    ctx.add("H1", 1, "#pragma once", "header is missing #pragma once");
  }
  for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
    if (ctx.toks[i].ident && ctx.toks[i].text == "using" &&
        ctx.toks[i + 1].ident && ctx.toks[i + 1].text == "namespace") {
      ctx.add("H1", ctx.toks[i].line, "using namespace",
              "using-directive in a header leaks into every consumer");
    }
  }
}

void rule_p1_pragmas(FileContext& ctx) {
  for (const Pragma& pr : ctx.pragmas) {
    if (!pr.known) {
      ctx.findings.push_back({ctx.path, pr.line, "P1", pr.tag,
                              "unknown lint pragma tag '" + pr.tag + "'",
                              {}});
      continue;
    }
    if (pr.reason.empty()) {
      ctx.findings.push_back(
          {ctx.path, pr.line, "P1", pr.tag,
           "suppression pragma requires a reason: lint: " + pr.tag +
               "(<why this is outside the contract>)",
           {}});
    }
  }
}

// ---------------------------------------------------------------------------
// A2: the hot-path allocation pass. Each reasoned `hotpath` pragma arms a
// scan over the following function's brace scope.
// ---------------------------------------------------------------------------

// First token index whose line is >= `line`.
std::size_t first_token_at_line(const std::vector<Tok>& toks, int line) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line >= line) return i;
  }
  return toks.size();
}

// The opening brace of the function body that starts at token `from`: the
// first `{` preceded by a token that can legally end a signature (closing
// paren, cv/ref/exception qualifiers, trailing-return type, or the `}` of
// a constructor's member-initializer braces).
std::size_t find_body_open(const std::vector<Tok>& toks, std::size_t from) {
  static const std::unordered_set<std::string> kSignatureEnd = {
      ")", "const", "noexcept", "override", "final", "try", "}", ">"};
  for (std::size_t i = from; i < toks.size(); ++i) {
    if (toks[i].text != "{") continue;
    const Tok* p = prev_tok(toks, i);
    if (p != nullptr && kSignatureEnd.contains(p->text)) return i;
  }
  return toks.size();
}

void rule_a2_hotpath_allocations(FileContext& ctx) {
  static const std::unordered_set<std::string> kSizedContainers = {
      "vector", "string", "basic_string", "deque", "list",
      "set",    "map",    "multiset",     "multimap"};
  const auto& toks = ctx.toks;
  for (const Pragma& pr : ctx.pragmas) {
    if (pr.tag != "hotpath" || pr.reason.empty()) continue;
    const int target = ctx.pragma_target(pr);
    const std::size_t sig = first_token_at_line(toks, target);
    const std::size_t open = find_body_open(toks, sig);
    if (open >= toks.size()) {
      ctx.add("A2", pr.line, "hotpath",
              "hotpath pragma is not followed by a function body");
      continue;
    }
    int depth = 0;
    std::size_t close = toks.size();
    for (std::size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == "{") ++depth;
      if (toks[i].text == "}") {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
    }
    if (close == toks.size()) {
      ctx.add("A2", pr.line, "hotpath",
              "hotpath pragma's function body has unbalanced braces");
      continue;
    }

    // Locals that called reserve() anywhere in the scope count as
    // pre-sized; pushes into them are amortized-free steady-state.
    std::unordered_set<std::string> reserved;
    for (std::size_t i = open; i < close; ++i) {
      if (!(toks[i].ident && toks[i].text == "reserve")) continue;
      if (!is_member_access(toks, i)) continue;
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (i >= 2 && toks[i - 2].ident) reserved.insert(toks[i - 2].text);
    }

    // One concat finding per statement, anchored at the statement's first
    // line: a multi-line concatenation chain is one expression, and the
    // anchor line is where a comment-above alloc-ok pragma lands.
    std::size_t concat_skip_until = 0;
    int stmt_line = toks[open + 1].line;
    bool at_stmt_start = true;
    for (std::size_t i = open + 1; i < close; ++i) {
      if (at_stmt_start) {
        stmt_line = toks[i].line;
        at_stmt_start = false;
      }
      if (toks[i].text == ";" || toks[i].text == "{" || toks[i].text == "}") {
        at_stmt_start = true;
      }
      if (!toks[i].ident) {
        if (toks[i].text == "+" && i >= concat_skip_until) {
          const bool compound =
              i + 1 < close && toks[i + 1].text == "=";
          const Tok* lhs = prev_tok(toks, i);
          const Tok* rhs = compound ? (i + 2 < close ? &toks[i + 2] : nullptr)
                                    : next_tok(toks, i);
          const bool literal = (lhs != nullptr && lhs->text == "\"") ||
                               (rhs != nullptr && rhs->text == "\"");
          if (literal) {
            ctx.add("A2", stmt_line, compound ? "+= \"...\"" : "+ \"...\"",
                    "string concatenation in a hot path allocates; build "
                    "the message outside the hot path or annotate with "
                    "alloc-ok(reason)");
            concat_skip_until = i;
            while (concat_skip_until < close &&
                   toks[concat_skip_until].text != ";") {
              ++concat_skip_until;
            }
          }
        }
        continue;
      }
      const std::string& t = toks[i].text;
      if (t == "new") {
        const Tok* p = prev_tok(toks, i);
        if (p != nullptr && p->ident && p->text == "operator") continue;
        ctx.add("A2", toks[i].line, "new",
                "raw allocation in a hot path; use a slab/pool or annotate "
                "with alloc-ok(reason)");
        continue;
      }
      if (t == "make_shared" || t == "make_unique") {
        ctx.add("A2", toks[i].line, t,
                "heap allocation in a hot path; use a slab/pool or annotate "
                "with alloc-ok(reason)");
        continue;
      }
      if (t == "function") {
        const Tok* p = prev_tok(toks, i);
        const Tok* pp = i >= 2 ? &toks[i - 2] : nullptr;
        if (p != nullptr && p->text == "::" && pp != nullptr &&
            pp->text == "std") {
          ctx.add("A2", toks[i].line, "std::function",
                  "std::function may heap-allocate its target; use "
                  "core::SmallFunc (64-byte SBO) in hot paths");
        }
        continue;
      }
      if (t == "priority_queue") {
        ctx.add("A2", toks[i].line, "priority_queue",
                "a local priority_queue grows its backing vector per call; "
                "hoist it to a member scratch buffer");
        continue;
      }
      if (t == "to_string") {
        if (is_member_access(toks, i)) continue;
        if (!is_std_or_global(toks, i)) continue;
        const Tok* nx = next_tok(toks, i);
        if (nx == nullptr || nx->text != "(") continue;
        ctx.add("A2", toks[i].line, "to_string",
                "std::to_string allocates; format outside the hot path or "
                "annotate with alloc-ok(reason)");
        continue;
      }
      if (t == "throw") {
        ctx.add("A2", toks[i].line, "throw",
                "throwing in a hot path allocates the exception and "
                "unwinds; signal errors by return value");
        continue;
      }
      if (t == "push_back" || t == "emplace_back") {
        if (!is_member_access(toks, i)) continue;
        const Tok* nx = next_tok(toks, i);
        if (nx == nullptr || nx->text != "(") continue;
        const Tok* recv = i >= 2 ? &toks[i - 2] : nullptr;
        if (recv != nullptr && recv->ident) {
          if (!recv->text.empty() && recv->text.back() == '_') {
            continue;  // member scratch: amortized, gated by the mem model
          }
          if (reserved.contains(recv->text)) continue;
          ctx.add("A2", toks[i].line, recv->text + "." + t,
                  "growing an unreserved local container in a hot path; "
                  "reserve() it in this scope or annotate with "
                  "alloc-ok(reason)");
        } else {
          ctx.add("A2", toks[i].line, t,
                  "growing a container through an opaque expression in a "
                  "hot path; restructure or annotate with alloc-ok(reason)");
        }
        continue;
      }
      if (kSizedContainers.contains(t) && !is_member_access(toks, i)) {
        std::size_t j = i + 1;
        j = skip_template_args(toks, j);
        if (j >= close || !toks[j].ident) continue;
        const std::string& name = toks[j].text;
        const Tok* after = j + 1 < close ? &toks[j + 1] : nullptr;
        if (after == nullptr) continue;
        const bool paren_sized =
            after->text == "(" && j + 2 < close && toks[j + 2].text != ")";
        const bool brace_sized =
            after->text == "{" && j + 2 < close && toks[j + 2].text != "}";
        const bool literal_init = after->text == "=" && j + 2 < close &&
                                  toks[j + 2].text == "\"" && t == "string";
        if (paren_sized || brace_sized || literal_init) {
          ctx.add("A2", toks[i].line, t + " " + name,
                  "sized construction of a local container in a hot path "
                  "allocates per call; hoist to a member scratch buffer or "
                  "annotate with alloc-ok(reason)");
        }
        continue;
      }
    }
  }
}

std::string normalize_path(std::string_view path) {
  std::string p{path};
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

// controller/switch_graph.hpp counts as an emitter header: its edge-delta
// changelog is emitter-ordered state (consumers replay it in append order
// into deterministic output), so changelog code paths must not iterate
// unordered containers either.
bool includes_emitter_header(const std::vector<std::string>& raw_lines) {
  for (const std::string& raw : raw_lines) {
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] != '#') continue;
    if (raw.find("#include") == std::string::npos) continue;
    if (raw.find("telemetry/json.hpp") != std::string::npos ||
        raw.find("framework/report.hpp") != std::string::npos ||
        raw.find("controller/switch_graph.hpp") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               std::string_view companion_header) {
  FileContext ctx;
  ctx.path = normalize_path(path);
  ctx.is_header = path_ends_with(ctx.path, ".hpp") ||
                  path_ends_with(ctx.path, ".h");
  ctx.t1_allowlisted = path_ends_with(ctx.path, "framework/trial.cpp") ||
                       path_ends_with(ctx.path, "framework/trial.hpp");
  ctx.raw_lines = split_raw_lines(text);

  const Stripped stripped = strip(text);
  ctx.toks = tokenize(stripped.code);
  ctx.pragmas = parse_pragmas(stripped.comments);

  // A .cpp inherits emitter status from its companion header: the usual
  // shape is foo.hpp pulling in the emitter header and foo.cpp doing the
  // actual iteration (as_topology.cpp replaying the switch-graph changelog).
  ctx.is_emitter = path_has_dir(ctx.path, "telemetry") ||
                   includes_emitter_header(ctx.raw_lines) ||
                   (!companion_header.empty() &&
                    includes_emitter_header(split_raw_lines(companion_header)));

  ctx.line_has_code.assign(ctx.raw_lines.size(), false);
  for (const Tok& t : ctx.toks) {
    const std::size_t idx = static_cast<std::size_t>(t.line) - 1;
    if (idx < ctx.line_has_code.size()) ctx.line_has_code[idx] = true;
  }

  if (!companion_header.empty()) {
    const Stripped companion = strip(companion_header);
    const std::vector<Tok> companion_toks = tokenize(companion.code);
    harvest_unordered_names(companion_toks, ctx.unordered);
    harvest_float_names(companion_toks, ctx.floats);
  }
  harvest_unordered_names(ctx.toks, ctx.unordered);
  harvest_float_names(ctx.toks, ctx.floats);

  rule_d1_wall_clock(ctx);
  rule_d2_randomness(ctx);
  rule_d3_unordered_iteration(ctx);
  rule_d4_pointer_order(ctx);
  rule_d5_float_accumulation(ctx);
  rule_t1_threads(ctx);
  rule_h1_header_hygiene(ctx);
  rule_p1_pragmas(ctx);
  rule_a2_hotpath_allocations(ctx);

  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
  return ctx.findings;
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      continue;  // missing roots reported by the CLI, not as findings
    }
    for (fs::recursive_directory_iterator it{root, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      // The lint test corpus is full of deliberate violations; skip any
      // descendant directory named "fixtures" (a root that *is* the
      // fixtures directory still scans — that is how its tests drive it).
      if (it->is_directory(ec) && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file(ec)) continue;
      const std::string p = it->path().generic_string();
      if (path_ends_with(p, ".cpp") || path_ends_with(p, ".hpp") ||
          path_ends_with(p, ".h")) {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

std::vector<Finding> lint_file(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    return {{normalize_path(path), 0, "IO", path, "cannot read file", {}}};
  }
  std::string companion;
  if (path_ends_with(path, ".cpp")) {
    std::string header = path.substr(0, path.size() - 4) + ".hpp";
    std::string header_text;
    if (read_file(header, header_text)) companion = std::move(header_text);
  }
  return lint_text(path, text, companion);
}

std::vector<Finding> lint_paths(const std::vector<std::string>& roots) {
  std::vector<Finding> findings;
  for (const std::string& f : collect_files(roots)) {
    std::vector<Finding> fs_one = lint_file(f);
    findings.insert(findings.end(), fs_one.begin(), fs_one.end());
  }
  return findings;
}

// ---------------------------------------------------------------------------
// A1: the include-graph pass.
// ---------------------------------------------------------------------------

const int* LayerTable::rank_of(std::string_view dir) const {
  const auto it = std::lower_bound(
      ranks.begin(), ranks.end(), dir,
      [](const auto& entry, std::string_view d) { return entry.first < d; });
  if (it == ranks.end() || it->first != dir) return nullptr;
  return &it->second;
}

bool parse_layers(std::string_view text, LayerTable& out, std::string* error) {
  out.ranks.clear();
  int lineno = 0;
  for (const std::string& raw : split_raw_lines(text)) {
    ++lineno;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss{line};
    std::string dir;
    if (!(ss >> dir)) continue;  // blank / comment-only line
    int rank = 0;
    if (!(ss >> rank) || rank < 0) {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(lineno) +
                 ": expected \"<dir> <rank>\", got '" + raw + "'";
      }
      return false;
    }
    std::string extra;
    if (ss >> extra) {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(lineno) +
                 ": trailing tokens after \"<dir> <rank>\"";
      }
      return false;
    }
    out.ranks.emplace_back(std::move(dir), rank);
  }
  std::sort(out.ranks.begin(), out.ranks.end());
  for (std::size_t i = 1; i < out.ranks.size(); ++i) {
    if (out.ranks[i].first == out.ranks[i - 1].first) {
      if (error != nullptr) {
        *error = "layers.txt: duplicate directory '" + out.ranks[i].first + "'";
      }
      return false;
    }
  }
  return true;
}

std::vector<CorpusFile> load_corpus(const std::vector<std::string>& roots) {
  std::vector<CorpusFile> corpus;
  for (const std::string& f : collect_files(roots)) {
    std::string text;
    if (!read_file(f, text)) continue;
    corpus.push_back({normalize_path(f), std::move(text)});
  }
  return corpus;
}

namespace {

struct IncludeRef {
  int line = 0;          // 1-based
  std::string target;    // the quoted include string
};

std::vector<IncludeRef> quoted_includes(const std::string& text) {
  std::vector<IncludeRef> refs;
  int lineno = 0;
  for (const std::string& raw : split_raw_lines(text)) {
    ++lineno;
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] != '#') continue;
    const std::size_t inc = raw.find("include", first);
    if (inc == std::string::npos) continue;
    const std::size_t q1 = raw.find('"', inc);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = raw.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    refs.push_back({lineno, raw.substr(q1 + 1, q2 - q1 - 1)});
  }
  return refs;
}

// The governed directory a file belongs to: the component after a "src"
// component, or the first component that is itself ranked (tools, bench,
// examples, tests, lint). Empty when the path is outside the contract.
std::string layer_dir_of(const std::string& path, const LayerTable& layers) {
  std::vector<std::string> comps;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (i > start) comps.emplace_back(path.substr(start, i - start));
      start = i + 1;
    }
  }
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    if (comps[i] == "src" && layers.rank_of(comps[i + 1]) != nullptr) {
      return comps[i + 1];
    }
    if (layers.rank_of(comps[i]) != nullptr) return comps[i];
  }
  return {};
}

// First path component of an include string ("bgp/rib.hpp" -> "bgp");
// empty for flat includes ("bench_common.hpp").
std::string include_dir_of(const std::string& include) {
  const std::size_t slash = include.find('/');
  if (slash == std::string::npos) return {};
  return include.substr(0, slash);
}

// Path of `file` relative to its src/ root ("src/bgp/rib.hpp" ->
// "bgp/rib.hpp"); empty when the file is not under src/.
std::string src_relative(const std::string& path) {
  const std::size_t mid = path.rfind("/src/");
  if (mid != std::string::npos) return path.substr(mid + 5);
  if (path.rfind("src/", 0) == 0) return path.substr(4);
  return {};
}

// Per-file pragma index for layer-ok waivers, built lazily per file.
struct PragmaIndex {
  std::vector<Pragma> pragmas;
  std::vector<bool> line_has_code;

  bool line_holds_code(int line) const {
    const std::size_t idx = static_cast<std::size_t>(line) - 1;
    return idx < line_has_code.size() && line_has_code[idx];
  }

  bool waived(int line) const {
    for (const Pragma& pr : pragmas) {
      if (pr.tag != "layer-ok" || pr.reason.empty()) continue;
      if (pr.line == line) return true;
      if (line_holds_code(pr.line)) continue;
      int target = pr.line + 1;
      while (target <= static_cast<int>(line_has_code.size()) &&
             !line_holds_code(target)) {
        ++target;
      }
      if (target == line) return true;
    }
    return false;
  }
};

PragmaIndex index_pragmas(const std::string& text) {
  PragmaIndex idx;
  const Stripped stripped = strip(text);
  idx.pragmas = parse_pragmas(stripped.comments);
  const std::vector<Tok> toks = tokenize(stripped.code);
  idx.line_has_code.assign(split_raw_lines(text).size(), false);
  for (const Tok& t : toks) {
    const std::size_t i = static_cast<std::size_t>(t.line) - 1;
    if (i < idx.line_has_code.size()) idx.line_has_code[i] = true;
  }
  return idx;
}

}  // namespace

std::vector<Finding> analyze_include_graph(const std::vector<CorpusFile>& files,
                                           const LayerTable& layers) {
  std::vector<Finding> findings;

  // Layer monotonicity over every governed include edge.
  for (const CorpusFile& f : files) {
    const std::string from_dir = layer_dir_of(f.path, layers);
    if (from_dir.empty()) continue;
    const int* from_rank = layers.rank_of(from_dir);
    PragmaIndex pragmas;  // built lazily on the first violation
    bool have_pragmas = false;
    for (const IncludeRef& ref : quoted_includes(f.text)) {
      const std::string to_dir = include_dir_of(ref.target);
      if (to_dir.empty() || to_dir == from_dir) continue;
      const int* to_rank = layers.rank_of(to_dir);
      if (to_rank == nullptr) continue;
      if (*to_rank < *from_rank) continue;
      if (!have_pragmas) {
        pragmas = index_pragmas(f.text);
        have_pragmas = true;
      }
      if (pragmas.waived(ref.line)) continue;
      const bool upward = *to_rank > *from_rank;
      findings.push_back(
          {f.path, ref.line, "A1", ref.target,
           (upward ? std::string{"upward include: layer '"}
                   : std::string{"same-rank include: layer '"}) +
               from_dir + "' (rank " + std::to_string(*from_rank) +
               ") may not include '" + to_dir + "' (rank " +
               std::to_string(*to_rank) +
               "); see tools/lint/layers.txt or annotate with "
               "layer-ok(reason)",
           {}});
    }
  }

  // Cycle detection over the file-level include graph of src/.
  std::vector<std::size_t> src_files;
  std::unordered_map<std::string, std::size_t> by_rel;  // rel path -> index
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string rel = src_relative(files[i].path);
    if (rel.empty()) continue;
    src_files.push_back(i);
    by_rel.emplace(rel, i);
  }
  struct Edge {
    std::size_t to;
    int line;
    std::string target;
  };
  std::unordered_map<std::size_t, std::vector<Edge>> edges;
  for (const std::size_t i : src_files) {
    for (const IncludeRef& ref : quoted_includes(files[i].text)) {
      const auto it = by_rel.find(ref.target);
      if (it == by_rel.end() || it->second == i) continue;
      edges[i].push_back({it->second, ref.line, ref.target});
    }
  }
  // Iterative DFS with tri-color marking; a back edge closes a cycle.
  enum class Color { kWhite, kGrey, kBlack };
  std::unordered_map<std::size_t, Color> color;
  for (const std::size_t i : src_files) color[i] = Color::kWhite;
  std::vector<std::size_t> stack;  // grey path for cycle reconstruction
  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  for (const std::size_t root : src_files) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = Color::kGrey;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto eit = edges.find(fr.node);
      const std::vector<Edge>* out =
          eit == edges.end() ? nullptr : &eit->second;
      if (out == nullptr || fr.next_edge >= out->size()) {
        color[fr.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const Edge& e = (*out)[fr.next_edge++];
      if (color[e.to] == Color::kGrey) {
        // Reconstruct the cycle from the grey path.
        std::string desc = "include cycle: ";
        auto start = std::find(stack.begin(), stack.end(), e.to);
        for (auto it = start; it != stack.end(); ++it) {
          desc += src_relative(files[*it].path) + " -> ";
        }
        desc += src_relative(files[e.to].path);
        findings.push_back({files[fr.node].path, e.line, "A1", e.target,
                            desc + "; break the cycle (forward-declare or "
                                   "split the header)",
                            {}});
        continue;
      }
      if (color[e.to] == Color::kWhite) {
        color[e.to] = Color::kGrey;
        stack.push_back(e.to);
        frames.push_back({e.to, 0});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
  return findings;
}

std::string include_graph_dot(const std::vector<CorpusFile>& files,
                              const LayerTable& layers) {
  std::map<std::pair<std::string, std::string>, int> edge_counts;
  for (const CorpusFile& f : files) {
    const std::string from_dir = layer_dir_of(f.path, layers);
    if (from_dir.empty()) continue;
    for (const IncludeRef& ref : quoted_includes(f.text)) {
      const std::string to_dir = include_dir_of(ref.target);
      if (to_dir.empty() || to_dir == from_dir) continue;
      if (layers.rank_of(to_dir) == nullptr) continue;
      ++edge_counts[{from_dir, to_dir}];
    }
  }
  std::ostringstream out;
  out << "// Directory-level include graph, generated by\n"
         "//   bgpsdn_lint --dump-include-graph docs/include-graph.dot\n"
         "// Edges point from including directory to included directory;\n"
         "// labels count the quoted #include lines. Layer ranks come from\n"
         "// tools/lint/layers.txt; check.sh regenerates this file and\n"
         "// fails on drift so layering changes are always visible in\n"
         "// review diffs.\n"
         "digraph bgpsdn_includes {\n"
         "  rankdir=BT;\n";
  for (const auto& [dir, rank] : layers.ranks) {
    out << "  \"" << dir << "\" [label=\"" << dir << "\\nrank " << rank
        << "\"];\n";
  }
  for (const auto& [edge, count] : edge_counts) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second << "\" [label=\""
        << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Baseline (bgpsdn.lint/2).
// ---------------------------------------------------------------------------

std::string findings_to_json(const std::vector<Finding>& findings) {
  using telemetry::Json;
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
  Json doc = Json::object();
  doc["schema"] = std::string{"bgpsdn.lint/2"};
  Json arr = Json::array();
  for (const Finding& f : sorted) {
    Json entry = Json::object();
    entry["file"] = f.file;
    entry["line"] = static_cast<std::int64_t>(f.line);
    entry["rule"] = f.rule;
    entry["token"] = f.token;
    entry["message"] = f.message;
    entry["reason"] = f.reason;
    arr.push_back(std::move(entry));
  }
  doc["findings"] = std::move(arr);
  return doc.dump();
}

bool parse_baseline(std::string_view text, Baseline& out, std::string* error) {
  using telemetry::Json;
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  const std::optional<Json> doc = Json::parse(text);
  if (!doc || !doc->is_object()) {
    return fail("malformed baseline: not a JSON object");
  }
  const Json* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return fail("malformed baseline: missing schema");
  }
  if (schema->as_string() == "bgpsdn.lint/1") {
    return fail(
        "baseline schema bgpsdn.lint/1 is no longer supported: every waiver "
        "now requires a reason; migrate to bgpsdn.lint/2 by adding a "
        "\"reason\" to each entry, or regenerate with --write-baseline");
  }
  if (schema->as_string() != "bgpsdn.lint/2") {
    return fail("malformed baseline: unknown schema '" +
                schema->as_string() + "'");
  }
  const Json* findings = doc->find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return fail("malformed baseline: missing findings array");
  }
  out.entries.clear();
  for (std::size_t i = 0; i < findings->size(); ++i) {
    const Json& e = findings->at(i);
    if (!e.is_object()) return fail("malformed baseline: non-object entry");
    const Json* file = e.find("file");
    const Json* line = e.find("line");
    const Json* rule = e.find("rule");
    const Json* token = e.find("token");
    if (file == nullptr || line == nullptr || rule == nullptr ||
        token == nullptr) {
      return fail("malformed baseline: entry missing file/line/rule/token");
    }
    Finding f;
    f.file = file->as_string();
    f.line = static_cast<int>(line->as_int());
    f.rule = rule->as_string();
    f.token = token->as_string();
    const Json* reason = e.find("reason");
    if (reason == nullptr || !reason->is_string() ||
        reason->as_string().empty()) {
      return fail("baseline waiver " + f.file + ":" + std::to_string(f.line) +
                  " [" + f.rule +
                  "] has no reason; every waiver must document why it is "
                  "tolerated");
    }
    f.reason = reason->as_string();
    out.entries.push_back(std::move(f));
  }
  return true;
}

FilterResult apply_baseline(const std::vector<Finding>& findings,
                            const Baseline& baseline) {
  FilterResult result;
  std::vector<bool> used(baseline.entries.size(), false);
  for (const Finding& f : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (used[i]) continue;
      const Finding& b = baseline.entries[i];
      if (b.file == f.file && b.line == f.line && b.rule == f.rule &&
          b.token == f.token) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++result.baselined;
    } else {
      result.fresh.push_back(f);
    }
  }
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (!used[i]) result.stale.push_back(baseline.entries[i]);
  }
  return result;
}

int exit_code_for(const std::vector<Finding>& fresh) {
  return fresh.empty() ? 0 : 1;
}

}  // namespace bgpsdn::lint
