#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "telemetry/json.hpp"

namespace bgpsdn::lint {
namespace {

// ---------------------------------------------------------------------------
// Source stripping: blank out comments and literal contents so token
// matching never fires inside a string or a comment, while collecting the
// comment text per line for pragma parsing.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                   // same length/lines, literals blanked
  std::vector<std::string> comments;  // per-line comment text
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Stripped strip(std::string_view text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  Stripped out;
  out.code.reserve(text.size());
  out.comments.emplace_back();
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: ")delim" terminator

  const auto comment_char = [&](char c) {
    out.comments.back().push_back(c);
    out.code.push_back(c == '\n' ? '\n' : ' ');
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // Newline always ends the physical line regardless of state (an
      // unterminated string would otherwise eat the rest of the file).
      if (state == State::kLine) state = State::kCode;
      out.code.push_back('\n');
      out.comments.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_char(' ');  // the two slashes themselves are not pragma text
          ++i;
          out.code.back() = ' ';
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '"') {
          const char prev = i > 0 ? text[i - 1] : '\0';
          if (prev == 'R') {
            // Raw string literal: R"delim( ... )delim"
            std::size_t p = i + 1;
            std::string delim;
            while (p < text.size() && text[p] != '(') delim.push_back(text[p++]);
            raw_delim = ")" + delim + "\"";
            state = State::kRaw;
            out.code.push_back('"');
            for (std::size_t k = i + 1; k <= p && k < text.size(); ++k) {
              out.code.push_back(' ');
            }
            i = p;
            break;
          }
          state = State::kString;
          out.code.push_back('"');
          break;
        }
        if (c == '\'') {
          const char prev = i > 0 ? text[i - 1] : '\0';
          if (is_ident_char(prev)) {
            out.code.push_back(' ');  // digit separator: 1'000'000
            break;
          }
          state = State::kChar;
          out.code.push_back('\'');
          break;
        }
        out.code.push_back(c);
        break;
      case State::kLine:
        comment_char(c);
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.comments.back().push_back(' ');
          out.code.append("  ");
          ++i;
          break;
        }
        comment_char(c);
        break;
      case State::kString:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '"') {
          state = State::kCode;
          out.code.push_back('"');
          break;
        }
        out.code.push_back(' ');
        break;
      case State::kChar:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
          break;
        }
        if (c == '\'') {
          state = State::kCode;
          out.code.push_back('\'');
          break;
        }
        out.code.push_back(' ');
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (char d : raw_delim) {
            out.code.push_back(d == '"' ? '"' : ' ');
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
          break;
        }
        out.code.push_back(' ');
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over the blanked code. Identifiers and numbers are whole
// tokens; `::` and `->` are merged so "std :: thread" and member access
// read as single punctuators.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;        // 1-based
  bool ident = false;  // identifier (or number — never matches a rule name)
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> toks;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back({std::string{code.substr(i, j - i)}, line, true});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      toks.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      toks.push_back({"->", line, false});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Suppression pragmas: `// lint: <tag>(reason)`. The tag names the rule
// being waived; the reason is mandatory — an exemption must document why
// the construct is outside the determinism contract.
// ---------------------------------------------------------------------------

struct Pragma {
  int line = 0;  // 1-based
  std::string tag;
  std::string reason;
  bool known = false;
};

const std::unordered_map<std::string, std::string>& pragma_tags() {
  static const std::unordered_map<std::string, std::string> kTags = {
      {"wall-clock-ok", "D1"}, {"random-ok", "D2"}, {"unordered-ok", "D3"},
      {"thread-ok", "T1"},     {"header-ok", "H1"},
  };
  return kTags;
}

std::vector<Pragma> parse_pragmas(const std::vector<std::string>& comments) {
  std::vector<Pragma> pragmas;
  for (std::size_t ln = 0; ln < comments.size(); ++ln) {
    const std::string& com = comments[ln];
    std::size_t pos = 0;
    while ((pos = com.find("lint:", pos)) != std::string::npos) {
      std::size_t p = pos + 5;
      while (p < com.size() && com[p] == ' ') ++p;
      std::size_t tag_start = p;
      while (p < com.size() &&
             (std::islower(static_cast<unsigned char>(com[p])) != 0 ||
              com[p] == '-')) {
        ++p;
      }
      const std::string tag = com.substr(tag_start, p - tag_start);
      pos = p;
      if (tag.empty()) continue;  // prose like "lint: <tag>(...)", not a pragma
      Pragma pr;
      pr.line = static_cast<int>(ln) + 1;
      pr.tag = tag;
      pr.known = pragma_tags().contains(tag);
      if (p < com.size() && com[p] == '(') {
        // The reason runs to the closing paren, or to the end of the
        // comment line when the sentence wraps onto the next line.
        const std::size_t close = com.find(')', p);
        const std::size_t end = close == std::string::npos ? com.size() : close;
        pr.reason = com.substr(p + 1, end - p - 1);
        pos = end;
      }
      // Trim the reason; "( )" counts as missing.
      while (!pr.reason.empty() && pr.reason.front() == ' ') {
        pr.reason.erase(pr.reason.begin());
      }
      while (!pr.reason.empty() && pr.reason.back() == ' ') pr.reason.pop_back();
      pragmas.push_back(std::move(pr));
    }
  }
  return pragmas;
}

// ---------------------------------------------------------------------------
// Rule context shared by the matchers.
// ---------------------------------------------------------------------------

struct FileContext {
  std::string path;         // normalized, forward slashes
  bool is_header = false;
  bool is_emitter = false;  // D3 applies
  bool t1_allowlisted = false;
  std::vector<std::string> raw_lines;
  std::vector<Tok> toks;
  std::vector<Pragma> pragmas;
  std::vector<bool> line_has_code;            // index 0 = line 1
  std::unordered_set<std::string> unordered;  // vars/aliases of unordered type
  std::vector<Finding> findings;

  bool line_holds_code(int line) const {
    const std::size_t idx = static_cast<std::size_t>(line) - 1;
    return idx < line_has_code.size() && line_has_code[idx];
  }

  bool suppressed(const std::string& rule, int line) const {
    for (const Pragma& pr : pragmas) {
      if (!pr.known || pr.reason.empty()) continue;
      const auto it = pragma_tags().find(pr.tag);
      if (it == pragma_tags().end() || it->second != rule) continue;
      if (pr.line == line) return true;
      // A pragma on a comment-only line covers the next line that holds
      // code, skipping the rest of its own comment block.
      if (line_holds_code(pr.line)) continue;
      int target = pr.line + 1;
      while (target <= static_cast<int>(line_has_code.size()) &&
             !line_holds_code(target)) {
        ++target;
      }
      if (target == line) return true;
    }
    return false;
  }

  void add(const std::string& rule, int line, std::string token,
           std::string message) {
    if (suppressed(rule, line)) return;
    findings.push_back(
        {path, line, rule, std::move(token), std::move(message)});
  }
};

std::vector<std::string> split_raw_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_has_dir(const std::string& path, std::string_view dir) {
  std::string needle = "/";
  needle += dir;
  needle += "/";
  if (path.find(needle) != std::string::npos) return true;
  std::string head{dir};
  head += "/";
  return path.rfind(head, 0) == 0;
}

// Previous token, skipping nothing; nullptr at the start.
const Tok* prev_tok(const std::vector<Tok>& toks, std::size_t i) {
  return i == 0 ? nullptr : &toks[i - 1];
}
const Tok* next_tok(const std::vector<Tok>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

// True when toks[i] is reached through `.` or `->` (a member, not the
// global/std function of the same name).
bool is_member_access(const std::vector<Tok>& toks, std::size_t i) {
  const Tok* p = prev_tok(toks, i);
  return p != nullptr && (p->text == "." || p->text == "->");
}

// True when toks[i] is qualified as `std::X` or `::X` (global scope).
bool is_std_or_global(const std::vector<Tok>& toks, std::size_t i) {
  const Tok* p = prev_tok(toks, i);
  if (p == nullptr || p->text != "::") return true;  // unqualified
  const Tok* pp = i >= 2 ? &toks[i - 2] : nullptr;
  if (pp == nullptr || !pp->ident) return true;  // leading :: = global
  return pp->text == "std" || pp->text == "chrono";
}

// ---------------------------------------------------------------------------
// D3 support: harvest names declared with an unordered container type,
// including `using` aliases (e.g. metrics.hpp's `template <typename T>
// using Map = std::unordered_map<...>` and the members declared as
// `Map<Counter> counters_;`).
// ---------------------------------------------------------------------------

bool is_unordered_type_name(const std::unordered_set<std::string>& aliases,
                            const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset" ||
         aliases.contains(name);
}

// Skip a balanced `<...>` starting at toks[i] == "<"; returns the index
// one past the matching ">", or i when unbalanced.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (toks[j].text == ";") break;  // statement ended: unbalanced
  }
  return i;
}

void harvest_unordered_names(const std::vector<Tok>& toks,
                             std::unordered_set<std::string>& names) {
  // Aliases first: `using X = ...unordered_map...;` (covers template
  // aliases too — the `using` token pattern is identical).
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "using")) continue;
    if (!toks[i + 1].ident || toks[i + 2].text != "=") continue;
    for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].ident && is_unordered_type_name(names, toks[j].text)) {
        names.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Declarations: `<unordered-type>[<...>] [const|&|*]* name [;=,){]`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || !is_unordered_type_name(names, toks[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    j = skip_template_args(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "const" || toks[j].text == "&" ||
            toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || !toks[j].ident) continue;
    const Tok* after = next_tok(toks, j);
    if (after == nullptr) continue;
    if (after->text == ";" || after->text == "=" || after->text == "{" ||
        after->text == ")" || after->text == ",") {
      names.insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

void rule_d1_wall_clock(FileContext& ctx) {
  static const std::unordered_set<std::string> kClockIdents = {
      "system_clock",     "steady_clock", "high_resolution_clock",
      "clock_gettime",    "gettimeofday", "timespec_get",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    if (kClockIdents.contains(toks[i].text)) {
      if (is_member_access(toks, i)) continue;
      ctx.add("D1", toks[i].line, toks[i].text,
              "wall clock outside the allowlisted wall-footer paths; "
              "simulations must use virtual time (core::TimePoint)");
      continue;
    }
    if (toks[i].text == "time") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (is_member_access(toks, i)) continue;
      if (!is_std_or_global(toks, i)) continue;
      ctx.add("D1", toks[i].line, "time()",
              "libc wall clock; simulations must use virtual time");
    }
  }
}

void rule_d2_randomness(FileContext& ctx) {
  static const std::unordered_set<std::string> kEngines = {
      "mt19937",       "mt19937_64", "minstd_rand", "minstd_rand0",
      "ranlux24_base", "ranlux48_base", "ranlux24", "ranlux48", "knuth_b",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string& t = toks[i].text;
    if (t == "random_device" || t == "default_random_engine" ||
        t == "random_shuffle") {
      if (is_member_access(toks, i)) continue;
      ctx.add("D2", toks[i].line, t,
              "ambient randomness; all draws must flow from the trial seed "
              "through core::Rng");
      continue;
    }
    if (t == "rand" || t == "srand") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (is_member_access(toks, i)) continue;
      if (!is_std_or_global(toks, i)) continue;
      ctx.add("D2", toks[i].line, t + "()",
              "libc randomness; all draws must flow from the trial seed "
              "through core::Rng");
      continue;
    }
    if (kEngines.contains(t)) {
      // Default-seeded engine: `mt19937 g;` or `mt19937{}` — fixed default
      // seed silently decouples the stream from the trial seed.
      std::size_t j = i + 1;
      if (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) {
        continue;  // reference/pointer type position, no construction
      }
      if (j < toks.size() && toks[j].text == "{" && j + 1 < toks.size() &&
          toks[j + 1].text == "}") {
        ctx.add("D2", toks[i].line, t + "{}",
                "default-seeded engine; seed it from the trial seed");
        continue;
      }
      if (j < toks.size() && toks[j].ident && j + 1 < toks.size()) {
        const std::string& after = toks[j + 1].text;
        if (after == ";") {
          ctx.add("D2", toks[i].line, t + " " + toks[j].text,
                  "default-seeded engine declaration; seed it from the "
                  "trial seed");
        } else if (after == "{" && j + 2 < toks.size() &&
                   toks[j + 2].text == "}") {
          ctx.add("D2", toks[i].line, t + " " + toks[j].text + "{}",
                  "default-seeded engine declaration; seed it from the "
                  "trial seed");
        }
      }
    }
  }
}

void rule_d3_unordered_iteration(FileContext& ctx) {
  if (!ctx.is_emitter) return;
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "for")) continue;
    if (toks[i + 1].text != "(") continue;
    // Find the range-for colon at paren depth 1, then the closing paren.
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && toks[j].text == ":" && colon == 0) colon = j;
      if (toks[j].text == ";") break;  // classic for loop
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (!toks[j].ident) continue;
      const bool unordered_type = toks[j].text == "unordered_map" ||
                                  toks[j].text == "unordered_set" ||
                                  toks[j].text == "unordered_multimap" ||
                                  toks[j].text == "unordered_multiset";
      if (unordered_type || ctx.unordered.contains(toks[j].text)) {
        ctx.add("D3", toks[i].line, toks[j].text,
                "range-for over an unordered container in an emitter code "
                "path; sort before output or annotate with "
                "unordered-ok(reason)");
        break;
      }
    }
  }
}

void rule_t1_threads(FileContext& ctx) {
  if (ctx.t1_allowlisted) return;
  static const std::unordered_set<std::string> kStdQualified = {
      "thread", "atomic", "mutex",   "shared_mutex", "recursive_mutex",
      "async",  "future", "promise", "condition_variable",
      "atomic_flag",
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) continue;
    const std::string& t = toks[i].text;
    if (t == "jthread") {
      ctx.add("T1", toks[i].line, t,
              "raw threading outside src/framework/trial.*; all "
              "parallelism goes through TrialRunner");
      continue;
    }
    if (kStdQualified.contains(t)) {
      const Tok* p = prev_tok(toks, i);
      const Tok* pp = i >= 2 ? &toks[i - 2] : nullptr;
      const bool std_qualified = p != nullptr && p->text == "::" &&
                                 pp != nullptr && pp->text == "std";
      if (!std_qualified) continue;
      ctx.add("T1", toks[i].line, "std::" + t,
              "raw threading/synchronization outside src/framework/trial.*; "
              "all parallelism goes through TrialRunner");
      continue;
    }
    if (t == "detach") {
      const Tok* nx = next_tok(toks, i);
      if (nx == nullptr || nx->text != "(") continue;
      if (!is_member_access(toks, i)) continue;
      ctx.add("T1", toks[i].line, "detach()",
              "detached threads can outlive the trial; all parallelism "
              "goes through TrialRunner");
    }
  }
}

void rule_h1_header_hygiene(FileContext& ctx) {
  if (!ctx.is_header) return;
  bool has_pragma_once = false;
  for (std::size_t ln = 0; ln < ctx.raw_lines.size(); ++ln) {
    const std::string& raw = ctx.raw_lines[ln];
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::string_view trimmed = std::string_view{raw}.substr(first);
    if (trimmed.rfind("#pragma", 0) == 0 &&
        trimmed.find("once") != std::string_view::npos) {
      has_pragma_once = true;
    }
    if (trimmed.rfind("#include", 0) == 0 &&
        trimmed.find("<iostream>") != std::string_view::npos &&
        (path_has_dir(ctx.path, "src"))) {
      ctx.add("H1", static_cast<int>(ln) + 1, "<iostream>",
              "iostream in a library header drags static init and bloats "
              "every consumer; use <cstdio> in a .cpp instead");
    }
  }
  if (!has_pragma_once && !ctx.toks.empty()) {
    ctx.add("H1", 1, "#pragma once", "header is missing #pragma once");
  }
  for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
    if (ctx.toks[i].ident && ctx.toks[i].text == "using" &&
        ctx.toks[i + 1].ident && ctx.toks[i + 1].text == "namespace") {
      ctx.add("H1", ctx.toks[i].line, "using namespace",
              "using-directive in a header leaks into every consumer");
    }
  }
}

void rule_p1_pragmas(FileContext& ctx) {
  for (const Pragma& pr : ctx.pragmas) {
    if (!pr.known) {
      ctx.findings.push_back({ctx.path, pr.line, "P1", pr.tag,
                              "unknown lint pragma tag '" + pr.tag + "'"});
      continue;
    }
    if (pr.reason.empty()) {
      ctx.findings.push_back(
          {ctx.path, pr.line, "P1", pr.tag,
           "suppression pragma requires a reason: lint: " + pr.tag +
               "(<why this is outside the contract>)"});
    }
  }
}

std::string normalize_path(std::string_view path) {
  std::string p{path};
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

// controller/switch_graph.hpp counts as an emitter header: its edge-delta
// changelog is emitter-ordered state (consumers replay it in append order
// into deterministic output), so changelog code paths must not iterate
// unordered containers either.
bool includes_emitter_header(const std::vector<std::string>& raw_lines) {
  for (const std::string& raw : raw_lines) {
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] != '#') continue;
    if (raw.find("#include") == std::string::npos) continue;
    if (raw.find("telemetry/json.hpp") != std::string::npos ||
        raw.find("framework/report.hpp") != std::string::npos ||
        raw.find("controller/switch_graph.hpp") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               std::string_view companion_header) {
  FileContext ctx;
  ctx.path = normalize_path(path);
  ctx.is_header = path_ends_with(ctx.path, ".hpp") ||
                  path_ends_with(ctx.path, ".h");
  ctx.t1_allowlisted = path_ends_with(ctx.path, "framework/trial.cpp") ||
                       path_ends_with(ctx.path, "framework/trial.hpp");
  ctx.raw_lines = split_raw_lines(text);

  const Stripped stripped = strip(text);
  ctx.toks = tokenize(stripped.code);
  ctx.pragmas = parse_pragmas(stripped.comments);

  // A .cpp inherits emitter status from its companion header: the usual
  // shape is foo.hpp pulling in the emitter header and foo.cpp doing the
  // actual iteration (as_topology.cpp replaying the switch-graph changelog).
  ctx.is_emitter = path_has_dir(ctx.path, "telemetry") ||
                   includes_emitter_header(ctx.raw_lines) ||
                   (!companion_header.empty() &&
                    includes_emitter_header(split_raw_lines(companion_header)));

  ctx.line_has_code.assign(ctx.raw_lines.size(), false);
  for (const Tok& t : ctx.toks) {
    const std::size_t idx = static_cast<std::size_t>(t.line) - 1;
    if (idx < ctx.line_has_code.size()) ctx.line_has_code[idx] = true;
  }

  if (!companion_header.empty()) {
    const Stripped companion = strip(companion_header);
    harvest_unordered_names(tokenize(companion.code), ctx.unordered);
  }
  harvest_unordered_names(ctx.toks, ctx.unordered);

  rule_d1_wall_clock(ctx);
  rule_d2_randomness(ctx);
  rule_d3_unordered_iteration(ctx);
  rule_t1_threads(ctx);
  rule_h1_header_hygiene(ctx);
  rule_p1_pragmas(ctx);

  std::sort(ctx.findings.begin(), ctx.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
  return ctx.findings;
}

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

std::vector<Finding> lint_file(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    return {{normalize_path(path), 0, "IO", path, "cannot read file"}};
  }
  std::string companion;
  if (path_ends_with(path, ".cpp")) {
    std::string header = path.substr(0, path.size() - 4) + ".hpp";
    std::string header_text;
    if (read_file(header, header_text)) companion = std::move(header_text);
  }
  return lint_text(path, text, companion);
}

std::vector<Finding> lint_paths(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      continue;  // missing roots reported by the CLI, not as findings
    }
    for (fs::recursive_directory_iterator it{root, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      const std::string p = it->path().generic_string();
      if (path_ends_with(p, ".cpp") || path_ends_with(p, ".hpp") ||
          path_ends_with(p, ".h")) {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    std::vector<Finding> fs_one = lint_file(f);
    findings.insert(findings.end(), fs_one.begin(), fs_one.end());
  }
  return findings;
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  using telemetry::Json;
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.token) <
                     std::tie(b.file, b.line, b.rule, b.token);
            });
  Json doc = Json::object();
  doc["schema"] = std::string{"bgpsdn.lint/1"};
  Json arr = Json::array();
  for (const Finding& f : sorted) {
    Json entry = Json::object();
    entry["file"] = f.file;
    entry["line"] = static_cast<std::int64_t>(f.line);
    entry["rule"] = f.rule;
    entry["token"] = f.token;
    entry["message"] = f.message;
    arr.push_back(std::move(entry));
  }
  doc["findings"] = std::move(arr);
  return doc.dump();
}

bool parse_baseline(std::string_view text, Baseline& out) {
  using telemetry::Json;
  const std::optional<Json> doc = Json::parse(text);
  if (!doc || !doc->is_object()) return false;
  const Json* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "bgpsdn.lint/1") {
    return false;
  }
  const Json* findings = doc->find("findings");
  if (findings == nullptr || !findings->is_array()) return false;
  out.entries.clear();
  for (std::size_t i = 0; i < findings->size(); ++i) {
    const Json& e = findings->at(i);
    if (!e.is_object()) return false;
    const Json* file = e.find("file");
    const Json* line = e.find("line");
    const Json* rule = e.find("rule");
    const Json* token = e.find("token");
    if (file == nullptr || line == nullptr || rule == nullptr ||
        token == nullptr) {
      return false;
    }
    Finding f;
    f.file = file->as_string();
    f.line = static_cast<int>(line->as_int());
    f.rule = rule->as_string();
    f.token = token->as_string();
    out.entries.push_back(std::move(f));
  }
  return true;
}

FilterResult apply_baseline(const std::vector<Finding>& findings,
                            const Baseline& baseline) {
  FilterResult result;
  std::vector<bool> used(baseline.entries.size(), false);
  for (const Finding& f : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      if (used[i]) continue;
      const Finding& b = baseline.entries[i];
      if (b.file == f.file && b.line == f.line && b.rule == f.rule &&
          b.token == f.token) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++result.baselined;
    } else {
      result.fresh.push_back(f);
    }
  }
  return result;
}

int exit_code_for(const std::vector<Finding>& fresh) {
  return fresh.empty() ? 0 : 1;
}

}  // namespace bgpsdn::lint
