// bgpsdn_lint CLI — see linter.hpp for the rule set.
//
// Usage:
//   bgpsdn_lint [--baseline lint_baseline.json] [--json out.json]
//               [--write-baseline out.json] [--layers tools/lint/layers.txt]
//               [--dump-include-graph out.dot] [--fail-stale] [--quiet]
//               [paths...]
//
// Default paths: src tools bench examples tests (run from the repo root).
// Exit codes: 0 clean (all findings baselined), 1 findings, 2 usage/IO.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--baseline <file>] [--json <out>] [--write-baseline <out>]\n"
      "          [--layers <file>] [--dump-include-graph <out.dot>]\n"
      "          [--fail-stale] [--quiet] [paths...]\n"
      "Scans .cpp/.hpp files for determinism-contract violations\n"
      "(D1 wall clock, D2 ambient randomness, D3 unordered iteration in\n"
      "emitters, D4 pointer-value ordering in emitters, D5 float\n"
      "accumulation order in emitters, A1 include layering, A2 hot-path\n"
      "allocations, T1 raw threading, H1 header hygiene, P1 bad pragma).\n"
      "Default layer table: tools/lint/layers.txt (A1 and the dot dump are\n"
      "skipped when it is absent). --fail-stale turns baseline entries that\n"
      "match no current finding into an error.\n"
      "Default paths: src tools bench examples tests\n",
      argv0);
  return 2;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out << body << '\n';
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string json_path;
  std::string write_baseline_path;
  std::string layers_path = "tools/lint/layers.txt";
  bool layers_explicit = false;
  std::string dot_path;
  bool fail_stale = false;
  bool quiet = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
      layers_explicit = true;
    } else if (arg == "--dump-include-graph" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--fail-stale") {
      fail_stale = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "bench", "examples", "tests"};

  // Layer table: the default path is best-effort (A1 skipped when absent,
  // so the tool still works from odd working directories); an explicit
  // --layers that cannot be read or parsed is a hard error.
  bgpsdn::lint::LayerTable layers;
  bool have_layers = false;
  {
    std::string layers_text;
    if (read_text_file(layers_path, layers_text)) {
      std::string err;
      if (!bgpsdn::lint::parse_layers(layers_text, layers, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
      }
      have_layers = true;
    } else if (layers_explicit) {
      std::fprintf(stderr, "%s: cannot read layer table %s\n", argv[0],
                   layers_path.c_str());
      return 2;
    }
  }

  std::vector<bgpsdn::lint::Finding> all = bgpsdn::lint::lint_paths(roots);

  if (have_layers) {
    const std::vector<bgpsdn::lint::CorpusFile> corpus =
        bgpsdn::lint::load_corpus(roots);
    std::vector<bgpsdn::lint::Finding> graph =
        bgpsdn::lint::analyze_include_graph(corpus, layers);
    all.insert(all.end(), graph.begin(), graph.end());
    if (!dot_path.empty()) {
      if (!write_text_file(
              dot_path, bgpsdn::lint::include_graph_dot(corpus, layers))) {
        std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                     dot_path.c_str());
        return 2;
      }
    }
  } else if (!dot_path.empty()) {
    std::fprintf(stderr, "%s: --dump-include-graph needs a layer table (%s)\n",
                 argv[0], layers_path.c_str());
    return 2;
  }

  bgpsdn::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_text_file(baseline_path, text)) {
      std::fprintf(stderr, "%s: cannot read baseline %s\n", argv[0],
                   baseline_path.c_str());
      return 2;
    }
    std::string err;
    if (!bgpsdn::lint::parse_baseline(text, baseline, &err)) {
      std::fprintf(stderr, "%s: %s: %s\n", argv[0], baseline_path.c_str(),
                   err.c_str());
      return 2;
    }
  }

  const bgpsdn::lint::FilterResult filtered =
      bgpsdn::lint::apply_baseline(all, baseline);

  if (!write_baseline_path.empty()) {
    // A freshly written baseline carries placeholder reasons: the schema
    // requires one per entry, and a human has to fill in the real
    // justification before the file parses as an honest waiver list.
    std::vector<bgpsdn::lint::Finding> entries = all;
    for (bgpsdn::lint::Finding& f : entries) {
      if (f.reason.empty()) f.reason = "TODO: justify this waiver";
    }
    if (!write_text_file(write_baseline_path,
                         bgpsdn::lint::findings_to_json(entries))) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %zu finding(s) to %s\n", all.size(),
                 write_baseline_path.c_str());
    return 0;
  }

  if (!json_path.empty()) {
    if (!write_text_file(json_path,
                         bgpsdn::lint::findings_to_json(filtered.fresh))) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   json_path.c_str());
      return 2;
    }
  }

  if (!quiet) {
    for (const bgpsdn::lint::Finding& f : filtered.fresh) {
      std::fprintf(stderr, "%s:%d: %s [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.token.c_str(), f.message.c_str());
    }
    for (const bgpsdn::lint::Finding& f : filtered.stale) {
      std::fprintf(stderr,
                   "%s:%d: stale baseline waiver [%s %s] matches no current "
                   "finding%s\n",
                   f.file.c_str(), f.line, f.rule.c_str(), f.token.c_str(),
                   fail_stale ? "" : " (delete it; --fail-stale enforces)");
    }
    std::fprintf(stderr,
                 "bgpsdn_lint: %zu finding(s), %zu baselined, %zu stale\n",
                 filtered.fresh.size(), filtered.baselined,
                 filtered.stale.size());
  }
  if (!filtered.fresh.empty()) return 1;
  if (fail_stale && !filtered.stale.empty()) return 1;
  return 0;
}
