// bgpsdn_lint CLI — see linter.hpp for the rule set.
//
// Usage:
//   bgpsdn_lint [--baseline lint_baseline.json] [--json out.json]
//               [--write-baseline out.json] [--quiet] [paths...]
//
// Default paths: src tools bench examples (run from the repo root).
// Exit codes: 0 clean (all findings baselined), 1 findings, 2 usage/IO.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--baseline <file>] [--json <out>] [--write-baseline <out>]\n"
      "          [--quiet] [paths...]\n"
      "Scans .cpp/.hpp files for determinism-contract violations\n"
      "(D1 wall clock, D2 ambient randomness, D3 unordered iteration in\n"
      "emitters, T1 raw threading, H1 header hygiene, P1 bad pragma).\n"
      "Default paths: src tools bench examples\n",
      argv0);
  return 2;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out << body << '\n';
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string json_path;
  std::string write_baseline_path;
  bool quiet = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "bench", "examples"};

  const std::vector<bgpsdn::lint::Finding> all =
      bgpsdn::lint::lint_paths(roots);

  bgpsdn::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in{baseline_path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "%s: cannot read baseline %s\n", argv[0],
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!bgpsdn::lint::parse_baseline(ss.str(), baseline)) {
      std::fprintf(stderr, "%s: malformed baseline %s\n", argv[0],
                   baseline_path.c_str());
      return 2;
    }
  }

  const bgpsdn::lint::FilterResult filtered =
      bgpsdn::lint::apply_baseline(all, baseline);

  if (!write_baseline_path.empty()) {
    if (!write_text_file(write_baseline_path,
                         bgpsdn::lint::findings_to_json(all))) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %zu finding(s) to %s\n", all.size(),
                 write_baseline_path.c_str());
    return 0;
  }

  if (!json_path.empty()) {
    if (!write_text_file(json_path,
                         bgpsdn::lint::findings_to_json(filtered.fresh))) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   json_path.c_str());
      return 2;
    }
  }

  if (!quiet) {
    for (const bgpsdn::lint::Finding& f : filtered.fresh) {
      std::fprintf(stderr, "%s:%d: %s [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.token.c_str(), f.message.c_str());
    }
    std::fprintf(stderr, "bgpsdn_lint: %zu finding(s), %zu baselined\n",
                 filtered.fresh.size(), filtered.baselined);
  }
  return bgpsdn::lint::exit_code_for(filtered.fresh);
}
