// bgpsdn_lint — project-invariant static analyzer.
//
// A token-level scanner (no libclang, stdlib only) that mechanically
// enforces the source-level rules behind the repo's determinism contract:
// seeded runs must be byte-identical at any BGPSDN_JOBS. The end-to-end
// JSON diff in check.sh catches a leak after the fact; these rules ban the
// constructs that cause leaks in the first place.
//
// Rules (DESIGN.md §10 has the full table and rationale):
//   D1  no wall clocks (system_clock/steady_clock/high_resolution_clock/
//       time()/clock_gettime/gettimeofday) — virtual time only. The wall
//       footer paths are annotated with `// lint: wall-clock-ok(reason)`.
//   D2  no ambient randomness (rand/srand/std::random_device/
//       default_random_engine) and no default-seeded std engines — all
//       randomness must flow from trial seeds through core::Rng.
//   D3  no range-for over std::unordered_map/unordered_set in emitter
//       code paths (files under src/telemetry/ or directly including
//       telemetry/json.hpp or framework/report.hpp) unless the line is
//       annotated `// lint: unordered-ok(reason)` — e.g. because the sink
//       sorts keys before rendering.
//   T1  no std::thread/jthread/async/atomic/mutex/detach() outside
//       src/framework/trial.* — all parallelism goes through TrialRunner.
//   H1  header hygiene: `#pragma once` in every header, no
//       `using namespace` in headers, no <iostream> in library headers
//       (under src/).
//   P1  a suppression pragma with an empty/missing reason — reasons are
//       mandatory so every exemption documents itself.
//
// Suppression: `// lint: <tag>(reason)` on the offending line, or on a
// comment-only line directly above it. Tags: wall-clock-ok (D1),
// random-ok (D2), unordered-ok (D3), thread-ok (T1), header-ok (H1).
//
// Comments, string literals, and char literals are stripped before token
// matching, so talking *about* steady_clock (or matching it, as this tool
// does) never trips a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgpsdn::lint {

struct Finding {
  std::string file;   // path as given (normalized to forward slashes)
  int line = 0;       // 1-based
  std::string rule;   // "D1", "D2", "D3", "T1", "H1", "P1"
  std::string token;  // offending token or construct
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Lint one in-memory translation unit. `path` is used for path-scoped
/// rules (T1 allowlist, D3 emitter detection, H1 library-header check) and
/// for finding locations. `companion_header` is the text of the paired
/// .hpp when linting a .cpp (may be empty) — its type declarations and
/// aliases feed D3's unordered-container tracking, so `for (auto& kv :
/// counters_)` in metrics.cpp resolves against the member declared in
/// metrics.hpp.
std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               std::string_view companion_header = {});

/// Lint one file on disk (loads the companion header automatically).
/// Unreadable files yield a single "IO" finding.
std::vector<Finding> lint_file(const std::string& path);

/// Recursively collect .cpp/.hpp files under each root (or the root itself
/// when it is a file), sorted for deterministic output, and lint them.
std::vector<Finding> lint_paths(const std::vector<std::string>& roots);

/// Baseline: a committed set of tolerated findings so adoption can be
/// incremental. Matching is exact on (file, line, rule, token).
struct Baseline {
  std::vector<Finding> entries;
};

/// Parse a lint_baseline.json document ({"schema":"bgpsdn.lint/1",
/// "findings":[...]}). Returns false on malformed input.
bool parse_baseline(std::string_view text, Baseline& out);

/// Render findings as a bgpsdn.lint/1 JSON document (deterministic:
/// findings are sorted by file/line/rule/token).
std::string findings_to_json(const std::vector<Finding>& findings);

/// Split findings into (new, baselined) against a baseline.
struct FilterResult {
  std::vector<Finding> fresh;
  std::size_t baselined = 0;
};
FilterResult apply_baseline(const std::vector<Finding>& findings,
                            const Baseline& baseline);

/// Exit code the CLI maps a finding set to: 0 clean, 1 findings.
int exit_code_for(const std::vector<Finding>& fresh);

}  // namespace bgpsdn::lint
