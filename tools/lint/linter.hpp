// bgpsdn_lint — project-invariant static analyzer.
//
// A three-pass analyzer (no libclang, stdlib only) that mechanically
// enforces the source-level rules behind the repo's determinism contract:
// seeded runs must be byte-identical at any BGPSDN_JOBS, and the hot paths
// must stay allocation-free per event. The end-to-end JSON diff in check.sh
// catches a leak after the fact; these rules ban the constructs that cause
// leaks in the first place.
//
// Pass 1 — token rules, per translation unit (DESIGN.md §10 has the full
// table and rationale):
//   D1  no wall clocks (system_clock/steady_clock/high_resolution_clock/
//       time()/clock_gettime/gettimeofday) — virtual time only. The wall
//       footer paths are annotated with `// lint: wall-clock-ok(reason)`.
//   D2  no ambient randomness (rand/srand/std::random_device/
//       default_random_engine) and no default-seeded std engines — all
//       randomness must flow from trial seeds through core::Rng.
//   D3  no range-for over std::unordered_map/unordered_set in emitter
//       code paths (see is-emitter definition below) unless the line is
//       annotated `// lint: unordered-ok(reason)` — e.g. because the sink
//       sorts keys before rendering.
//   D4  no ordering or hashing by pointer value in emitter code paths:
//       std::less<T*>, std::hash<T*>, std::set/map keyed on a pointer
//       type, comparator lambdas that compare two raw-pointer parameters.
//       Pointer values differ run-to-run under ASLR and allocator churn;
//       order derived from them must never reach serialized output.
//       Suppress with `// lint: ptr-order-ok(reason)`.
//   D5  no order-sensitive float accumulation in emitter code paths:
//       std::accumulate over floating data, and `+=` onto a float/double
//       in a range-for body. Float addition is not associative; sums that
//       reach serialized output must come from a sorted or index-ordered
//       source, documented via `// lint: float-order-ok(reason)`.
//   T1  no std::thread/jthread/async/atomic/mutex/detach() outside
//       src/framework/trial.* — all parallelism goes through TrialRunner.
//   H1  header hygiene: `#pragma once` in every header, no
//       `using namespace` in headers, no <iostream> in library headers
//       (under src/).
//   P1  a suppression pragma with an empty/missing reason — reasons are
//       mandatory so every exemption documents itself.
//
// Pass 2 — hot-path allocation (A2). Functions carrying the `hotpath`
// lint pragma with a reason (on the signature line or a comment line
// directly above it) are scanned to the end of their brace scope for
// allocation and control-flow constructs that must not appear per-event:
//   - `new`, std::make_shared / std::make_unique
//   - std::function construction (use core::SmallFunc — 64-byte SBO)
//   - declaring a local std::priority_queue (its backing vector grows per
//     call; hoist it to a member scratch buffer)
//   - sized construction of a local container (vector<T> v(n), string
//     s("..."), ...)
//   - push_back / emplace_back on a local container with no reserve() in
//     the same scope (members — trailing-underscore names — own amortized
//     storage and are gated by the bench memory model instead)
//   - string concatenation against a literal, and std::to_string
//   - `throw`
// Individual lines are waived with `// lint: alloc-ok(reason)`.
//
// Pass 3 — include graph (A1), whole-corpus. Quoted project includes are
// checked against the committed layer table (tools/lint/layers.txt): an
// include may only point strictly *down* the rank order (or stay inside
// its own directory), and the file-level include graph under src/ must be
// acyclic. Violating includes are waived with `// lint: layer-ok(reason)`.
// The directory-level graph is exportable as Graphviz dot
// (--dump-include-graph) and a committed copy in docs/ makes layering
// drift visible in diffs.
//
// Emitter paths (D3/D4/D5): files under src/telemetry/, or files that
// include — directly or via the companion .hpp of a .cpp —
// telemetry/json.hpp, framework/report.hpp, or controller/switch_graph.hpp.
//
// Comments, string literals, and char literals are stripped before token
// matching, so talking *about* steady_clock (or matching it, as this tool
// does) never trips a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgpsdn::lint {

struct Finding {
  std::string file;   // path as given (normalized to forward slashes)
  int line = 0;       // 1-based
  std::string rule;   // "D1".."D5", "T1", "H1", "P1", "A1", "A2"
  std::string token;  // offending token or construct
  std::string message;
  std::string reason;  // waiver rationale (baseline entries only)

  bool operator==(const Finding&) const = default;
};

/// Lint one in-memory translation unit (token rules + A2 hot-path pass).
/// `path` is used for path-scoped rules (T1 allowlist, D3/D4/D5 emitter
/// detection, H1 library-header check) and for finding locations.
/// `companion_header` is the text of the paired .hpp when linting a .cpp
/// (may be empty) — its type declarations and aliases feed the D3
/// unordered-container and D5 float-member tracking, so `for (auto& kv :
/// counters_)` in metrics.cpp resolves against the member declared in
/// metrics.hpp.
std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               std::string_view companion_header = {});

/// Lint one file on disk (loads the companion header automatically).
/// Unreadable files yield a single "IO" finding.
std::vector<Finding> lint_file(const std::string& path);

/// Recursively collect .cpp/.hpp files under each root (or the root itself
/// when it is a file), sorted for deterministic output, and lint them.
/// Subdirectories named "fixtures" are skipped during recursion — the lint
/// test corpus is deliberately full of violations — but a root that *is* a
/// fixtures directory is scanned (that is how the corpus tests drive it).
std::vector<Finding> lint_paths(const std::vector<std::string>& roots);

// --- include-graph pass (A1) ------------------------------------------------

/// Layer table parsed from tools/lint/layers.txt: directory name -> rank.
/// An include from dir A into dir B is legal iff rank(B) < rank(A) or
/// A == B; same-rank cross-directory includes are violations.
struct LayerTable {
  std::vector<std::pair<std::string, int>> ranks;  // sorted by directory

  /// Rank of a directory, or nullptr when the directory is not governed.
  const int* rank_of(std::string_view dir) const;
};

/// Parse a layers.txt document ("<dir> <rank>" lines, '#' comments).
/// On failure returns false and, when `error` is non-null, stores a
/// diagnostic naming the offending line.
bool parse_layers(std::string_view text, LayerTable& out,
                  std::string* error = nullptr);

/// One file of the scanned corpus, loaded into memory.
struct CorpusFile {
  std::string path;  // normalized to forward slashes
  std::string text;
};

/// Collect and load the corpus under the given roots (same file set and
/// ordering as lint_paths). Unreadable files are silently skipped — the
/// per-file pass already reports them as IO findings.
std::vector<CorpusFile> load_corpus(const std::vector<std::string>& roots);

/// The include-graph pass: layer monotonicity for every quoted include
/// whose source and target directories are both governed by `layers`, plus
/// cycle detection over the file-level include graph of src/. Waivable
/// per include line with `// lint: layer-ok(reason)`.
std::vector<Finding> analyze_include_graph(const std::vector<CorpusFile>& files,
                                           const LayerTable& layers);

/// Directory-level include graph as deterministic Graphviz dot: one edge
/// per (including dir -> included dir) pair with an include-count label,
/// sorted; self-edges omitted. Committed as docs/include-graph.dot so
/// layering drift shows up in diffs.
std::string include_graph_dot(const std::vector<CorpusFile>& files,
                              const LayerTable& layers);

// --- baseline (bgpsdn.lint/2) -----------------------------------------------

/// Baseline: a committed set of waived findings. Matching is exact on
/// (file, line, rule, token); every entry must carry a non-empty reason.
struct Baseline {
  std::vector<Finding> entries;
};

/// Parse a lint_baseline.json document ({"schema":"bgpsdn.lint/2",
/// "findings":[...]}). Returns false on malformed input and, when `error`
/// is non-null, stores an exact diagnostic. A v1 document
/// ("bgpsdn.lint/1") is rejected with a migration message — v1 entries
/// carried no waiver reasons.
bool parse_baseline(std::string_view text, Baseline& out,
                    std::string* error = nullptr);

/// Render findings as a bgpsdn.lint/2 JSON document (deterministic:
/// findings are sorted by file/line/rule/token; each entry carries its
/// reason field, empty unless populated by the caller).
std::string findings_to_json(const std::vector<Finding>& findings);

/// Split findings against a baseline: `fresh` are unmatched findings,
/// `baselined` counts matched ones, and `stale` returns baseline entries
/// that matched no current finding — waivers for code that no longer
/// trips the rule, which must be deleted (check.sh fails on them).
struct FilterResult {
  std::vector<Finding> fresh;
  std::size_t baselined = 0;
  std::vector<Finding> stale;
};
FilterResult apply_baseline(const std::vector<Finding>& findings,
                            const Baseline& baseline);

/// Exit code the CLI maps a finding set to: 0 clean, 1 findings.
int exit_code_for(const std::vector<Finding>& fresh);

}  // namespace bgpsdn::lint
