// bgpsdn_run — execute a scenario script.
//
//   $ bgpsdn_run experiment.bgpsdn              # one run, from a file
//   $ bgpsdn_run -                              # one run, from stdin
//   $ bgpsdn_run --trials 10 experiment.bgpsdn  # 10 seeded parallel trials
//
// With --trials N the script is executed N times with seeds base, base+1,
// ... (overriding any `seed` command), in parallel across BGPSDN_JOBS (or
// --jobs) worker threads — one independent simulation per seed, exactly like
// the paper's "boxplots over 10 runs". The per-trial wait-converged times
// are summarized as a boxplot row; per-trial output is suppressed.
//
// Exit code 0 when the script ran and every expectation held (in every
// trial); 1 otherwise.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "framework/report.hpp"
#include "framework/scenario.hpp"
#include "framework/stats.hpp"
#include "framework/telemetry_monitor.hpp"
#include "framework/trial.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--trials N] [--base-seed S] [--jobs J] [--json PATH] "
               "[--faults PATH] <scenario-file | ->\n"
               "  --json PATH  write a bgpsdn.bench/1 JSON document: single "
               "runs include\n"
               "               the full telemetry capture (metrics, monitors, "
               "trace stats),\n"
               "               --trials runs include the boxplot point and "
               "footer\n"
               "  --faults PATH  arm a fault plan when the scenario's 'start' "
               "completes\n"
               "               (see src/framework/faults.hpp for the plan "
               "grammar)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 1;
  std::uint64_t base_seed = 1000;
  std::size_t jobs = 0;  // 0 = BGPSDN_JOBS / hardware_concurrency
  std::string json_path;
  std::string faults_path;
  std::string input;
  bool have_input = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    const auto number_arg = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(1);
      }
      try {
        std::size_t used = 0;
        const std::string value{argv[++i]};
        const long long parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument{value};
        return parsed;
      } catch (const std::exception&) {
        std::cerr << flag << " needs a number, got '" << argv[i] << "'\n";
        std::exit(1);
      }
    };
    if (arg == "--trials") {
      const auto v = number_arg("--trials");
      if (v < 1) {
        std::cerr << "--trials must be >= 1\n";
        return 1;
      }
      trials = static_cast<std::size_t>(v);
    } else if (arg == "--base-seed") {
      base_seed = static_cast<std::uint64_t>(number_arg("--base-seed"));
    } else if (arg == "--jobs") {
      const auto v = number_arg("--jobs");
      if (v < 1) {
        std::cerr << "--jobs must be >= 1\n";
        return 1;
      }
      jobs = static_cast<std::size_t>(v);
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 1;
      }
      json_path = argv[++i];
    } else if (arg == "--faults") {
      if (i + 1 >= argc) {
        std::cerr << "--faults needs a path\n";
        return 1;
      }
      faults_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!have_input) {
      input = arg;
      have_input = true;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (!have_input) {
    usage(argv[0]);
    return 1;
  }

  // Read the whole script up front: stdin is not replayable across trials.
  std::string script;
  if (input == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    script = buf.str();
  } else {
    std::ifstream file{input};
    if (!file) {
      std::cerr << "cannot open " << input << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    script = buf.str();
  }

  bgpsdn::framework::FaultPlan fault_plan;
  bool have_faults = false;
  if (!faults_path.empty()) {
    std::ifstream file{faults_path};
    if (!file) {
      std::cerr << "cannot open " << faults_path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    try {
      fault_plan = bgpsdn::framework::FaultPlan::parse(buf.str());
    } catch (const std::exception& e) {
      std::cerr << faults_path << ": " << e.what() << "\n";
      return 1;
    }
    have_faults = true;
  }

  if (trials == 1) {
    // lint: wall-clock-ok(wall_s footer only; the simulation itself runs on
    // virtual time and the determinism diff excludes the footer)
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    bgpsdn::framework::ScenarioRunner runner;
    runner.set_capture_telemetry(!json_path.empty());
    if (have_faults) runner.set_fault_plan(fault_plan);
    const auto result = runner.run(script);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (const auto& line : result.output) std::cout << line << "\n";
    if (!json_path.empty()) {
      namespace fw = bgpsdn::framework;
      namespace tel = bgpsdn::telemetry;
      fw::BenchReport report{"bgpsdn_run"};
      report.set_param("scenario", tel::Json{input});
      report.set_param("trials", tel::Json{std::int64_t{1}});
      if (have_faults) report.set_param("faults", tel::Json{faults_path});
      tel::Json extra = tel::Json::object();
      if (auto* exp = runner.experiment(); exp != nullptr) {
        extra["monitors"] = exp->monitors_snapshot();
        tel::Json snap = exp->telemetry().metrics().snapshot();
        for (const auto& [name, value] : snap["counters"].entries()) {
          report.add_counter(name, value.as_int());
        }
      }
      report.add_point("wait_converged_s",
                       fw::summarize(result.convergence_seconds),
                       result.convergence_seconds, std::move(extra));
      report.set_footer(1, 1, wall, wall);
      if (!report.write_file(json_path)) {
        std::cerr << "failed to write " << json_path << "\n";
        return 1;
      }
      std::printf("# json: %s\n", json_path.c_str());
    }
    if (!result.ok) {
      std::cerr << "FAILED: " << result.error << "\n";
      return 1;
    }
    return 0;
  }

  // lint: wall-clock-ok(wall/serial-equivalent/speedup footer of --trials
  // runs; excluded from the jobs=1-vs-4 determinism diff)
  using Clock = std::chrono::steady_clock;
  if (jobs == 0) jobs = bgpsdn::framework::default_jobs();
  std::vector<bgpsdn::framework::ScenarioResult> results(trials);
  std::vector<double> trial_seconds(trials, 0.0);
  // Per-trial counter snapshots, index-addressed and summed in trial order
  // afterwards — deterministic at any job count.
  std::vector<std::map<std::string, std::int64_t>> trial_counters(
      json_path.empty() ? 0 : trials);
  const auto t0 = Clock::now();
  bgpsdn::framework::parallel_for_index(trials, jobs, [&](std::size_t i) {
    const auto s0 = Clock::now();
    bgpsdn::framework::ScenarioRunner runner;
    runner.override_seed(base_seed + i);
    if (have_faults) runner.set_fault_plan(fault_plan);
    results[i] = runner.run(script);
    if (!json_path.empty()) {
      if (auto* exp = runner.experiment(); exp != nullptr) {
        bgpsdn::telemetry::Json snap = exp->telemetry().metrics().snapshot();
        for (const auto& [name, value] : snap["counters"].entries()) {
          trial_counters[i][name] += value.as_int();
        }
      }
    }
    trial_seconds[i] = std::chrono::duration<double>(Clock::now() - s0).count();
  });
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  bool all_ok = true;
  std::vector<double> final_conv;
  for (std::size_t i = 0; i < trials; ++i) {
    if (!results[i].ok) {
      all_ok = false;
      std::cerr << "FAILED (seed " << base_seed + i
                << "): " << results[i].error << "\n";
    } else if (!results[i].convergence_seconds.empty()) {
      final_conv.push_back(results[i].convergence_seconds.back());
    }
  }

  std::printf("# %zu seeded trials (seeds %llu..%llu), jobs=%zu\n", trials,
              static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(base_seed + trials - 1), jobs);
  if (!final_conv.empty()) {
    std::printf("%s\n",
                bgpsdn::framework::boxplot_header("metric").c_str());
    std::printf("%s\n",
                bgpsdn::framework::boxplot_row(
                    "wait_converged_s",
                    bgpsdn::framework::summarize(final_conv))
                    .c_str());
  }
  double serial = 0.0;
  // lint: float-order-ok(index-ordered vector, and the speedup footer is
  // wall-clock diagnostics excluded from the determinism diff)
  for (const double s : trial_seconds) serial += s;
  std::printf(
      "# wall %.2f s, serial-equivalent %.2f s, speedup %.2fx, %.2f trials/s\n",
      wall, serial, wall > 0 ? serial / wall : 0.0,
      wall > 0 ? static_cast<double>(trials) / wall : 0.0);
  if (!json_path.empty()) {
    namespace fw = bgpsdn::framework;
    namespace tel = bgpsdn::telemetry;
    fw::BenchReport report{"bgpsdn_run"};
    report.set_param("scenario", tel::Json{input});
    report.set_param("trials",
                     tel::Json{static_cast<std::int64_t>(trials)});
    report.set_param("base_seed",
                     tel::Json{static_cast<std::int64_t>(base_seed)});
    if (have_faults) report.set_param("faults", tel::Json{faults_path});
    report.add_point("wait_converged_s", fw::summarize(final_conv),
                     final_conv);
    for (const auto& per_trial : trial_counters) {
      for (const auto& [name, value] : per_trial) {
        report.add_counter(name, value);
      }
    }
    report.set_footer(static_cast<std::int64_t>(trials),
                      static_cast<std::int64_t>(jobs), wall, serial);
    if (!report.write_file(json_path)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::printf("# json: %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
