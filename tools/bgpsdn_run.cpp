// bgpsdn_run — execute a scenario script.
//
//   $ bgpsdn_run experiment.bgpsdn      # from a file
//   $ bgpsdn_run -                      # from stdin
//
// Exit code 0 when the script ran and every expectation held; 1 otherwise.
#include <fstream>
#include <iostream>

#include "framework/scenario.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <scenario-file | ->\n";
    return 1;
  }

  bgpsdn::framework::ScenarioRunner runner;
  bgpsdn::framework::ScenarioResult result;
  if (std::string_view{argv[1]} == "-") {
    result = runner.run(std::cin);
  } else {
    std::ifstream file{argv[1]};
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    result = runner.run(file);
  }

  for (const auto& line : result.output) std::cout << line << "\n";
  if (!result.ok) {
    std::cerr << "FAILED: " << result.error << "\n";
    return 1;
  }
  return 0;
}
