// bgpsdn_matrix — run a scenario matrix (.matrix file) through the trial pool.
//
//   $ bgpsdn_matrix scenarios/fig2.matrix
//   $ bgpsdn_matrix --filter event=withdrawal --trials 3 scenarios/fig2.matrix
//   $ bgpsdn_matrix --list scenarios/fig2.matrix       # print cells, run none
//
// The file declares fixed settings plus per-axis value lists (see
// src/framework/matrix.hpp for the format); the cross product of cells runs
// as seeded trials on BGPSDN_JOBS (or --jobs) workers. Rows and the --json
// document are byte-identical at any job count (only the wall-clock footer
// varies). BGPSDN_QUICK=1 caps trials at 3, matching the benches.
//
// Exit code 0 when every trial converged; 1 when any trial failed to start
// or timed out.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "framework/matrix.hpp"
#include "framework/report.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--trials N] [--seed S] [--jobs J] [--json PATH]\n"
         "       [--filter axis=value]... [--list] <matrix-file | ->\n"
         "  --trials N   override the file's trial count\n"
         "  --seed S     override the file's base seed\n"
         "  --filter     keep only cells whose axis coordinate matches;\n"
         "               repeatable, filters compose (AND)\n"
         "  --list       print the expanded cell labels and exit\n"
         "  --json PATH  write a bgpsdn.bench/1 document with per-cell\n"
         "               boxplot stats, coordinates and telemetry counters\n"
         "BGPSDN_QUICK=1 caps trials at 3 for smoke runs.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::size_t> trials_override;
  std::optional<std::uint64_t> seed_override;
  std::size_t jobs = 0;  // 0 = BGPSDN_JOBS / hardware_concurrency
  std::string json_path;
  std::vector<std::pair<std::string, std::string>> filters;
  bool list_only = false;
  std::string input;
  bool have_input = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    const auto number_arg = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      try {
        std::size_t used = 0;
        const std::string value{argv[++i]};
        const long long parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument{value};
        return parsed;
      } catch (const std::exception&) {
        std::cerr << flag << " needs a number, got '" << argv[i] << "'\n";
        std::exit(2);
      }
    };
    if (arg == "--trials") {
      const auto v = number_arg("--trials");
      if (v < 1) {
        std::cerr << "--trials must be >= 1\n";
        return 2;
      }
      trials_override = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      seed_override = static_cast<std::uint64_t>(number_arg("--seed"));
    } else if (arg == "--jobs") {
      const auto v = number_arg("--jobs");
      if (v < 1) {
        std::cerr << "--jobs must be >= 1\n";
        return 2;
      }
      jobs = static_cast<std::size_t>(v);
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--filter") {
      if (i + 1 >= argc) {
        std::cerr << "--filter needs axis=value\n";
        return 2;
      }
      const std::string value{argv[++i]};
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        std::cerr << "--filter wants axis=value, got '" << value << "'\n";
        return 2;
      }
      filters.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!have_input) {
      input = arg;
      have_input = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_input) {
    usage(argv[0]);
    return 2;
  }

  std::string text;
  if (input == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream file{input};
    if (!file) {
      std::cerr << "cannot open " << input << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }

  namespace fw = bgpsdn::framework;
  fw::MatrixSpec matrix;
  std::vector<fw::MatrixCell> cells;
  try {
    matrix = fw::MatrixSpec::parse(text);
    if (trials_override) matrix.trials = *trials_override;
    if (seed_override) matrix.base_seed = *seed_override;
    const char* quick = std::getenv("BGPSDN_QUICK");
    if (quick != nullptr && quick[0] == '1' && matrix.trials > 3) {
      matrix.trials = 3;
    }
    cells = matrix.expand();
    for (const auto& [axis, value] : filters) {
      cells = matrix.filter(std::move(cells), axis, value);
    }
  } catch (const std::exception& e) {
    std::cerr << input << ": " << e.what() << "\n";
    return 2;
  }

  if (list_only) {
    for (const auto& cell : cells) std::printf("%s\n", cell.label.c_str());
    return 0;
  }

  // lint: wall-clock-ok(wall/serial-equivalent/speedup footer only; trial
  // measurements run on virtual time and the determinism diff excludes the
  // footer)
  if (jobs == 0) jobs = fw::default_jobs();
  std::printf("# matrix %s: %zu cells x %zu trials (seeds %llu..%llu)\n",
              matrix.name.c_str(), cells.size(), matrix.trials,
              static_cast<unsigned long long>(matrix.base_seed),
              static_cast<unsigned long long>(matrix.base_seed +
                                              matrix.trials - 1));
  std::printf("%s\ttrial_s\ttrials_per_s\n",
              fw::boxplot_header("cell").c_str());

  // Per-task counter snapshots land in index-addressed slots and are summed
  // in task order after the sweep — deterministic at any job count.
  std::vector<std::map<std::string, std::int64_t>> task_counters(
      json_path.empty() ? 0 : cells.size() * matrix.trials);
  fw::ParamSweepRunner runner{matrix.trials, matrix.base_seed, jobs};
  const auto sweep =
      runner.run(cells.size(), [&](std::size_t cell, std::uint64_t seed) {
        auto* counters =
            json_path.empty()
                ? nullptr
                : &task_counters[cell * matrix.trials +
                                 static_cast<std::size_t>(seed -
                                                          matrix.base_seed)];
        return cells[cell].spec.run_trial(seed, counters);
      });

  bool all_ok = true;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& row = sweep.points[c];
    for (const double v : row.values) all_ok &= v >= 0.0;
    std::printf("%s\t%.2f\t%.2f\n",
                fw::boxplot_row(cells[c].label, row.summary).c_str(),
                row.trial_seconds, row.trials_per_second());
  }
  std::printf(
      "# sweep: %zu trials, jobs=%zu, wall %.2f s, serial-equivalent %.2f s, "
      "speedup %.2fx, %.2f trials/s\n",
      sweep.trials, sweep.jobs, sweep.wall_seconds, sweep.trial_seconds,
      sweep.speedup(), sweep.trials_per_second());

  if (!json_path.empty()) {
    namespace tel = bgpsdn::telemetry;
    fw::BenchReport report{"bgpsdn_matrix"};
    report.set_param("matrix", tel::Json{matrix.name});
    report.set_param("file", tel::Json{input});
    report.set_param("trials",
                     tel::Json{static_cast<std::int64_t>(matrix.trials)});
    report.set_param("base_seed",
                     tel::Json{static_cast<std::int64_t>(matrix.base_seed)});
    tel::Json axes = tel::Json::object();
    for (const auto& axis : matrix.axes) {
      tel::Json values = tel::Json::array();
      for (const auto& v : axis.values) values.push_back(tel::Json{v});
      axes[axis.name] = std::move(values);
    }
    report.set_param("axes", std::move(axes));
    if (!filters.empty()) {
      tel::Json applied = tel::Json::array();
      for (const auto& [axis, value] : filters) {
        applied.push_back(tel::Json{axis + "=" + value});
      }
      report.set_param("filters", std::move(applied));
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      tel::Json extra = tel::Json::object();
      tel::Json coords = tel::Json::object();
      for (const auto& [axis, value] : cells[c].coords) {
        coords[axis] = tel::Json{value};
      }
      extra["coords"] = std::move(coords);
      report.add_point(cells[c].label, sweep.points[c].summary,
                       sweep.points[c].values, std::move(extra));
    }
    for (const auto& per_task : task_counters) {
      for (const auto& [name, value] : per_task) {
        report.add_counter(name, value);
      }
    }
    report.set_footer(static_cast<std::int64_t>(sweep.trials),
                      static_cast<std::int64_t>(sweep.jobs),
                      sweep.wall_seconds, sweep.trial_seconds);
    if (!report.write_file(json_path)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::printf("# json: %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
