#include "speaker/cluster_speaker.hpp"

#include "bgp/router.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::speaker {

PeeringId ClusterBgpSpeaker::add_peering(core::PortId relay_port, Peering peering) {
  const auto id = static_cast<PeeringId>(slots_.size());
  peering.id = id;

  bgp::SessionConfig sc;
  sc.id = allocate_session_id();  // net::Node: network-scoped allocation
  sc.local_as = peering.cluster_as;
  // Identify as the cluster AS's router (its interface address works as a
  // unique, stable BGP id).
  sc.local_id = peering.local_address;
  sc.local_address = peering.local_address;
  sc.remote_address = peering.remote_address;
  sc.expected_peer_as = peering.expected_peer_as;
  sc.timers = timers_;

  auto slot = std::make_unique<Slot>();
  slot->info = peering;
  slot->rib_out = bgp::AdjRibOut(rib_layout_, attr_registry_);
  slot->relay_port = relay_port;
  slot->session = std::make_unique<bgp::Session>(*this, sc);
  Slot* raw = slot.get();
  slots_.push_back(std::move(slot));
  by_port_[relay_port.value()] = raw;
  by_session_[sc.id.value()] = raw;
  if (started_) raw->session->start();
  return id;
}

void ClusterBgpSpeaker::announce(PeeringId id, const net::Prefix& prefix,
                                 const bgp::PathAttributes& attrs) {
  if (crashed_) return;
  Slot& slot = *slots_.at(id);
  if (!slot.session->established()) return;
  if (!slot.rib_out.advertise(prefix, bgp::AttrSetRef::intern(attrs))) {
    return;  // duplicate
  }
  bgp::UpdateMessage m;
  m.attributes = attrs;
  m.nlri.push_back(prefix);
  ++counters_.announces_tx;
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_announce",
               "peering " + std::to_string(id) + " " + m.to_string());
  if (auto* tel = telemetry()) {
    tel->metrics().counter("speaker.announces_tx").inc();
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "speaker",
                                                "announce", session_log_name());
      span.arg("peering", static_cast<std::int64_t>(id))
          .arg("prefix", prefix.to_string());
      tel->emit(span);
    }
  }
  slot.session->send_update(m);
}

void ClusterBgpSpeaker::withdraw(PeeringId id, const net::Prefix& prefix) {
  if (crashed_) return;
  Slot& slot = *slots_.at(id);
  if (!slot.session->established()) return;
  if (!slot.rib_out.withdraw(prefix)) return;  // never advertised
  bgp::UpdateMessage m;
  m.withdrawn.push_back(prefix);
  ++counters_.withdraws_tx;
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_withdraw",
               "peering " + std::to_string(id) + " " + prefix.to_string());
  if (auto* tel = telemetry()) {
    tel->metrics().counter("speaker.withdraws_tx").inc();
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "speaker",
                                                "withdraw", session_log_name());
      span.arg("peering", static_cast<std::int64_t>(id))
          .arg("prefix", prefix.to_string());
      tel->emit(span);
    }
  }
  slot.session->send_update(m);
}

void ClusterBgpSpeaker::reset_peering(PeeringId id, const std::string& reason) {
  if (crashed_) return;
  Slot& slot = *slots_.at(id);
  ++counters_.resets;
  slot.session->stop(reason, /*auto_restart=*/true);
}

void ClusterBgpSpeaker::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++counters_.crashes;
  logger().log(loop().now(), core::LogLevel::kWarn, session_log_name(), "crash",
               "speaker process down, " + std::to_string(slots_.size()) +
                   " sessions lost");
  if (auto* tel = telemetry()) tel->metrics().counter("speaker.crashes").inc();
  for (auto& slot : slots_) {
    // Process death sends nothing; external peers discover the outage when
    // their hold timers expire and then retry on their own. session_down()
    // fires here so the listener withdraws state immediately.
    slot->session->stop("speaker crashed");
    slot->rib_in.clear();
    slot->rib_out.clear();
  }
}

void ClusterBgpSpeaker::restart() {
  if (!crashed_) return;
  crashed_ = false;
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "restart", "speaker process up, reconnecting sessions");
  for (auto& slot : slots_) slot->session->start();
}

void ClusterBgpSpeaker::replay_to(SpeakerListener& listener) const {
  if (crashed_) return;
  for (const auto& slot : slots_) {
    if (!slot->session->established()) continue;
    listener.on_peer_established(slot->info);
    for (const auto& [prefix, attrs] : slot->rib_in) {
      bgp::UpdateMessage update;
      update.attributes = *attrs;
      update.nlri.push_back(prefix);
      listener.on_route_update(slot->info, update);
    }
  }
}

void ClusterBgpSpeaker::send_relay_control(PeeringId id,
                                           const sdn::OfMessage& message) {
  if (crashed_) return;
  Slot& slot = *slots_.at(id);
  net::Packet pkt;
  pkt.proto = net::Protocol::kOfControl;
  pkt.payload = sdn::encode(message);
  send(slot.relay_port, std::move(pkt));
}

const Peering* ClusterBgpSpeaker::peering(PeeringId id) const {
  return id < slots_.size() ? &slots_[id]->info : nullptr;
}

std::vector<const Peering*> ClusterBgpSpeaker::peerings() const {
  std::vector<const Peering*> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) out.push_back(&s->info);
  return out;
}

bool ClusterBgpSpeaker::peering_established(PeeringId id) const {
  return id < slots_.size() && slots_[id]->session->established();
}

void ClusterBgpSpeaker::start() {
  started_ = true;
  if (crashed_) return;
  for (auto& slot : slots_) slot->session->start();
}

void ClusterBgpSpeaker::handle_packet(core::PortId ingress,
                                      const net::Packet& packet) {
  if (crashed_) return;  // a dead process reads no sockets
  if (packet.proto != net::Protocol::kBgp) return;
  const auto it = by_port_.find(ingress.value());
  if (it != by_port_.end()) it->second->session->receive(packet.payload);
}

void ClusterBgpSpeaker::on_link_state(core::PortId port, bool up) {
  if (crashed_) return;
  // A relay link (speaker<->switch) changed; treat like a session link.
  const auto it = by_port_.find(port.value());
  if (it == by_port_.end()) return;
  if (up) {
    it->second->session->start();
  } else {
    it->second->session->stop("relay link down");
  }
}

ClusterBgpSpeaker::Slot* ClusterBgpSpeaker::slot_of(const bgp::Session& session) {
  const auto it = by_session_.find(session.id().value());
  return it == by_session_.end() ? nullptr : it->second;
}

void ClusterBgpSpeaker::session_transmit(bgp::Session& session,
                                         net::Bytes wire) {
  if (crashed_) return;
  Slot* slot = slot_of(session);
  if (slot == nullptr) return;
  net::Packet pkt;
  pkt.src = slot->info.local_address;
  pkt.dst = slot->info.remote_address;
  pkt.proto = net::Protocol::kBgp;
  pkt.payload = std::move(wire);
  send(slot->relay_port, std::move(pkt));
}

void ClusterBgpSpeaker::session_established(bgp::Session& session) {
  Slot* slot = slot_of(session);
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_up",
               slot->info.cluster_as.to_string() + " <-> peer " +
                   session.peer_as().to_string());
  if (listener_ != nullptr) listener_->on_peer_established(slot->info);
}

void ClusterBgpSpeaker::session_down(bgp::Session& session,
                                     const std::string& reason) {
  Slot* slot = slot_of(session);
  slot->rib_out.clear();
  slot->rib_in.clear();
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_down",
               slot->info.cluster_as.to_string() + " <-> peer " +
                   session.peer_as().to_string() + ": " + reason);
  if (listener_ != nullptr) listener_->on_peer_down(slot->info, reason);
}

void ClusterBgpSpeaker::session_update(bgp::Session& session,
                                       const bgp::UpdateMessage& update) {
  Slot* slot = slot_of(session);
  ++counters_.updates_rx;
  for (const auto& prefix : update.withdrawn) slot->rib_in.erase(prefix);
  if (!update.nlri.empty()) {
    const auto attrs = bgp::AttrSetRef::intern(update.attributes);
    for (const auto& prefix : update.nlri) slot->rib_in[prefix] = attrs;
  }
  if (auto* tel = telemetry()) tel->metrics().counter("speaker.updates_rx").inc();
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_rx",
               "peering " + std::to_string(slot->info.id) + " " +
                   update.to_string());
  if (listener_ != nullptr) listener_->on_route_update(slot->info, update);
}

core::EventLoop& ClusterBgpSpeaker::session_loop() { return loop(); }
core::Rng& ClusterBgpSpeaker::session_rng() { return rng(); }
core::Logger& ClusterBgpSpeaker::session_logger() { return logger(); }
std::string ClusterBgpSpeaker::session_log_name() const {
  return "speaker." + name();
}

}  // namespace bgpsdn::speaker
