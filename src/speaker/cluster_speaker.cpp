#include "speaker/cluster_speaker.hpp"

#include "bgp/router.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::speaker {

PeeringId ClusterBgpSpeaker::add_peering(core::PortId relay_port, Peering peering) {
  const auto id = static_cast<PeeringId>(slots_.size());
  peering.id = id;

  bgp::SessionConfig sc;
  sc.id = allocate_session_id();  // net::Node: network-scoped allocation
  sc.local_as = peering.cluster_as;
  // Identify as the cluster AS's router (its interface address works as a
  // unique, stable BGP id).
  sc.local_id = peering.local_address;
  sc.local_address = peering.local_address;
  sc.remote_address = peering.remote_address;
  sc.expected_peer_as = peering.expected_peer_as;
  sc.timers = timers_;

  auto slot = std::make_unique<Slot>();
  slot->info = peering;
  slot->relay_port = relay_port;
  slot->session = std::make_unique<bgp::Session>(*this, sc);
  Slot* raw = slot.get();
  slots_.push_back(std::move(slot));
  by_port_[relay_port.value()] = raw;
  by_session_[sc.id.value()] = raw;
  if (started_) raw->session->start();
  return id;
}

void ClusterBgpSpeaker::announce(PeeringId id, const net::Prefix& prefix,
                                 const bgp::PathAttributes& attrs) {
  Slot& slot = *slots_.at(id);
  if (!slot.session->established()) return;
  if (!slot.rib_out.advertise(prefix, attrs)) return;  // duplicate
  bgp::UpdateMessage m;
  m.attributes = attrs;
  m.nlri.push_back(prefix);
  ++counters_.announces_tx;
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_announce",
               "peering " + std::to_string(id) + " " + m.to_string());
  if (auto* tel = telemetry()) {
    tel->metrics().counter("speaker.announces_tx").inc();
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "speaker",
                                                "announce", session_log_name());
      span.arg("peering", static_cast<std::int64_t>(id))
          .arg("prefix", prefix.to_string());
      tel->emit(span);
    }
  }
  slot.session->send_update(m);
}

void ClusterBgpSpeaker::withdraw(PeeringId id, const net::Prefix& prefix) {
  Slot& slot = *slots_.at(id);
  if (!slot.session->established()) return;
  if (!slot.rib_out.withdraw(prefix)) return;  // never advertised
  bgp::UpdateMessage m;
  m.withdrawn.push_back(prefix);
  ++counters_.withdraws_tx;
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_withdraw",
               "peering " + std::to_string(id) + " " + prefix.to_string());
  if (auto* tel = telemetry()) {
    tel->metrics().counter("speaker.withdraws_tx").inc();
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "speaker",
                                                "withdraw", session_log_name());
      span.arg("peering", static_cast<std::int64_t>(id))
          .arg("prefix", prefix.to_string());
      tel->emit(span);
    }
  }
  slot.session->send_update(m);
}

void ClusterBgpSpeaker::reset_peering(PeeringId id, const std::string& reason) {
  Slot& slot = *slots_.at(id);
  ++counters_.resets;
  slot.session->stop(reason, /*auto_restart=*/true);
}

const Peering* ClusterBgpSpeaker::peering(PeeringId id) const {
  return id < slots_.size() ? &slots_[id]->info : nullptr;
}

std::vector<const Peering*> ClusterBgpSpeaker::peerings() const {
  std::vector<const Peering*> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) out.push_back(&s->info);
  return out;
}

bool ClusterBgpSpeaker::peering_established(PeeringId id) const {
  return id < slots_.size() && slots_[id]->session->established();
}

void ClusterBgpSpeaker::start() {
  started_ = true;
  for (auto& slot : slots_) slot->session->start();
}

void ClusterBgpSpeaker::handle_packet(core::PortId ingress,
                                      const net::Packet& packet) {
  if (packet.proto != net::Protocol::kBgp) return;
  const auto it = by_port_.find(ingress.value());
  if (it != by_port_.end()) it->second->session->receive(packet.payload);
}

void ClusterBgpSpeaker::on_link_state(core::PortId port, bool up) {
  // A relay link (speaker<->switch) changed; treat like a session link.
  const auto it = by_port_.find(port.value());
  if (it == by_port_.end()) return;
  if (up) {
    it->second->session->start();
  } else {
    it->second->session->stop("relay link down");
  }
}

ClusterBgpSpeaker::Slot* ClusterBgpSpeaker::slot_of(const bgp::Session& session) {
  const auto it = by_session_.find(session.id().value());
  return it == by_session_.end() ? nullptr : it->second;
}

void ClusterBgpSpeaker::session_transmit(bgp::Session& session,
                                         std::vector<std::byte> wire) {
  Slot* slot = slot_of(session);
  if (slot == nullptr) return;
  net::Packet pkt;
  pkt.src = slot->info.local_address;
  pkt.dst = slot->info.remote_address;
  pkt.proto = net::Protocol::kBgp;
  pkt.payload = std::move(wire);
  send(slot->relay_port, std::move(pkt));
}

void ClusterBgpSpeaker::session_established(bgp::Session& session) {
  Slot* slot = slot_of(session);
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_up",
               slot->info.cluster_as.to_string() + " <-> peer " +
                   session.peer_as().to_string());
  if (listener_ != nullptr) listener_->on_peer_established(slot->info);
}

void ClusterBgpSpeaker::session_down(bgp::Session& session,
                                     const std::string& reason) {
  Slot* slot = slot_of(session);
  slot->rib_out.clear();
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_down",
               slot->info.cluster_as.to_string() + " <-> peer " +
                   session.peer_as().to_string() + ": " + reason);
  if (listener_ != nullptr) listener_->on_peer_down(slot->info, reason);
}

void ClusterBgpSpeaker::session_update(bgp::Session& session,
                                       const bgp::UpdateMessage& update) {
  Slot* slot = slot_of(session);
  ++counters_.updates_rx;
  if (auto* tel = telemetry()) tel->metrics().counter("speaker.updates_rx").inc();
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "speaker_rx",
               "peering " + std::to_string(slot->info.id) + " " +
                   update.to_string());
  if (listener_ != nullptr) listener_->on_route_update(slot->info, update);
}

core::EventLoop& ClusterBgpSpeaker::session_loop() { return loop(); }
core::Rng& ClusterBgpSpeaker::session_rng() { return rng(); }
core::Logger& ClusterBgpSpeaker::session_logger() { return logger(); }
std::string ClusterBgpSpeaker::session_log_name() const {
  return "speaker." + name();
}

}  // namespace bgpsdn::speaker
