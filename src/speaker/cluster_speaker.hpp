// ClusterBgpSpeaker — the cluster's BGP face to the legacy world
// (the ExaBGP substitute).
//
// "Within the SDN cluster we have a special BGP speaker ... which relays
// routing information between external BGP routers and the SDN controller.
// For every BGP peering there is a link from the cluster BGP speaker to the
// border SDN switch, so as to relay control plane information over the
// switches."
//
// Each external peering of a cluster AS terminates here: the speaker runs
// one Session per peering with local AS = the owning cluster AS (the
// cluster is transparent; member ASes keep their identity). BGP packets
// travel external-router -> border switch -> relay link -> speaker, via
// pre-installed relay flow rules. Routes go up to the controller through
// SpeakerListener (the in-process stand-in for ExaBGP's JSON API pipe);
// the controller composes announcements and sends them back down through
// announce()/withdraw().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/session.hpp"
#include "net/node.hpp"
#include "sdn/openflow.hpp"

namespace bgpsdn::speaker {

/// Identifies one external peering relayed through the speaker.
using PeeringId = std::uint32_t;

struct Peering {
  PeeringId id{0};
  /// The cluster AS on whose behalf this session speaks.
  core::AsNumber cluster_as;
  /// Border switch and its external-facing port for this peering.
  sdn::Dpid border_dpid{0};
  core::PortId switch_external_port;
  /// Addresses on the original AS-AS link (cluster side / external side).
  net::Ipv4Addr local_address;
  net::Ipv4Addr remote_address;
  core::AsNumber expected_peer_as{0};
};

/// Controller-side interface (the ExaBGP-API analogue).
class SpeakerListener {
 public:
  virtual ~SpeakerListener() = default;
  virtual void on_peer_established(const Peering& peering) = 0;
  virtual void on_peer_down(const Peering& peering, const std::string& reason) = 0;
  virtual void on_route_update(const Peering& peering,
                               const bgp::UpdateMessage& update) = 0;
};

struct SpeakerCounters {
  std::uint64_t updates_rx{0};
  std::uint64_t announces_tx{0};
  std::uint64_t withdraws_tx{0};
  std::uint64_t resets{0};
  std::uint64_t crashes{0};
};

class ClusterBgpSpeaker : public net::Node, public bgp::SessionHost {
 public:
  explicit ClusterBgpSpeaker(bgp::Timers timers = {},
                             bgp::RibLayout rib_layout = bgp::RibLayout::kCompact,
                             bgp::AttrRegistryRef attr_registry = nullptr)
      : timers_{timers},
        rib_layout_{rib_layout},
        attr_registry_{std::move(attr_registry)} {}

  void set_listener(SpeakerListener* listener) { listener_ = listener; }

  /// Register a relayed peering bound to the speaker's local `relay_port`
  /// (the port of the speaker<->border-switch link). Returns the peering id.
  PeeringId add_peering(core::PortId relay_port, Peering peering);

  /// Controller API: advertise / withdraw a prefix on one peering.
  /// Duplicate announcements (same attributes) are suppressed.
  void announce(PeeringId id, const net::Prefix& prefix,
                const bgp::PathAttributes& attrs);
  void withdraw(PeeringId id, const net::Prefix& prefix);

  /// Controller API: hard-reset a session (e.g. after a border-port-down
  /// PortStatus). The session restarts automatically.
  void reset_peering(PeeringId id, const std::string& reason);

  /// Emulate speaker process death: every session drops silently (no
  /// NOTIFICATION — peers discover via hold-timer expiry) and both
  /// per-peering RIBs are lost. While crashed, the speaker reads no
  /// packets and sends nothing.
  void crash();
  /// Restart after crash(): sessions reconnect; peers re-send their full
  /// tables on re-establishment, which repopulates the Adj-RIBs-In.
  void restart();
  bool crashed() const { return crashed_; }

  /// Re-deliver current state to a (new) listener: on_peer_established for
  /// every live peering, then one synthetic update per retained
  /// Adj-RIB-In route. This is how a restarted controller — or the
  /// degraded-mode fallback engine — resyncs without waiting for the
  /// external world to re-announce.
  void replay_to(SpeakerListener& listener) const;

  /// Degraded-mode control path: ship an OpenFlow message to a peering's
  /// border switch over its relay link (the switch accepts it while
  /// standalone). Used by the fallback engine when the controller is down.
  void send_relay_control(PeeringId id, const sdn::OfMessage& message);

  const Peering* peering(PeeringId id) const;
  std::vector<const Peering*> peerings() const;
  bool peering_established(PeeringId id) const;
  const SpeakerCounters& counters() const { return counters_; }

  /// Report deterministic footprints (core/mem_stats.hpp model): Adj-RIB-Out
  /// peaks into rib_out, the per-peering relay Adj-RIBs-In into speaker_ribs.
  void account_memory(core::MemStats& stats) const {
    for (const auto& slot : slots_) {
      stats.rib_out += slot->rib_out.peak_bytes();
      stats.speaker_ribs +=
          slot->rib_in.size() *
          core::rb_node_bytes(
              sizeof(std::pair<const net::Prefix, bgp::AttrSetRef>));
    }
  }

  // Node
  void start() override;
  void handle_packet(core::PortId ingress, const net::Packet& packet) override;
  void on_link_state(core::PortId port, bool up) override;

  // SessionHost
  void session_transmit(bgp::Session& session, net::Bytes wire) override;
  void session_established(bgp::Session& session) override;
  void session_down(bgp::Session& session, const std::string& reason) override;
  void session_update(bgp::Session& session, const bgp::UpdateMessage& update) override;
  core::EventLoop& session_loop() override;
  core::Rng& session_rng() override;
  core::Logger& session_logger() override;
  std::string session_log_name() const override;
  telemetry::Telemetry* session_telemetry() override { return telemetry(); }

 private:
  struct Slot {
    Peering info;
    core::PortId relay_port;
    std::unique_ptr<bgp::Session> session;
    bgp::AdjRibOut rib_out;
    /// Routes as received on this peering (the speaker-side Adj-RIB-In),
    /// kept for replay_to(): the degraded-mode engine and a restarted
    /// controller resync from here. Cleared when the session drops.
    /// Interned handles: every slot storing the same bundle shares it.
    std::map<net::Prefix, bgp::AttrSetRef> rib_in;
  };

  Slot* slot_of(const bgp::Session& session);

  bgp::Timers timers_;
  bgp::RibLayout rib_layout_{bgp::RibLayout::kCompact};
  /// Shared attr-handle registry for the per-peering Adj-RIBs-Out (null =
  /// each slot's store creates a private one).
  bgp::AttrRegistryRef attr_registry_{};
  SpeakerListener* listener_{nullptr};
  bool started_{false};
  bool crashed_{false};
  std::vector<std::unique_ptr<Slot>> slots_;        // index = PeeringId
  std::unordered_map<std::uint32_t, Slot*> by_port_;     // relay port -> slot
  std::unordered_map<std::uint32_t, Slot*> by_session_;  // session id -> slot
  SpeakerCounters counters_;
};

}  // namespace bgpsdn::speaker
