// Experiment — the high-level orchestration API.
//
// The C++ counterpart of the paper's Python experiment scripts and
// "additional Mininet-BGP commands": hand it a TopologySpec and the set of
// ASes that join the SDN cluster, and it builds the whole hybrid network —
// BGP routers for legacy ASes, switches + controller + cluster BGP speaker
// (with relay links and relay flow rules) for members, a route collector
// peering with every legacy router — assigns all addresses, and exposes
// announce / withdraw / fail-link / wait-until-converged commands.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/collector.hpp"
#include "bgp/router.hpp"
#include "controller/fallback.hpp"
#include "controller/idr_controller.hpp"
#include "controller/replica_set.hpp"
#include "controller/routeflow.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "framework/convergence.hpp"
#include "framework/monitor_base.hpp"
#include "net/address_allocator.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sdn/switch.hpp"
#include "speaker/cluster_speaker.hpp"
#include "topology/spec.hpp"

namespace bgpsdn::framework {

/// Which cluster routing application drives the SDN members.
enum class ControllerStyle {
  kIdrCentralized,   // the paper's IDR controller (default)
  kRouteFlowMirror,  // the related-work baseline: mirrored legacy BGP
};

struct ExperimentConfig {
  std::uint64_t seed{1};
  /// BGP timer profile for every legacy router (paper-faithful defaults:
  /// Quagga eBGP MRAI 30 s etc. — see bgp::Timers).
  bgp::Timers timers{};
  bgp::ProcessingModel processing{};
  /// Route-flap damping on every legacy router (off by default, as in
  /// Quagga).
  bgp::DampingConfig damping{};
  /// Default link parameters where the spec does not override delay.
  net::LinkParams default_link{core::Duration::millis(5), 0, 0.0};
  /// Controller batching window (the paper's delayed recomputation).
  core::Duration recompute_delay{core::Duration::seconds(2)};
  /// Controller's sub-cluster legacy bridging (off = naive loop pruning).
  bool subcluster_bridging{true};
  /// IDR controller recomputation engine: true maintains per-prefix
  /// shortest-path trees under edge deltas, false re-runs the reference
  /// from-scratch Dijkstra each pass. Decisions are byte-identical either
  /// way; the knob exists for the equivalence suite and the cost ablation.
  bool incremental_spt{true};
  /// Cluster controller implementation.
  ControllerStyle controller_style{ControllerStyle::kIdrCentralized};
  /// RouteFlow mirror: RIB->flows poll period.
  core::Duration routeflow_sync{core::Duration::millis(500)};
  /// Controller replication factor. 1 (default) keeps the paper's single
  /// controller; >= 2 models hot-standby replicas with leader election and
  /// epoch-fenced failover (requires the IDR controller style). Only when
  /// all replicas are down does the cluster degrade to FallbackRouting.
  std::size_t controller_replicas{1};
  /// HA channel/election timers (replicas and seed fields are overridden
  /// from controller_replicas and the experiment seed).
  controller::ReplicaSetConfig ha{};
  /// RIB storage layout for every BGP router and the cluster speaker
  /// (kReference keeps the node-based containers for the equivalence suite
  /// and the bench_scale memory comparison; behaviour is byte-identical).
  bgp::RibLayout rib_layout{bgp::RibLayout::kCompact};
  /// Whether to attach the monitoring route collector to legacy routers.
  bool with_collector{true};
  /// Log level kept by the in-memory logger (kDebug needed for detectors).
  core::LogLevel log_level{core::LogLevel::kDebug};
  /// Retain log records in memory (off for long sweeps).
  bool retain_logs{false};
};

class Experiment {
 public:
  /// `sdn_members` selects which spec ASes join the cluster (must exist in
  /// the spec). Throws std::invalid_argument on inconsistent input.
  Experiment(const topology::TopologySpec& spec,
             std::set<core::AsNumber> sdn_members, ExperimentConfig config = {});

  // --- lifecycle ---------------------------------------------------------

  /// Attach a host to an AS (must be called before start()). The AS's /16
  /// prefix is originated automatically and delivered to the host.
  net::Host& add_host(core::AsNumber as);

  /// Start all nodes and run until every BGP session (including relayed
  /// cluster peerings and the collector's) is established plus initial
  /// routes settle. Returns false if sessions fail to establish in
  /// `timeout` virtual time.
  bool start(core::Duration timeout = core::Duration::seconds(120));

  // --- commands (the "Mininet-BGP commands") ------------------------------

  /// Originate / withdraw a prefix at an AS (router or cluster member).
  void announce_prefix(core::AsNumber as, const net::Prefix& prefix);
  void withdraw_prefix(core::AsNumber as, const net::Prefix& prefix);

  void fail_link(core::AsNumber a, core::AsNumber b);
  void restore_link(core::AsNumber a, core::AsNumber b);

  // --- fault commands ------------------------------------------------------

  /// Crash the cluster controller process: switch channels and application
  /// state are lost, every control link goes down (switches flush their
  /// data rules and enter standalone mode), and the cluster degrades to
  /// distributed BGP — the FallbackRouting engine takes over the speaker,
  /// reseeded from its retained Adj-RIBs-In and the recorded member
  /// originations. Requires the IDR controller style.
  void crash_controller();

  /// Restart a crashed controller: the fallback stands down, control links
  /// heal (switches flush degraded-mode rules and re-handshake), and the
  /// controller resyncs — replayed member originations plus the speaker's
  /// Adj-RIBs-In reproduce the Loc-RIBs of a never-crashed run.
  void restart_controller();

  /// Crash / restart the cluster BGP speaker process. Crash drops every
  /// external session silently (peers discover via hold-timer expiry);
  /// restart reconnects and peers re-send their tables.
  /// Replica-targeted faults (controller HA). A negative replica id means
  /// the whole controller (all replicas). With controller_replicas == 1,
  /// replica 0 aliases the whole controller; other ids are rejected.
  void crash_controller_replica(int replica);
  void restart_controller_replica(int replica);
  /// Partition / heal a replica's replication links (requires HA).
  void partition_replication(int replica);
  void heal_replication(int replica);

  void crash_speaker();
  void restart_speaker();

  bool controller_crashed() const { return controller_crashed_; }
  bool speaker_crashed() const {
    return speaker_ != nullptr && speaker_->crashed();
  }
  /// The degraded-mode engine; created lazily on the first controller
  /// crash, nullptr before that.
  controller::FallbackRouting* fallback() { return fallback_.get(); }

  /// The controller replica set; nullptr unless controller_replicas >= 2.
  controller::ControllerReplicaSet* replica_set() { return replica_set_.get(); }
  const controller::ControllerReplicaSet* replica_set() const {
    return replica_set_.get();
  }

  /// The link between two ASes (member or legacy); throws
  /// std::invalid_argument when no such link exists. For targeted
  /// degradation via network().set_link_loss/set_link_corruption.
  core::LinkId link_between(core::AsNumber a, core::AsNumber b) const;

  /// Grow the topology while running ("dynamically changing the topology"):
  /// wire a new peering between two *legacy* ASes; sessions start
  /// immediately. Throws std::invalid_argument for members (adding cluster
  /// links at runtime would need new relay plumbing) or duplicates.
  void add_link(core::AsNumber a, core::AsNumber b,
                bgp::Relationship a_sees_b = bgp::Relationship::kPeer);

  /// Drive the loop until routing is quiet for `opts.quiet` (zero = default
  /// of 2x MRAI + 1 s) or `opts.timeout` passes. The result carries the
  /// convergence instant, the timeout flag, and the quiet window actually
  /// applied — no side-channel queries needed.
  ConvergenceResult wait_converged(const WaitOpts& opts = {});

  // --- monitors ------------------------------------------------------------

  /// Construct a Monitor owned by this experiment. Monitors that declare an
  /// Experiment&-first constructor get `*this` prepended to `args`; plain
  /// constructors are forwarded as-is. Returns the live instance.
  template <typename T, typename... Args>
  T& attach_monitor(Args&&... args) {
    static_assert(std::is_base_of_v<Monitor, T>,
                  "attach_monitor requires a framework::Monitor subclass");
    std::unique_ptr<T> owned;
    if constexpr (std::is_constructible_v<T, Experiment&, Args...>) {
      owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    } else {
      owned = std::make_unique<T>(std::forward<Args>(args)...);
    }
    T& ref = *owned;
    monitors_.push_back(std::move(owned));
    return ref;
  }

  /// Typed retrieval: the first attached monitor of type T, or nullptr.
  template <typename T>
  T* monitor() {
    for (const auto& m : monitors_) {
      if (auto* typed = dynamic_cast<T*>(m.get())) return typed;
    }
    return nullptr;
  }
  template <typename T>
  const T* monitor() const {
    for (const auto& m : monitors_) {
      if (const auto* typed = dynamic_cast<const T*>(m.get())) return typed;
    }
    return nullptr;
  }

  const std::vector<std::unique_ptr<Monitor>>& monitors() const {
    return monitors_;
  }

  /// One JSON object per attached monitor: [{kind, data}, ...], in
  /// attachment order (the built-in convergence detector comes first).
  telemetry::Json monitors_snapshot() const;

  /// Let virtual time pass (events run).
  void run_for(core::Duration d) { loop_.run(loop_.now() + d); }

  // --- verification helpers ----------------------------------------------

  /// True when every legacy router's Loc-RIB contains a route for `prefix`
  /// (or, with `expect_present=false`, none does). Cluster members are
  /// checked against the controller's decisions.
  bool all_know_prefix(const net::Prefix& prefix, bool expect_present = true) const;

  /// Data-plane check: trace the FIB/flow hop sequence from AS `from`
  /// towards `dst`; returns the AS sequence, empty on a blackhole or loop.
  std::vector<core::AsNumber> trace_route(core::AsNumber from,
                                          net::Ipv4Addr dst) const;

  // --- accessors -----------------------------------------------------------

  bool is_member(core::AsNumber as) const { return members_.count(as) > 0; }
  bgp::BgpRouter& router(core::AsNumber as);
  const bgp::BgpRouter& router(core::AsNumber as) const;
  sdn::SdnSwitch& member_switch(core::AsNumber as);
  /// The active cluster controller (whichever style was configured).
  controller::ClusterController* cluster_controller() { return controller_; }
  /// Typed accessors; null when the other style is active.
  controller::IdrController* idr_controller() { return idr_; }
  controller::RouteFlowController* routeflow_controller() { return routeflow_; }
  speaker::ClusterBgpSpeaker* cluster_speaker() { return speaker_; }
  bgp::RouteCollector* collector() { return collector_; }
  net::Network& network() { return net_; }
  core::EventLoop& loop() { return loop_; }
  core::Logger& logger() { return log_; }
  core::Rng& rng() { return rng_; }
  net::AddressAllocator& allocator() { return alloc_; }
  /// The network's telemetry hub (metrics always collect; attach a
  /// TelemetryMonitor to capture traces).
  telemetry::Telemetry& telemetry() { return net_.telemetry(); }
  const topology::TopologySpec& spec() const { return spec_; }
  const ExperimentConfig& config() const { return config_; }
  net::Prefix as_prefix(core::AsNumber as) { return alloc_.as_prefix(as); }
  const std::set<core::AsNumber>& members() const { return members_; }

  /// Deterministic memory snapshot (core/mem_stats.hpp): RIB peaks from
  /// every router and the speaker, at-collection footprints of the attr
  /// intern pool and the member flow tables. Byte-identical at any
  /// BGPSDN_JOBS — no OS RSS involved.
  core::MemStats memory_stats() const;

 private:
  void build();
  void degrade_to_fallback(std::uint32_t epoch);
  void recover_from_fallback(std::uint32_t epoch);
  void build_legacy_link(const topology::LinkSpec& link);
  void build_cluster_link(const topology::LinkSpec& link);
  void build_border_link(const topology::LinkSpec& link);
  void attach_collector(core::AsNumber as);
  net::LinkParams link_params(const topology::LinkSpec& link) const;

  topology::TopologySpec spec_;
  std::set<core::AsNumber> members_;
  ExperimentConfig config_;

  core::EventLoop loop_;
  core::Logger log_;
  core::Rng rng_;
  net::Network net_;
  net::AddressAllocator alloc_;

  /// Simulation-wide attr-handle registry shared by every compact RIB
  /// (created in build(), wired into each RouterConfig and the speaker).
  bgp::AttrRegistryRef attr_registry_;
  std::map<core::AsNumber, bgp::BgpRouter*> routers_;
  std::map<core::AsNumber, sdn::SdnSwitch*> switches_;
  std::map<core::AsNumber, net::Host*> hosts_;
  /// Port on each member switch that leads to the controller.
  controller::ClusterController* controller_{nullptr};
  controller::IdrController* idr_{nullptr};
  controller::RouteFlowController* routeflow_{nullptr};
  speaker::ClusterBgpSpeaker* speaker_{nullptr};
  bgp::RouteCollector* collector_{nullptr};
  /// Controller<->switch control links, in build order (failed together on
  /// a controller crash, restored on restart).
  std::vector<core::LinkId> control_links_;
  /// Member originations as declared through the experiment API — the
  /// resync source for restarts and the fallback (the controller's own
  /// origin table dies with it).
  std::map<net::Prefix, controller::FallbackRouting::Origin> member_origins_;
  std::unique_ptr<controller::FallbackRouting> fallback_;
  std::unique_ptr<controller::ControllerReplicaSet> replica_set_;
  bool controller_crashed_{false};
  /// All attached monitors, in attachment order; owns the built-in
  /// convergence detector (always monitors_[0]).
  std::vector<std::unique_ptr<Monitor>> monitors_;
  ConvergenceDetector* detector_{nullptr};
  bool started_{false};
};

}  // namespace bgpsdn::framework
