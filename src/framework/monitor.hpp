// Log-analysis tools: route-change tracking, update counting, and a text
// route-change timeline ("route change visualization").
//
// All tools attach as Logger sinks, so they work on live runs without
// re-parsing text files — the C++ equivalent of the paper's "tools for
// automatic log file analysis ... and route change visualization".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/logger.hpp"
#include "core/time.hpp"
#include "framework/monitor_base.hpp"

namespace bgpsdn::framework {

/// One best-path change observed at a router (parsed from its log record).
struct RouteChange {
  core::TimePoint when;
  std::string router;  // log component, e.g. "bgp.AS7"
  std::string detail;  // "10.0.0.0/16 via [2 1]" or bare prefix for loss
  bool lost{false};
};

class RouteChangeTracker : public Monitor {
 public:
  explicit RouteChangeTracker(core::Logger& logger);
  /// Convenience form for Experiment::attach_monitor.
  explicit RouteChangeTracker(Experiment& experiment);
  ~RouteChangeTracker() override;
  RouteChangeTracker(const RouteChangeTracker&) = delete;
  RouteChangeTracker& operator=(const RouteChangeTracker&) = delete;

  const char* kind() const override { return "route_changes"; }
  /// {total, lost, first_ns, last_ns}
  telemetry::Json snapshot() const override;

  const std::vector<RouteChange>& changes() const { return changes_; }
  std::size_t count_for(const std::string& router_prefix) const;
  void clear() { changes_.clear(); }

  /// Multi-line "time  router  change" rendering.
  std::string timeline() const;

 private:
  core::Logger& logger_;
  std::size_t sink_id_;
  std::vector<RouteChange> changes_;
};

/// Counts routing-relevant events into fixed-width time buckets — the
/// "updates per second" view of a convergence event.
class UpdateRateMonitor : public Monitor {
 public:
  UpdateRateMonitor(core::Logger& logger, core::Duration bucket_width);
  /// Convenience form for Experiment::attach_monitor.
  UpdateRateMonitor(Experiment& experiment, core::Duration bucket_width);
  ~UpdateRateMonitor() override;
  UpdateRateMonitor(const UpdateRateMonitor&) = delete;
  UpdateRateMonitor& operator=(const UpdateRateMonitor&) = delete;

  const char* kind() const override { return "update_rate"; }
  /// {total, bucket_width_ns, buckets:[[index,count]..]}
  telemetry::Json snapshot() const override;

  /// bucket index -> update_tx count.
  const std::map<std::uint64_t, std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t total() const { return total_; }
  void clear() {
    buckets_.clear();
    total_ = 0;
  }

  /// Sparkline-ish text: one "t=..s n=.." line per non-empty bucket.
  std::string to_string() const;

 private:
  core::Logger& logger_;
  std::size_t sink_id_;
  core::Duration width_;
  std::map<std::uint64_t, std::uint64_t> buckets_;
  std::uint64_t total_{0};
};

}  // namespace bgpsdn::framework
