#include "framework/experiment.hpp"

#include <stdexcept>

#include "controller/route_compiler.hpp"

namespace bgpsdn::framework {

namespace {
/// Private AS number of the monitoring collector.
constexpr std::uint32_t kCollectorAs = 64512;
/// Control and relay links are short local wires.
const net::LinkParams kControlLink{core::Duration::micros(100), 0, 0.0};
}  // namespace

Experiment::Experiment(const topology::TopologySpec& spec,
                       std::set<core::AsNumber> sdn_members,
                       ExperimentConfig config)
    : spec_{spec},
      members_{std::move(sdn_members)},
      config_{config},
      rng_{config.seed},
      net_{loop_, log_, rng_} {
  spec_.validate();
  if (config_.controller_replicas == 0 || config_.controller_replicas > 16) {
    throw std::invalid_argument{"controller_replicas must be in [1, 16]"};
  }
  for (const auto as : members_) {
    if (!spec_.has_as(as)) {
      throw std::invalid_argument{"SDN member " + as.to_string() +
                                  " not in topology"};
    }
  }
  log_.set_min_level(config_.log_level);
  log_.set_retain(config_.retain_logs);
  build();
  detector_ = &attach_monitor<ConvergenceDetector>();
}

net::LinkParams Experiment::link_params(const topology::LinkSpec& link) const {
  net::LinkParams lp = config_.default_link;
  if (link.delay) lp.delay = *link.delay;
  return lp;
}

void Experiment::build() {
  // One attr-handle registry for the whole simulation: every compact RIB of
  // every router (and the speaker) stores 4-byte indices into it, so a
  // distinct bundle pays one handle entry network-wide.
  attr_registry_ = std::make_shared<bgp::AttrRegistry>();

  // Nodes first: routers for legacy ASes, switches for members.
  for (const auto as : spec_.ases) {
    if (members_.count(as) > 0) {
      auto& sw = net_.add<sdn::SdnSwitch>(as.to_string(), as);
      switches_[as] = &sw;
    } else {
      bgp::RouterConfig rc;
      rc.asn = as;
      rc.router_id = alloc_.router_id(as);
      rc.timers = config_.timers;
      rc.processing = config_.processing;
      rc.damping = config_.damping;
      rc.rib_layout = config_.rib_layout;
      rc.attr_registry = attr_registry_;
      auto& r = net_.add<bgp::BgpRouter>(as.to_string(), rc);
      routers_[as] = &r;
    }
  }

  if (!members_.empty()) {
    if (config_.controller_style == ControllerStyle::kIdrCentralized) {
      controller::IdrControllerConfig cc;
      cc.recompute_delay = config_.recompute_delay;
      cc.subcluster_bridging = config_.subcluster_bridging;
      cc.incremental = config_.incremental_spt;
      idr_ = &net_.add<controller::IdrController>("ctrl", cc);
      controller_ = idr_;
    } else {
      controller::RouteFlowConfig rf;
      rf.timers = config_.timers;
      rf.sync_interval = config_.routeflow_sync;
      routeflow_ = &net_.add<controller::RouteFlowController>("rfctrl", rf);
      controller_ = routeflow_;
    }
    speaker_ = &net_.add<speaker::ClusterBgpSpeaker>(
        "speaker", config_.timers, config_.rib_layout, attr_registry_);
    controller_->bind_speaker(*speaker_);

    // Control links and switch-graph registration.
    for (auto& [as, sw] : switches_) {
      const auto link = net_.connect(controller_->id(), sw->id(), kControlLink);
      const auto& l = net_.link(link);
      // connect() returns ends in argument order: a=controller, b=switch.
      sw->set_controller_port(l.b.port);
      controller_->switch_graph().add_switch(sw->dpid(), as);
      control_links_.push_back(link);
    }

    if (config_.controller_replicas >= 2) {
      if (idr_ == nullptr) {
        throw std::invalid_argument{
            "controller replication requires the IDR controller style"};
      }
      controller::ReplicaSetConfig rc = config_.ha;
      rc.replicas = config_.controller_replicas;
      // A private forked stream: HA jitter/loss draws never perturb the
      // experiment's main stream (and non-HA runs never fork at all).
      rc.seed = rng_.engine()();
      replica_set_ = std::make_unique<controller::ControllerReplicaSet>(
          loop_, log_, &net_.telemetry(), *idr_, *speaker_, rc);
      replica_set_->set_degrade_hook(
          [this](std::uint32_t epoch) { degrade_to_fallback(epoch); });
      replica_set_->set_recover_hook(
          [this](std::uint32_t epoch) { recover_from_fallback(epoch); });
      replica_set_->activate();
    }
  }

  if (config_.with_collector && !routers_.empty()) {
    collector_ = &net_.add<bgp::RouteCollector>(
        "rc", net::Ipv4Addr{192, 0, 2, 1});
  }

  for (const auto& link : spec_.links) {
    const bool a_member = members_.count(link.a) > 0;
    const bool b_member = members_.count(link.b) > 0;
    if (a_member && b_member) {
      build_cluster_link(link);
    } else if (a_member || b_member) {
      build_border_link(link);
    } else {
      build_legacy_link(link);
    }
  }

  if (collector_ != nullptr) {
    for (auto& [as, r] : routers_) attach_collector(as);
  }
  if (controller_ != nullptr) controller_->finalize();
}

void Experiment::build_legacy_link(const topology::LinkSpec& link) {
  bgp::BgpRouter& a = *routers_.at(link.a);
  bgp::BgpRouter& b = *routers_.at(link.b);
  const auto id = net_.connect(a.id(), b.id(), link_params(link));
  const auto& l = net_.link(id);
  const auto p2p = alloc_.next_p2p();

  bgp::PeerConfig pa;
  pa.policy.mode = spec_.policy_mode;
  pa.policy.relationship = link.a_sees_b;
  pa.local_address = p2p.left;
  pa.remote_address = p2p.right;
  pa.expected_peer_as = link.b;
  a.add_peer(l.a.port, pa);

  bgp::PeerConfig pb;
  pb.policy.mode = spec_.policy_mode;
  pb.policy.relationship = bgp::reverse(link.a_sees_b);
  pb.local_address = p2p.right;
  pb.remote_address = p2p.left;
  pb.expected_peer_as = link.a;
  b.add_peer(l.b.port, pb);
}

void Experiment::build_cluster_link(const topology::LinkSpec& link) {
  sdn::SdnSwitch& a = *switches_.at(link.a);
  sdn::SdnSwitch& b = *switches_.at(link.b);
  const auto id = net_.connect(a.id(), b.id(), link_params(link));
  const auto& l = net_.link(id);
  controller_->switch_graph().add_link(a.dpid(), l.a.port, b.dpid(), l.b.port);
}

void Experiment::build_border_link(const topology::LinkSpec& link) {
  // Normalize: x = the legacy AS, s = the cluster member.
  const bool a_is_member = members_.count(link.a) > 0;
  const core::AsNumber x_as = a_is_member ? link.b : link.a;
  const core::AsNumber s_as = a_is_member ? link.a : link.b;
  bgp::BgpRouter& x = *routers_.at(x_as);
  sdn::SdnSwitch& s = *switches_.at(s_as);
  // Relationship of s as seen from x.
  const bgp::Relationship x_sees_s =
      a_is_member ? bgp::reverse(link.a_sees_b) : link.a_sees_b;

  const auto ext = net_.connect(x.id(), s.id(), link_params(link));
  const auto& ext_l = net_.link(ext);
  const core::PortId x_port = ext_l.a.port;
  const core::PortId s_ext_port = ext_l.b.port;
  const auto p2p = alloc_.next_p2p();

  // The legacy router peers with the cluster AS exactly as it would with a
  // plain BGP neighbor — the cluster is transparent.
  bgp::PeerConfig px;
  px.policy.mode = spec_.policy_mode;
  px.policy.relationship = x_sees_s;
  px.local_address = p2p.left;
  px.remote_address = p2p.right;
  px.expected_peer_as = s_as;
  x.add_peer(x_port, px);

  // Relay link: speaker <-> border switch, one per peering (paper, Fig. 1).
  const auto relay = net_.connect(speaker_->id(), s.id(), kControlLink);
  const auto& relay_l = net_.link(relay);
  const core::PortId speaker_port = relay_l.a.port;
  const core::PortId s_relay_port = relay_l.b.port;

  // Static relay rules: BGP control plane crosses the switch transparently.
  {
    sdn::FlowEntry in;
    in.match.in_port = s_ext_port;
    in.match.proto = net::Protocol::kBgp;
    in.priority = controller::kRelayRulePriority;
    in.action = sdn::FlowAction::output(s_relay_port);
    s.table().add(in);
    sdn::FlowEntry out;
    out.match.in_port = s_relay_port;
    out.match.proto = net::Protocol::kBgp;
    out.priority = controller::kRelayRulePriority;
    out.action = sdn::FlowAction::output(s_ext_port);
    s.table().add(out);
  }

  speaker::Peering peering;
  peering.cluster_as = s_as;
  peering.border_dpid = s.dpid();
  peering.switch_external_port = s_ext_port;
  peering.local_address = p2p.right;
  peering.remote_address = p2p.left;
  peering.expected_peer_as = x_as;
  speaker_->add_peering(speaker_port, peering);
}

void Experiment::attach_collector(core::AsNumber as) {
  bgp::BgpRouter& r = *routers_.at(as);
  const auto id = net_.connect(r.id(), collector_->id(), kControlLink);
  const auto& l = net_.link(id);
  const auto p2p = alloc_.next_p2p();

  bgp::PeerConfig pc;
  pc.policy.mode = spec_.policy_mode;
  // Treat the collector as a customer so every route is exported to it
  // under Gao-Rexford policies; it never announces anything back.
  pc.policy.relationship = bgp::Relationship::kCustomer;
  pc.local_address = p2p.left;
  pc.remote_address = p2p.right;
  pc.expected_peer_as = core::AsNumber{kCollectorAs};
  pc.mrai = core::Duration::zero();  // monitoring sees changes immediately
  r.add_peer(l.a.port, pc);

  collector_->add_peer(l.b.port, p2p.right, p2p.left);
}

net::Host& Experiment::add_host(core::AsNumber as) {
  if (started_) throw std::logic_error{"add_host after start"};
  if (hosts_.count(as) > 0) return *hosts_.at(as);
  const net::Prefix prefix = alloc_.as_prefix(as);
  const net::Ipv4Addr addr = alloc_.host_address(as, 0);
  std::string hname = "h";
  hname += as.to_string();
  auto& host = net_.add<net::Host>(hname, addr);
  hosts_[as] = &host;

  if (members_.count(as) > 0) {
    sdn::SdnSwitch& sw = *switches_.at(as);
    const auto id = net_.connect(host.id(), sw.id(), kControlLink);
    const auto& l = net_.link(id);
    controller_->originate(sw.dpid(), prefix, l.b.port);
    member_origins_[prefix] = {sw.dpid(), l.b.port};
    if (replica_set_) replica_set_->record_originate(sw.dpid(), prefix, l.b.port);
  } else {
    bgp::BgpRouter& r = *routers_.at(as);
    const auto id = net_.connect(host.id(), r.id(), kControlLink);
    const auto& l = net_.link(id);
    r.attach_host(l.b.port, prefix);
  }
  return host;
}

bool Experiment::start(core::Duration timeout) {
  started_ = true;
  net_.start_all();
  const core::TimePoint deadline = loop_.now() + timeout;
  while (loop_.now() < deadline) {
    loop_.advance_to(loop_.now() + core::Duration::seconds(1));
    bool all_up = true;
    for (const auto& [as, r] : routers_) {
      for (const auto* sess : r->sessions()) {
        all_up = all_up && sess->established();
      }
    }
    if (speaker_ != nullptr) {
      for (const auto* p : speaker_->peerings()) {
        all_up = all_up && speaker_->peering_established(p->id);
      }
    }
    if (all_up) {
      wait_converged();
      return true;
    }
  }
  return false;
}

void Experiment::announce_prefix(core::AsNumber as, const net::Prefix& prefix) {
  if (members_.count(as) > 0) {
    member_origins_[prefix] = {switches_.at(as)->dpid(), std::nullopt};
    if (controller_crashed_) {
      fallback_->originate(prefix, member_origins_.at(prefix));
    } else {
      controller_->originate(switches_.at(as)->dpid(), prefix, std::nullopt);
      if (replica_set_) {
        replica_set_->record_originate(switches_.at(as)->dpid(), prefix,
                                       std::nullopt);
      }
    }
  } else {
    routers_.at(as)->originate(prefix);
  }
}

void Experiment::withdraw_prefix(core::AsNumber as, const net::Prefix& prefix) {
  if (members_.count(as) > 0) {
    member_origins_.erase(prefix);
    if (controller_crashed_) {
      fallback_->withdraw_origin(prefix);
    } else {
      controller_->withdraw_origin(prefix);
      if (replica_set_) replica_set_->record_withdraw_origin(prefix);
    }
  } else {
    routers_.at(as)->withdraw_origin(prefix);
  }
}

core::LinkId Experiment::link_between(core::AsNumber a, core::AsNumber b) const {
  const auto get_node = [this](core::AsNumber as) {
    if (members_.count(as) > 0) return switches_.at(as)->id();
    const auto it = routers_.find(as);
    if (it == routers_.end()) {
      throw std::invalid_argument{"unknown AS " + as.to_string()};
    }
    return it->second->id();
  };
  const auto id = net_.find_link(get_node(a), get_node(b));
  if (!id.is_valid()) {
    throw std::invalid_argument{"no link " + a.to_string() + " <-> " +
                                b.to_string()};
  }
  return id;
}

void Experiment::fail_link(core::AsNumber a, core::AsNumber b) {
  net_.set_link_up(link_between(a, b), false);
}

void Experiment::restore_link(core::AsNumber a, core::AsNumber b) {
  net_.set_link_up(link_between(a, b), true);
}

void Experiment::crash_controller() {
  if (controller_ == nullptr || idr_ == nullptr) {
    throw std::logic_error{
        "controller crash-recovery requires the IDR controller style"};
  }
  if (replica_set_) {
    // Whole-controller crash under HA: every replica dies; the last one
    // triggers the degradation hook below.
    replica_set_->crash_all();
    return;
  }
  degrade_to_fallback(0);
}

void Experiment::degrade_to_fallback(std::uint32_t epoch) {
  if (controller_crashed_) return;
  controller_crashed_ = true;
  log_.log(loop_.now(), core::LogLevel::kWarn, "experiment", "controller_crash",
           "cluster degrades to distributed BGP");
  net_.telemetry().metrics().counter("framework.controller_crashes").inc();
  controller_->crash();
  // The dead process's channels go with it; switches observe the link loss,
  // flush controller-installed rules, and enter standalone mode.
  for (const auto link : control_links_) net_.set_link_up(link, false);
  if (!fallback_) {
    fallback_ = std::make_unique<controller::FallbackRouting>(
        loop_, log_, &net_.telemetry(), controller_->switch_graph(), *speaker_);
  }
  // Degradation is a leadership change: fence the fallback above every dead
  // replica's programming (0 outside HA keeps legacy behaviour).
  fallback_->set_programming_epoch(epoch);
  fallback_->activate(member_origins_);
}

void Experiment::restart_controller() {
  if (replica_set_) {
    // Whole-controller restart under HA: the first restarted replica leads
    // the recovery (via the hook below); the rest rejoin as standbys.
    replica_set_->restart_all();
    return;
  }
  recover_from_fallback(0);
}

void Experiment::recover_from_fallback(std::uint32_t epoch) {
  if (!controller_crashed_) return;
  controller_crashed_ = false;
  log_.log(loop_.now(), core::LogLevel::kInfo, "experiment",
           "controller_restart", "controller resyncs from speaker RIBs");
  net_.telemetry().metrics().counter("framework.controller_restarts").inc();
  fallback_->deactivate();
  controller_->restart();
  controller_->bind_speaker(*speaker_);
  if (idr_ != nullptr) idr_->set_programming_epoch(epoch);
  // Heal the control channel; each switch re-handshakes and the controller
  // re-learns the datapath mapping.
  for (const auto link : control_links_) net_.set_link_up(link, true);
  // Resync: replay member originations, then the speaker's retained
  // Adj-RIBs-In — together these reproduce the never-crashed input set.
  for (const auto& [prefix, origin] : member_origins_) {
    controller_->originate(origin.dpid, prefix, origin.host_port);
  }
  speaker_->replay_to(*controller_);
}

void Experiment::crash_controller_replica(int replica) {
  if (replica < 0) {
    crash_controller();
    return;
  }
  if (!replica_set_) {
    if (replica == 0) {
      // The single controller is replica 0 of a degenerate replica set.
      crash_controller();
      return;
    }
    throw std::invalid_argument{"replica id " + std::to_string(replica) +
                                " out of range (controller_replicas=1)"};
  }
  replica_set_->crash_replica(static_cast<std::size_t>(replica));
}

void Experiment::restart_controller_replica(int replica) {
  if (replica < 0) {
    restart_controller();
    return;
  }
  if (!replica_set_) {
    if (replica == 0) {
      restart_controller();
      return;
    }
    throw std::invalid_argument{"replica id " + std::to_string(replica) +
                                " out of range (controller_replicas=1)"};
  }
  replica_set_->restart_replica(static_cast<std::size_t>(replica));
}

void Experiment::partition_replication(int replica) {
  if (!replica_set_ || replica < 0) {
    throw std::logic_error{
        "replication partitions require controller_replicas >= 2"};
  }
  replica_set_->partition_replica(static_cast<std::size_t>(replica));
}

void Experiment::heal_replication(int replica) {
  if (!replica_set_ || replica < 0) {
    throw std::logic_error{
        "replication partitions require controller_replicas >= 2"};
  }
  replica_set_->heal_replica(static_cast<std::size_t>(replica));
}

void Experiment::crash_speaker() {
  if (speaker_ == nullptr) {
    throw std::logic_error{"no cluster speaker in this experiment"};
  }
  if (speaker_->crashed()) return;
  log_.log(loop_.now(), core::LogLevel::kWarn, "experiment", "speaker_crash",
           "external sessions drop silently");
  net_.telemetry().metrics().counter("framework.speaker_crashes").inc();
  speaker_->crash();
}

void Experiment::restart_speaker() {
  if (speaker_ == nullptr || !speaker_->crashed()) return;
  log_.log(loop_.now(), core::LogLevel::kInfo, "experiment", "speaker_restart",
           "external sessions re-establish");
  net_.telemetry().metrics().counter("framework.speaker_restarts").inc();
  speaker_->restart();
}

void Experiment::add_link(core::AsNumber a, core::AsNumber b,
                          bgp::Relationship a_sees_b) {
  if (members_.count(a) > 0 || members_.count(b) > 0) {
    throw std::invalid_argument{
        "add_link at runtime supports legacy ASes only"};
  }
  // Reuses the build-time path: spec bookkeeping (which validates the
  // endpoints and rejects duplicates) plus the legacy link builder;
  // add_peer() starts the sessions at once on a started router.
  spec_.add_link(a, b, a_sees_b);
  build_legacy_link(spec_.links.back());
}

ConvergenceResult Experiment::wait_converged(const WaitOpts& opts) {
  WaitOpts effective = opts;
  if (effective.quiet == core::Duration::zero()) {
    effective.quiet = config_.timers.mrai * 2 + core::Duration::seconds(1);
  }
  net_.telemetry().metrics().counter("framework.wait_converged.runs").inc();
  const ConvergenceResult result = detector_->wait(effective);
  if (result.timed_out) {
    net_.telemetry().metrics().counter("framework.wait_converged.timeouts").inc();
  }
  return result;
}

core::MemStats Experiment::memory_stats() const {
  core::MemStats stats;
  for (const auto& [as, r] : routers_) r->account_memory(stats);
  if (speaker_ != nullptr) speaker_->account_memory(stats);
  for (const auto& [as, sw] : switches_) {
    stats.flow_tables += sw->table().approx_bytes();
  }
  stats.attr_pool += bgp::attr_pool_live_bytes();
  stats.attr_registry += attr_registry_->bytes();
  return stats;
}

telemetry::Json Experiment::monitors_snapshot() const {
  telemetry::Json arr = telemetry::Json::array();
  for (const auto& m : monitors_) {
    telemetry::Json entry = telemetry::Json::object();
    entry["kind"] = std::string{m->kind()};
    entry["data"] = m->snapshot();
    arr.push_back(std::move(entry));
  }
  return arr;
}

bool Experiment::all_know_prefix(const net::Prefix& prefix,
                                 bool expect_present) const {
  for (const auto& [as, r] : routers_) {
    const bool has = r->loc_rib().find(prefix) != nullptr;
    if (has != expect_present) return false;
  }
  // Members: judge by the installed forwarding state, which is common to
  // every controller style (an output or local-delivery rule for the
  // prefix; an explicit drop does not count as knowing a route).
  for (const auto& [as, sw] : switches_) {
    bool has = false;
    for (const auto& e : sw->table().entries()) {
      if (e.match.dst == prefix && e.priority == controller::kDataRulePriority &&
          e.action.type == sdn::ActionType::kOutput) {
        has = true;
        break;
      }
    }
    if (has != expect_present) return false;
  }
  return true;
}

std::vector<core::AsNumber> Experiment::trace_route(core::AsNumber from,
                                                    net::Ipv4Addr dst) const {
  std::vector<core::AsNumber> path;
  // Map node id -> AS for hop resolution.
  std::map<core::NodeId, core::AsNumber> as_of;
  for (const auto& [as, r] : routers_) as_of[r->id()] = as;
  for (const auto& [as, sw] : switches_) as_of[sw->id()] = as;

  core::AsNumber cur = from;
  for (int hops = 0; hops < 64; ++hops) {
    path.push_back(cur);
    core::NodeId cur_node;
    std::optional<core::PortId> out;
    if (members_.count(cur) > 0) {
      sdn::SdnSwitch& sw = *switches_.at(cur);
      cur_node = sw.id();
      net::Packet probe;
      probe.dst = dst;
      probe.proto = net::Protocol::kProbe;
      // Flow tables are in_port-wildcarded for data rules; any port works.
      const auto* entry = const_cast<sdn::FlowTable&>(sw.table())
                              .lookup(core::PortId{0xffffff}, probe, false);
      if (entry == nullptr || entry->action.type != sdn::ActionType::kOutput) {
        return {};  // blackhole / drop
      }
      out = entry->action.port;
    } else {
      const bgp::BgpRouter& r = *routers_.at(cur);
      cur_node = r.id();
      out = r.fib_lookup(dst);
      if (!out) return {};
    }
    const auto egress = net_.link_at(cur_node, *out);
    if (!egress.is_valid() || !net_.link_is_up(egress)) {
      return {};  // forwarding into a downed link: unreachable right now
    }
    const auto peer = net_.peer_of(cur_node, *out);
    if (!peer.node.is_valid()) return {};
    // Arrived at a host?
    if (const auto* host = dynamic_cast<const net::Host*>(&net_.node(peer.node));
        host != nullptr) {
      return host->address() == dst ? path : std::vector<core::AsNumber>{};
    }
    const auto it = as_of.find(peer.node);
    if (it == as_of.end()) return {};  // forwarded into speaker/controller: bug
    // Loop detection.
    for (const auto seen : path) {
      if (seen == it->second) return {};
    }
    cur = it->second;
  }
  return {};
}

bgp::BgpRouter& Experiment::router(core::AsNumber as) { return *routers_.at(as); }
const bgp::BgpRouter& Experiment::router(core::AsNumber as) const {
  return *routers_.at(as);
}
sdn::SdnSwitch& Experiment::member_switch(core::AsNumber as) {
  return *switches_.at(as);
}

}  // namespace bgpsdn::framework
