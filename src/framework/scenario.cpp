#include "framework/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include <fstream>

#include "bgp/mrt.hpp"
#include "controller/route_compiler.hpp"
#include "framework/telemetry_monitor.hpp"
#include "framework/visualize.hpp"
#include "topology/datasets.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {

namespace {

/// Exception carrying a pre-formatted "line N: ..." message.
struct ScenarioError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::string join(const std::vector<std::string>& tokens, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    if (i > from) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace

void ScenarioRunner::fail(const Line& line, const std::string& message) const {
  throw ScenarioError{"line " + std::to_string(line.number) + ": " + message};
}

core::AsNumber ScenarioRunner::parse_as(const Line& line,
                                        const std::string& token) const {
  unsigned long v = 0;
  try {
    std::size_t pos = 0;
    v = std::stoul(token, &pos);
    if (pos != token.size()) throw std::invalid_argument{""};
  } catch (...) {
    fail(line, "bad AS number '" + token + "'");
  }
  return core::AsNumber{static_cast<std::uint32_t>(v)};
}

net::Prefix ScenarioRunner::parse_prefix(const Line& line,
                                         const std::string& token) const {
  const auto p = net::Prefix::parse(token);
  if (!p) fail(line, "bad prefix '" + token + "'");
  return *p;
}

double ScenarioRunner::parse_number(const Line& line,
                                    const std::string& token) const {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument{""};
    return v;
  } catch (...) {
    fail(line, "bad number '" + token + "'");
  }
}

Experiment& ScenarioRunner::running(const Line& line) {
  if (experiment_ == nullptr) fail(line, "command requires 'start' first");
  return *experiment_;
}

ScenarioResult ScenarioRunner::run(const std::string& script) {
  std::istringstream in{script};
  return run(in);
}

ScenarioResult ScenarioRunner::run(std::istream& script) {
  ScenarioResult result;
  std::string text_line;
  std::size_t number = 0;
  try {
    while (std::getline(script, text_line)) {
      ++number;
      Line line;
      line.number = number;
      std::istringstream ls{text_line};
      std::string tok;
      while (ls >> tok) {
        if (tok[0] == '#') break;
        line.tokens.push_back(tok);
      }
      if (line.tokens.empty()) continue;
      execute(line, result);
    }
    result.ok = true;
  } catch (const ScenarioError& e) {
    result.ok = false;
    result.error = e.what();
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = "line " + std::to_string(number) + ": " + e.what();
  }
  return result;
}

void ScenarioRunner::execute(const Line& line, ScenarioResult& result) {
  const auto& t = line.tokens;
  const std::string& cmd = t[0];
  const auto need = [&](std::size_t n) {
    if (t.size() != n + 1) {
      fail(line, cmd + " expects " + std::to_string(n) + " argument(s)");
    }
  };
  const auto started = [&] { return experiment_ != nullptr; };
  const auto forbid_after_start = [&] {
    if (started()) fail(line, cmd + " must come before 'start'");
  };

  if (cmd == "seed") {
    need(1);
    forbid_after_start();
    config_.seed = static_cast<std::uint64_t>(parse_number(line, t[1]));
  } else if (cmd == "mrai") {
    need(1);
    forbid_after_start();
    config_.timers.mrai = core::Duration::seconds_f(parse_number(line, t[1]));
  } else if (cmd == "recompute-delay") {
    need(1);
    forbid_after_start();
    config_.recompute_delay = core::Duration::seconds_f(parse_number(line, t[1]));
  } else if (cmd == "link-delay-ms") {
    need(1);
    forbid_after_start();
    config_.default_link.delay =
        core::Duration::seconds_f(parse_number(line, t[1]) / 1000.0);
  } else if (cmd == "controller") {
    need(1);
    forbid_after_start();
    if (t[1] == "idr") {
      config_.controller_style = ControllerStyle::kIdrCentralized;
    } else if (t[1] == "routeflow") {
      config_.controller_style = ControllerStyle::kRouteFlowMirror;
    } else {
      fail(line, "unknown controller style '" + t[1] + "' (idr|routeflow)");
    }
  } else if (cmd == "spt") {
    need(1);
    forbid_after_start();
    if (t[1] == "incremental") {
      config_.incremental_spt = true;
    } else if (t[1] == "reference") {
      config_.incremental_spt = false;
    } else {
      fail(line, "unknown spt engine '" + t[1] + "' (incremental|reference)");
    }
  } else if (cmd == "rib") {
    need(1);
    forbid_after_start();
    if (t[1] == "compact") {
      config_.rib_layout = bgp::RibLayout::kCompact;
    } else if (t[1] == "reference") {
      config_.rib_layout = bgp::RibLayout::kReference;
    } else {
      fail(line, "unknown rib layout '" + t[1] + "' (compact|reference)");
    }
  } else if (cmd == "damping") {
    need(1);
    forbid_after_start();
    if (t[1] == "on") {
      config_.damping.enabled = true;
    } else if (t[1] == "off") {
      config_.damping.enabled = false;
    } else {
      fail(line, "usage: damping on|off");
    }
  } else if (cmd == "replicas") {
    need(1);
    forbid_after_start();
    const double v = parse_number(line, t[1]);
    const auto n = static_cast<std::size_t>(v);
    if (v != static_cast<double>(n) || n < 1 || n > 16) {
      fail(line, "replicas '" + t[1] + "' must be an integer in [1, 16]");
    }
    config_.controller_replicas = n;
  } else if (cmd == "election-timeout-ms") {
    need(1);
    forbid_after_start();
    const double ms = parse_number(line, t[1]);
    if (ms <= 0.0) {
      fail(line, "election-timeout-ms '" + t[1] + "' must be > 0");
    }
    // Timeouts are drawn from [min, 2*min], Raft-style.
    config_.ha.election_min = core::Duration::seconds_f(ms / 1000.0);
    config_.ha.election_max = core::Duration::seconds_f(ms / 500.0);
  } else if (cmd == "topology") {
    forbid_after_start();
    if (t.size() < 3) {
      fail(line,
           "usage: topology <clique|line|ring|star|synth-caida> <n> | "
           "topology caida-file <path>");
    }
    if (t[1] == "caida-file") {
      std::ifstream file{t[2]};
      if (!file) fail(line, "cannot open '" + t[2] + "'");
      spec_ = topology::parse_caida(file);
    } else {
      const auto n = static_cast<std::size_t>(parse_number(line, t[2]));
      if (t[1] == "clique") {
        spec_ = topology::clique(n);
      } else if (t[1] == "line") {
        spec_ = topology::line(n);
      } else if (t[1] == "ring") {
        spec_ = topology::ring(n);
      } else if (t[1] == "star") {
        spec_ = topology::star(n);
      } else if (t[1] == "synth-caida") {
        core::Rng rng{config_.seed};
        spec_ = topology::parse_caida_text(topology::synthesize_caida_text(n, rng));
      } else {
        fail(line, "unknown topology model '" + t[1] + "'");
      }
    }
    have_topology_ = true;
  } else if (cmd == "sdn") {
    forbid_after_start();
    if (!have_topology_) fail(line, "'sdn' requires a topology first");
    for (std::size_t i = 1; i < t.size(); ++i) {
      const auto as = parse_as(line, t[i]);
      if (!spec_.has_as(as)) fail(line, as.to_string() + " not in topology");
      members_.insert(as);
    }
  } else if (cmd == "host") {
    need(1);
    forbid_after_start();
    hosts_.push_back(parse_as(line, t[1]));
  } else if (cmd == "announce") {
    need(2);
    const auto as = parse_as(line, t[1]);
    const auto pfx = parse_prefix(line, t[2]);
    if (started()) {
      experiment_->announce_prefix(as, pfx);
      last_event_ = experiment_->loop().now();
    } else {
      pre_announce_.emplace_back(as, pfx);
    }
  } else if (cmd == "start") {
    need(0);
    if (started()) fail(line, "already started");
    if (!have_topology_) fail(line, "no topology declared");
    if (seed_override_) config_.seed = *seed_override_;
    experiment_ = std::make_unique<Experiment>(spec_, members_, config_);
    if (capture_telemetry_) experiment_->attach_monitor<TelemetryMonitor>();
    for (const auto as : hosts_) experiment_->add_host(as);
    for (const auto& [as, pfx] : pre_announce_) {
      experiment_->announce_prefix(as, pfx);
    }
    if (!experiment_->start()) fail(line, "sessions failed to establish");
    if (!fault_plan_.events.empty()) {
      // Arm after the initial bring-up so fault times count from the
      // converged state ("fault 0 controller-crash" = right after start).
      experiment_->attach_monitor<FaultInjector>(fault_plan_);
    }
    last_event_ = experiment_->loop().now();
    result.output.push_back("started: " + spec_.summary() + ", " +
                            std::to_string(members_.size()) + " SDN member(s)");
  } else if (cmd == "withdraw") {
    need(2);
    auto& exp = running(line);
    exp.withdraw_prefix(parse_as(line, t[1]), parse_prefix(line, t[2]));
    last_event_ = exp.loop().now();
  } else if (cmd == "fail-link") {
    need(2);
    auto& exp = running(line);
    exp.fail_link(parse_as(line, t[1]), parse_as(line, t[2]));
    last_event_ = exp.loop().now();
  } else if (cmd == "add-link") {
    need(2);
    auto& exp = running(line);
    exp.add_link(parse_as(line, t[1]), parse_as(line, t[2]));
    last_event_ = exp.loop().now();
  } else if (cmd == "restore-link") {
    need(2);
    auto& exp = running(line);
    exp.restore_link(parse_as(line, t[1]), parse_as(line, t[2]));
    last_event_ = exp.loop().now();
  } else if (cmd == "fault-seed") {
    need(1);
    forbid_after_start();
    fault_plan_.seed = static_cast<std::uint64_t>(parse_number(line, t[1]));
  } else if (cmd == "fault") {
    if (t.size() < 3) fail(line, "usage: fault <seconds> <event...>");
    const auto at = core::Duration::seconds_f(parse_number(line, t[1]));
    if (at < core::Duration::zero()) fail(line, "fault time must be >= 0");
    FaultEvent event;
    try {
      event = FaultPlan::parse_event({t.begin() + 2, t.end()}, at);
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
    if (started()) {
      // Post-start faults arm immediately, relative to now.
      FaultPlan one;
      one.seed = fault_plan_.seed;
      one.events.push_back(event);
      experiment_->attach_monitor<FaultInjector>(std::move(one));
      last_event_ = experiment_->loop().now();
    } else {
      fault_plan_.events.push_back(event);
    }
  } else if (cmd == "crash" || cmd == "restart") {
    if (t.size() != 2 && t.size() != 3) {
      fail(line, "usage: " + cmd + " controller [replica]|speaker");
    }
    auto& exp = running(line);
    const bool crash = cmd == "crash";
    if (t[1] == "controller") {
      int replica = -1;
      if (t.size() == 3) {
        const std::string& tok = t[2];
        const bool digits =
            !tok.empty() && std::all_of(tok.begin(), tok.end(), [](char c) {
              return c >= '0' && c <= '9';
            });
        if (!digits) {
          fail(line, "controller replica id '" + tok +
                         "' must be a non-negative integer");
        }
        // Clamp absurd ids so the int cast stays sane; the experiment's
        // bounds check below rejects anything >= the replica count anyway.
        replica = tok.size() > 6 ? 1000000 : std::stoi(tok);
      }
      try {
        crash ? exp.crash_controller_replica(replica)
              : exp.restart_controller_replica(replica);
      } catch (const std::invalid_argument& e) {
        fail(line, e.what());
      }
    } else if (t[1] == "speaker") {
      if (t.size() == 3) fail(line, "usage: " + cmd + " speaker");
      crash ? exp.crash_speaker() : exp.restart_speaker();
    } else {
      fail(line, "usage: " + cmd + " controller [replica]|speaker");
    }
    last_event_ = exp.loop().now();
    result.output.push_back(cmd + " " + join(t, 1));
  } else if (cmd == "run") {
    need(1);
    running(line).run_for(core::Duration::seconds_f(parse_number(line, t[1])));
  } else if (cmd == "wait-converged") {
    auto& exp = running(line);
    core::Duration quiet = core::Duration::zero();
    core::Duration timeout = core::Duration::seconds(3600);
    if (t.size() > 1) quiet = core::Duration::seconds_f(parse_number(line, t[1]));
    if (t.size() > 2) timeout = core::Duration::seconds_f(parse_number(line, t[2]));
    const ConvergenceResult conv =
        exp.wait_converged(WaitOpts{quiet, timeout});
    if (conv.timed_out) fail(line, "convergence timed out");
    char buf[64];
    std::snprintf(buf, sizeof buf, "converged %.3f s after the last event",
                  conv.since(last_event_).to_seconds());
    result.output.push_back(buf);
    result.convergence_seconds.push_back(conv.since(last_event_).to_seconds());
  } else if (cmd == "expect-route" || cmd == "expect-no-route") {
    need(2);
    auto& exp = running(line);
    const auto as = parse_as(line, t[1]);
    const auto pfx = parse_prefix(line, t[2]);
    bool has = false;
    if (exp.is_member(as)) {
      // Controller-style-agnostic: judge by the installed forwarding state.
      for (const auto& e : exp.member_switch(as).table().entries()) {
        if (e.match.dst == pfx &&
            e.priority == controller::kDataRulePriority &&
            e.action.type == sdn::ActionType::kOutput) {
          has = true;
          break;
        }
      }
    } else {
      has = exp.router(as).loc_rib().find(pfx) != nullptr;
    }
    const bool want = cmd == "expect-route";
    if (has != want) {
      fail(line, as.to_string() + (has ? " unexpectedly has " : " lacks ") +
                     pfx.to_string());
    }
    result.output.push_back("ok: " + join(t, 0));
  } else if (cmd == "expect-reachable" || cmd == "expect-unreachable") {
    need(2);
    auto& exp = running(line);
    const auto from = parse_as(line, t[1]);
    const auto host_as = parse_as(line, t[2]);
    const auto dst = exp.allocator().host_address(host_as, 0);
    const bool reachable = !exp.trace_route(from, dst).empty();
    const bool want = cmd == "expect-reachable";
    if (reachable != want) {
      fail(line, from.to_string() + (reachable ? " unexpectedly reaches "
                                               : " cannot reach ") +
                     "host of " + host_as.to_string());
    }
    result.output.push_back("ok: " + join(t, 0));
  } else if (cmd == "print-rib") {
    need(1);
    auto& exp = running(line);
    const auto as = parse_as(line, t[1]);
    if (exp.is_member(as)) fail(line, "print-rib targets a legacy router");
    exp.router(as).loc_rib().for_each([&](const bgp::Route& route) {
      result.output.push_back(as.to_string() + " " + route.prefix.to_string() +
                              " via [" +
                              route.attributes->as_path.to_string() + "]");
    });
  } else if (cmd == "print-trace") {
    need(2);
    auto& exp = running(line);
    const auto from = parse_as(line, t[1]);
    const auto host_as = parse_as(line, t[2]);
    const auto path =
        exp.trace_route(from, exp.allocator().host_address(host_as, 0));
    std::string out = "trace " + from.to_string() + " ->";
    if (path.empty()) out += " (unreachable)";
    for (const auto as : path) out += " " + as.to_string();
    result.output.push_back(out);
  } else if (cmd == "dump-mrt") {
    need(1);
    auto& exp = running(line);
    if (exp.collector() == nullptr) fail(line, "experiment has no collector");
    const auto records = bgp::collector_to_mrt(exp.collector()->observations());
    const auto data = bgp::write_mrt(records);
    std::ofstream out{t[1], std::ios::binary};
    if (!out) fail(line, "cannot write '" + t[1] + "'");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    result.output.push_back("wrote " + std::to_string(records.size()) +
                            " MRT records (" + std::to_string(data.size()) +
                            " bytes) to " + t[1]);
  } else if (cmd == "print-dot") {
    // print-dot topology | print-dot forwarding <prefix>
    if (t.size() < 2) fail(line, "usage: print-dot topology|forwarding <prefix>");
    std::string dot;
    if (t[1] == "topology") {
      if (!have_topology_) fail(line, "no topology declared");
      dot = topology_dot(spec_, members_);
    } else if (t[1] == "forwarding") {
      need(2);
      dot = forwarding_dot(running(line), parse_prefix(line, t[2]));
    } else {
      fail(line, "unknown print-dot mode '" + t[1] + "'");
    }
    std::istringstream ds{dot};
    std::string dline;
    while (std::getline(ds, dline)) result.output.push_back(dline);
  } else if (cmd == "print-time") {
    need(0);
    result.output.push_back("t=" + running(line).loop().now().to_string());
  } else {
    fail(line, "unknown command '" + cmd + "'");
  }
}

}  // namespace bgpsdn::framework
