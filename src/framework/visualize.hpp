// Graph visualization — Graphviz DOT exports.
//
// The paper's framework ships "tools for ... network graph creation ... and
// route change visualization". These helpers render the AS-level topology
// (cluster members highlighted, relationships as edge styles) and the
// per-prefix forwarding tree of a running experiment; output is standard
// DOT, consumable by `dot -Tsvg`.
#pragma once

#include <set>
#include <string>

#include "framework/experiment.hpp"
#include "topology/spec.hpp"

namespace bgpsdn::framework {

/// The static AS-level topology. SDN members are drawn as boxes in a
/// cluster subgraph; customer->provider links point at the provider;
/// peer links are undirected (dashed).
std::string topology_dot(const topology::TopologySpec& spec,
                         const std::set<core::AsNumber>& members = {});

/// The forwarding state for one prefix in a running experiment: an edge
/// per AS pointing at its next hop (FIB for legacy routers, flow rules for
/// member switches); the origin is double-circled, ASes without a route
/// are grey.
std::string forwarding_dot(Experiment& experiment, const net::Prefix& prefix);

}  // namespace bgpsdn::framework
