// Monitor — the common interface of every experiment observer.
//
// ConvergenceDetector, RouteChangeTracker, UpdateRateMonitor,
// ConnectivityMonitor and TelemetryMonitor all implement it, which gives
// Experiment one uniform attachment point (attach_monitor<T>() / typed
// monitor<T>() retrieval) and every observer a machine-readable snapshot()
// that feeds the JSON bench documents.
#pragma once

#include "telemetry/json.hpp"

namespace bgpsdn::framework {

class Experiment;

class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Stable identifier of the monitor flavour ("convergence",
  /// "route_changes", "update_rate", "connectivity", "telemetry").
  virtual const char* kind() const = 0;

  /// Machine-readable state snapshot (deterministic for a given run).
  virtual telemetry::Json snapshot() const = 0;
};

}  // namespace bgpsdn::framework
