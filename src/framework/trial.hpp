// TrialRunner / ParamSweepRunner — repeat seeded experiments and summarize.
//
// The paper reports "boxplots over 10 runs"; a trial function maps a seed
// to one scalar measurement (e.g. convergence seconds), the runner sweeps
// seeds and returns the five-number summary. Trials are independent
// simulations — each builds its own Experiment (event loop, network, rng) —
// so they parallelize across worker threads while each simulation stays
// single-threaded inside. Results are collected by seed index, which makes
// the Summary bit-identical whether jobs=1 or jobs=N.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "framework/stats.hpp"

namespace bgpsdn::framework {

/// Worker-thread count for parallel trial execution: the BGPSDN_JOBS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency(). Never returns 0.
std::size_t default_jobs();

/// Runs fn(0), ..., fn(total-1) on up to `jobs` worker threads. Which thread
/// executes which index is unspecified; callers keep determinism by writing
/// only to index-addressed slots. jobs <= 1 degenerates to a plain serial
/// loop on the calling thread (no threads spawned — byte-identical to the
/// historical serial runner). The first exception thrown by any fn is
/// rethrown on the calling thread after all workers finish.
void parallel_for_index(std::size_t total, std::size_t jobs,
                        const std::function<void(std::size_t)>& fn);

class TrialRunner {
 public:
  explicit TrialRunner(std::size_t runs, std::uint64_t base_seed = 1000,
                       std::size_t jobs = 1)
      : runs_{runs}, base_seed_{base_seed}, jobs_{jobs == 0 ? 1 : jobs} {}

  /// Runs `trial` with seeds base, base+1, ... and summarizes the results.
  /// With jobs > 1 the trial function must be thread-safe (each call builds
  /// its own simulation); values land in seed order regardless of jobs.
  Summary run(const std::function<double(std::uint64_t seed)>& trial) const {
    return summarize(run_values(trial));
  }

  /// The raw per-seed values, in seed order.
  std::vector<double> run_values(
      const std::function<double(std::uint64_t seed)>& trial) const;

  std::size_t runs() const { return runs_; }
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t runs_;
  std::uint64_t base_seed_;
  std::size_t jobs_;
};

/// One sweep point's results: the seed summary plus the summed wall-clock
/// seconds its trials cost (the serial-equivalent time of the row).
struct SweepPointResult {
  Summary summary;
  /// The raw per-seed values behind the summary, in seed order — what the
  /// JSON bench reports list verbatim.
  std::vector<double> values;
  double trial_seconds{0};

  /// Effective throughput had the row run alone: trials per second of
  /// serial-equivalent work.
  double trials_per_second() const {
    return trial_seconds > 0 ? static_cast<double>(summary.n) / trial_seconds
                             : 0.0;
  }
};

/// Whole-sweep results and timing.
struct SweepResult {
  std::vector<SweepPointResult> points;  // index = sweep point
  std::size_t trials{0};                 // points x runs
  std::size_t jobs{1};
  double wall_seconds{0};   // real elapsed time of the whole sweep
  double trial_seconds{0};  // sum of every trial's own wall time

  /// Measured speedup over a serial run: the serial run's wall time is the
  /// sum of per-trial times, so the ratio is the effective parallelism.
  double speedup() const {
    return wall_seconds > 0 ? trial_seconds / wall_seconds : 0.0;
  }
  double trials_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(trials) / wall_seconds : 0.0;
  }
};

/// Parallelizes a whole bench: every (sweep point, seed) pair becomes one
/// task on a shared worker pool, so a fractions x seeds sweep saturates the
/// machine instead of one core. Output is ordered by (point, seed) index —
/// byte-identical to running the points one after another serially.
class ParamSweepRunner {
 public:
  /// `trial` maps (point index, seed) to a measurement.
  using PointTrial = std::function<double(std::size_t point, std::uint64_t seed)>;

  explicit ParamSweepRunner(std::size_t runs, std::uint64_t base_seed = 1000,
                            std::size_t jobs = 0)
      : runs_{runs}, base_seed_{base_seed},
        jobs_{jobs == 0 ? default_jobs() : jobs} {}

  SweepResult run(std::size_t points, const PointTrial& trial) const;

  std::size_t runs() const { return runs_; }
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t runs_;
  std::uint64_t base_seed_;
  std::size_t jobs_;
};

}  // namespace bgpsdn::framework
