// TrialRunner — repeat a seeded experiment and summarize.
//
// The paper reports "boxplots over 10 runs"; a trial function maps a seed
// to one scalar measurement (e.g. convergence seconds), the runner sweeps
// seeds and returns the five-number summary.
#pragma once

#include <functional>
#include <vector>

#include "framework/stats.hpp"

namespace bgpsdn::framework {

class TrialRunner {
 public:
  explicit TrialRunner(std::size_t runs, std::uint64_t base_seed = 1000)
      : runs_{runs}, base_seed_{base_seed} {}

  /// Runs `trial` with seeds base, base+1, ... and summarizes the results.
  Summary run(const std::function<double(std::uint64_t seed)>& trial) const {
    std::vector<double> values;
    values.reserve(runs_);
    for (std::size_t i = 0; i < runs_; ++i) {
      values.push_back(trial(base_seed_ + i));
    }
    return summarize(values);
  }

  std::size_t runs() const { return runs_; }

 private:
  std::size_t runs_;
  std::uint64_t base_seed_;
};

}  // namespace bgpsdn::framework
