// ExperimentSpec — the declarative experiment-construction API.
//
// One value object describes a whole seeded experiment cell: which topology
// generator and size, how much of the network is centralized, which routing
// event is injected and measured, the fault plan, the timer profile and the
// protocol toggles (damping, SPT engine, controller style). Benches build
// their sweeps from ExperimentSpec cells, the `bgpsdn_matrix` tool expands
// axis lists into a cross product of cells, and every later scenario axis
// (scale sweeps, federation, workloads) plugs in here instead of growing
// another hand-rolled main().
//
// A spec is pure data plus derivation helpers; `run_trial(seed)` is the
// whole measured experiment of the paper's figures — build, start, inject,
// wait for quiescence — and stays byte-identical to the historical bench
// code path for the same parameters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/faults.hpp"
#include "topology/spec.hpp"

namespace bgpsdn::framework {

/// Topology generator selection ("theoretical models" plus the synthetic
/// CAIDA-like graph). All models are parameterized by one size.
enum class TopologyModel {
  kClique,
  kLine,
  kRing,
  kStar,
  kSynthCaida,
  /// Three-tier CAIDA-like Internet (topology::internet_like) with
  /// parameters scaled from `topology_size` (total AS count); the scale
  /// model for bench_scale sweeps.
  kInternetLike,
};

/// Stable name used in labels, diagnostics and the matrix file format.
const char* to_string(TopologyModel model);
std::optional<TopologyModel> parse_topology_model(std::string_view name);

/// The routing event injected after the network converged — what a trial
/// measures the convergence of.
enum class EventKind {
  kAnnouncement,  // Tup: a fresh prefix announced at the origin
  kWithdrawal,    // Tdown: the origin withdraws (Fig. 2 path hunting)
  kFailover,      // Tlong: dual-homed stub loses its primary link
  kFlapTrain,     // churn: repeated fail/restore of a cluster link
};

/// Stable names ("announcement", "withdrawal", "failover", "flap-train"),
/// matching the historical bench output strings.
const char* to_string(EventKind event);
/// Accepts both the stable names and the short matrix-axis spellings
/// ("announce", "withdraw", "flap").
std::optional<EventKind> parse_event_kind(std::string_view name);

/// Declarative description of one experiment cell. Fields are public —
/// the struct is plain data — but prefer ExperimentSpecBuilder, which
/// validates as it goes; resolve() + validate() make any hand-built value
/// safe before use.
struct ExperimentSpec {
  // --- topology ------------------------------------------------------------
  TopologyModel topology{TopologyModel::kClique};
  std::size_t topology_size{16};

  // --- centralization ------------------------------------------------------
  /// How many ASes join the SDN cluster; members are the top AS numbers
  /// (size, size-1, ...), so sdn_count = size is full centralization.
  std::size_t sdn_count{0};
  /// Alternative fractional form; resolve() turns it into sdn_count
  /// (rounded to nearest) once the topology size is final.
  std::optional<double> sdn_fraction;

  // --- event ---------------------------------------------------------------
  EventKind event{EventKind::kWithdrawal};
  /// Fail/restore cycles of a flap train (kFlapTrain only).
  std::size_t flap_cycles{4};

  // --- faults --------------------------------------------------------------
  /// Armed as a FaultInjector right after start(); empty = none.
  FaultPlan faults{};

  // --- timers, protocol toggles, seeds ------------------------------------
  /// Timer profile, damping, SPT engine, controller style, recompute delay
  /// and the per-trial seed all live in the ExperimentConfig (the seed field
  /// is overwritten per trial).
  ExperimentConfig config{};
  /// Quiet window for the post-event convergence wait; zero = the
  /// Experiment default (2x MRAI + 1 s).
  core::Duration wait_quiet{core::Duration::zero()};

  /// Prefix originations issued before start(). Empty = the default for the
  /// event kind: the origin AS announces primary_prefix().
  std::vector<std::pair<core::AsNumber, net::Prefix>> announcements;

  /// How many seeded trials a runner should execute, and from which seed.
  std::size_t trials{10};
  std::uint64_t base_seed{1000};

  // --- canonical constants -------------------------------------------------
  /// The measured prefix (10.0.0.0/16) and the fresh prefix announced by
  /// kAnnouncement events (10.200.0.0/16).
  static net::Prefix primary_prefix();
  static net::Prefix fresh_prefix();
  /// Failover decoration AS numbers: the dual-homed stub and the backup
  /// intermediate (fixed at 100 / 101, which caps failover topologies at
  /// 99 ASes).
  static core::AsNumber failover_stub();
  static core::AsNumber failover_mid();

  // --- derivation ----------------------------------------------------------
  /// Folds sdn_fraction into sdn_count. Call before validate() when the
  /// spec was assembled field-by-field (the builder and the matrix expander
  /// do this for you).
  void resolve();

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// The AS that originates the measured prefix: the failover stub for
  /// kFailover, otherwise the first declared announcement's AS (AS 1 by
  /// default).
  core::AsNumber origin() const;

  /// The generated topology (failover adds the dual-homed stub and its
  /// backup path). `seed` feeds the synthetic-CAIDA generator only.
  topology::TopologySpec make_topology(std::uint64_t seed) const;

  /// The SDN member set: the top sdn_count AS numbers.
  std::set<core::AsNumber> make_members() const;

  /// The effective pre-start originations (declared or defaulted).
  std::vector<std::pair<core::AsNumber, net::Prefix>> effective_announcements()
      const;

  /// Build the experiment for one seed: topology, members, config with the
  /// seed applied, and all pre-start originations issued. Not started.
  std::unique_ptr<Experiment> make_experiment(std::uint64_t seed) const;

  /// Inject this spec's event into a started experiment and return the
  /// injection instant. kFlapTrain runs the whole train, waiting out
  /// convergence after every transition; the other kinds return immediately
  /// after the event, leaving the convergence wait to the caller.
  core::TimePoint inject_event(Experiment& experiment) const;

  /// The quiet window run_trial applies (wait_quiet, defaulted to
  /// 2x MRAI + 1 s).
  core::Duration effective_quiet() const;

  /// One full measured trial: build, start, (settle first for flap trains),
  /// arm faults, inject the event and wait for quiescence. Returns the
  /// convergence seconds since injection, or -1 when start() fails. With
  /// `counters_out`, every telemetry counter of the finished experiment is
  /// summed into the map.
  double run_trial(std::uint64_t seed,
                   std::map<std::string, std::int64_t>* counters_out =
                       nullptr) const;

  /// Canonical one-line rendering of every behavior-relevant field — equal
  /// signatures mean the specs configure the same experiment (duplicate
  /// matrix cells are detected with this).
  std::string signature() const;
};

/// Sums every telemetry counter of a finished experiment into `out` — the
/// "key counters" block of the JSON reports.
void accumulate_counters(Experiment& experiment,
                         std::map<std::string, std::int64_t>& out);

/// Fluent, validating assembly of an ExperimentSpec. Each setter does its
/// local checks immediately (throwing std::invalid_argument); build() runs
/// resolve() + the cross-field validation.
class ExperimentSpecBuilder {
 public:
  ExperimentSpecBuilder& topology(TopologyModel model, std::size_t size);
  ExperimentSpecBuilder& sdn_count(std::size_t count);
  ExperimentSpecBuilder& sdn_fraction(double fraction);
  ExperimentSpecBuilder& event(EventKind kind);
  ExperimentSpecBuilder& flap_cycles(std::size_t cycles);
  ExperimentSpecBuilder& faults(FaultPlan plan);
  /// Replace the whole base config (timers, toggles, delays) in one go —
  /// the bench profile hook.
  ExperimentSpecBuilder& config(const ExperimentConfig& cfg);
  ExperimentSpecBuilder& timers(const bgp::Timers& timers);
  ExperimentSpecBuilder& mrai(core::Duration mrai);
  ExperimentSpecBuilder& recompute_delay(core::Duration delay);
  ExperimentSpecBuilder& damping(bool enabled);
  ExperimentSpecBuilder& incremental_spt(bool incremental);
  ExperimentSpecBuilder& rib_layout(bgp::RibLayout layout);
  ExperimentSpecBuilder& controller_style(ControllerStyle style);
  /// Controller replication factor (1 = the single-controller baseline,
  /// 2..16 = hot-standby HA; requires the IDR controller style).
  ExperimentSpecBuilder& controller_replicas(std::size_t replicas);
  /// Base election timeout; replicas draw from [timeout, 2*timeout].
  ExperimentSpecBuilder& election_timeout(core::Duration timeout);
  ExperimentSpecBuilder& wait_quiet(core::Duration quiet);
  ExperimentSpecBuilder& announce(core::AsNumber as, const net::Prefix& prefix);
  ExperimentSpecBuilder& trials(std::size_t count);
  ExperimentSpecBuilder& base_seed(std::uint64_t seed);

  /// Resolve + validate; throws std::invalid_argument on inconsistency.
  ExperimentSpec build() const;

 private:
  ExperimentSpec spec_;
};

}  // namespace bgpsdn::framework
