// MatrixSpec — declarative scenario matrices over ExperimentSpec.
//
// The paper's result is a sweep (convergence vs. SDN fraction x event
// type); a matrix file declares per-axis value lists and fixed settings,
// and expand() produces the cross product of ExperimentSpec cells that the
// `bgpsdn_matrix` CLI runs through the trial pool:
//
//     # fig2-and-friends in one file
//     matrix fig2_sweep
//     trials 10
//     base-seed 1000
//     topology clique 16          # fixed setting, scenario-DSL spelling
//     mrai 30
//     recompute-delay 2
//     axis sdn-frac 0 0.25 0.5 0.75 1
//     axis event withdrawal announcement failover
//     axis spt incremental reference
//
// Fixed lines reuse the scenario DSL's command vocabulary (`topology`,
// `mrai`, `damping`, `fault`, ...); `axis <key> <values...>` sweeps one
// setting instead of fixing it. Every axis value is validated at parse
// time, the cross product is checked for semantic duplicates, and all
// diagnostics carry the offending line number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "framework/experiment_spec.hpp"

namespace bgpsdn::framework {

/// The sweepable axis keys, in the order `axis` lines accept them:
/// topology, sdn-frac, sdn-count, event, spt, damping, controller, mrai,
/// recompute-delay. Returned by axis_keys() for diagnostics.
const std::vector<std::string>& axis_keys();

/// Apply one axis value (e.g. "clique:16" for axis "topology", "0.5" for
/// axis "sdn-frac") to a spec. Shared by fixed matrix lines, axis
/// expansion and `--filter` validation. Throws std::invalid_argument with
/// a self-contained message on unknown keys or malformed values.
void apply_axis_value(ExperimentSpec& spec, const std::string& axis,
                      const std::string& value);

struct MatrixAxis {
  std::string name;
  std::vector<std::string> values;
};

/// One expanded cell: the resolved spec plus its coordinates — one
/// (axis, value) pair per declared axis, in axis order.
struct MatrixCell {
  /// "sdn-frac=0.5,event=withdrawal,spt=incremental"
  std::string label;
  std::vector<std::pair<std::string, std::string>> coords;
  ExperimentSpec spec;

  /// The value of one coordinate; nullptr when the axis is not declared.
  const std::string* coord(const std::string& axis) const;
};

class MatrixSpec {
 public:
  std::string name{"matrix"};
  std::size_t trials{10};
  std::uint64_t base_seed{1000};
  /// Fixed settings every cell starts from.
  ExperimentSpec base{};
  /// Swept axes, in declaration order (first axis varies slowest).
  std::vector<MatrixAxis> axes;

  /// Parse the matrix file format. Throws std::invalid_argument with a
  /// "line N: ..." message on any malformed input.
  static MatrixSpec parse(const std::string& text);
  static MatrixSpec parse(std::istream& in);

  /// The full cross product, in row-major axis order. Each cell is
  /// resolved and validated; semantically identical cells (same
  /// ExperimentSpec::signature()) and empty products are rejected with
  /// std::invalid_argument.
  std::vector<MatrixCell> expand() const;

  /// Keep only cells whose `axis` coordinate equals `value`. Throws
  /// std::invalid_argument when the axis is not declared or no cell
  /// matches.
  std::vector<MatrixCell> filter(std::vector<MatrixCell> cells,
                                 const std::string& axis,
                                 const std::string& value) const;
};

}  // namespace bgpsdn::framework
