#include "framework/connectivity.hpp"

#include "framework/experiment.hpp"

namespace bgpsdn::framework {

ConnectivityMonitor::ConnectivityMonitor(core::EventLoop& loop, net::Host& src,
                                         net::Host& dst, core::Duration interval)
    : loop_{loop}, src_{src}, dst_{dst}, interval_{interval} {
  src_.set_reply_callback([this](std::uint64_t label) {
    if (sent_at_.count(label) > 0) answered_at_[label] = loop_.now();
  });
}

ConnectivityMonitor::ConnectivityMonitor(Experiment& experiment, net::Host& src,
                                         net::Host& dst, core::Duration interval)
    : ConnectivityMonitor{experiment.loop(), src, dst, interval} {}

telemetry::Json ConnectivityMonitor::snapshot() const {
  const ConnectivityReport r = report();
  telemetry::Json j = telemetry::Json::object();
  j["sent"] = static_cast<std::int64_t>(r.sent);
  j["answered"] = static_cast<std::int64_t>(r.answered);
  j["delivery_ratio"] = r.delivery_ratio;
  j["longest_blackout_ns"] = r.longest_blackout.count_nanos();
  j["blackout_start_ns"] = r.blackout_start.nanos_since_origin();
  return j;
}

void ConnectivityMonitor::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void ConnectivityMonitor::stop() { running_ = false; }

void ConnectivityMonitor::tick() {
  if (!running_) return;
  const std::uint64_t seq = next_seq_++;
  sent_at_[seq] = loop_.now();
  src_.send_probe(dst_.address(), seq);
  loop_.schedule(interval_, [this] { tick(); });
}

ConnectivityReport ConnectivityMonitor::report(core::Duration reply_grace) const {
  if (reply_grace == core::Duration::zero()) {
    reply_grace = interval_ * std::int64_t{5};
  }
  ConnectivityReport rep;
  const core::TimePoint now = loop_.now();

  core::TimePoint gap_start{};
  bool in_gap = false;
  for (const auto& [seq, when] : sent_at_) {
    // Probes still inside the grace window are not judged at all.
    if (answered_at_.count(seq) == 0 && now - when < reply_grace) continue;
    ++rep.sent;
    if (answered_at_.count(seq) > 0) {
      ++rep.answered;
      if (in_gap) {
        const auto gap = when - gap_start;
        if (gap > rep.longest_blackout) {
          rep.longest_blackout = gap;
          rep.blackout_start = gap_start;
        }
        in_gap = false;
      }
    } else if (!in_gap) {
      in_gap = true;
      gap_start = when;
    }
  }
  if (in_gap && !sent_at_.empty()) {
    const auto gap = std::prev(sent_at_.end())->second - gap_start;
    if (gap > rep.longest_blackout) {
      rep.longest_blackout = gap;
      rep.blackout_start = gap_start;
    }
  }
  rep.delivery_ratio = rep.sent == 0 ? 1.0
                                     : static_cast<double>(rep.answered) /
                                           static_cast<double>(rep.sent);
  return rep;
}

}  // namespace bgpsdn::framework
