// ConvergenceDetector — "the framework detects when the network has
// converged".
//
// Convergence is control-plane quiescence: no routing activity (BGP update
// transmissions, best-path changes, controller recomputation output, flow
// programming, speaker announcements) for a configurable quiet period.
// Keepalives and other liveness chatter do not count. The detector attaches
// as a Logger sink, so it observes exactly what the components emit.
#pragma once

#include <set>
#include <string>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/time.hpp"
#include "framework/monitor_base.hpp"

namespace bgpsdn::framework {

/// Options for Experiment::wait_converged / ConvergenceDetector::wait.
struct WaitOpts {
  /// Quiet window that defines convergence. zero() = caller's default
  /// (Experiment substitutes 2x MRAI + 1 s).
  core::Duration quiet{core::Duration::zero()};
  /// Virtual-time budget for the whole wait.
  core::Duration timeout{core::Duration::seconds(3600)};
};

/// Structured result of a convergence wait.
struct ConvergenceResult {
  /// Time of the last routing activity — the convergence instant.
  core::TimePoint instant{};
  /// True when the timeout elapsed before the quiet window was met.
  bool timed_out{false};
  /// The quiet window that was actually applied (after defaulting).
  core::Duration quiet_window{core::Duration::zero()};

  /// Convergence latency relative to an event-injection instant.
  core::Duration since(core::TimePoint t0) const { return instant - t0; }
};

class ConvergenceDetector : public Monitor {
 public:
  /// Attaches to `logger` immediately.
  ConvergenceDetector(core::EventLoop& loop, core::Logger& logger);
  /// Convenience form for Experiment::attach_monitor.
  explicit ConvergenceDetector(Experiment& experiment);
  ~ConvergenceDetector() override;
  ConvergenceDetector(const ConvergenceDetector&) = delete;
  ConvergenceDetector& operator=(const ConvergenceDetector&) = delete;

  const char* kind() const override { return "convergence"; }
  /// {activity_count, last_activity_ns, timed_out}
  telemetry::Json snapshot() const override;

  /// The events that count as routing activity. Defaults cover BGP, the
  /// controller and the speaker.
  void set_activity_events(std::set<std::string> events) {
    events_ = std::move(events);
  }

  /// Timestamp of the most recent routing activity (origin if none yet).
  core::TimePoint last_activity() const { return last_activity_; }
  std::uint64_t activity_count() const { return activity_count_; }

  /// Reset the activity clock (typically right before injecting the event
  /// whose convergence is being measured).
  void restart() {
    last_activity_ = loop_.now();
    activity_count_ = 0;
  }

  /// Drive the event loop until `quiet` virtual time passes with no routing
  /// activity, or `timeout` virtual time elapses. Returns the time of the
  /// last routing activity — the convergence instant. If the timeout hits,
  /// returns the last activity anyway; check timed_out().
  core::TimePoint run_until_converged(core::Duration quiet,
                                      core::Duration timeout);

  /// Structured variant of run_until_converged. A zero quiet window in
  /// `opts` is used as-is here (the Experiment layer owns the MRAI-based
  /// defaulting).
  ConvergenceResult wait(const WaitOpts& opts);

  bool timed_out() const { return timed_out_; }

 private:
  core::EventLoop& loop_;
  core::Logger& logger_;
  std::size_t sink_id_;
  std::set<std::string> events_;
  core::TimePoint last_activity_{};
  std::uint64_t activity_count_{0};
  bool timed_out_{false};
};

}  // namespace bgpsdn::framework
