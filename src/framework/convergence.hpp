// ConvergenceDetector — "the framework detects when the network has
// converged".
//
// Convergence is control-plane quiescence: no routing activity (BGP update
// transmissions, best-path changes, controller recomputation output, flow
// programming, speaker announcements) for a configurable quiet period.
// Keepalives and other liveness chatter do not count. The detector attaches
// as a Logger sink, so it observes exactly what the components emit.
#pragma once

#include <set>
#include <string>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/time.hpp"

namespace bgpsdn::framework {

class ConvergenceDetector {
 public:
  /// Attaches to `logger` immediately.
  ConvergenceDetector(core::EventLoop& loop, core::Logger& logger);
  ~ConvergenceDetector();
  ConvergenceDetector(const ConvergenceDetector&) = delete;
  ConvergenceDetector& operator=(const ConvergenceDetector&) = delete;

  /// The events that count as routing activity. Defaults cover BGP, the
  /// controller and the speaker.
  void set_activity_events(std::set<std::string> events) {
    events_ = std::move(events);
  }

  /// Timestamp of the most recent routing activity (origin if none yet).
  core::TimePoint last_activity() const { return last_activity_; }
  std::uint64_t activity_count() const { return activity_count_; }

  /// Reset the activity clock (typically right before injecting the event
  /// whose convergence is being measured).
  void restart() {
    last_activity_ = loop_.now();
    activity_count_ = 0;
  }

  /// Drive the event loop until `quiet` virtual time passes with no routing
  /// activity, or `timeout` virtual time elapses. Returns the time of the
  /// last routing activity — the convergence instant. If the timeout hits,
  /// returns the last activity anyway; check timed_out().
  core::TimePoint run_until_converged(core::Duration quiet,
                                      core::Duration timeout);

  bool timed_out() const { return timed_out_; }

 private:
  core::EventLoop& loop_;
  core::Logger& logger_;
  std::size_t sink_id_;
  std::set<std::string> events_;
  core::TimePoint last_activity_{};
  std::uint64_t activity_count_{0};
  bool timed_out_{false};
};

}  // namespace bgpsdn::framework
