// Scenario scripts — declarative experiment control.
//
// The paper's framework drives experiments from small Python scripts with
// commands to announce prefixes, wait for convergence, fail links and check
// the result. This is the equivalent text DSL, used by the `bgpsdn_run`
// CLI and by tests:
//
//     # Fig.2-style data point
//     seed 7
//     mrai 30
//     recompute-delay 2
//     topology clique 16
//     sdn 9 10 11 12 13 14 15 16
//     announce 1 10.0.0.0/16
//     start
//     withdraw 1 10.0.0.0/16
//     wait-converged
//     expect-no-route 2 10.0.0.0/16
//
// Commands before `start` configure the experiment; commands after it
// control and verify the running network. Lines starting with '#' are
// comments. Errors (syntax, unknown AS, failed expectation) abort the run
// with a message naming the line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/faults.hpp"

namespace bgpsdn::framework {

struct ScenarioResult {
  bool ok{false};
  /// Empty when ok; otherwise "line N: what went wrong".
  std::string error;
  /// Output lines produced by print-* / wait-converged / expect commands.
  std::vector<std::string> output;
  /// Seconds reported by each wait-converged command, in script order —
  /// what `bgpsdn_run --trials` summarizes across seeds.
  std::vector<double> convergence_seconds;
};

class ScenarioRunner {
 public:
  /// Parse and execute a whole script.
  ScenarioResult run(const std::string& script);
  ScenarioResult run(std::istream& script);

  /// Force the experiment seed regardless of any `seed` command in the
  /// script — how one script becomes many parallel seeded trials.
  void override_seed(std::uint64_t seed) { seed_override_ = seed; }

  /// Attach a TelemetryMonitor to the experiment as soon as `start`
  /// constructs it, so traces cover the whole run (bgpsdn_run --json).
  void set_capture_telemetry(bool on) { capture_telemetry_ = on; }

  /// Seed the fault plan before the script runs (bgpsdn_run --faults).
  /// Script `fault` / `fault-seed` commands extend/override it. The plan
  /// arms when `start` completes, so event times count from the converged
  /// initial state.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }

  /// The experiment after a run (valid once `start` executed); lets callers
  /// inspect beyond what the script printed.
  Experiment* experiment() { return experiment_.get(); }

 private:
  struct Line {
    std::size_t number{0};
    std::vector<std::string> tokens;
  };

  void execute(const Line& line, ScenarioResult& result);
  [[noreturn]] void fail(const Line& line, const std::string& message) const;
  Experiment& running(const Line& line);
  core::AsNumber parse_as(const Line& line, const std::string& token) const;
  net::Prefix parse_prefix(const Line& line, const std::string& token) const;
  double parse_number(const Line& line, const std::string& token) const;

  ExperimentConfig config_{};
  std::optional<std::uint64_t> seed_override_;
  bool capture_telemetry_{false};
  topology::TopologySpec spec_{};
  bool have_topology_{false};
  std::set<core::AsNumber> members_;
  std::vector<core::AsNumber> hosts_;
  /// Originations issued before start.
  std::vector<std::pair<core::AsNumber, net::Prefix>> pre_announce_;
  /// Fault events declared before start (plus any CLI-provided plan);
  /// armed as one FaultInjector when `start` completes.
  FaultPlan fault_plan_;
  std::unique_ptr<Experiment> experiment_;
  /// Virtual time of the most recent event command (withdraw/announce/
  /// fail-link/...) — wait-converged reports relative to it.
  core::TimePoint last_event_{};
};

}  // namespace bgpsdn::framework
