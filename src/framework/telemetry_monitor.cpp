#include "framework/telemetry_monitor.hpp"

#include "framework/experiment.hpp"

namespace bgpsdn::framework {

TelemetryMonitor::TelemetryMonitor(Experiment& experiment, std::size_t max_spans)
    : experiment_{experiment}, sink_{max_spans} {
  sink_id_ = experiment_.network().telemetry().add_sink(&sink_);
}

TelemetryMonitor::~TelemetryMonitor() {
  experiment_.network().telemetry().remove_sink(sink_id_);
}

telemetry::Json TelemetryMonitor::snapshot() const {
  const net::Network& net = experiment_.network();
  telemetry::Json j = telemetry::Json::object();
  j["metrics"] = net.telemetry().metrics().snapshot();

  const net::NetworkStats& stats = net.stats();
  telemetry::Json net_json = telemetry::Json::object();
  net_json["sent"] = static_cast<std::int64_t>(stats.sent);
  net_json["delivered"] = static_cast<std::int64_t>(stats.delivered);
  net_json["dropped_loss"] = static_cast<std::int64_t>(stats.dropped_loss);
  net_json["dropped_link_down"] =
      static_cast<std::int64_t>(stats.dropped_link_down);
  net_json["dropped_ttl"] = static_cast<std::int64_t>(stats.dropped_ttl);
  net_json["dropped_no_port"] =
      static_cast<std::int64_t>(stats.dropped_no_port);
  j["net"] = std::move(net_json);

  telemetry::Json trace = telemetry::Json::object();
  trace["spans"] = static_cast<std::int64_t>(sink_.lines().size());
  trace["dropped"] = static_cast<std::int64_t>(sink_.dropped());
  j["trace"] = std::move(trace);
  return j;
}

}  // namespace bgpsdn::framework
