#include "framework/monitor.hpp"

#include <cstdio>

#include "framework/experiment.hpp"

namespace bgpsdn::framework {

RouteChangeTracker::RouteChangeTracker(core::Logger& logger) : logger_{logger} {
  sink_id_ = logger_.add_sink([this](const core::LogRecord& rec) {
    if (rec.event == "best_changed") {
      changes_.push_back({rec.when, rec.component, rec.detail, false});
    } else if (rec.event == "best_lost") {
      changes_.push_back({rec.when, rec.component, rec.detail, true});
    }
  });
}

RouteChangeTracker::RouteChangeTracker(Experiment& experiment)
    : RouteChangeTracker{experiment.logger()} {}

RouteChangeTracker::~RouteChangeTracker() { logger_.remove_sink(sink_id_); }

telemetry::Json RouteChangeTracker::snapshot() const {
  telemetry::Json j = telemetry::Json::object();
  j["total"] = static_cast<std::int64_t>(changes_.size());
  std::int64_t lost = 0;
  for (const auto& c : changes_) lost += c.lost ? 1 : 0;
  j["lost"] = lost;
  j["first_ns"] =
      changes_.empty() ? 0 : changes_.front().when.nanos_since_origin();
  j["last_ns"] =
      changes_.empty() ? 0 : changes_.back().when.nanos_since_origin();
  return j;
}

std::size_t RouteChangeTracker::count_for(const std::string& router_prefix) const {
  std::size_t n = 0;
  for (const auto& c : changes_) {
    if (c.router.compare(0, router_prefix.size(), router_prefix) == 0) ++n;
  }
  return n;
}

std::string RouteChangeTracker::timeline() const {
  std::string out;
  for (const auto& c : changes_) {
    out += c.when.to_string();
    out += "  ";
    out += c.router;
    out += c.lost ? "  LOST " : "  -> ";
    out += c.detail;
    out += '\n';
  }
  return out;
}

UpdateRateMonitor::UpdateRateMonitor(core::Logger& logger,
                                     core::Duration bucket_width)
    : logger_{logger}, width_{bucket_width} {
  sink_id_ = logger_.add_sink([this](const core::LogRecord& rec) {
    if (rec.event != "update_tx" && rec.event != "speaker_announce" &&
        rec.event != "speaker_withdraw") {
      return;
    }
    const auto bucket = static_cast<std::uint64_t>(rec.when.nanos_since_origin() /
                                                   width_.count_nanos());
    ++buckets_[bucket];
    ++total_;
  });
}

UpdateRateMonitor::UpdateRateMonitor(Experiment& experiment,
                                     core::Duration bucket_width)
    : UpdateRateMonitor{experiment.logger(), bucket_width} {}

UpdateRateMonitor::~UpdateRateMonitor() { logger_.remove_sink(sink_id_); }

telemetry::Json UpdateRateMonitor::snapshot() const {
  telemetry::Json j = telemetry::Json::object();
  j["total"] = static_cast<std::int64_t>(total_);
  j["bucket_width_ns"] = width_.count_nanos();
  telemetry::Json buckets = telemetry::Json::array();
  for (const auto& [bucket, count] : buckets_) {
    telemetry::Json entry = telemetry::Json::array();
    entry.push_back(static_cast<std::int64_t>(bucket));
    entry.push_back(static_cast<std::int64_t>(count));
    buckets.push_back(std::move(entry));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

std::string UpdateRateMonitor::to_string() const {
  std::string out;
  for (const auto& [bucket, count] : buckets_) {
    const double t = static_cast<double>(bucket) * width_.to_seconds();
    char buf[64];
    std::snprintf(buf, sizeof buf, "t=%.1fs n=%llu\n", t,
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

}  // namespace bgpsdn::framework
