#include "framework/experiment_spec.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "topology/datasets.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument{message};
}

}  // namespace

const char* to_string(TopologyModel model) {
  switch (model) {
    case TopologyModel::kClique: return "clique";
    case TopologyModel::kLine: return "line";
    case TopologyModel::kRing: return "ring";
    case TopologyModel::kStar: return "star";
    case TopologyModel::kSynthCaida: return "synth-caida";
    case TopologyModel::kInternetLike: return "internet-like";
  }
  return "?";
}

std::optional<TopologyModel> parse_topology_model(std::string_view name) {
  if (name == "clique") return TopologyModel::kClique;
  if (name == "line") return TopologyModel::kLine;
  if (name == "ring") return TopologyModel::kRing;
  if (name == "star") return TopologyModel::kStar;
  if (name == "synth-caida") return TopologyModel::kSynthCaida;
  if (name == "internet-like") return TopologyModel::kInternetLike;
  return std::nullopt;
}

const char* to_string(EventKind event) {
  switch (event) {
    case EventKind::kAnnouncement: return "announcement";
    case EventKind::kWithdrawal: return "withdrawal";
    case EventKind::kFailover: return "failover";
    case EventKind::kFlapTrain: return "flap-train";
  }
  return "?";
}

std::optional<EventKind> parse_event_kind(std::string_view name) {
  if (name == "announcement" || name == "announce") {
    return EventKind::kAnnouncement;
  }
  if (name == "withdrawal" || name == "withdraw") return EventKind::kWithdrawal;
  if (name == "failover") return EventKind::kFailover;
  if (name == "flap-train" || name == "flap") return EventKind::kFlapTrain;
  return std::nullopt;
}

net::Prefix ExperimentSpec::primary_prefix() {
  return *net::Prefix::parse("10.0.0.0/16");
}

net::Prefix ExperimentSpec::fresh_prefix() {
  return *net::Prefix::parse("10.200.0.0/16");
}

core::AsNumber ExperimentSpec::failover_stub() { return core::AsNumber{100}; }
core::AsNumber ExperimentSpec::failover_mid() { return core::AsNumber{101}; }

void ExperimentSpec::resolve() {
  if (sdn_fraction) {
    if (*sdn_fraction < 0.0 || *sdn_fraction > 1.0) {
      bad("sdn fraction must be in [0, 1], got " +
          std::to_string(*sdn_fraction));
    }
    sdn_count = static_cast<std::size_t>(
        *sdn_fraction * static_cast<double>(topology_size) + 0.5);
    sdn_fraction.reset();
  }
}

void ExperimentSpec::validate() const {
  if (topology_size < 2) {
    bad("topology size must be >= 2, got " + std::to_string(topology_size));
  }
  if (sdn_fraction) {
    bad("sdn_fraction is unresolved; call resolve() before validate()");
  }
  if (sdn_count > topology_size) {
    bad("sdn count " + std::to_string(sdn_count) + " exceeds topology size " +
        std::to_string(topology_size));
  }
  if (topology == TopologyModel::kInternetLike && topology_size < 8) {
    bad("internet-like topologies need >= 8 ASes, got " +
        std::to_string(topology_size));
  }
  if (event == EventKind::kFailover &&
      topology_size >= failover_stub().value()) {
    bad("failover topologies are capped at " +
        std::to_string(failover_stub().value() - 1) +
        " ASes (the stub occupies AS " + failover_stub().to_string() + ")");
  }
  if (event == EventKind::kFlapTrain) {
    if (sdn_count < 2) {
      bad("flap-train needs at least 2 SDN members (the flapped link joins "
          "the two lowest-numbered members)");
    }
    if (flap_cycles < 1) bad("flap-train needs at least 1 cycle");
  }
  if (trials < 1) bad("trials must be >= 1");
  if (config.controller_replicas < 1 || config.controller_replicas > 16) {
    bad("controller replicas must be in [1, 16], got " +
        std::to_string(config.controller_replicas));
  }
  if (config.controller_replicas >= 2 &&
      config.controller_style != ControllerStyle::kIdrCentralized) {
    bad("controller replication requires the IDR controller style");
  }
  if (config.controller_replicas >= 2 && sdn_count < 1) {
    bad("controller replication needs at least 1 SDN member");
  }
  for (const auto& [as, prefix] : announcements) {
    (void)prefix;
    const bool in_topology = as.value() >= 1 && as.value() <= topology_size;
    const bool failover_extra =
        event == EventKind::kFailover &&
        (as == failover_stub() || as == failover_mid());
    if (!in_topology && !failover_extra) {
      bad("announcement origin AS " + as.to_string() + " not in topology");
    }
  }
}

core::AsNumber ExperimentSpec::origin() const {
  if (event == EventKind::kFailover) return failover_stub();
  if (!announcements.empty()) return announcements.front().first;
  return core::AsNumber{1};
}

topology::TopologySpec ExperimentSpec::make_topology(std::uint64_t seed) const {
  topology::TopologySpec spec;
  switch (topology) {
    case TopologyModel::kClique:
      spec = topology::clique(topology_size);
      break;
    case TopologyModel::kLine:
      spec = topology::line(topology_size);
      break;
    case TopologyModel::kRing:
      spec = topology::ring(topology_size);
      break;
    case TopologyModel::kStar:
      spec = topology::star(topology_size);
      break;
    case TopologyModel::kSynthCaida: {
      core::Rng rng{seed};
      spec = topology::parse_caida_text(
          topology::synthesize_caida_text(topology_size, rng));
      break;
    }
    case TopologyModel::kInternetLike: {
      // Scale the three-tier shape from the total AS target: a small tier-1
      // core, ~an eighth of the ASes as transit, the rest stubs. Three
      // uplinks per non-core AS keep per-prefix candidate sets well above
      // one, which is what the compact-RIB memory comparison has to absorb.
      topology::InternetLikeParams params;
      params.tier1 =
          std::min<std::size_t>(std::max<std::size_t>(3, topology_size / 25),
                                8);
      params.transit =
          std::min(std::max<std::size_t>(4, topology_size / 8),
                   topology_size - params.tier1 - 1);
      params.stubs = topology_size - params.tier1 - params.transit;
      params.transit_uplinks = 4;
      params.stub_uplinks = 4;
      params.transit_peer_prob =
          std::min(0.2, 8.0 / static_cast<double>(params.transit));
      core::Rng rng{seed};
      spec = topology::internet_like(params, rng);
      break;
    }
  }
  if (event == EventKind::kFailover) {
    // Dual-homed stub: primary link into AS 1, backup path via the
    // intermediate AS into the highest regular AS.
    const core::AsNumber stub = failover_stub();
    const core::AsNumber mid = failover_mid();
    const core::AsNumber primary{1};
    const core::AsNumber backup_attach{
        static_cast<std::uint32_t>(topology_size)};
    spec.add_as(stub);
    spec.add_as(mid);
    spec.add_link(stub, primary);
    spec.add_link(stub, mid);
    spec.add_link(mid, backup_attach);
  }
  return spec;
}

std::set<core::AsNumber> ExperimentSpec::make_members() const {
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < sdn_count; ++i) {
    members.insert(
        core::AsNumber{static_cast<std::uint32_t>(topology_size - i)});
  }
  return members;
}

std::vector<std::pair<core::AsNumber, net::Prefix>>
ExperimentSpec::effective_announcements() const {
  if (!announcements.empty()) return announcements;
  return {{origin(), primary_prefix()}};
}

std::unique_ptr<Experiment> ExperimentSpec::make_experiment(
    std::uint64_t seed) const {
  ExperimentConfig cfg = config;
  cfg.seed = seed;
  auto experiment = std::make_unique<Experiment>(make_topology(seed),
                                                 make_members(), cfg);
  for (const auto& [as, prefix] : effective_announcements()) {
    experiment->announce_prefix(as, prefix);
  }
  return experiment;
}

core::TimePoint ExperimentSpec::inject_event(Experiment& experiment) const {
  const auto t0 = experiment.loop().now();
  switch (event) {
    case EventKind::kAnnouncement:
      experiment.announce_prefix(origin(), fresh_prefix());
      break;
    case EventKind::kWithdrawal: {
      const auto first = effective_announcements().front();
      experiment.withdraw_prefix(first.first, first.second);
      break;
    }
    case EventKind::kFailover:
      experiment.fail_link(failover_stub(), core::AsNumber{1});
      break;
    case EventKind::kFlapTrain: {
      // Flap the link between the two lowest-numbered members, waiting out
      // convergence after every transition (the churn-ablation shape).
      const auto members = make_members();
      auto it = members.begin();
      const core::AsNumber a = *it++;
      const core::AsNumber b = *it;
      for (std::size_t i = 0; i < flap_cycles; ++i) {
        experiment.fail_link(a, b);
        experiment.wait_converged();
        experiment.restore_link(a, b);
        experiment.wait_converged();
      }
      break;
    }
  }
  return t0;
}

core::Duration ExperimentSpec::effective_quiet() const {
  if (wait_quiet > core::Duration::zero()) return wait_quiet;
  return config.timers.mrai * 2 + core::Duration::seconds(1);
}

double ExperimentSpec::run_trial(
    std::uint64_t seed, std::map<std::string, std::int64_t>* counters_out)
    const {
  auto experiment = make_experiment(seed);
  if (!experiment->start()) {
    std::fprintf(stderr, "trial failed to start (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
    return -1.0;
  }
  if (!faults.events.empty()) {
    experiment->attach_monitor<FaultInjector>(faults);
  }
  double seconds = 0.0;
  if (event == EventKind::kFlapTrain) {
    // Measure the train itself: settle first, then every fail/restore cycle
    // (each waited to quiescence) is the measured interval.
    experiment->wait_converged();
    const auto t0 = experiment->loop().now();
    inject_event(*experiment);
    seconds = (experiment->loop().now() - t0).to_seconds();
  } else {
    const auto t0 = inject_event(*experiment);
    const auto conv = experiment->wait_converged(
        WaitOpts{effective_quiet(), core::Duration::seconds(3600)});
    seconds = conv.since(t0).to_seconds();
  }
  if (counters_out != nullptr) accumulate_counters(*experiment, *counters_out);
  return seconds;
}

std::string ExperimentSpec::signature() const {
  char buf[384];
  std::snprintf(
      buf, sizeof buf,
      "topo=%s:%zu sdn=%zu event=%s flaps=%zu mrai=%lld recompute=%lld "
      "damping=%d spt=%s rib=%s controller=%s quiet=%lld link_delay=%lld "
      "replicas=%zu election=%lld",
      to_string(topology), topology_size, sdn_count, to_string(event),
      event == EventKind::kFlapTrain ? flap_cycles : std::size_t{0},
      static_cast<long long>(config.timers.mrai.count_nanos()),
      static_cast<long long>(config.recompute_delay.count_nanos()),
      config.damping.enabled ? 1 : 0,
      config.incremental_spt ? "incremental" : "reference",
      bgp::to_string(config.rib_layout),
      config.controller_style == ControllerStyle::kIdrCentralized
          ? "idr"
          : "routeflow",
      static_cast<long long>(wait_quiet.count_nanos()),
      static_cast<long long>(config.default_link.delay.count_nanos()),
      config.controller_replicas,
      static_cast<long long>(config.ha.election_min.count_nanos()));
  std::string out{buf};
  for (const auto& [as, prefix] : announcements) {
    out += " announce=" + as.to_string() + ":" + prefix.to_string();
  }
  for (const auto& fault : faults.events) {
    out += " fault=" + std::string{to_string(fault.kind)} + "@" +
           std::to_string(fault.at.count_nanos());
  }
  return out;
}

void accumulate_counters(Experiment& experiment,
                         std::map<std::string, std::int64_t>& out) {
  telemetry::Json snap = experiment.telemetry().metrics().snapshot();
  for (const auto& [name, value] : snap["counters"].entries()) {
    out[name] += value.as_int();
  }
}

// --- builder ----------------------------------------------------------------

ExperimentSpecBuilder& ExperimentSpecBuilder::topology(TopologyModel model,
                                                       std::size_t size) {
  if (size < 2) {
    bad("topology size must be >= 2, got " + std::to_string(size));
  }
  spec_.topology = model;
  spec_.topology_size = size;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::sdn_count(std::size_t count) {
  spec_.sdn_count = count;
  spec_.sdn_fraction.reset();
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::sdn_fraction(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    bad("sdn fraction must be in [0, 1], got " + std::to_string(fraction));
  }
  spec_.sdn_fraction = fraction;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::event(EventKind kind) {
  spec_.event = kind;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::flap_cycles(std::size_t cycles) {
  if (cycles < 1) bad("flap-train needs at least 1 cycle");
  spec_.flap_cycles = cycles;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::faults(FaultPlan plan) {
  spec_.faults = std::move(plan);
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::config(
    const ExperimentConfig& cfg) {
  spec_.config = cfg;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::timers(const bgp::Timers& timers) {
  spec_.config.timers = timers;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::mrai(core::Duration mrai) {
  if (mrai < core::Duration::zero()) bad("mrai must be >= 0");
  spec_.config.timers.mrai = mrai;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::recompute_delay(
    core::Duration delay) {
  if (delay < core::Duration::zero()) bad("recompute delay must be >= 0");
  spec_.config.recompute_delay = delay;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::damping(bool enabled) {
  spec_.config.damping.enabled = enabled;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::incremental_spt(
    bool incremental) {
  spec_.config.incremental_spt = incremental;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::rib_layout(
    bgp::RibLayout layout) {
  spec_.config.rib_layout = layout;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::controller_style(
    ControllerStyle style) {
  spec_.config.controller_style = style;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::controller_replicas(
    std::size_t replicas) {
  if (replicas < 1 || replicas > 16) {
    bad("controller replicas must be in [1, 16], got " +
        std::to_string(replicas));
  }
  spec_.config.controller_replicas = replicas;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::election_timeout(
    core::Duration timeout) {
  if (timeout <= core::Duration::zero()) bad("election timeout must be > 0");
  spec_.config.ha.election_min = timeout;
  spec_.config.ha.election_max = timeout * 2;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::wait_quiet(core::Duration quiet) {
  if (quiet < core::Duration::zero()) bad("wait quiet must be >= 0");
  spec_.wait_quiet = quiet;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::announce(
    core::AsNumber as, const net::Prefix& prefix) {
  spec_.announcements.emplace_back(as, prefix);
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::trials(std::size_t count) {
  if (count < 1) bad("trials must be >= 1");
  spec_.trials = count;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::base_seed(std::uint64_t seed) {
  spec_.base_seed = seed;
  return *this;
}

ExperimentSpec ExperimentSpecBuilder::build() const {
  ExperimentSpec spec = spec_;
  spec.resolve();
  spec.validate();
  return spec;
}

}  // namespace bgpsdn::framework
