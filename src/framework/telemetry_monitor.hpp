// TelemetryMonitor — the telemetry subsystem exposed as a regular Monitor.
//
// Attaching one to an Experiment turns trace collection on: it registers a
// JSONL sink with the network's Telemetry hub (spans start flowing from
// that instant) and its snapshot() bundles the metrics registry, packet
// stats and trace accounting into one deterministic JSON document —
// byte-identical for a given seed at any BGPSDN_JOBS value.
#pragma once

#include <cstddef>
#include <string>

#include "framework/monitor_base.hpp"
#include "telemetry/sinks.hpp"

namespace bgpsdn::framework {

class TelemetryMonitor final : public Monitor {
 public:
  explicit TelemetryMonitor(
      Experiment& experiment,
      std::size_t max_spans = telemetry::JsonlTraceSink::kDefaultMaxSpans);
  ~TelemetryMonitor() override;
  TelemetryMonitor(const TelemetryMonitor&) = delete;
  TelemetryMonitor& operator=(const TelemetryMonitor&) = delete;

  const char* kind() const override { return "telemetry"; }
  /// {metrics:{counters,gauges,histograms}, net:{sent,delivered,...},
  ///  trace:{spans,dropped}}
  telemetry::Json snapshot() const override;

  /// The collected trace, one JSON object per line.
  std::string trace_jsonl() const { return sink_.jsonl(); }
  const telemetry::JsonlTraceSink& sink() const { return sink_; }

 private:
  Experiment& experiment_;
  telemetry::JsonlTraceSink sink_;
  std::size_t sink_id_;
};

}  // namespace bgpsdn::framework
