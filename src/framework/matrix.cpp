#include "framework/matrix.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace bgpsdn::framework {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument{message};
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i];
  }
  return out;
}

double parse_double(const std::string& token, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument{""};
    return v;
  } catch (...) {
    bad(std::string{what} + " needs a number, got '" + token + "'");
  }
}

std::size_t parse_count(const std::string& token, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(token, &pos);
    if (pos != token.size() || v < 0) throw std::invalid_argument{""};
    return static_cast<std::size_t>(v);
  } catch (...) {
    bad(std::string{what} + " needs a non-negative integer, got '" + token +
        "'");
  }
}

void apply_topology(ExperimentSpec& spec, const std::string& value) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) {
    bad("want <model>:<size>, e.g. clique:16");
  }
  const std::string model_name = value.substr(0, colon);
  const auto model = parse_topology_model(model_name);
  if (!model) bad("unknown topology model '" + model_name + "'");
  const std::size_t size =
      parse_count(value.substr(colon + 1), "topology size");
  if (size < 2) bad("topology size must be >= 2, got " + std::to_string(size));
  spec.topology = *model;
  spec.topology_size = size;
}

void apply_event(ExperimentSpec& spec, const std::string& value) {
  std::string name = value;
  std::optional<std::size_t> cycles;
  if (const auto colon = value.find(':'); colon != std::string::npos) {
    name = value.substr(0, colon);
    cycles = parse_count(value.substr(colon + 1), "flap cycle count");
  }
  const auto kind = parse_event_kind(name);
  if (!kind) bad("unknown event kind '" + name + "'");
  if (cycles) {
    if (*kind != EventKind::kFlapTrain) {
      bad("only flap events take a cycle count");
    }
    if (*cycles < 1) bad("flap-train needs at least 1 cycle");
    spec.flap_cycles = *cycles;
  }
  spec.event = *kind;
}

void apply_on_off(bool& slot, const std::string& value, const char* what) {
  if (value == "on") {
    slot = true;
  } else if (value == "off") {
    slot = false;
  } else {
    bad(std::string{"want on|off for "} + what + ", got '" + value + "'");
  }
}

}  // namespace

const std::vector<std::string>& axis_keys() {
  static const std::vector<std::string> keys{
      "topology", "sdn-frac",   "sdn-count", "event",
      "spt",      "damping",    "controller", "mrai",
      "recompute-delay", "replicas", "election-timeout-ms"};
  return keys;
}

void apply_axis_value(ExperimentSpec& spec, const std::string& axis,
                      const std::string& value) {
  try {
    if (axis == "topology") {
      apply_topology(spec, value);
    } else if (axis == "sdn-frac") {
      const double f = parse_double(value, "sdn-frac");
      if (f < 0.0 || f > 1.0) {
        bad("sdn fraction must be in [0, 1], got " + value);
      }
      spec.sdn_fraction = f;
    } else if (axis == "sdn-count") {
      spec.sdn_count = parse_count(value, "sdn-count");
      spec.sdn_fraction.reset();
    } else if (axis == "event") {
      apply_event(spec, value);
    } else if (axis == "spt") {
      if (value == "incremental") {
        spec.config.incremental_spt = true;
      } else if (value == "reference") {
        spec.config.incremental_spt = false;
      } else {
        bad("want incremental|reference, got '" + value + "'");
      }
    } else if (axis == "damping") {
      apply_on_off(spec.config.damping.enabled, value, "damping");
    } else if (axis == "controller") {
      if (value == "idr") {
        spec.config.controller_style = ControllerStyle::kIdrCentralized;
      } else if (value == "routeflow") {
        spec.config.controller_style = ControllerStyle::kRouteFlowMirror;
      } else {
        bad("want idr|routeflow, got '" + value + "'");
      }
    } else if (axis == "mrai") {
      const double s = parse_double(value, "mrai");
      if (s < 0.0) bad("mrai must be >= 0, got " + value);
      spec.config.timers.mrai = core::Duration::seconds_f(s);
    } else if (axis == "recompute-delay") {
      const double s = parse_double(value, "recompute-delay");
      if (s < 0.0) bad("recompute delay must be >= 0, got " + value);
      spec.config.recompute_delay = core::Duration::seconds_f(s);
    } else if (axis == "replicas") {
      const std::size_t n = parse_count(value, "replicas");
      if (n < 1 || n > 16) {
        bad("replicas must be in [1, 16], got " + value);
      }
      spec.config.controller_replicas = n;
    } else if (axis == "election-timeout-ms") {
      const double ms = parse_double(value, "election-timeout-ms");
      if (ms <= 0.0) bad("election timeout must be > 0, got " + value);
      spec.config.ha.election_min = core::Duration::seconds_f(ms / 1000.0);
      spec.config.ha.election_max = core::Duration::seconds_f(ms / 500.0);
    } else {
      throw std::invalid_argument{"unknown axis '" + axis +
                                  "' (known: " + join(axis_keys()) + ")"};
    }
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("unknown axis ", 0) == 0) throw;
    bad("bad value '" + value + "' for axis '" + axis + "': " + what);
  }
}

const std::string* MatrixCell::coord(const std::string& axis) const {
  for (const auto& [name, value] : coords) {
    if (name == axis) return &value;
  }
  return nullptr;
}

MatrixSpec MatrixSpec::parse(const std::string& text) {
  std::istringstream in{text};
  return parse(in);
}

MatrixSpec MatrixSpec::parse(std::istream& in) {
  MatrixSpec matrix;
  std::string text_line;
  std::size_t number = 0;
  const auto fail = [&](const std::string& message) {
    bad("line " + std::to_string(number) + ": " + message);
  };
  while (std::getline(in, text_line)) {
    ++number;
    std::istringstream ls{text_line};
    std::vector<std::string> t;
    std::string tok;
    while (ls >> tok) {
      if (tok[0] == '#') break;
      t.push_back(tok);
    }
    if (t.empty()) continue;
    const std::string& cmd = t[0];
    const auto need = [&](std::size_t n) {
      if (t.size() != n + 1) {
        fail(cmd + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    try {
      if (cmd == "matrix") {
        need(1);
        matrix.name = t[1];
      } else if (cmd == "trials") {
        need(1);
        matrix.trials = parse_count(t[1], "trials");
        if (matrix.trials < 1) fail("trials must be >= 1");
      } else if (cmd == "base-seed") {
        need(1);
        matrix.base_seed =
            static_cast<std::uint64_t>(parse_count(t[1], "base-seed"));
      } else if (cmd == "axis") {
        if (t.size() < 2) fail("usage: axis <key> <value...>");
        const std::string& key = t[1];
        bool known = false;
        for (const auto& k : axis_keys()) known |= k == key;
        if (!known) {
          fail("unknown axis '" + key + "' (known: " + join(axis_keys()) +
               ")");
        }
        for (const auto& existing : matrix.axes) {
          if (existing.name == key) fail("axis '" + key + "' declared twice");
        }
        if (t.size() < 3) fail("axis '" + key + "' has no values");
        MatrixAxis axis;
        axis.name = key;
        for (std::size_t i = 2; i < t.size(); ++i) {
          for (const auto& seen : axis.values) {
            if (seen == t[i]) {
              fail("duplicate value '" + t[i] + "' in axis '" + key + "'");
            }
          }
          // Validate the value's shape right here, against a scratch copy,
          // so a typo fails at its own line instead of inside expand().
          ExperimentSpec scratch = matrix.base;
          apply_axis_value(scratch, key, t[i]);
          axis.values.push_back(t[i]);
        }
        matrix.axes.push_back(std::move(axis));
      } else if (cmd == "topology") {
        // Scenario-DSL spelling: `topology clique 16`.
        need(2);
        apply_axis_value(matrix.base, "topology", t[1] + ":" + t[2]);
      } else if (cmd == "link-delay-ms") {
        need(1);
        const double ms = parse_double(t[1], "link-delay-ms");
        if (ms < 0.0) fail("link delay must be >= 0");
        matrix.base.config.default_link.delay =
            core::Duration::seconds_f(ms / 1000.0);
      } else if (cmd == "wait-quiet") {
        need(1);
        const double s = parse_double(t[1], "wait-quiet");
        if (s < 0.0) fail("wait-quiet must be >= 0");
        matrix.base.wait_quiet = core::Duration::seconds_f(s);
      } else if (cmd == "flaps") {
        need(1);
        matrix.base.flap_cycles = parse_count(t[1], "flaps");
        if (matrix.base.flap_cycles < 1) fail("flaps must be >= 1");
      } else if (cmd == "announce") {
        need(2);
        const std::size_t as = parse_count(t[1], "announce AS");
        const auto prefix = net::Prefix::parse(t[2]);
        if (!prefix) fail("bad prefix '" + t[2] + "'");
        matrix.base.announcements.emplace_back(
            core::AsNumber{static_cast<std::uint32_t>(as)}, *prefix);
      } else if (cmd == "fault-seed") {
        need(1);
        matrix.base.faults.seed =
            static_cast<std::uint64_t>(parse_count(t[1], "fault-seed"));
      } else if (cmd == "fault") {
        if (t.size() < 3) fail("usage: fault <seconds> <event...>");
        const double at_s = parse_double(t[1], "fault time");
        if (at_s < 0.0) fail("fault time must be >= 0");
        matrix.base.faults.events.push_back(FaultPlan::parse_event(
            {t.begin() + 2, t.end()}, core::Duration::seconds_f(at_s)));
      } else {
        bool is_axis_key = false;
        for (const auto& k : axis_keys()) is_axis_key |= k == cmd;
        if (is_axis_key) {
          // Fixed setting with an axis key: `mrai 30`, `damping on`, ...
          need(1);
          apply_axis_value(matrix.base, cmd, t[1]);
        } else {
          fail("unknown key '" + cmd + "'");
        }
      }
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      if (what.rfind("line ", 0) == 0) throw;
      fail(what);
    }
  }
  return matrix;
}

std::vector<MatrixCell> MatrixSpec::expand() const {
  if (axes.empty()) {
    bad("matrix declares no axes; add at least one 'axis' line");
  }
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.values.size();

  std::vector<MatrixCell> cells;
  cells.reserve(total);
  std::map<std::string, std::string> signatures;  // signature -> label
  std::vector<std::size_t> odometer(axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    MatrixCell cell;
    cell.spec = base;
    cell.spec.trials = trials;
    cell.spec.base_seed = base_seed;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& value = axes[a].values[odometer[a]];
      cell.coords.emplace_back(axes[a].name, value);
      if (!cell.label.empty()) cell.label += ',';
      cell.label += axes[a].name + "=" + value;
      apply_axis_value(cell.spec, axes[a].name, value);
    }
    try {
      cell.spec.resolve();
      cell.spec.validate();
    } catch (const std::invalid_argument& e) {
      bad("cell '" + cell.label + "': " + e.what());
    }
    const std::string sig = cell.spec.signature();
    if (const auto it = signatures.find(sig); it != signatures.end()) {
      bad("duplicate cells: '" + it->second + "' and '" + cell.label +
          "' configure identical experiments");
    }
    signatures.emplace(sig, cell.label);
    cells.push_back(std::move(cell));
    // Row-major order: the last axis varies fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++odometer[a] < axes[a].values.size()) break;
      odometer[a] = 0;
    }
  }
  return cells;
}

std::vector<MatrixCell> MatrixSpec::filter(std::vector<MatrixCell> cells,
                                           const std::string& axis,
                                           const std::string& value) const {
  const MatrixAxis* declared = nullptr;
  for (const auto& a : axes) {
    if (a.name == axis) declared = &a;
  }
  if (declared == nullptr) {
    std::vector<std::string> names;
    names.reserve(axes.size());
    for (const auto& a : axes) names.push_back(a.name);
    bad("unknown filter axis '" + axis + "' (declared axes: " + join(names) +
        ")");
  }
  bool known_value = false;
  for (const auto& v : declared->values) known_value |= v == value;
  if (!known_value) {
    bad("filter value '" + value + "' not in axis '" + axis +
        "' (values: " + join(declared->values) + ")");
  }
  std::vector<MatrixCell> kept;
  for (auto& cell : cells) {
    const std::string* coord = cell.coord(axis);
    if (coord != nullptr && *coord == value) kept.push_back(std::move(cell));
  }
  if (kept.empty()) bad("filter " + axis + "=" + value + " matches no cells");
  return kept;
}

}  // namespace bgpsdn::framework
