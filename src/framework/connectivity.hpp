// ConnectivityMonitor — end-to-end loss measurement.
//
// The demo's "end-to-end video application" proxy: a constant-rate probe
// stream between two hosts. Each probe carries a sequence number; replies
// are matched back, and the monitor reports delivery ratio plus the longest
// blackout window — the user-visible cost of slow convergence.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/event_loop.hpp"
#include "core/time.hpp"
#include "framework/monitor_base.hpp"
#include "net/host.hpp"

namespace bgpsdn::framework {

struct ConnectivityReport {
  std::uint64_t sent{0};
  std::uint64_t answered{0};
  double delivery_ratio{1.0};
  /// Longest contiguous run of unanswered probes, as virtual time.
  core::Duration longest_blackout{core::Duration::zero()};
  /// Start of that blackout (meaningless if no loss).
  core::TimePoint blackout_start{};
};

class ConnectivityMonitor : public Monitor {
 public:
  /// Probes flow src -> dst every `interval`.
  ConnectivityMonitor(core::EventLoop& loop, net::Host& src, net::Host& dst,
                      core::Duration interval);
  /// Convenience form for Experiment::attach_monitor.
  ConnectivityMonitor(Experiment& experiment, net::Host& src, net::Host& dst,
                      core::Duration interval);
  ConnectivityMonitor(const ConnectivityMonitor&) = delete;
  ConnectivityMonitor& operator=(const ConnectivityMonitor&) = delete;

  const char* kind() const override { return "connectivity"; }
  /// {sent, answered, delivery_ratio, longest_blackout_ns, blackout_start_ns}
  telemetry::Json snapshot() const override;

  /// Begin probing (idempotent).
  void start();
  /// Stop issuing new probes; in-flight replies are still counted.
  void stop();

  /// Compute the report. `reply_grace` is how long a probe may remain
  /// unanswered before counting as lost (defaults to 5 intervals).
  ConnectivityReport report(
      core::Duration reply_grace = core::Duration::zero()) const;

 private:
  void tick();

  core::EventLoop& loop_;
  net::Host& src_;
  net::Host& dst_;
  core::Duration interval_;
  bool running_{false};
  std::uint64_t next_seq_{1};
  std::map<std::uint64_t, core::TimePoint> sent_at_;
  std::map<std::uint64_t, core::TimePoint> answered_at_;
};

}  // namespace bgpsdn::framework
