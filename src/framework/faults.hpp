// Deterministic fault injection.
//
// A FaultPlan is a seeded list of fault events on the virtual-time axis:
// link failures and repairs, flap trains, loss ramps, payload corruption
// windows, AS-set partitions, and controller / speaker process crashes.
// The FaultInjector expands the plan into concrete actions and schedules
// them on the experiment's event loop, so a (topology, scenario, plan,
// seed) tuple fully determines the run — trials are byte-identical at any
// BGPSDN_JOBS value, which is what makes chaos experiments benchmarkable.
//
// Plans are expressible three ways: programmatically (build the struct),
// as scenario DSL commands (`fault 1.5 link-down 1 10`), or as a plan file
// passed to `bgpsdn_run --faults <file>`:
//
//   # one event per line; times are virtual seconds from the instant the
//   # injector is attached (experiment start for scenario/CLI plans)
//   seed 42
//   at 1.5 link-down 1 10
//   at 3   flap 1 10 5 0.4          # 5 down/up cycles, 0.4 s period
//   at 5   loss 1 10 0.2            # set drop probability
//   at 6   loss-ramp 1 10 0.5 5 1   # ramp to 0.5 over 5 steps, 1 s apart
//   at 8   corrupt 1 10 0.3 2       # corrupt payloads for a 2 s window
//   at 10  partition 7 8 9 10       # cut the AS set off from the rest
//   at 14  heal                     # restore the partition's links
//   at 16  controller-crash
//   at 18  controller-crash 1       # crash one controller replica (HA mode)
//   at 19  repl-partition 2         # cut a replica's replication links
//   at 19.5 repl-heal 2
//   at 20  controller-restart
//   at 24  speaker-crash
//   at 28  speaker-restart
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/event_loop.hpp"
#include "core/ids.hpp"
#include "core/random.hpp"
#include "core/time.hpp"
#include "framework/monitor_base.hpp"

namespace bgpsdn::framework {

class Experiment;

enum class FaultKind {
  kLinkDown,
  kLinkUp,
  kLinkFlap,
  kLinkLoss,
  kLossRamp,
  kCorrupt,
  kPartition,
  kPartitionHeal,
  kControllerCrash,
  kControllerRestart,
  kReplPartition,
  kReplHeal,
  kSpeakerCrash,
  kSpeakerRestart,
};

/// Stable snake_case name, used in telemetry counters, spans and snapshots.
const char* to_string(FaultKind kind);

struct FaultEvent {
  /// Virtual time from the instant the injector arms the plan.
  core::Duration at{core::Duration::zero()};
  FaultKind kind{FaultKind::kLinkDown};
  /// Link endpoints (link-targeting kinds).
  core::AsNumber a{};
  core::AsNumber b{};
  /// The cut-off AS set (kPartition).
  std::vector<core::AsNumber> as_set;
  /// Probability: drop rate (kLinkLoss), ramp target (kLossRamp),
  /// corruption rate (kCorrupt).
  double value{0.0};
  /// Cycles (kLinkFlap) / steps (kLossRamp). Controller kinds reuse this
  /// as the replica id (-1 = the whole controller / all replicas);
  /// kReplPartition/kReplHeal require a concrete id.
  int count{0};
  /// Cycle period (kLinkFlap), step interval (kLossRamp), window length
  /// (kCorrupt).
  core::Duration period{core::Duration::zero()};
};

struct FaultPlan {
  /// Seeds the injector's private jitter stream (flap cycle spacing);
  /// independent of the experiment seed so the same plan perturbs every
  /// trial identically. Zero means "no jitter".
  std::uint64_t seed{0};
  std::vector<FaultEvent> events;

  /// Parse one event from whitespace-split tokens (`{"link-down","1","10"}`)
  /// occurring at `at`. Shared by the file parser and the scenario DSL.
  /// Throws std::invalid_argument on unknown kinds, wrong arity or
  /// malformed numbers.
  static FaultEvent parse_event(const std::vector<std::string>& tokens,
                                core::Duration at);

  /// Parse the plan-file format documented above ('#' comments, `seed N`,
  /// `at <seconds> <event...>`). Throws std::invalid_argument with the
  /// offending line number.
  static FaultPlan parse(const std::string& text);
};

/// Executes a FaultPlan against a built Experiment. Attach with
/// `experiment.attach_monitor<FaultInjector>(plan)`; events arm immediately
/// (validation errors throw right there, before any virtual time passes)
/// and fire as the loop advances. Every fired action bumps the
/// "faults.injected" and per-kind counters and emits an instant trace span
/// when tracing is on.
class FaultInjector final : public Monitor {
 public:
  FaultInjector(Experiment& experiment, FaultPlan plan);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const char* kind() const override { return "faults"; }
  /// {planned, fired, by_kind:{...}, events:[{at_s, kind}, ...]}
  telemetry::Json snapshot() const override;

  const FaultPlan& plan() const { return plan_; }
  /// Concrete scheduled actions after plan expansion (a 5-cycle flap is 10).
  std::uint64_t planned() const { return planned_; }
  std::uint64_t fired() const { return fired_; }

 private:
  /// One expanded, concrete action.
  struct Action {
    core::TimePoint at;
    FaultKind kind{FaultKind::kLinkDown};
    core::LinkId link{};
    core::AsNumber a{};
    core::AsNumber b{};
    std::vector<core::AsNumber> as_set;
    double value{0.0};
    /// Replica id for controller kinds (-1 = whole controller).
    int replica{-1};
  };

  void validate(const FaultEvent& event) const;
  void expand(const FaultEvent& event, core::Rng& jitter,
              std::vector<Action>& out) const;
  void arm(std::vector<Action> actions);
  void fire(const Action& action);
  void apply(const Action& action);

  Experiment& experiment_;
  FaultPlan plan_;
  std::vector<core::TimerId> timers_;
  /// Links this injector downed for the active partition (heal target).
  std::vector<core::LinkId> partition_downed_;
  std::uint64_t planned_{0};
  std::uint64_t fired_{0};
  std::map<std::string, std::uint64_t> fired_by_kind_;
};

}  // namespace bgpsdn::framework
