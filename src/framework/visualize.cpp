#include "framework/visualize.hpp"

#include <map>

namespace bgpsdn::framework {

namespace {

std::string node_name(core::AsNumber as) {
  return "as" + std::to_string(as.value());
}

}  // namespace

std::string topology_dot(const topology::TopologySpec& spec,
                         const std::set<core::AsNumber>& members) {
  std::string dot = "graph topology {\n  layout=neato;\n  overlap=false;\n";
  if (!members.empty()) {
    dot += "  subgraph cluster_sdn {\n    label=\"SDN cluster\";\n";
    for (const auto as : members) {
      dot += "    " + node_name(as) + " [label=\"" + as.to_string() +
             "\", shape=box, style=filled, fillcolor=lightblue];\n";
    }
    dot += "  }\n";
  }
  for (const auto as : spec.ases) {
    if (members.count(as) > 0) continue;
    dot += "  " + node_name(as) + " [label=\"" + as.to_string() +
           "\", shape=ellipse];\n";
  }
  for (const auto& link : spec.links) {
    dot += "  " + node_name(link.a) + " -- " + node_name(link.b);
    switch (link.a_sees_b) {
      case bgp::Relationship::kCustomer:
        // a is the provider: draw provider above customer.
        dot += " [dir=forward, arrowhead=normal, label=\"c2p\"]";
        break;
      case bgp::Relationship::kProvider:
        dot += " [dir=back, arrowtail=normal, label=\"c2p\"]";
        break;
      case bgp::Relationship::kPeer:
        dot += " [style=dashed]";
        break;
    }
    dot += ";\n";
  }
  dot += "}\n";
  return dot;
}

std::string forwarding_dot(Experiment& experiment, const net::Prefix& prefix) {
  const auto& spec = experiment.spec();

  // Node-id -> AS map for resolving legacy FIB next hops.
  std::map<core::NodeId, core::AsNumber> as_of;
  for (const auto as : spec.ases) {
    const auto id = experiment.is_member(as)
                        ? experiment.member_switch(as).id()
                        : experiment.router(as).id();
    as_of[id] = as;
  }

  std::string dot = "digraph forwarding {\n  label=\"" + prefix.to_string() +
                    "\";\n  layout=dot;\n";
  std::string edges;
  const auto* decision = experiment.idr_controller() != nullptr
                             ? experiment.idr_controller()->decision_for(prefix)
                             : nullptr;

  for (const auto as : spec.ases) {
    std::string attrs = "shape=ellipse";
    if (experiment.is_member(as)) {
      attrs = "shape=box, style=filled, fillcolor=lightblue";
      const auto dpid = experiment.member_switch(as).dpid();
      if (decision == nullptr || !decision->reachable(dpid)) {
        attrs += ", color=grey, fontcolor=grey";
      } else {
        const auto& hop = decision->hops.at(dpid);
        switch (hop.kind) {
          case controller::PrefixDecision::HopKind::kLocalOrigin:
            attrs += ", peripheries=2";
            break;
          case controller::PrefixDecision::HopKind::kNextSwitch: {
            const auto owner =
                experiment.idr_controller()->switch_graph().owner_of(
                    hop.next_switch);
            if (owner) {
              edges += "  " + node_name(as) + " -> " + node_name(*owner) + ";\n";
            }
            break;
          }
          case controller::PrefixDecision::HopKind::kEgress: {
            const auto* peering =
                experiment.cluster_speaker()->peering(hop.egress);
            if (peering != nullptr) {
              edges += "  " + node_name(as) + " -> " +
                       node_name(peering->expected_peer_as) +
                       " [label=\"egress\"];\n";
            }
            break;
          }
        }
      }
    } else {
      bgp::BgpRouter& router = experiment.router(as);
      if (router.originates(prefix)) {
        attrs += ", peripheries=2";
      } else {
        const auto port = router.fib_lookup(prefix.address_at(1));
        if (!port) {
          attrs += ", color=grey, fontcolor=grey";
        } else {
          const auto peer = experiment.network().peer_of(router.id(), *port);
          const auto it = as_of.find(peer.node);
          if (it != as_of.end()) {
            edges += "  " + node_name(as) + " -> " + node_name(it->second) +
                     ";\n";
          }
        }
      }
    }
    dot += "  " + node_name(as) + " [label=\"" + as.to_string() + "\", " +
           attrs + "];\n";
  }
  dot += edges;
  dot += "}\n";
  return dot;
}

}  // namespace bgpsdn::framework
