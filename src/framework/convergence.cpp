#include "framework/convergence.hpp"

#include <algorithm>

#include "framework/experiment.hpp"

namespace bgpsdn::framework {

ConvergenceDetector::ConvergenceDetector(core::EventLoop& loop,
                                         core::Logger& logger)
    : loop_{loop}, logger_{logger} {
  events_ = {
      "update_tx",        "update_rx",     "best_changed", "best_lost",
      "origin_announce",  "origin_withdraw",
      "speaker_announce", "speaker_withdraw", "speaker_rx",
      "flow_mod",         "flow_mod_tx",   "collector_rx",
      "session_up",       "session_down",
  };
  sink_id_ = logger_.add_sink([this](const core::LogRecord& rec) {
    if (events_.count(rec.event) == 0) return;
    last_activity_ = rec.when;
    ++activity_count_;
  });
  last_activity_ = loop_.now();
}

ConvergenceDetector::ConvergenceDetector(Experiment& experiment)
    : ConvergenceDetector{experiment.loop(), experiment.logger()} {}

ConvergenceDetector::~ConvergenceDetector() { logger_.remove_sink(sink_id_); }

telemetry::Json ConvergenceDetector::snapshot() const {
  telemetry::Json j = telemetry::Json::object();
  j["activity_count"] = static_cast<std::int64_t>(activity_count_);
  j["last_activity_ns"] = last_activity_.nanos_since_origin();
  j["timed_out"] = timed_out_;
  return j;
}

ConvergenceResult ConvergenceDetector::wait(const WaitOpts& opts) {
  ConvergenceResult result;
  result.quiet_window = opts.quiet;
  result.instant = run_until_converged(opts.quiet, opts.timeout);
  result.timed_out = timed_out_;
  return result;
}

core::TimePoint ConvergenceDetector::run_until_converged(core::Duration quiet,
                                                         core::Duration timeout) {
  timed_out_ = false;
  // Anchor the quiet window at the call time: the caller has typically just
  // injected an event (withdrawal, link failure) whose consequences are
  // still queued, and a stale activity timestamp must not end the wait
  // before they run.
  if (last_activity_ < loop_.now()) last_activity_ = loop_.now();
  const core::TimePoint deadline = loop_.now() + timeout;
  while (true) {
    const core::TimePoint quiet_until = last_activity_ + quiet;
    if (loop_.now() >= quiet_until) return last_activity_;
    if (loop_.now() >= deadline) {
      timed_out_ = true;
      return last_activity_;
    }
    const core::TimePoint target = std::min(quiet_until, deadline);
    // Execute everything due before the target; if the queue runs dry the
    // loop clock still advances to the target.
    loop_.advance_to(target);
  }
}

}  // namespace bgpsdn::framework
