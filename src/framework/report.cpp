#include "framework/report.hpp"

#include <cstdio>

namespace bgpsdn::framework {

BenchReport::BenchReport(std::string bench_name)
    : bench_{std::move(bench_name)},
      params_{telemetry::Json::object()},
      points_{telemetry::Json::array()},
      counters_{telemetry::Json::object()},
      footer_{telemetry::Json::object()} {}

void BenchReport::set_param(const std::string& name, telemetry::Json value) {
  params_[name] = std::move(value);
}

void BenchReport::add_point(const std::string& label, const Summary& summary,
                            const std::vector<double>& values,
                            telemetry::Json extra) {
  telemetry::Json p = telemetry::Json::object();
  p["label"] = label;
  p["n"] = static_cast<std::int64_t>(summary.n);
  p["min"] = summary.min;
  p["q1"] = summary.q1;
  p["median"] = summary.median;
  p["q3"] = summary.q3;
  p["max"] = summary.max;
  p["mean"] = summary.mean;
  p["stddev"] = summary.stddev;
  telemetry::Json vals = telemetry::Json::array();
  for (const double v : values) vals.push_back(v);
  p["values"] = std::move(vals);
  p["extra"] = std::move(extra);
  points_.push_back(std::move(p));
}

void BenchReport::add_counter(const std::string& name, std::int64_t value) {
  if (const telemetry::Json* existing = counters_.find(name)) {
    counters_[name] = existing->as_int() + value;
  } else {
    counters_[name] = value;
  }
}

void BenchReport::set_footer(std::int64_t trials, std::int64_t jobs,
                             double wall_s, double serial_equivalent_s) {
  footer_ = telemetry::Json::object();
  footer_["trials"] = trials;
  footer_["jobs"] = jobs;
  footer_["wall_s"] = wall_s;
  footer_["serial_equivalent_s"] = serial_equivalent_s;
  footer_["speedup"] = wall_s > 0.0 ? serial_equivalent_s / wall_s : 0.0;
  footer_["trials_per_s"] =
      wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
}

telemetry::Json BenchReport::to_json() const {
  telemetry::Json j = telemetry::Json::object();
  j["schema"] = std::string{"bgpsdn.bench/1"};
  j["bench"] = bench_;
  j["params"] = params_;
  j["points"] = points_;
  j["counters"] = counters_;
  j["footer"] = footer_;
  return j;
}

bool BenchReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = dump();
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const bool close_ok = std::fclose(f) == 0;
  return written == doc.size() && newline_ok && close_ok;
}

}  // namespace bgpsdn::framework
