#include "framework/trial.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace bgpsdn::framework {

std::size_t default_jobs() {
  if (const char* env = std::getenv("BGPSDN_JOBS"); env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_index(std::size_t total, std::size_t jobs,
                        const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;
  if (jobs <= 1 || total == 1) {
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(std::min(jobs, total));
    for (std::size_t t = 0; t < std::min(jobs, total); ++t) {
      pool.emplace_back(worker);
    }
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<double> TrialRunner::run_values(
    const std::function<double(std::uint64_t seed)>& trial) const {
  std::vector<double> values(runs_, 0.0);
  parallel_for_index(runs_, jobs_, [&](std::size_t i) {
    values[i] = trial(base_seed_ + i);
  });
  return values;
}

SweepResult ParamSweepRunner::run(std::size_t points,
                                  const PointTrial& trial) const {
  // The one sanctioned wall-clock site in the library: it feeds only the
  // wall_s/serial-equivalent/speedup footer, which is explicitly excluded
  // from the determinism contract (check.sh strips the footer before the
  // jobs=1-vs-4 byte diff). Trial results themselves are computed on
  // virtual time and are byte-identical at any BGPSDN_JOBS.
  // lint: wall-clock-ok(wall_s footer measurement, outside the contract)
  using Clock = std::chrono::steady_clock;
  const std::size_t total = points * runs_;
  std::vector<double> values(total, 0.0);
  std::vector<double> seconds(total, 0.0);

  const auto t0 = Clock::now();
  parallel_for_index(total, jobs_, [&](std::size_t task) {
    const std::size_t point = task / runs_;
    const std::uint64_t seed = base_seed_ + (task % runs_);
    const auto s0 = Clock::now();
    values[task] = trial(point, seed);
    seconds[task] = std::chrono::duration<double>(Clock::now() - s0).count();
  });

  SweepResult result;
  result.trials = total;
  result.jobs = jobs_;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.points.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    SweepPointResult row;
    row.values.assign(values.begin() + p * runs_,
                      values.begin() + (p + 1) * runs_);
    row.summary = summarize(row.values);
    for (std::size_t r = 0; r < runs_; ++r) {
      row.trial_seconds += seconds[p * runs_ + r];
    }
    result.trial_seconds += row.trial_seconds;
    result.points.push_back(row);
  }
  return result;
}

}  // namespace bgpsdn::framework
