#include "framework/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bgpsdn::framework {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values[lo];
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile(sorted, 0.25);
  s.median = quantile(sorted, 0.5);
  s.q3 = quantile(sorted, 0.75);
  double sum = 0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  double var = 0;
  for (const double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

std::string to_string(const Summary& s, int precision) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "min=%.*f q1=%.*f med=%.*f q3=%.*f max=%.*f (n=%zu)", precision,
                s.min, precision, s.q1, precision, s.median, precision, s.q3,
                precision, s.max, s.n);
  return buf;
}

std::string boxplot_row(const std::string& label, const Summary& s, int precision) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s\t%.*f\t%.*f\t%.*f\t%.*f\t%.*f", label.c_str(),
                precision, s.min, precision, s.q1, precision, s.median, precision,
                s.q3, precision, s.max);
  return buf;
}

std::string boxplot_header(const std::string& label_name) {
  return label_name + "\tmin\tq1\tmedian\tq3\tmax";
}

}  // namespace bgpsdn::framework
