// Descriptive statistics for experiment results.
//
// The paper reports boxplots over 10 runs; Summary carries exactly the
// five-number summary plus mean/stddev, and format helpers print the rows
// the benches emit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bgpsdn::framework {

struct Summary {
  std::size_t n{0};
  double min{0};
  double q1{0};
  double median{0};
  double q3{0};
  double max{0};
  double mean{0};
  double stddev{0};
};

/// Linear-interpolation quantile (R-7, the numpy default). `q` in [0, 1].
/// Input need not be sorted. Returns 0 for empty input.
double quantile(std::vector<double> values, double q);

Summary summarize(const std::vector<double>& values);

/// "min=.. q1=.. med=.. q3=.. max=.." with the given precision.
std::string to_string(const Summary& s, int precision = 2);

/// One boxplot table row: label, then the five numbers, tab-separated.
std::string boxplot_row(const std::string& label, const Summary& s,
                        int precision = 2);

/// Header matching boxplot_row.
std::string boxplot_header(const std::string& label_name);

}  // namespace bgpsdn::framework
