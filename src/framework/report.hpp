// BenchReport — the schema-stable JSON document every bench emits.
//
// Schema "bgpsdn.bench/1":
//   {
//     "schema": "bgpsdn.bench/1",
//     "bench": "<bench name>",
//     "params": { "<name>": <value>, ... },
//     "points": [
//       { "label": "...", "n": 10, "min": .., "q1": .., "median": ..,
//         "q3": .., "max": .., "mean": .., "stddev": ..,
//         "values": [..], "extra": { ... } },
//       ...
//     ],
//     "counters": { "<metric>": <int>, ... },
//     "footer": { "trials": .., "jobs": .., "wall_s": ..,
//                 "serial_equivalent_s": .., "speedup": ..,
//                 "trials_per_s": .. }
//   }
//
// Everything except the footer (wall-clock measurements) is deterministic
// for a given seed — byte-identical at any BGPSDN_JOBS value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "framework/stats.hpp"
#include "telemetry/json.hpp"

namespace bgpsdn::framework {

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Record a sweep parameter (shows under "params").
  void set_param(const std::string& name, telemetry::Json value);

  /// Append one sweep point: boxplot stats over `values`, raw values, and
  /// optional point-specific extras (e.g. per-point counters).
  void add_point(const std::string& label, const Summary& summary,
                 const std::vector<double>& values,
                 telemetry::Json extra = telemetry::Json::object());

  /// Accumulate a run-wide counter (summed across calls with one name).
  void add_counter(const std::string& name, std::int64_t value);

  /// Wall-clock footer. `serial_equivalent_s` is the sum of per-trial wall
  /// times (what one worker would have taken); speedup and throughput are
  /// derived here.
  void set_footer(std::int64_t trials, std::int64_t jobs, double wall_s,
                  double serial_equivalent_s);

  telemetry::Json to_json() const;
  std::string dump() const { return to_json().dump(); }

  /// Serialize to `path`; returns false (and leaves no partial file
  /// guarantees) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string bench_;
  telemetry::Json params_;
  telemetry::Json points_;
  telemetry::Json counters_;
  telemetry::Json footer_;
};

}  // namespace bgpsdn::framework
