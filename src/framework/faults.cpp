#include "framework/faults.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "framework/experiment.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::framework {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kLossRamp: return "loss_ramp";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kPartitionHeal: return "heal";
    case FaultKind::kControllerCrash: return "controller_crash";
    case FaultKind::kControllerRestart: return "controller_restart";
    case FaultKind::kReplPartition: return "repl_partition";
    case FaultKind::kReplHeal: return "repl_heal";
    case FaultKind::kSpeakerCrash: return "speaker_crash";
    case FaultKind::kSpeakerRestart: return "speaker_restart";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument{"fault plan: " + what};
}

double parse_double(const std::string& token, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &used);
  } catch (const std::exception&) {
    bad(std::string{what} + " '" + token + "' is not a number");
  }
  if (used != token.size() || std::isnan(v)) {
    bad(std::string{what} + " '" + token + "' is not a number");
  }
  return v;
}

int parse_count(const std::string& token, const char* what) {
  const double v = parse_double(token, what);
  const int n = static_cast<int>(v);
  if (v != static_cast<double>(n) || n < 1) {
    bad(std::string{what} + " '" + token + "' must be a positive integer");
  }
  return n;
}

core::AsNumber parse_as(const std::string& token) {
  const double v = parse_double(token, "AS number");
  const auto n = static_cast<std::uint32_t>(v);
  if (v != static_cast<double>(n) || n == 0) {
    bad("AS number '" + token + "' must be a positive integer");
  }
  return core::AsNumber{n};
}

int parse_replica(const std::string& token) {
  // A bare digit check (not parse_double) so every malformed id — 'x',
  // '-1', '1.5' alike — gets the one canonical diagnostic.
  const bool digits =
      !token.empty() && std::all_of(token.begin(), token.end(), [](char c) {
        return c >= '0' && c <= '9';
      });
  if (!digits || token.size() > 6) {
    bad("controller replica id '" + token +
        "' must be a non-negative integer");
  }
  return std::stoi(token);
}

core::Duration parse_seconds(const std::string& token, const char* what) {
  const double v = parse_double(token, what);
  if (v < 0.0) bad(std::string{what} + " '" + token + "' must be >= 0");
  return core::Duration::seconds_f(v);
}

void need_args(const std::vector<std::string>& tokens, std::size_t n) {
  if (tokens.size() != n + 1) {
    bad("'" + tokens.front() + "' takes " + std::to_string(n) +
        " argument(s), got " + std::to_string(tokens.size() - 1));
  }
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in{line};
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

FaultEvent FaultPlan::parse_event(const std::vector<std::string>& tokens,
                                  core::Duration at) {
  if (tokens.empty()) bad("empty event");
  FaultEvent e;
  e.at = at;
  const std::string& kind = tokens.front();
  if (kind == "link-down" || kind == "link-up") {
    need_args(tokens, 2);
    e.kind = kind == "link-down" ? FaultKind::kLinkDown : FaultKind::kLinkUp;
    e.a = parse_as(tokens[1]);
    e.b = parse_as(tokens[2]);
  } else if (kind == "flap") {
    need_args(tokens, 4);
    e.kind = FaultKind::kLinkFlap;
    e.a = parse_as(tokens[1]);
    e.b = parse_as(tokens[2]);
    e.count = parse_count(tokens[3], "flap count");
    e.period = parse_seconds(tokens[4], "flap period");
  } else if (kind == "loss") {
    need_args(tokens, 3);
    e.kind = FaultKind::kLinkLoss;
    e.a = parse_as(tokens[1]);
    e.b = parse_as(tokens[2]);
    e.value = parse_double(tokens[3], "loss probability");
  } else if (kind == "loss-ramp") {
    need_args(tokens, 5);
    e.kind = FaultKind::kLossRamp;
    e.a = parse_as(tokens[1]);
    e.b = parse_as(tokens[2]);
    e.value = parse_double(tokens[3], "ramp target");
    e.count = parse_count(tokens[4], "ramp steps");
    e.period = parse_seconds(tokens[5], "ramp interval");
  } else if (kind == "corrupt") {
    need_args(tokens, 4);
    e.kind = FaultKind::kCorrupt;
    e.a = parse_as(tokens[1]);
    e.b = parse_as(tokens[2]);
    e.value = parse_double(tokens[3], "corruption probability");
    e.period = parse_seconds(tokens[4], "corruption window");
  } else if (kind == "partition") {
    if (tokens.size() < 2) bad("'partition' needs at least one AS");
    e.kind = FaultKind::kPartition;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      e.as_set.push_back(parse_as(tokens[i]));
    }
  } else if (kind == "heal") {
    need_args(tokens, 0);
    e.kind = FaultKind::kPartitionHeal;
  } else if (kind == "controller-crash" || kind == "controller-restart") {
    if (tokens.size() > 2) {
      bad("'" + kind + "' takes at most one replica id, got " +
          std::to_string(tokens.size() - 1) + " arguments");
    }
    e.kind = kind == "controller-crash" ? FaultKind::kControllerCrash
                                        : FaultKind::kControllerRestart;
    e.count = tokens.size() == 2 ? parse_replica(tokens[1]) : -1;
  } else if (kind == "repl-partition" || kind == "repl-heal") {
    need_args(tokens, 1);
    e.kind = kind == "repl-partition" ? FaultKind::kReplPartition
                                      : FaultKind::kReplHeal;
    e.count = parse_replica(tokens[1]);
  } else if (kind == "speaker-crash") {
    need_args(tokens, 0);
    e.kind = FaultKind::kSpeakerCrash;
  } else if (kind == "speaker-restart") {
    need_args(tokens, 0);
    e.kind = FaultKind::kSpeakerRestart;
  } else {
    bad("unknown fault kind '" + kind + "'");
  }
  return e;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    auto tokens = split(line);
    if (tokens.empty()) continue;
    try {
      if (tokens.front() == "seed") {
        need_args(tokens, 1);
        plan.seed = static_cast<std::uint64_t>(
            parse_double(tokens[1], "seed"));
      } else if (tokens.front() == "at") {
        if (tokens.size() < 3) bad("'at' needs a time and an event");
        const auto at = parse_seconds(tokens[1], "event time");
        plan.events.push_back(parse_event(
            {tokens.begin() + 2, tokens.end()}, at));
      } else {
        bad("expected 'seed' or 'at', got '" + tokens.front() + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{std::string{e.what()} + " (line " +
                                  std::to_string(line_no) + ")"};
    }
  }
  return plan;
}

FaultInjector::FaultInjector(Experiment& experiment, FaultPlan plan)
    : experiment_{experiment}, plan_{std::move(plan)} {
  core::Rng jitter{plan_.seed == 0 ? 1 : plan_.seed};
  std::vector<Action> actions;
  for (const auto& event : plan_.events) {
    validate(event);
    expand(event, jitter, actions);
  }
  arm(std::move(actions));
}

FaultInjector::~FaultInjector() {
  for (const auto id : timers_) experiment_.loop().cancel(id);
}

void FaultInjector::validate(const FaultEvent& event) const {
  const auto check_probability = [](double v, const char* what) {
    if (std::isnan(v) || v < 0.0 || v > 1.0) {
      bad(std::string{what} + " must be in [0, 1]");
    }
  };
  switch (event.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      experiment_.link_between(event.a, event.b);
      break;
    case FaultKind::kLinkFlap:
      experiment_.link_between(event.a, event.b);
      if (event.count < 1) bad("flap count must be >= 1");
      if (event.period <= core::Duration::zero()) {
        bad("flap period must be > 0");
      }
      break;
    case FaultKind::kLinkLoss:
      experiment_.link_between(event.a, event.b);
      check_probability(event.value, "loss probability");
      break;
    case FaultKind::kLossRamp:
      experiment_.link_between(event.a, event.b);
      check_probability(event.value, "ramp target");
      if (event.count < 1) bad("ramp steps must be >= 1");
      if (event.period <= core::Duration::zero()) {
        bad("ramp interval must be > 0");
      }
      break;
    case FaultKind::kCorrupt:
      experiment_.link_between(event.a, event.b);
      check_probability(event.value, "corruption probability");
      if (event.period <= core::Duration::zero()) {
        bad("corruption window must be > 0");
      }
      break;
    case FaultKind::kPartition:
      if (event.as_set.empty()) bad("partition needs at least one AS");
      for (const auto as : event.as_set) {
        if (!experiment_.spec().has_as(as)) {
          bad("partition AS " + as.to_string() + " not in topology");
        }
      }
      break;
    case FaultKind::kPartitionHeal:
      break;
    case FaultKind::kControllerCrash:
    case FaultKind::kControllerRestart:
      if (experiment_.idr_controller() == nullptr) {
        bad("controller faults require the IDR controller style");
      }
      if (event.count >= 0 &&
          static_cast<std::size_t>(event.count) >=
              std::max<std::size_t>(1, experiment_.config().controller_replicas)) {
        bad("controller replica id " + std::to_string(event.count) +
            " out of range (controller_replicas=" +
            std::to_string(experiment_.config().controller_replicas) + ")");
      }
      break;
    case FaultKind::kReplPartition:
    case FaultKind::kReplHeal:
      if (experiment_.config().controller_replicas < 2) {
        bad("replication faults require controller_replicas >= 2");
      }
      if (event.count < 0 ||
          static_cast<std::size_t>(event.count) >=
              experiment_.config().controller_replicas) {
        bad("controller replica id " + std::to_string(event.count) +
            " out of range (controller_replicas=" +
            std::to_string(experiment_.config().controller_replicas) + ")");
      }
      break;
    case FaultKind::kSpeakerCrash:
    case FaultKind::kSpeakerRestart:
      if (experiment_.cluster_speaker() == nullptr) {
        bad("speaker faults require an SDN cluster");
      }
      break;
  }
}

void FaultInjector::expand(const FaultEvent& event, core::Rng& jitter,
                           std::vector<Action>& out) const {
  const core::TimePoint base = experiment_.loop().now();
  Action proto;
  proto.kind = event.kind;
  proto.a = event.a;
  proto.b = event.b;
  proto.as_set = event.as_set;
  proto.value = event.value;
  switch (event.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kLinkLoss:
      proto.link = experiment_.link_between(event.a, event.b);
      proto.at = base + event.at;
      out.push_back(proto);
      break;
    case FaultKind::kLinkFlap: {
      // A flap train is count (down, up) cycles. The plan seed jitters the
      // cycle spacing (±10%) so trains do not phase-lock with protocol
      // timers; seed 0 keeps the spacing exact.
      proto.link = experiment_.link_between(event.a, event.b);
      core::Duration t = event.at;
      for (int i = 0; i < event.count; ++i) {
        proto.kind = FaultKind::kLinkDown;
        proto.at = base + t;
        out.push_back(proto);
        proto.kind = FaultKind::kLinkUp;
        proto.at = base + t + event.period / 2;
        out.push_back(proto);
        t += plan_.seed == 0 ? event.period
                             : jitter.jittered(event.period, 0.9, 1.1);
      }
      break;
    }
    case FaultKind::kLossRamp:
      // Steps toward the target; the last step lands exactly on it.
      proto.link = experiment_.link_between(event.a, event.b);
      for (int i = 1; i <= event.count; ++i) {
        proto.at = base + event.at + event.period * (i - 1);
        proto.value = event.value * i / event.count;
        out.push_back(proto);
      }
      break;
    case FaultKind::kCorrupt:
      // A bounded corruption window: set the probability, then clear it.
      proto.link = experiment_.link_between(event.a, event.b);
      proto.at = base + event.at;
      out.push_back(proto);
      proto.at = base + event.at + event.period;
      proto.value = 0.0;
      out.push_back(proto);
      break;
    case FaultKind::kControllerCrash:
    case FaultKind::kControllerRestart:
    case FaultKind::kReplPartition:
    case FaultKind::kReplHeal:
      proto.replica = event.count;
      proto.at = base + event.at;
      out.push_back(proto);
      break;
    case FaultKind::kPartition:
    case FaultKind::kPartitionHeal:
    case FaultKind::kSpeakerCrash:
    case FaultKind::kSpeakerRestart:
      proto.at = base + event.at;
      out.push_back(proto);
      break;
  }
}

void FaultInjector::arm(std::vector<Action> actions) {
  planned_ = actions.size();
  timers_.reserve(actions.size());
  for (auto& action : actions) {
    timers_.push_back(experiment_.loop().schedule_at(
        action.at, [this, act = std::move(action)] { fire(act); }));
  }
}

void FaultInjector::fire(const Action& action) {
  ++fired_;
  ++fired_by_kind_[to_string(action.kind)];
  auto& tel = experiment_.telemetry();
  tel.metrics().counter("faults.injected").inc();
  tel.metrics()
      .counter(std::string{"faults."} + to_string(action.kind))
      .inc();
  if (tel.tracing()) {
    auto span = telemetry::TraceSpan::instant(experiment_.loop().now(),
                                              "faults", to_string(action.kind),
                                              "fault-injector");
    if (action.link.is_valid()) {
      span.arg("a", static_cast<std::int64_t>(action.a.value()));
      span.arg("b", static_cast<std::int64_t>(action.b.value()));
    }
    if (action.kind == FaultKind::kLinkLoss ||
        action.kind == FaultKind::kLossRamp ||
        action.kind == FaultKind::kCorrupt) {
      span.arg("p", action.value);
    }
    tel.emit(span);
  }
  apply(action);
}

void FaultInjector::apply(const Action& action) {
  auto& net = experiment_.network();
  switch (action.kind) {
    case FaultKind::kLinkDown:
      net.set_link_up(action.link, false);
      break;
    case FaultKind::kLinkUp:
      net.set_link_up(action.link, true);
      break;
    case FaultKind::kLinkLoss:
    case FaultKind::kLossRamp:
      net.set_link_loss(action.link, action.value);
      break;
    case FaultKind::kCorrupt:
      net.set_link_corruption(action.link, action.value);
      break;
    case FaultKind::kPartition: {
      // Cut every spec link with exactly one endpoint inside the set. Only
      // links this action itself downed are recorded, so a later heal never
      // resurrects an independently failed link.
      const std::set<core::AsNumber> cut{action.as_set.begin(),
                                         action.as_set.end()};
      for (const auto& link : experiment_.spec().links) {
        if ((cut.count(link.a) > 0) == (cut.count(link.b) > 0)) continue;
        const auto id = experiment_.link_between(link.a, link.b);
        if (!net.link_is_up(id)) continue;
        net.set_link_up(id, false);
        partition_downed_.push_back(id);
      }
      break;
    }
    case FaultKind::kPartitionHeal:
      for (const auto id : partition_downed_) net.set_link_up(id, true);
      partition_downed_.clear();
      break;
    case FaultKind::kControllerCrash:
      experiment_.crash_controller_replica(action.replica);
      break;
    case FaultKind::kControllerRestart:
      experiment_.restart_controller_replica(action.replica);
      break;
    case FaultKind::kReplPartition:
      experiment_.partition_replication(action.replica);
      break;
    case FaultKind::kReplHeal:
      experiment_.heal_replication(action.replica);
      break;
    case FaultKind::kSpeakerCrash:
      experiment_.crash_speaker();
      break;
    case FaultKind::kSpeakerRestart:
      experiment_.restart_speaker();
      break;
    case FaultKind::kLinkFlap:
      // Flap trains are expanded into kLinkDown/kLinkUp cycles at schedule
      // time (see expand()); a flap action never reaches apply().
      break;
  }
}

telemetry::Json FaultInjector::snapshot() const {
  telemetry::Json doc = telemetry::Json::object();
  doc["planned"] = static_cast<std::int64_t>(planned_);
  doc["fired"] = static_cast<std::int64_t>(fired_);
  telemetry::Json by_kind = telemetry::Json::object();
  for (const auto& [kind, n] : fired_by_kind_) {
    by_kind[kind] = static_cast<std::int64_t>(n);
  }
  doc["by_kind"] = std::move(by_kind);
  telemetry::Json events = telemetry::Json::array();
  for (const auto& event : plan_.events) {
    telemetry::Json e = telemetry::Json::object();
    e["at_s"] = event.at.to_seconds();
    e["kind"] = std::string{to_string(event.kind)};
    events.push_back(std::move(e));
  }
  doc["events"] = std::move(events);
  return doc;
}

}  // namespace bgpsdn::framework
