#include "core/logger.hpp"

#include <ostream>

namespace bgpsdn::core {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string LogRecord::to_string() const {
  std::string s = when.to_string();
  s += " [";
  s += bgpsdn::core::to_string(level);
  s += "] ";
  s += component;
  s += " ";
  s += event;
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

void Logger::log(TimePoint when, LogLevel level, std::string component,
                 std::string event, std::string detail) {
  if (level < min_level_) return;
  LogRecord rec{when, level, std::move(component), std::move(event),
                std::move(detail)};
  if (echo_ != nullptr) *echo_ << rec.to_string() << '\n';
  for (const auto& sink : sinks_) {
    if (sink) sink(rec);
  }
  if (retain_) records_.push_back(std::move(rec));
}

std::size_t Logger::add_sink(Sink sink) {
  sinks_.push_back(std::move(sink));
  return sinks_.size() - 1;
}

void Logger::remove_sink(std::size_t id) {
  if (id < sinks_.size()) sinks_[id] = nullptr;
}

std::vector<LogRecord> Logger::filter(const std::string& event,
                                      const std::string& component_prefix) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.event != event) continue;
    if (!component_prefix.empty() &&
        r.component.compare(0, component_prefix.size(), component_prefix) != 0) {
      continue;
    }
    out.push_back(r);
  }
  return out;
}

std::size_t Logger::count(const std::string& event) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) ++n;
  }
  return n;
}

}  // namespace bgpsdn::core
