// SmallFunc — a move-only `void()` callable with small-buffer optimization.
//
// The event loop schedules millions of callbacks per run; std::function
// heap-allocates for any capture larger than two pointers, which makes the
// scheduler allocation-bound. SmallFunc stores captures up to kInlineSize
// bytes in place (covering every hot callback in the tree: `[this, epoch]`,
// `[this, peer, epoch]`, the link-delivery `[this, link_id, dir, packet]`)
// and only falls back to the heap for oversized captures such as
// by-value UpdateMessages.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bgpsdn::core {

class SmallFunc {
 public:
  /// Inline capture budget. Sized for the link-delivery lambda (a Packet
  /// with a shared payload handle plus a `this` pointer) — the hottest
  /// allocation in the emulator. Callables larger than this heap-allocate.
  static constexpr std::size_t kInlineSize = 64;

  SmallFunc() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunc> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunc(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &heap_vtable<Fn>;
    }
  }

  SmallFunc(SmallFunc&& other) noexcept : vt_{other.vt_} {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  SmallFunc& operator=(SmallFunc&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunc(const SmallFunc&) = delete;
  SmallFunc& operator=(const SmallFunc&) = delete;

  ~SmallFunc() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src` (a relocate
    /// keeps heap moves to a single pointer copy).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* src, void* dst) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* src, void* dst) {
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_{nullptr};
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace bgpsdn::core
