#include "core/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace bgpsdn::core {

namespace {
/// Compaction hysteresis: below this many tombstones the heap is left alone,
/// so small churny loops never pay the rebuild.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

void EventLoop::sift_up(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventLoop::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventLoop::pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

TimerId EventLoop::schedule(Duration delay, Callback cb) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(cb));
}

// lint: hotpath(every timer in the simulation is armed here; BGP timer
// churn makes this the single most-called mutation in the core)
TimerId EventLoop::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  if (heap_.empty()) next_seq_ = 0;
  std::uint32_t index;
  if (free_slots_.empty()) {
    index = static_cast<std::uint32_t>(slot_count_++);
    if ((index >> kSlabShift) == slabs_.size()) {
      // lint: alloc-ok(amortized slab growth: one allocation per kSlabSize
      // new slots, and slabs are never shrunk or reallocated)
      slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    }
  } else {
    index = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& slot = slot_at(index);
  slot.cb = std::move(cb);
  slot.state = SlotState::kPending;
  heap_.push_back(Entry{when.nanos_since_origin(), next_seq_++, index});
  sift_up(heap_.size() - 1);
  ++live_;
  return TimerId{pack(index, slot.generation)};
}

bool EventLoop::is_pending(TimerId id) const {
  const auto index = static_cast<std::uint32_t>(id.value());
  if (index >= slot_count_) return false;
  const Slot& slot = slot_at(index);
  return slot.generation == static_cast<std::uint32_t>(id.value() >> 32) &&
         slot.state == SlotState::kPending;
}

bool EventLoop::cancel(TimerId id) {
  const auto index = static_cast<std::uint32_t>(id.value());
  if (index >= slot_count_) return false;
  Slot& slot = slot_at(index);
  if (slot.generation != static_cast<std::uint32_t>(id.value() >> 32) ||
      slot.state != SlotState::kPending) {
    return false;
  }
  // Lazy deletion: the heap entry stays behind as a tombstone and is skipped
  // when popped; compact() reclaims it if tombstones pile up before virtual
  // time reaches it. The callback's captures are released right away.
  slot.cb = Callback{};
  slot.state = SlotState::kCancelled;
  --live_;
  ++tombstones_;
  if (tombstones_ > kCompactFloor && tombstones_ > live_) compact();
  return true;
}

void EventLoop::release_slot(std::uint32_t index) {
  Slot& slot = slot_at(index);
  slot.state = SlotState::kFree;
  ++slot.generation;
  free_slots_.push_back(index);
}

void EventLoop::compact() {
  std::erase_if(heap_, [&](const Entry& e) {
    if (slot_at(e.slot).state != SlotState::kCancelled) return false;
    release_slot(e.slot);
    return true;
  });
  // Floyd heapify: sift down every internal node, deepest first.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  tombstones_ = 0;
}

// lint: hotpath(timer dispatch: one call per executed event; slot reuse
// and SmallFunc moves keep firing allocation-free)
bool EventLoop::step(TimePoint until) {
  while (!heap_.empty()) {
    const std::uint32_t index = heap_.front().slot;
    if (slot_at(index).state == SlotState::kCancelled) {
      pop_root();
      release_slot(index);
      --tombstones_;
      continue;
    }
    const TimePoint when = TimePoint::from_nanos(heap_.front().when_ns);
    if (when > until) return false;
    pop_root();
    // Free the slot before invoking so the callback can re-schedule (reusing
    // the slot) and so cancel() on the now-running timer reports false.
    Callback cb = std::move(slot_at(index).cb);
    release_slot(index);
    --live_;
    now_ = when;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(TimePoint until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  return n;
}

void EventLoop::advance_to(TimePoint when) {
  run(when);
  if (now_ < when) now_ = when;
}

}  // namespace bgpsdn::core
