#include "core/event_loop.hpp"

#include <utility>

namespace bgpsdn::core {

TimerId EventLoop::schedule(Duration delay, Callback cb) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(cb));
}

TimerId EventLoop::schedule_at(TimePoint when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  return TimerId{id};
}

bool EventLoop::cancel(TimerId id) {
  if (pending_ids_.count(id.value()) == 0) return false;
  // Lazy deletion: mark and skip when popped. Entries stay in the heap but
  // their callbacks are dropped.
  const bool fresh = cancelled_.insert(id.value()).second;
  if (fresh) pending_ids_.erase(id.value());
  return fresh;
}

bool EventLoop::step(TimePoint until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > until) return false;
    // Move the callback out before popping invalidates the reference.
    Entry entry{top.when, top.seq, top.id, std::move(const_cast<Entry&>(top).cb)};
    queue_.pop();
    pending_ids_.erase(entry.id);
    now_ = entry.when;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(TimePoint until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  return n;
}

void EventLoop::advance_to(TimePoint when) {
  run(when);
  if (now_ < when) now_ = when;
}

}  // namespace bgpsdn::core
