// Simulation time primitives.
//
// The emulation framework runs on virtual time: a discrete-event scheduler
// advances a nanosecond-resolution clock from event to event. Strong types
// keep time points and durations from being mixed up with plain integers.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace bgpsdn::core {

/// A span of virtual time, in nanoseconds. Signed so arithmetic on
/// differences of time points is well defined.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Fractional seconds, e.g. Duration::seconds_f(0.35).
  static constexpr Duration seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator*(int k) const { return Duration{ns_ * k}; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration{-ns_}; }

  /// Human-readable rendering, e.g. "1.500s", "250ms", "10us", "3ns".
  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// A point on the virtual clock. Time starts at zero when an EventLoop is
/// constructed.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t nanos_since_origin() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.count_nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.count_nanos()}; }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_nanos(); return *this; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }

  /// Rendering as seconds with millisecond precision, e.g. "12.345s".
  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

}  // namespace bgpsdn::core
