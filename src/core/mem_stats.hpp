// Deterministic memory accounting.
//
// Scale benches gate peak memory, but OS RSS depends on the allocator, the
// number of worker threads and malloc arena reuse — jobs=1 vs jobs=4 would
// never be byte-identical. Instead every byte-heavy component (RIB storage,
// the attribute intern pool, flow tables, speaker relay RIBs) reports into a
// MemStats snapshot using a fixed allocation model: container footprints are
// computed from element counts and capacities with the node-size formulas
// below, so the reported numbers depend only on the simulated workload.
//
// The model (documented in DESIGN.md §14): every heap block pays the payload
// rounded up to 16 bytes plus a 16-byte allocator header; a red-black tree
// node carries 32 bytes of tree overhead, a hash node 16 bytes (next pointer
// + cached hash), and a hash table one 8-byte bucket pointer per element.
// These match libstdc++ on a 64-bit glibc closely enough to compare layouts
// honestly while staying exactly reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgpsdn::core {

/// Bytes charged for one heap block with `payload` bytes of content.
constexpr std::uint64_t alloc_block_bytes(std::uint64_t payload) {
  return ((payload + 15) / 16) * 16 + 16;
}

/// One std::map / std::set node holding a value of `value_bytes`.
constexpr std::uint64_t rb_node_bytes(std::uint64_t value_bytes) {
  return alloc_block_bytes(32 + value_bytes);
}

/// One std::unordered_map node holding a value of `value_bytes`.
constexpr std::uint64_t hash_node_bytes(std::uint64_t value_bytes) {
  return alloc_block_bytes(16 + value_bytes);
}

/// The bucket array of an unordered container with `elements` entries
/// (libstdc++ keeps the load factor at 1.0).
constexpr std::uint64_t hash_buckets_bytes(std::uint64_t elements) {
  return (elements | 1) * 8;
}

/// One byte-accounting snapshot. Categories are cumulative across the
/// entities that report into them (all routers' Adj-RIBs-In sum into
/// `rib_in`, ...); RIB categories report high-water marks, the rest report
/// the footprint at collection time.
struct MemStats {
  std::uint64_t rib_in{0};        ///< Adj-RIB-In candidate storage (peak).
  std::uint64_t loc_rib{0};       ///< Loc-RIB winner storage (peak).
  std::uint64_t rib_out{0};       ///< Adj-RIB-Out advertised state (peak).
  std::uint64_t attr_pool{0};     ///< Live interned attribute bundles.
  /// Shared attribute-handle registry of the compact layouts (one per
  /// simulation). Scales with distinct bundles like attr_pool, not with
  /// (prefix x peer) entries like the RIB categories, so it is reported on
  /// its own axis. Zero under the reference layout, whose 16-byte inline
  /// handles are charged to the RIB categories instead.
  std::uint64_t attr_registry{0};
  std::uint64_t flow_tables{0};   ///< SDN flow tables + lookup index.
  std::uint64_t speaker_ribs{0};  ///< Cluster speaker per-peering relay RIBs.

  /// The tentpole number: bytes held by the three RIB stages.
  constexpr std::uint64_t rib_total() const {
    return rib_in + loc_rib + rib_out;
  }
  constexpr std::uint64_t total() const {
    return rib_total() + attr_pool + attr_registry + flow_tables +
           speaker_ribs;
  }

  MemStats& operator+=(const MemStats& o) {
    rib_in += o.rib_in;
    loc_rib += o.loc_rib;
    rib_out += o.rib_out;
    attr_pool += o.attr_pool;
    attr_registry += o.attr_registry;
    flow_tables += o.flow_tables;
    speaker_ribs += o.speaker_ribs;
    return *this;
  }
};

}  // namespace bgpsdn::core
