#include "core/time.hpp"

#include <cstdio>

namespace bgpsdn::core {

std::string Duration::to_string() const {
  char buf[48];
  const std::int64_t ns = ns_;
  const std::int64_t mag = ns < 0 ? -ns : ns;
  if (mag >= 1'000'000'000 || mag == 0) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (mag >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (mag >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6fs", static_cast<double>(ns_) / 1e9);
  return buf;
}

}  // namespace bgpsdn::core
