// Structured event logging.
//
// The paper's framework ships "tools for automatic log file analysis"; here
// every component emits typed records into a Logger, and analysis tools
// (convergence detection, route-change tracking) consume the same records
// instead of re-parsing text.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace bgpsdn::core {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

const char* to_string(LogLevel level);

/// One log record. `component` identifies the emitter ("bgp.AS3", "ctrl"),
/// `event` is a stable machine-readable tag ("update_rx", "flow_mod"), and
/// `detail` is free text for humans.
struct LogRecord {
  TimePoint when;
  LogLevel level{LogLevel::kInfo};
  std::string component;
  std::string event;
  std::string detail;

  std::string to_string() const;
};

/// Collects records; optionally mirrors them to a stream and/or forwards to
/// registered sinks. Retention can be disabled for long benchmark runs.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  void log(TimePoint when, LogLevel level, std::string component,
           std::string event, std::string detail = {});

  /// Records below this level are dropped entirely.
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Keep records in memory (default true). Sinks still fire when disabled.
  void set_retain(bool retain) { retain_ = retain; }

  /// Mirror records to a stream (nullptr to disable).
  void set_echo(std::ostream* os) { echo_ = os; }

  /// Register a sink; returns an id for remove_sink.
  std::size_t add_sink(Sink sink);
  void remove_sink(std::size_t id);

  const std::vector<LogRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All retained records matching an event tag (and optionally a component
  /// prefix), in time order.
  std::vector<LogRecord> filter(const std::string& event,
                                const std::string& component_prefix = {}) const;

  /// Count of retained records with the given event tag.
  std::size_t count(const std::string& event) const;

 private:
  LogLevel min_level_{LogLevel::kInfo};
  bool retain_{true};
  std::ostream* echo_{nullptr};
  std::vector<LogRecord> records_;
  std::vector<Sink> sinks_;  // removed sinks become empty std::function
};

}  // namespace bgpsdn::core
