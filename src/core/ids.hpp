// Strongly-typed identifiers.
//
// The framework wires many entity kinds together (nodes, links, ports, ASes,
// BGP sessions, flows). Tag types prevent an AS number from silently flowing
// into a slot expecting a link id.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace bgpsdn::core {

/// A value-semantic integer id with a phantom Tag. Ids are allocated by the
/// owning registry (Network, Experiment, ...) and are dense from zero unless
/// documented otherwise.
template <typename Tag, typename Rep = std::uint32_t>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(Rep v) : v_{v} {}

  static constexpr Id invalid() { return Id{static_cast<Rep>(-1)}; }
  constexpr bool is_valid() const { return v_ != static_cast<Rep>(-1); }

  constexpr Rep value() const { return v_; }
  constexpr auto operator<=>(const Id&) const = default;

  std::string to_string() const { return std::to_string(v_); }

 private:
  Rep v_{static_cast<Rep>(-1)};
};

/// Dense id allocator for one Tag, owned by the registry that scopes the
/// ids (a Network for sessions, an Experiment for nodes, ...). Keeping the
/// counter inside the owning object — never in a global or function-local
/// static — is what lets many simulations run concurrently in one process
/// while each still hands out the same id sequence for the same build order.
template <typename Tag, typename Rep = std::uint32_t>
class IdAllocator {
 public:
  Id<Tag, Rep> allocate() { return Id<Tag, Rep>{next_++}; }

  /// Ids handed out so far.
  Rep allocated() const { return next_; }

 private:
  Rep next_{0};
};

struct NodeTag {};
struct LinkTag {};
struct PortTag {};
struct SessionTag {};
struct TimerTag {};

using NodeId = Id<NodeTag>;
using LinkId = Id<LinkTag>;
/// Port numbers are local to a node; 0-based.
using PortId = Id<PortTag>;
using SessionId = Id<SessionTag>;
using SessionIdAllocator = IdAllocator<SessionTag>;
using TimerId = Id<TimerTag, std::uint64_t>;

/// Autonomous System number. Not an Id: AS numbers are externally assigned
/// (by topology files or generators), not densely allocated.
class AsNumber {
 public:
  constexpr AsNumber() = default;
  constexpr explicit AsNumber(std::uint32_t v) : v_{v} {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const AsNumber&) const = default;

  std::string to_string() const { return "AS" + std::to_string(v_); }

 private:
  std::uint32_t v_{0};
};

}  // namespace bgpsdn::core

namespace std {
template <typename Tag, typename Rep>
struct hash<bgpsdn::core::Id<Tag, Rep>> {
  size_t operator()(const bgpsdn::core::Id<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
template <>
struct hash<bgpsdn::core::AsNumber> {
  size_t operator()(const bgpsdn::core::AsNumber& as) const noexcept {
    return std::hash<std::uint32_t>{}(as.value());
  }
};
}  // namespace std
