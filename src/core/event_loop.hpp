// Discrete-event scheduler.
//
// The single-threaded event loop is the heart of the emulation: every link
// delivery, protocol timer, and controller recomputation is an event. Events
// at the same instant fire in the order they were scheduled (FIFO), which
// keeps runs deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace bgpsdn::core {

/// Cooperative single-threaded discrete-event loop (the POX analogue:
/// "due to simplifications such as cooperative multitasking, we can focus
/// more on research questions than on state consistency").
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time. Monotonically non-decreasing.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at `now() + delay`. Negative delays clamp to zero.
  /// Returns a handle usable with cancel().
  TimerId schedule(Duration delay, Callback cb);

  /// Schedule at an absolute time point (must not be in the past; clamps to
  /// now if it is).
  TimerId schedule_at(TimePoint when, Callback cb);

  /// Cancel a pending timer. Cancelling an already-fired or already-cancelled
  /// timer is a no-op. Returns true if the timer was pending.
  bool cancel(TimerId id);

  bool is_pending(TimerId id) const { return cancelled_.count(id.value()) == 0 && pending_ids_.count(id.value()) > 0; }

  /// Number of events still queued (including cancelled tombstones' live peers).
  std::size_t pending_events() const { return pending_ids_.size(); }

  /// Run until the queue is empty or `until` is reached, whichever is first.
  /// Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Run at most one event; returns false if the queue was empty or the next
  /// event lies beyond `until`.
  bool step(TimePoint until = TimePoint::max());

  /// Advance the clock to `when` executing everything due on the way. Unlike
  /// run(), always leaves now() == when even if the queue drains early.
  void advance_to(TimePoint when);

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_{TimePoint::origin()};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t executed_{0};
};

}  // namespace bgpsdn::core
