// Discrete-event scheduler.
//
// The single-threaded event loop is the heart of the emulation: every link
// delivery, protocol timer, and controller recomputation is an event. Events
// at the same instant fire in the order they were scheduled (FIFO), which
// keeps runs deterministic for a given seed.
//
// Hot-path design (see DESIGN.md §9):
//  - Callbacks are core::SmallFunc — captures up to 64 bytes live inline in
//    a slab slot, so scheduling a typical timer performs no allocation.
//  - The timer queue is an implicit 4-ary min-heap of 24-byte POD entries
//    (time, seq, slot): sift operations never move callbacks, and the wider
//    fan-out halves the sift-down depth on the pop-dominated fire path.
//  - A timer's slab slot is found by index straight from its TimerId
//    (slot index + reuse generation packed into the 64-bit value), so
//    cancel() and is_pending() are O(1) array reads instead of hash-set
//    operations, and cancel() frees the callback's captures immediately.
//  - Cancelled entries stay in the heap as tombstones, but the heap is
//    compacted whenever tombstones outnumber live entries and slots are
//    recycled through a free list — long cancel-heavy runs (fault/chaos
//    plans re-arming hold timers forever) stay bounded.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/function.hpp"
#include "core/ids.hpp"
#include "core/time.hpp"

namespace bgpsdn::core {

/// Cooperative single-threaded discrete-event loop (the POX analogue:
/// "due to simplifications such as cooperative multitasking, we can focus
/// more on research questions than on state consistency").
class EventLoop {
 public:
  using Callback = SmallFunc;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time. Monotonically non-decreasing.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at `now() + delay`. Negative delays clamp to zero.
  /// Returns a handle usable with cancel().
  TimerId schedule(Duration delay, Callback cb);

  /// Schedule at an absolute time point (must not be in the past; clamps to
  /// now if it is).
  TimerId schedule_at(TimePoint when, Callback cb);

  /// Cancel a pending timer. Cancelling an already-fired or already-cancelled
  /// timer is a no-op. Returns true if the timer was pending (its callback —
  /// and any resources the captures hold — is destroyed immediately).
  bool cancel(TimerId id);

  bool is_pending(TimerId id) const;

  /// Number of events still pending (cancelled tombstones excluded).
  std::size_t pending_events() const { return live_; }

  /// Run until the queue is empty or `until` is reached, whichever is first.
  /// Returns the number of events executed.
  std::size_t run(TimePoint until = TimePoint::max());

  /// Run at most one event; returns false if the queue was empty or the next
  /// event lies beyond `until`.
  bool step(TimePoint until = TimePoint::max());

  /// Advance the clock to `when` executing everything due on the way. Unlike
  /// run(), always leaves now() == when even if the queue drains early.
  void advance_to(TimePoint when);

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Heap entries currently held, including cancelled tombstones awaiting
  /// compaction. Exposed so tests can assert the tombstone bound.
  std::size_t queued_entries() const { return heap_.size(); }

  /// Slab capacity (high-water mark of concurrently tracked timers).
  /// Bounded by peak live + tombstones, not by how many timers ever
  /// existed; exposed for the churn regression test.
  std::size_t slots_allocated() const { return slot_count_; }

 private:
  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  /// One tracked timer. Slots are recycled through a free list; the
  /// generation distinguishes a reused slot from stale TimerId handles.
  struct Slot {
    Callback cb;
    std::uint32_t generation{0};
    SlotState state{SlotState::kFree};
  };

  /// 16-byte heap entry: four children share a cache line during sifts.
  /// `seq` provides the FIFO tiebreak for simultaneous events; it is 32-bit
  /// but the counter resets every time the heap drains, so a wrap would need
  /// 2^32 events in flight at once without the queue ever emptying.
  struct Entry {
    std::int64_t when_ns;
    std::uint32_t seq;
    std::uint32_t slot;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq < b.seq;
  }

  /// Slots live in fixed-size chunks so growth never relocates a callback
  /// (and outstanding Slot addresses stay stable while callbacks run).
  static constexpr std::size_t kSlabShift = 8;
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;

  static std::uint64_t pack(std::uint32_t slot, std::uint32_t generation) {
    return (std::uint64_t{generation} << 32) | slot;
  }
  Slot& slot_at(std::size_t index) {
    return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
  }
  const Slot& slot_at(std::size_t index) const {
    return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
  }
  /// Return a slot to the free list (bumping its generation so outstanding
  /// TimerIds go stale).
  void release_slot(std::uint32_t index);
  /// Rebuild the heap without cancelled tombstones.
  void compact();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Remove the root entry (heap must be non-empty).
  void pop_root();

  TimePoint now_{TimePoint::origin()};
  std::vector<Entry> heap_;  // implicit 4-ary min-heap ordered by earlier()
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::size_t slot_count_{0};
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_{0};        // entries in the heap still pending
  std::size_t tombstones_{0};  // cancelled entries still in the heap
  std::uint32_t next_seq_{0};
  std::uint64_t executed_{0};
};

}  // namespace bgpsdn::core
