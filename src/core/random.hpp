// Deterministic randomness.
//
// Every experiment run derives all jitter (MRAI timers, processing delays,
// loss draws) from one seeded generator, so a (topology, scenario, seed)
// triple fully determines the trace. Trials vary the seed.
#pragma once

#include <cstdint>
#include <random>

#include "core/time.hpp"

namespace bgpsdn::core {

/// Seeded pseudo-random source with networking-flavoured helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_{seed} {}

  /// Re-seed; resets the stream.
  void seed(std::uint64_t s) { engine_.seed(s); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Duration uniformly drawn from [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::nanos(uniform_int(lo.count_nanos(), hi.count_nanos()));
  }

  /// Jittered duration in [base*lo_frac, base*hi_frac]. Quagga applies
  /// 0.75–1.0 jitter to MRAI and keepalive timers; that is the default.
  Duration jittered(Duration base, double lo_frac = 0.75, double hi_frac = 1.0) {
    const double f = uniform(lo_frac, hi_frac);
    return base * f;
  }

  /// Exponentially distributed duration with the given mean.
  Duration exponential(Duration mean) {
    std::exponential_distribution<double> d{1.0};
    return mean * d(engine_);
  }

  /// Derive an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork() { return Rng{engine_()}; }

  std::mt19937_64& engine() { return engine_; }

 private:
  // lint: random-ok(always seeded via the constructor initializer from an
  // explicit trial seed; never default-initialized)
  std::mt19937_64 engine_;
};

}  // namespace bgpsdn::core
