#include "topology/datasets.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "topology/generators.hpp"

namespace bgpsdn::topology {

namespace {

std::uint32_t parse_u32(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(s, &pos);
    if (pos != s.size() || v > 0xffffffffull) throw std::invalid_argument{""};
    return static_cast<std::uint32_t>(v);
  } catch (...) {
    throw std::invalid_argument{"bad number '" + s + "' in " + context};
  }
}

}  // namespace

TopologySpec parse_caida(std::istream& in) {
  TopologySpec spec;
  spec.policy_mode = bgp::PolicyMode::kGaoRexford;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto context = "caida line " + std::to_string(line_no);
    std::istringstream ls{line};
    std::string f1, f2, f3;
    if (!std::getline(ls, f1, '|') || !std::getline(ls, f2, '|') ||
        !std::getline(ls, f3, '|')) {
      throw std::invalid_argument{"malformed " + context + ": '" + line + "'"};
    }
    const core::AsNumber a{parse_u32(f1, context)};
    const core::AsNumber b{parse_u32(f2, context)};
    // Some serial-1 files carry a trailing source field after the
    // relationship; stoul-with-pos rejects it, so trim at whitespace.
    if (const auto ws = f3.find_first_of(" \t\r"); ws != std::string::npos) {
      f3.resize(ws);
    }
    bgp::Relationship rel;
    if (f3 == "-1") {
      rel = bgp::Relationship::kCustomer;  // a is provider: a sees b as customer
    } else if (f3 == "0") {
      rel = bgp::Relationship::kPeer;
    } else {
      throw std::invalid_argument{"bad relationship '" + f3 + "' in " + context};
    }
    spec.add_as(a);
    spec.add_as(b);
    if (!spec.has_link(a, b)) spec.add_link(a, b, rel);
  }
  spec.validate();
  return spec;
}

TopologySpec parse_caida_text(const std::string& text) {
  std::istringstream in{text};
  return parse_caida(in);
}

std::string to_caida_text(const TopologySpec& spec) {
  std::string out = "# bgpsdn serial-1 export\n";
  for (const auto& l : spec.links) {
    out += std::to_string(l.a.value());
    out += '|';
    out += std::to_string(l.b.value());
    out += '|';
    switch (l.a_sees_b) {
      case bgp::Relationship::kCustomer:
        out += "-1";  // a provider of b
        break;
      case bgp::Relationship::kPeer:
        out += "0";
        break;
      case bgp::Relationship::kProvider:
        // Normalize: emit as provider|customer.
        out.resize(out.size() - (std::to_string(l.a.value()).size() +
                                 std::to_string(l.b.value()).size() + 2));
        out += std::to_string(l.b.value());
        out += '|';
        out += std::to_string(l.a.value());
        out += "|-1";
        break;
    }
    out += '\n';
  }
  return out;
}

TopologySpec parse_iplane(std::istream& in) {
  TopologySpec spec;
  // Collapse PoP pairs to AS pairs keeping the minimum RTT.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> min_rtt;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto context = "iplane line " + std::to_string(line_no);
    std::istringstream ls{line};
    std::string pop_a, pop_b;
    double rtt = 0.0;
    if (!(ls >> pop_a >> pop_b >> rtt)) {
      throw std::invalid_argument{"malformed " + context + ": '" + line + "'"};
    }
    const auto parse_pop = [&](const std::string& pop) {
      const auto comma = pop.find(',');
      if (comma == std::string::npos) {
        throw std::invalid_argument{"bad pop '" + pop + "' in " + context};
      }
      return parse_u32(pop.substr(0, comma), context);
    };
    const std::uint32_t as_a = parse_pop(pop_a);
    const std::uint32_t as_b = parse_pop(pop_b);
    if (as_a == as_b) continue;  // intra-AS PoP link: invisible at AS level
    const auto key = std::minmax(as_a, as_b);
    const auto it = min_rtt.find({key.first, key.second});
    if (it == min_rtt.end() || rtt < it->second) {
      min_rtt[{key.first, key.second}] = rtt;
    }
  }
  for (const auto& [pair, rtt] : min_rtt) {
    const core::AsNumber a{pair.first};
    const core::AsNumber b{pair.second};
    spec.add_as(a);
    spec.add_as(b);
    // One-way delay ~ RTT/2.
    spec.add_link(a, b, bgp::Relationship::kPeer,
                  core::Duration::seconds_f(rtt / 2.0 / 1000.0));
  }
  spec.validate();
  return spec;
}

TopologySpec parse_iplane_text(const std::string& text) {
  std::istringstream in{text};
  return parse_iplane(in);
}

std::string synthesize_caida_text(std::size_t ases, core::Rng& rng) {
  // Carve the AS count into the three tiers of the internet_like generator.
  InternetLikeParams params;
  params.tier1 = std::max<std::size_t>(2, ases / 12);
  params.transit = std::max<std::size_t>(2, ases / 4);
  params.stubs = ases > params.tier1 + params.transit
                     ? ases - params.tier1 - params.transit
                     : 1;
  const TopologySpec spec = internet_like(params, rng);
  return "# synthesized CAIDA-like as-rel (serial-1)\n" + to_caida_text(spec);
}

std::string synthesize_iplane_text(const TopologySpec& spec, core::Rng& rng) {
  std::string out = "# synthesized iPlane-like inter-PoP links\n";
  for (const auto& l : spec.links) {
    const int pairs = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < pairs; ++i) {
      const auto pop_a = rng.uniform_int(0, 2);
      const auto pop_b = rng.uniform_int(0, 2);
      const double rtt = rng.uniform(2.0, 80.0);
      char buf[96];
      std::snprintf(buf, sizeof buf, "%u,%lld %u,%lld %.2f\n", l.a.value(),
                    static_cast<long long>(pop_a), l.b.value(),
                    static_cast<long long>(pop_b), rtt);
      out += buf;
    }
  }
  return out;
}

TopologySpec merge_relationships(const TopologySpec& base,
                                 const TopologySpec& rel) {
  TopologySpec out;
  out.policy_mode = bgp::PolicyMode::kGaoRexford;
  for (const auto as : base.ases) out.add_as(as);
  for (const auto& l : base.links) {
    bgp::Relationship r = bgp::Relationship::kPeer;
    for (const auto& rl : rel.links) {
      if (rl.a == l.a && rl.b == l.b) {
        r = rl.a_sees_b;
        break;
      }
      if (rl.a == l.b && rl.b == l.a) {
        r = bgp::reverse(rl.a_sees_b);
        break;
      }
    }
    out.add_link(l.a, l.b, r, l.delay);
  }
  return out;
}

}  // namespace bgpsdn::topology
