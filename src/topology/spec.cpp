#include "topology/spec.hpp"

#include <algorithm>
#include <set>

namespace bgpsdn::topology {

void TopologySpec::add_as(core::AsNumber as) {
  if (!has_as(as)) ases.push_back(as);
}

bool TopologySpec::has_as(core::AsNumber as) const {
  return std::find(ases.begin(), ases.end(), as) != ases.end();
}

void TopologySpec::add_link(core::AsNumber a, core::AsNumber b,
                            bgp::Relationship a_sees_b,
                            std::optional<core::Duration> delay) {
  if (a == b) throw std::invalid_argument{"self-loop on " + a.to_string()};
  if (!has_as(a) || !has_as(b)) {
    throw std::invalid_argument{"link endpoints must be added first: " +
                                a.to_string() + " <-> " + b.to_string()};
  }
  if (has_link(a, b)) {
    throw std::invalid_argument{"duplicate link " + a.to_string() + " <-> " +
                                b.to_string()};
  }
  links.push_back(LinkSpec{a, b, a_sees_b, delay});
}

bool TopologySpec::has_link(core::AsNumber a, core::AsNumber b) const {
  return std::any_of(links.begin(), links.end(), [&](const LinkSpec& l) {
    return (l.a == a && l.b == b) || (l.a == b && l.b == a);
  });
}

std::size_t TopologySpec::degree(core::AsNumber as) const {
  std::size_t n = 0;
  for (const auto& l : links) {
    if (l.a == as || l.b == as) ++n;
  }
  return n;
}

void TopologySpec::validate() const {
  std::set<core::AsNumber> seen;
  for (const auto as : ases) {
    if (!seen.insert(as).second) {
      throw std::invalid_argument{"duplicate AS " + as.to_string()};
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& l : links) {
    if (seen.count(l.a) == 0 || seen.count(l.b) == 0) {
      throw std::invalid_argument{"link references unknown AS"};
    }
    if (l.a == l.b) throw std::invalid_argument{"self-loop"};
    const std::pair<std::uint32_t, std::uint32_t> key{
        std::min(l.a.value(), l.b.value()), std::max(l.a.value(), l.b.value())};
    if (!edges.insert(key).second) {
      throw std::invalid_argument{"duplicate link " + l.a.to_string() + " <-> " +
                                  l.b.to_string()};
    }
  }
}

std::string TopologySpec::summary() const {
  return std::to_string(ases.size()) + " ASes, " + std::to_string(links.size()) +
         " links, " +
         (policy_mode == bgp::PolicyMode::kFullTransit ? "full-transit"
                                                       : "gao-rexford");
}

}  // namespace bgpsdn::topology
