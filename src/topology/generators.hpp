// Artificial topology generators ("theoretical models").
//
// All generators number ASes 1..n (offset by `base_as`) and produce
// validated specs. Random models take an explicit Rng so experiments stay
// reproducible.
#pragma once

#include <cstdint>

#include "core/random.hpp"
#include "topology/spec.hpp"

namespace bgpsdn::topology {

/// Full mesh of n ASes — the paper's evaluation topology (16-node clique).
TopologySpec clique(std::size_t n, std::uint32_t base_as = 1);

/// Path 1-2-...-n.
TopologySpec line(std::size_t n, std::uint32_t base_as = 1);

/// Cycle.
TopologySpec ring(std::size_t n, std::uint32_t base_as = 1);

/// AS 1 is the hub.
TopologySpec star(std::size_t n, std::uint32_t base_as = 1);

/// Complete binary tree with `depth` levels (>=1); parents are providers.
TopologySpec binary_tree(std::size_t depth, std::uint32_t base_as = 1);

/// Erdős–Rényi G(n, p); a spanning backbone ring guarantees connectivity.
TopologySpec erdos_renyi(std::size_t n, double p, core::Rng& rng,
                         std::uint32_t base_as = 1);

/// Barabási–Albert preferential attachment, m edges per new node.
TopologySpec barabasi_albert(std::size_t n, std::size_t m, core::Rng& rng,
                             std::uint32_t base_as = 1);

/// A CAIDA-like three-tier Internet: a clique of tier-1 ASes peering with
/// each other, mid-tier transit ASes multihomed to tier-1 providers and
/// peering laterally, and stub ASes buying from transit providers.
/// Relationships are set for valley-free (Gao-Rexford) routing.
struct InternetLikeParams {
  std::size_t tier1{4};
  std::size_t transit{12};
  std::size_t stubs{32};
  /// Providers per transit / stub AS.
  std::size_t transit_uplinks{2};
  std::size_t stub_uplinks{2};
  /// Probability of a lateral peer link between two transit ASes.
  double transit_peer_prob{0.2};
};
TopologySpec internet_like(const InternetLikeParams& params, core::Rng& rng,
                           std::uint32_t base_as = 1);

}  // namespace bgpsdn::topology
