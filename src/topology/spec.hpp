// TopologySpec — the declarative description of an experiment's AS graph.
//
// "The topologies can be either artificial or built from the iPlane
// Inter-PoP links and the CAIDA AS Relationship datasets." A spec lists the
// ASes and their links with business relationships; generators and dataset
// parsers all produce this one type, and the framework's Experiment builder
// consumes it.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bgp/policy.hpp"
#include "bgp/types.hpp"
#include "core/ids.hpp"
#include "core/time.hpp"

namespace bgpsdn::topology {

struct LinkSpec {
  core::AsNumber a;
  core::AsNumber b;
  /// The relationship of b as seen from a (a's view). kCustomer means b is
  /// a's customer, i.e. a is b's provider.
  bgp::Relationship a_sees_b{bgp::Relationship::kPeer};
  /// Propagation delay override; the experiment default applies when unset.
  std::optional<core::Duration> delay;
};

struct TopologySpec {
  std::vector<core::AsNumber> ases;
  std::vector<LinkSpec> links;
  /// Policy mode applied to every peering built from this spec.
  bgp::PolicyMode policy_mode{bgp::PolicyMode::kFullTransit};

  void add_as(core::AsNumber as);
  bool has_as(core::AsNumber as) const;

  /// Add a link; both endpoints must already exist; duplicates rejected.
  void add_link(core::AsNumber a, core::AsNumber b,
                bgp::Relationship a_sees_b = bgp::Relationship::kPeer,
                std::optional<core::Duration> delay = std::nullopt);

  bool has_link(core::AsNumber a, core::AsNumber b) const;
  std::size_t degree(core::AsNumber as) const;

  /// Sanity checks (endpoints exist, no self-loops/duplicates); throws
  /// std::invalid_argument with a description on failure.
  void validate() const;

  /// Human-readable summary ("16 ASes, 120 links, full-transit").
  std::string summary() const;
};

}  // namespace bgpsdn::topology
