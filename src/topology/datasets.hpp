// Measured-Internet dataset support: CAIDA AS relationships and iPlane
// inter-PoP links.
//
// The real datasets are not redistributable here, so alongside the parsers
// we ship synthesizers that emit files in the exact same formats; the
// parse -> spec -> emulation code path is identical either way (documented
// substitution, see DESIGN.md).
//
// CAIDA serial-1 format (as-rel):   <provider-as>|<customer-as>|-1
//                                   <peer-as>|<peer-as>|0
//   '#' lines are comments.
//
// iPlane inter-PoP links format:    <asn1>,<pop1> <asn2>,<pop2> <rtt_ms>
//   Every PoP belongs to an AS; since the framework emulates one device per
//   AS, PoP pairs collapse to AS adjacencies and the minimum RTT observed
//   for an AS pair becomes the link delay.
#pragma once

#include <iosfwd>
#include <string>

#include "core/random.hpp"
#include "topology/spec.hpp"

namespace bgpsdn::topology {

/// Parse CAIDA serial-1 relationship text. Throws std::invalid_argument on
/// malformed lines. The resulting spec uses Gao-Rexford policies.
TopologySpec parse_caida(std::istream& in);
TopologySpec parse_caida_text(const std::string& text);

/// Serialize a spec back to CAIDA serial-1 (relationship info only).
std::string to_caida_text(const TopologySpec& spec);

/// Parse iPlane inter-PoP link text. PoPs collapse to ASes; relationships
/// default to peer (the dataset has no business relationships), so combine
/// with CAIDA for policy if needed.
TopologySpec parse_iplane(std::istream& in);
TopologySpec parse_iplane_text(const std::string& text);

/// Synthesize a CAIDA-like dataset (hierarchical, power-law-ish) as
/// serial-1 text; `ases` is the approximate AS count.
std::string synthesize_caida_text(std::size_t ases, core::Rng& rng);

/// Synthesize an iPlane-like inter-PoP dump for the given spec: each AS
/// gets 1-3 PoPs, each AS link becomes 1-2 PoP pairs with plausible RTTs.
std::string synthesize_iplane_text(const TopologySpec& spec, core::Rng& rng);

/// Merge relationships from `rel` (CAIDA) onto the adjacency of `base`
/// (iPlane): links present in both keep base delays and gain relationships;
/// links only in `base` stay peer links. The result uses Gao-Rexford mode.
TopologySpec merge_relationships(const TopologySpec& base, const TopologySpec& rel);

}  // namespace bgpsdn::topology
