#include "topology/generators.hpp"

#include <algorithm>
#include <vector>

namespace bgpsdn::topology {

namespace {

core::AsNumber as_at(std::uint32_t base, std::size_t i) {
  return core::AsNumber{base + static_cast<std::uint32_t>(i)};
}

TopologySpec with_ases(std::size_t n, std::uint32_t base) {
  TopologySpec spec;
  for (std::size_t i = 0; i < n; ++i) spec.add_as(as_at(base, i));
  return spec;
}

}  // namespace

TopologySpec clique(std::size_t n, std::uint32_t base_as) {
  TopologySpec spec = with_ases(n, base_as);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      spec.add_link(as_at(base_as, i), as_at(base_as, j));
    }
  }
  return spec;
}

TopologySpec line(std::size_t n, std::uint32_t base_as) {
  TopologySpec spec = with_ases(n, base_as);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    spec.add_link(as_at(base_as, i), as_at(base_as, i + 1));
  }
  return spec;
}

TopologySpec ring(std::size_t n, std::uint32_t base_as) {
  TopologySpec spec = line(n, base_as);
  if (n > 2) spec.add_link(as_at(base_as, n - 1), as_at(base_as, 0));
  return spec;
}

TopologySpec star(std::size_t n, std::uint32_t base_as) {
  TopologySpec spec = with_ases(n, base_as);
  for (std::size_t i = 1; i < n; ++i) {
    // Hub is the provider of every leaf.
    spec.add_link(as_at(base_as, 0), as_at(base_as, i),
                  bgp::Relationship::kCustomer);
  }
  return spec;
}

TopologySpec binary_tree(std::size_t depth, std::uint32_t base_as) {
  const std::size_t n = (std::size_t{1} << depth) - 1;
  TopologySpec spec = with_ases(n, base_as);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = (i - 1) / 2;
    spec.add_link(as_at(base_as, parent), as_at(base_as, i),
                  bgp::Relationship::kCustomer);
  }
  return spec;
}

TopologySpec erdos_renyi(std::size_t n, double p, core::Rng& rng,
                         std::uint32_t base_as) {
  TopologySpec spec = ring(n, base_as);  // connectivity backbone
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto a = as_at(base_as, i);
      const auto b = as_at(base_as, j);
      if (spec.has_link(a, b)) continue;
      if (rng.chance(p)) spec.add_link(a, b);
    }
  }
  return spec;
}

TopologySpec barabasi_albert(std::size_t n, std::size_t m, core::Rng& rng,
                             std::uint32_t base_as) {
  TopologySpec spec = with_ases(n, base_as);
  if (n == 0) return spec;
  // Seed: clique over the first m+1 nodes (or all of them if n is small).
  const std::size_t seed = std::min(n, m + 1);
  std::vector<std::size_t> endpoint_bag;  // one entry per link endpoint
  for (std::size_t i = 0; i < seed; ++i) {
    for (std::size_t j = i + 1; j < seed; ++j) {
      spec.add_link(as_at(base_as, i), as_at(base_as, j));
      endpoint_bag.push_back(i);
      endpoint_bag.push_back(j);
    }
  }
  for (std::size_t i = seed; i < n; ++i) {
    std::size_t attached = 0;
    std::size_t guard = 0;
    while (attached < m && guard < 100 * m) {
      ++guard;
      const std::size_t pick = endpoint_bag.empty()
                                   ? 0
                                   : endpoint_bag[static_cast<std::size_t>(
                                         rng.uniform_int(0, static_cast<std::int64_t>(
                                                                endpoint_bag.size()) -
                                                                1))];
      const auto a = as_at(base_as, i);
      const auto b = as_at(base_as, pick);
      if (a == b || spec.has_link(a, b)) continue;
      spec.add_link(a, b);
      endpoint_bag.push_back(i);
      endpoint_bag.push_back(pick);
      ++attached;
    }
  }
  return spec;
}

TopologySpec internet_like(const InternetLikeParams& params, core::Rng& rng,
                           std::uint32_t base_as) {
  TopologySpec spec;
  spec.policy_mode = bgp::PolicyMode::kGaoRexford;
  const std::size_t total = params.tier1 + params.transit + params.stubs;
  for (std::size_t i = 0; i < total; ++i) spec.add_as(as_at(base_as, i));

  const auto tier1_as = [&](std::size_t i) { return as_at(base_as, i); };
  const auto transit_as = [&](std::size_t i) {
    return as_at(base_as, params.tier1 + i);
  };
  const auto stub_as = [&](std::size_t i) {
    return as_at(base_as, params.tier1 + params.transit + i);
  };

  // Tier-1 full-mesh peering.
  for (std::size_t i = 0; i < params.tier1; ++i) {
    for (std::size_t j = i + 1; j < params.tier1; ++j) {
      spec.add_link(tier1_as(i), tier1_as(j), bgp::Relationship::kPeer);
    }
  }
  // Transit ASes buy from `transit_uplinks` distinct tier-1 providers.
  for (std::size_t i = 0; i < params.transit; ++i) {
    const std::size_t uplinks = std::min(params.transit_uplinks, params.tier1);
    std::size_t first = params.tier1 == 0
                            ? 0
                            : static_cast<std::size_t>(rng.uniform_int(
                                  0, static_cast<std::int64_t>(params.tier1) - 1));
    for (std::size_t u = 0; u < uplinks; ++u) {
      const auto provider = tier1_as((first + u) % params.tier1);
      // Provider sees the transit AS as a customer.
      spec.add_link(provider, transit_as(i), bgp::Relationship::kCustomer);
    }
  }
  // Lateral transit peering.
  for (std::size_t i = 0; i < params.transit; ++i) {
    for (std::size_t j = i + 1; j < params.transit; ++j) {
      if (rng.chance(params.transit_peer_prob)) {
        spec.add_link(transit_as(i), transit_as(j), bgp::Relationship::kPeer);
      }
    }
  }
  // Stubs buy from transit providers (fall back to tier-1 when there is no
  // transit tier).
  for (std::size_t i = 0; i < params.stubs; ++i) {
    if (params.transit == 0 && params.tier1 == 0) break;
    const std::size_t pool = params.transit > 0 ? params.transit : params.tier1;
    const std::size_t uplinks = std::min(params.stub_uplinks, pool);
    std::size_t first = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool) - 1));
    for (std::size_t u = 0; u < uplinks; ++u) {
      const auto provider = params.transit > 0
                                ? transit_as((first + u) % pool)
                                : tier1_as((first + u) % pool);
      spec.add_link(provider, stub_as(i), bgp::Relationship::kCustomer);
    }
  }
  spec.validate();
  return spec;
}

}  // namespace bgpsdn::topology
