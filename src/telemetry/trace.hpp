// Trace spans stamped with virtual simulation time.
//
// A TraceSpan covers an interval of virtual time (start == end for instant
// events) in one component: a BGP UPDATE being received and processed, an
// MRAI window, a controller recompute batch, a session FSM transition, a
// flow-table mutation. Spans are only materialized when at least one sink
// is attached — the `tracing()` check is a single vector-emptiness test, so
// instrumented hot paths cost one branch when telemetry is off.
//
// Because spans carry virtual time only (never wall clock) and simulations
// are deterministic per seed, the span stream is byte-identical across
// BGPSDN_JOBS values and across machines.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/time.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace bgpsdn::telemetry {

struct TraceSpan {
  core::TimePoint start{};
  core::TimePoint end{};
  const char* category = "";  // span taxonomy: "bgp", "sdn", "ctrl", ...
  const char* name = "";      // e.g. "decision", "recompute_batch", "fsm"
  std::string component;      // emitting entity, e.g. "router-65001"
  std::vector<std::pair<std::string, Json>> args;

  TraceSpan() = default;
  TraceSpan(core::TimePoint s, core::TimePoint e, const char* cat,
            const char* n, std::string comp)
      : start{s}, end{e}, category{cat}, name{n}, component{std::move(comp)} {}

  /// Zero-duration span.
  static TraceSpan instant(core::TimePoint when, const char* cat,
                           const char* n, std::string comp) {
    return TraceSpan{when, when, cat, n, std::move(comp)};
  }

  TraceSpan& arg(std::string key, Json value) {
    args.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  core::Duration duration() const { return end - start; }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span(const TraceSpan& span) = 0;
};

/// Per-network telemetry hub: a metrics registry plus the trace fan-out.
/// Metrics are always on (plain integer adds); traces only flow while a
/// sink is attached.
class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// True when at least one trace sink is attached. Instrumentation must
  /// check this before building a span.
  bool tracing() const { return !sinks_.empty(); }

  /// Register a sink (not owned). Returns an id for remove_sink.
  std::size_t add_sink(TraceSink* sink) {
    sinks_.push_back(SinkEntry{next_id_, sink});
    return next_id_++;
  }

  void remove_sink(std::size_t id) {
    for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
      if (it->id == id) {
        sinks_.erase(it);
        return;
      }
    }
  }

  void emit(const TraceSpan& span) {
    for (const auto& entry : sinks_) entry.sink->on_span(span);
  }

 private:
  struct SinkEntry {
    std::size_t id;
    TraceSink* sink;
  };

  MetricsRegistry metrics_;
  std::vector<SinkEntry> sinks_;
  std::size_t next_id_ = 1;
};

}  // namespace bgpsdn::telemetry
