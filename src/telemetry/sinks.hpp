// Trace sinks: JSONL export of spans, bounded in memory.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace bgpsdn::telemetry {

/// Renders each span as one compact JSON line:
///   {"args":{...},"cat":"bgp","comp":"router-65001","dur_ns":0,
///    "name":"decision","t_ns":12000000}
/// Lines are buffered in memory (simulations are short); a cap bounds the
/// footprint and overflow is counted rather than silently swallowed.
class JsonlTraceSink final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultMaxSpans = 200000;

  explicit JsonlTraceSink(std::size_t max_spans = kDefaultMaxSpans)
      : max_spans_{max_spans} {}

  void on_span(const TraceSpan& span) override;

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t dropped() const { return dropped_; }

  /// All lines joined with trailing newlines — the .jsonl file body.
  std::string jsonl() const;

  void clear() {
    lines_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t max_spans_;
  std::vector<std::string> lines_;
  std::size_t dropped_ = 0;
};

/// Render one span as its JSONL line (used by the sink and by tests).
std::string span_to_jsonl(const TraceSpan& span);

}  // namespace bgpsdn::telemetry
