// Metrics: counters, gauges, and bounded-memory histograms.
//
// A MetricsRegistry is owned by each net::Network (plus any standalone user).
// Instruments are created on first use and live as long as the registry, so
// hot paths cache the returned pointer once and then do a single integer
// add per event — no map lookups, no allocation, no branches on sinks.
//
// Histograms use HDR-style log-linear buckets: each power-of-two range is
// split into 2^kSubBits linear sub-buckets, giving a fixed ~6% relative
// error on quantiles with a small fixed footprint regardless of how many
// samples are recorded. Exact count/sum/min/max are tracked separately.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/json.hpp"

namespace bgpsdn::telemetry {

class Counter {
 public:
  void inc(std::int64_t by = 1) { value_ += by; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t by) { value_ += by; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Histogram {
 public:
  // 16 linear sub-buckets per power-of-two range.
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubCount = 1u << kSubBits;

  /// Record a sample. Negative values are clamped to 0 (virtual durations
  /// are non-negative by construction; clamping keeps the bucket math total).
  void record(std::int64_t value);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper-bound estimate of the q-quantile (q in [0, 1]); exact at the
  /// extremes. Returns 0 for an empty histogram.
  std::int64_t quantile(double q) const;

  /// {count, sum, min, max, mean, p50, p90, p99, buckets:[[lower,count]..]}
  /// Only non-empty buckets are listed, so the document stays small.
  Json to_json() const;

  /// Bucket index for a (clamped non-negative) value — exposed for tests.
  static std::size_t bucket_index(std::int64_t value);
  /// Inclusive upper bound of the value range mapping to bucket `index`.
  static std::int64_t bucket_upper(std::size_t index);
  /// Inclusive lower bound of the value range mapping to bucket `index`.
  static std::int64_t bucket_lower(std::size_t index);

 private:
  // 63-bit values → (63 - kSubBits) power-of-two groups above the linear
  // range, each with kSubCount sub-buckets, plus the initial linear range.
  static constexpr std::size_t kBucketCount =
      kSubCount + (63 - kSubBits) * kSubCount;

  std::vector<std::uint64_t> buckets_;  // lazily sized, bounded by kBucketCount
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Name → instrument map with stable addresses (nodes never move).
///
/// Backed by hash maps with transparent string_view lookup: the common
/// "look up by name" call hashes the characters directly — no temporary
/// std::string, no tree walk. Snapshot determinism is unaffected because
/// Json objects sort their keys on insertion.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) { return slot(counters_, name); }
  Gauge& gauge(std::string_view name) { return slot(gauges_, name); }
  Histogram& histogram(std::string_view name) { return slot(histograms_, name); }

  const Counter* find_counter(std::string_view name) const {
    return find(counters_, name);
  }
  const Gauge* find_gauge(std::string_view name) const {
    return find(gauges_, name);
  }
  const Histogram* find_histogram(std::string_view name) const {
    return find(histograms_, name);
  }

  /// Sorted, deterministic snapshot:
  /// {counters:{name:value}, gauges:{name:value}, histograms:{name:{...}}}
  Json snapshot() const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename T>
  using Map =
      std::unordered_map<std::string, T, StringHash, std::equal_to<>>;

  template <typename T>
  T& slot(Map<T>& map, std::string_view name) {
    // Heterogeneous find avoids materialising a std::string on the hit
    // path; only a genuinely new instrument pays for the key copy.
    // unordered_map: rehashing never moves nodes, so addresses are stable.
    const auto it = map.find(name);
    if (it != map.end()) return it->second;
    return map.emplace(std::string{name}, T{}).first->second;
  }
  template <typename T>
  const T* find(const Map<T>& map, std::string_view name) const {
    const auto it = map.find(name);
    return it == map.end() ? nullptr : &it->second;
  }

  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
};

}  // namespace bgpsdn::telemetry
