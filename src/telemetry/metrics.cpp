#include "telemetry/metrics.hpp"

#include <algorithm>

namespace bgpsdn::telemetry {

std::size_t Histogram::bucket_index(std::int64_t value) {
  const auto v = static_cast<std::uint64_t>(value < 0 ? 0 : value);
  if (v < kSubCount) return static_cast<std::size_t>(v);
  const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
  const unsigned group = msb - kSubBits;  // 0 for the first log range
  const auto sub =
      static_cast<std::size_t>((v >> (msb - kSubBits)) - kSubCount);
  return (static_cast<std::size_t>(group) + 1) * kSubCount + sub;
}

std::int64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubCount) return static_cast<std::int64_t>(index);
  const std::size_t group = index / kSubCount - 1;
  const std::size_t sub = index % kSubCount;
  const std::uint64_t base = std::uint64_t{1} << (group + kSubBits);
  const std::uint64_t step = base >> kSubBits;
  return static_cast<std::int64_t>(base + sub * step);
}

std::int64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubCount) return static_cast<std::int64_t>(index);
  const std::size_t group = index / kSubCount - 1;
  const std::size_t sub = index % kSubCount;
  const std::uint64_t base = std::uint64_t{1} << (group + kSubBits);
  const std::uint64_t step = base >> kSubBits;
  return static_cast<std::int64_t>(base + (sub + 1) * step - 1);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j["count"] = static_cast<std::int64_t>(count_);
  j["sum"] = sum_;
  j["min"] = min();
  j["max"] = max();
  j["mean"] = mean();
  j["p50"] = quantile(0.50);
  j["p90"] = quantile(0.90);
  j["p99"] = quantile(0.99);
  Json buckets = Json::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Json entry = Json::array();
    entry.push_back(bucket_lower(i));
    entry.push_back(static_cast<std::int64_t>(buckets_[i]));
    buckets.push_back(std::move(entry));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

Json MetricsRegistry::snapshot() const {
  Json j = Json::object();
  Json counters = Json::object();
  // Iteration order over the hash maps is arbitrary, but each entry lands
  // in a Json object, which stores keys in a sorted std::map — the rendered
  // snapshot is byte-identical for any insertion/iteration order (regression
  // test: MetricsRegistry.SnapshotIndependentOfInsertionOrder).
  // lint: unordered-ok(Json object sorts keys on insertion)
  for (const auto& [name, c] : counters_) counters[name] = c.value();
  Json gauges = Json::object();
  // lint: unordered-ok(Json object sorts keys on insertion)
  for (const auto& [name, g] : gauges_) gauges[name] = g.value();
  Json histograms = Json::object();
  // lint: unordered-ok(Json object sorts keys on insertion)
  for (const auto& [name, h] : histograms_) histograms[name] = h.to_json();
  j["counters"] = std::move(counters);
  j["gauges"] = std::move(gauges);
  j["histograms"] = std::move(histograms);
  return j;
}

}  // namespace bgpsdn::telemetry
