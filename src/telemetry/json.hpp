// Minimal JSON value — the wire format of the telemetry subsystem.
//
// Every machine-readable artifact the framework emits (metrics snapshots,
// JSONL trace spans, BENCH_*.json documents) goes through this one type, so
// the rendering is deterministic by construction: object keys are stored in
// a sorted map, numbers are formatted by one routine, and no locale or
// pointer identity leaks into the output. A small parser rides along for
// round-trip tests and for tools that read the documents back.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace bgpsdn::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : value_{nullptr} {}
  Json(std::nullptr_t) : value_{nullptr} {}
  Json(bool b) : value_{b} {}
  Json(int v) : value_{static_cast<std::int64_t>(v)} {}
  Json(unsigned v) : value_{static_cast<std::int64_t>(v)} {}
  Json(long v) : value_{static_cast<std::int64_t>(v)} {}
  Json(long long v) : value_{static_cast<std::int64_t>(v)} {}
  Json(unsigned long v) : value_{static_cast<std::int64_t>(v)} {}
  Json(unsigned long long v) : value_{static_cast<std::int64_t>(v)} {}
  Json(double v) : value_{v} {}
  Json(const char* s) : value_{std::string{s}} {}
  Json(std::string s) : value_{std::move(s)} {}
  Json(std::string_view s) : value_{std::string{s}} {}

  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const {
    return is_double() ? static_cast<std::int64_t>(std::get<double>(value_))
                       : std::get<std::int64_t>(value_);
  }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(value_))
                    : std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }

  /// Object access; creates the slot (converting a null value to an object).
  Json& operator[](const std::string& key);
  /// Object lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Array append (converts a null value to an array).
  void push_back(Json v);
  /// Array element access.
  const Json& at(std::size_t i) const { return std::get<Array>(value_).at(i); }

  /// Elements of an array / entries of an object; 0 for scalars.
  std::size_t size() const;

  const std::vector<Json>& items() const { return std::get<Array>(value_); }
  const std::map<std::string, Json>& entries() const {
    return std::get<Object>(value_);
  }

  bool operator==(const Json& other) const { return dump() == other.dump(); }

  /// Compact, deterministic rendering (sorted object keys, "%.12g" doubles).
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Strict-enough parser for the subsystem's own output. Returns nullopt on
  /// malformed input (including trailing garbage).
  static std::optional<Json> parse(std::string_view text);

  /// Escape and quote a string for JSON output.
  static void append_quoted(std::string& out, std::string_view s);

 private:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace bgpsdn::telemetry
