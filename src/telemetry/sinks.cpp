#include "telemetry/sinks.hpp"

namespace bgpsdn::telemetry {

std::string span_to_jsonl(const TraceSpan& span) {
  Json j = Json::object();
  j["t_ns"] = span.start.nanos_since_origin();
  j["dur_ns"] = (span.end - span.start).count_nanos();
  j["cat"] = span.category;
  j["name"] = span.name;
  j["comp"] = span.component;
  Json args = Json::object();
  for (const auto& [key, value] : span.args) args[key] = value;
  j["args"] = std::move(args);
  return j.dump();
}

void JsonlTraceSink::on_span(const TraceSpan& span) {
  if (lines_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  lines_.push_back(span_to_jsonl(span));
}

std::string JsonlTraceSink::jsonl() const {
  std::size_t total = 0;
  for (const auto& line : lines_) total += line.size() + 1;
  std::string out;
  out.reserve(total);
  for (const auto& line : lines_) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

}  // namespace bgpsdn::telemetry
