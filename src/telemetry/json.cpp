#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bgpsdn::telemetry {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return std::get<Object>(value_)[key];
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::dump_to(std::string& out) const {
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(std::get<std::int64_t>(value_)));
      out += buf;
      break;
    }
    case Type::kDouble: {
      const double v = std::get<double>(value_);
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN; degrade predictably.
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", v);
      out += buf;
      break;
    }
    case Type::kString:
      append_quoted(out, std::get<std::string>(value_));
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : std::get<Array>(value_)) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : std::get<Object>(value_)) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(out, key);
        out.push_back(':');
        item.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

// Recursive-descent parser over the rendered subset: no comments, strict
// separators, \uXXXX escapes decoded only for the control-plane range the
// dumper emits (BMP escapes are preserved verbatim as text otherwise).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token{text_.substr(start, pos_ - start)};
    try {
      if (is_double) return Json{std::stod(token)};
      return Json{std::stoll(token)};
    } catch (const std::out_of_range&) {
      try {
        return Json{std::stod(token)};
      } catch (const std::exception&) {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == 'n') return literal("null") ? std::optional<Json>{Json{}} : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Json>{Json{true}} : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>{Json{false}} : std::nullopt;
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json{std::move(*s)};
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (eat(']')) return arr;
      while (true) {
        auto item = value();
        if (!item) return std::nullopt;
        arr.push_back(std::move(*item));
        if (eat(']')) return arr;
        if (!eat(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (eat('}')) return obj;
      while (true) {
        skip_ws();
        auto key = string();
        if (!key) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        auto item = value();
        if (!item) return std::nullopt;
        obj[*key] = std::move(*item);
        if (eat('}')) return obj;
        if (!eat(',')) return std::nullopt;
      }
    }
    return number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser{text}.run();
}

}  // namespace bgpsdn::telemetry
