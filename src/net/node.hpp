// Node — the base class for every emulated network device.
//
// BGP routers, SDN switches, hosts, the route collector and the cluster BGP
// speaker all derive from Node. A node owns no wiring: the Network assigns
// its id and ports and delivers packets into handle_packet().
#pragma once

#include <cassert>
#include <string>

#include "core/ids.hpp"
#include "net/packet.hpp"

namespace bgpsdn::core {
class EventLoop;
class Logger;
class Rng;
}  // namespace bgpsdn::core

namespace bgpsdn::telemetry {
class Telemetry;
}  // namespace bgpsdn::telemetry

namespace bgpsdn::net {

class Network;

class Node {
 public:
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deliver a packet that arrived on `ingress`.
  virtual void handle_packet(core::PortId ingress, const Packet& packet) = 0;

  /// A directly attached link changed state (failure/restore). Default: ignore.
  virtual void on_link_state(core::PortId port, bool up) {
    (void)port;
    (void)up;
  }

  /// Called once by the Network when emulation starts; protocols begin their
  /// handshakes here.
  virtual void start() {}

  core::NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Wire the node into its network. Called exactly once by Network::add.
  void attach(Network& network, core::NodeId id, std::string name) {
    assert(network_ == nullptr && "node attached twice");
    network_ = &network;
    id_ = id;
    name_ = std::move(name);
  }

 protected:
  Node() = default;

  Network& network() const {
    assert(network_ != nullptr && "node used before attach");
    return *network_;
  }
  bool attached() const { return network_ != nullptr; }
  core::EventLoop& loop() const;
  core::Logger& logger() const;
  core::Rng& rng() const;

  /// The owning network's telemetry hub, or nullptr for detached nodes
  /// (bare unit-test instances) — callers must tolerate its absence.
  telemetry::Telemetry* telemetry() const;

  /// Next BGP session id. Attached nodes draw from the owning Network's
  /// allocator (ids unique network-wide — controller tables depend on it);
  /// detached nodes (unit tests using a speaker as a bare peering registry)
  /// fall back to a node-local counter. Never a process-wide static: two
  /// experiments in one process must mint identical id sequences.
  core::SessionId allocate_session_id();

  /// Convenience: transmit out of a local port.
  void send(core::PortId port, Packet packet) const;

 private:
  Network* network_{nullptr};
  core::NodeId id_{core::NodeId::invalid()};
  std::string name_;
  core::SessionIdAllocator detached_session_ids_;
};

}  // namespace bgpsdn::net
