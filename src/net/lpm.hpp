// Longest-prefix-match table.
//
// Shared by router FIBs and SDN flow tables: both resolve a destination
// address to the most specific matching prefix. Implemented as one hash map
// per prefix length probed from most to least specific — simple, exact, and
// fast enough for emulation-scale tables.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"

namespace bgpsdn::net {

template <typename V>
class LpmTable {
 public:
  /// Insert or replace the value for an exact prefix.
  void insert(const Prefix& p, V value) {
    auto& m = by_len_[p.length()];
    const auto [it, fresh] = m.insert_or_assign(p.network(), std::move(value));
    (void)it;
    if (fresh) ++size_;
  }

  /// Remove an exact prefix. Returns true if it was present.
  bool erase(const Prefix& p) {
    auto& m = by_len_[p.length()];
    if (m.erase(p.network()) > 0) {
      --size_;
      return true;
    }
    return false;
  }

  /// Exact-prefix lookup.
  const V* find_exact(const Prefix& p) const {
    const auto& m = by_len_[p.length()];
    const auto it = m.find(p.network());
    return it == m.end() ? nullptr : &it->second;
  }
  V* find_exact(const Prefix& p) {
    return const_cast<V*>(static_cast<const LpmTable*>(this)->find_exact(p));
  }

  /// Longest-prefix match for a destination address; nullopt if nothing
  /// (not even a default route) matches.
  std::optional<std::pair<Prefix, const V*>> lookup(Ipv4Addr dst) const {
    for (int len = 32; len >= 0; --len) {
      const auto& m = by_len_[static_cast<std::size_t>(len)];
      if (m.empty()) continue;
      const Prefix probe{dst, static_cast<std::uint8_t>(len)};
      const auto it = m.find(probe.network());
      if (it != m.end()) return {{probe, &it->second}};
    }
    return std::nullopt;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    for (auto& m : by_len_) m.clear();
    size_ = 0;
  }

  /// All (prefix, value) pairs, unordered.
  std::vector<std::pair<Prefix, V>> entries() const {
    std::vector<std::pair<Prefix, V>> out;
    out.reserve(size_);
    for (std::size_t len = 0; len <= 32; ++len) {
      for (const auto& [addr, v] : by_len_[len]) {
        out.emplace_back(Prefix{addr, static_cast<std::uint8_t>(len)}, v);
      }
    }
    return out;
  }

 private:
  std::array<std::unordered_map<Ipv4Addr, V>, 33> by_len_{};
  std::size_t size_{0};
};

}  // namespace bgpsdn::net
