// Copy-on-write byte buffer for packet payloads.
//
// An UPDATE fanned out to N peers, relayed across M hops, used to be copied
// at every send and every delivery. Bytes keeps one refcounted buffer and
// copies only when someone actually writes (the fault-injection corruption
// path). Copying a Bytes is a shared_ptr bump; encode-once fan-out shares
// one encoded wire image across every peer's packet.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace bgpsdn::net {

class Bytes {
 public:
  Bytes() = default;
  Bytes(std::vector<std::byte> data)  // NOLINT(google-explicit-constructor)
      : ptr_{data.empty()
                 ? nullptr
                 : std::make_shared<const std::vector<std::byte>>(std::move(data))} {}
  Bytes(std::initializer_list<std::byte> init)
      : Bytes{std::vector<std::byte>(init)} {}

  /// Adopt an already-shared buffer (the encode-once path). The buffer must
  /// have been created as a non-const vector (e.g. via make_shared) so the
  /// copy-on-write unique-owner fast path in mutate() stays well-defined.
  static Bytes adopt(std::shared_ptr<const std::vector<std::byte>> data) {
    Bytes b;
    if (data != nullptr && !data->empty()) b.ptr_ = std::move(data);
    return b;
  }

  bool empty() const { return ptr_ == nullptr || ptr_->empty(); }
  std::size_t size() const { return ptr_ == nullptr ? 0 : ptr_->size(); }
  std::byte operator[](std::size_t i) const { return (*ptr_)[i]; }
  const std::byte* data() const { return ptr_ == nullptr ? nullptr : ptr_->data(); }

  const std::vector<std::byte>& vec() const {
    static const std::vector<std::byte> kEmpty;
    return ptr_ == nullptr ? kEmpty : *ptr_;
  }
  // Payload consumers (codecs, Session::receive) take const vector&.
  operator const std::vector<std::byte>&() const { return vec(); }  // NOLINT

  /// Writable view; clones the buffer first when it is shared.
  std::vector<std::byte>& mutate() {
    if (ptr_ == nullptr) {
      auto fresh = std::make_shared<std::vector<std::byte>>();
      auto& ref = *fresh;
      ptr_ = std::move(fresh);
      return ref;
    }
    if (ptr_.use_count() != 1) {
      auto fresh = std::make_shared<std::vector<std::byte>>(*ptr_);
      auto& ref = *fresh;
      ptr_ = std::move(fresh);
      return ref;
    }
    // Sole owner of a buffer that was constructed non-const (see adopt()).
    return const_cast<std::vector<std::byte>&>(*ptr_);
  }

  bool operator==(const Bytes& other) const {
    return ptr_ == other.ptr_ || vec() == other.vec();
  }
  bool operator==(const std::vector<std::byte>& other) const {
    return vec() == other;
  }

  /// True when this buffer is shared with at least one other holder
  /// (introspection for the fan-out tests).
  bool is_shared() const { return ptr_ != nullptr && ptr_.use_count() > 1; }

 private:
  std::shared_ptr<const std::vector<std::byte>> ptr_;
};

}  // namespace bgpsdn::net
