// Automatic address assignment.
//
// The framework "automatically assigns IP addresses"; this allocator hands
// out per-AS prefixes from 10.0.0.0/8, router ids inside them, and /30
// transfer subnets for inter-router links from 172.16.0.0/12 — mirroring the
// configuration management the paper's tool performs on Quagga configs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/ids.hpp"
#include "net/ip.hpp"

namespace bgpsdn::net {

class AddressAllocator {
 public:
  /// The /16 owned by an AS (stable across calls): 10.x.y.0/16 by dense index.
  Prefix as_prefix(core::AsNumber as);

  /// The router id / loopback for an AS: first host address of its prefix.
  Ipv4Addr router_id(core::AsNumber as);

  /// A host address inside the AS prefix; `index` 0 is reserved for the
  /// router, so hosts start at 2.
  Ipv4Addr host_address(core::AsNumber as, std::uint32_t index);

  /// A fresh /30 point-to-point subnet; .1 and .2 are the endpoint addresses.
  struct PointToPoint {
    Prefix subnet;
    Ipv4Addr left;
    Ipv4Addr right;
  };
  PointToPoint next_p2p();

  std::size_t allocated_as_count() const { return as_index_.size(); }

 private:
  std::uint32_t index_of(core::AsNumber as);

  std::unordered_map<core::AsNumber, std::uint32_t> as_index_;
  std::uint32_t next_p2p_{0};
};

}  // namespace bgpsdn::net
