// Network — the emulated topology: nodes, links, and packet delivery.
//
// This is the Mininet analogue. It owns every node, wires links between
// node ports, and moves packets on the shared event loop with per-link
// delay, serialization (bandwidth) and loss. Link failure/restoration is a
// first-class operation because the experiments revolve around it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/event_loop.hpp"
#include "core/ids.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::net {

/// Static properties of a point-to-point link.
struct LinkParams {
  core::Duration delay{core::Duration::millis(1)};
  /// Bits per second; 0 means infinite (no serialization delay).
  std::uint64_t bandwidth_bps{0};
  /// Independent per-packet drop probability.
  double loss{0.0};

  /// Throws std::invalid_argument on a negative delay or a loss outside
  /// [0, 1] (NaN included). Called by Network::connect so a bad topology
  /// spec fails at build time, not as silent mis-delivery mid-run.
  void validate() const;
};

/// One attachment point of a link.
struct LinkEnd {
  core::NodeId node{core::NodeId::invalid()};
  core::PortId port{core::PortId::invalid()};
};

struct Link {
  LinkEnd a;
  LinkEnd b;
  LinkParams params;
  bool up{true};
  /// Per-packet probability of in-flight payload corruption (fault
  /// injection); corrupted packets are still delivered, with 1-3 seeded
  /// bit flips applied.
  double corrupt{0.0};
  /// Earliest instant each direction's transmitter is free (bandwidth model).
  core::TimePoint tx_free[2]{};
};

/// Packet accounting, exposed for loss measurement and tests.
struct NetworkStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped_loss{0};
  std::uint64_t dropped_link_down{0};
  std::uint64_t dropped_ttl{0};
  std::uint64_t dropped_no_port{0};
  /// Packets whose payload was bit-flipped in flight (still delivered).
  std::uint64_t corrupted{0};
};

class Network {
 public:
  Network(core::EventLoop& loop, core::Logger& logger, core::Rng& rng)
      : loop_{loop}, logger_{logger}, rng_{rng} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Construct and register a node. Returns a reference that stays valid for
  /// the lifetime of the Network.
  template <typename T, typename... Args>
  T& add(std::string name, Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    register_node(std::move(owned), std::move(name));
    return ref;
  }

  /// Connect two nodes with a fresh port on each. Returns the link id.
  core::LinkId connect(core::NodeId a, core::NodeId b, LinkParams params = {});

  /// Transmit a packet out of (from, port). Applies delay, bandwidth and
  /// loss; delivers to the peer if the link is up.
  void send(core::NodeId from, core::PortId port, Packet packet);

  /// Fail or restore a link; both endpoints get on_link_state callbacks.
  void set_link_up(core::LinkId id, bool up);
  bool link_is_up(core::LinkId id) const { return links_.at(id.value()).up; }

  /// Change a link's drop probability at runtime (degradation injection;
  /// no notification — endpoints only observe the loss itself). Values
  /// outside [0, 1] are clamped; NaN throws std::invalid_argument.
  void set_link_loss(core::LinkId id, double loss);

  /// Change a link's payload-corruption probability at runtime (fault
  /// injection). Same clamping/NaN contract as set_link_loss. Corrupted
  /// packets get 1-3 bit flips from the network RNG, so corruption is
  /// deterministic per seed.
  void set_link_corruption(core::LinkId id, double probability);

  /// The (node, port) on the other side of a local port; invalid ids if the
  /// port is unused.
  LinkEnd peer_of(core::NodeId node, core::PortId port) const;

  /// The link attached at (node, port), or invalid if none.
  core::LinkId link_at(core::NodeId node, core::PortId port) const;

  /// Find the link connecting two nodes (first match), or invalid.
  core::LinkId find_link(core::NodeId a, core::NodeId b) const;

  /// Call start() on every node, in registration order.
  void start_all();

  Node& node(core::NodeId id) { return *nodes_.at(id.value()); }
  const Node& node(core::NodeId id) const { return *nodes_.at(id.value()); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Link& link(core::LinkId id) const { return links_.at(id.value()); }
  std::size_t port_count(core::NodeId node) const {
    return ports_.at(node.value()).size();
  }

  core::EventLoop& loop() { return loop_; }
  core::Logger& logger() { return logger_; }
  core::Rng& rng() { return rng_; }
  const NetworkStats& stats() const { return stats_; }

  /// BGP session ids are scoped to the network so that several simulations
  /// can coexist in one process (each with its own Network) and a given
  /// build order always yields the same ids. Controllers key per-network
  /// tables by session id, so uniqueness must span all nodes of a network.
  core::SessionIdAllocator& session_ids() { return session_ids_; }

  /// Telemetry hub scoped to this network (metrics + trace fan-out). Nodes
  /// reach it through Node::telemetry(); external observers attach trace
  /// sinks and read metric snapshots here.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

 private:
  void register_node(std::unique_ptr<Node> node, std::string name);
  void deliver(core::LinkId link_id, int direction, const Packet& packet);

  core::EventLoop& loop_;
  core::Logger& logger_;
  core::Rng& rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Link> links_;
  /// ports_[node][port] -> link id attached there.
  std::vector<std::vector<core::LinkId>> ports_;
  NetworkStats stats_;
  core::SessionIdAllocator session_ids_;
  telemetry::Telemetry telemetry_;
};

}  // namespace bgpsdn::net
