// Host — an end system used to verify end-to-end connectivity.
//
// The paper attaches hosts "with IP addresses within a particular prefix for
// monitoring end-to-end connectivity with tools like ping". A Host answers
// probe requests with probe replies and counts what it saw; the framework's
// ConnectivityMonitor drives it.
#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"

namespace bgpsdn::net {

class Host : public Node {
 public:
  explicit Host(Ipv4Addr address) : address_{address} {}

  Ipv4Addr address() const { return address_; }

  void handle_packet(core::PortId ingress, const Packet& packet) override;

  /// Send one probe towards `dst`; the reply (if any) bumps replies_received.
  void send_probe(Ipv4Addr dst, std::uint64_t flow_label);

  std::uint64_t probes_received() const { return probes_received_; }
  std::uint64_t replies_received() const { return replies_received_; }
  std::uint64_t last_reply_label() const { return last_reply_label_; }

  /// Invoked for every probe reply that reaches this host (label = the
  /// flow_label of the original request). Used by ConnectivityMonitor.
  void set_reply_callback(std::function<void(std::uint64_t)> cb) {
    reply_callback_ = std::move(cb);
  }

 private:
  static constexpr std::byte kRequest{0};
  static constexpr std::byte kReply{1};

  Ipv4Addr address_;
  std::uint64_t probes_received_{0};
  std::uint64_t replies_received_{0};
  std::uint64_t last_reply_label_{0};
  std::function<void(std::uint64_t)> reply_callback_;
};

}  // namespace bgpsdn::net
