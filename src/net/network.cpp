#include "net/network.hpp"

#include <cmath>
#include <stdexcept>

namespace bgpsdn::net {

namespace {

/// Clamp a probability into [0, 1]; NaN is a caller error, not a value.
double checked_probability(double p, const char* what) {
  if (std::isnan(p)) {
    throw std::invalid_argument{std::string{what} + " must not be NaN"};
  }
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

}  // namespace

void LinkParams::validate() const {
  if (delay < core::Duration::zero()) {
    throw std::invalid_argument{"LinkParams: negative delay"};
  }
  if (std::isnan(loss) || loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument{"LinkParams: loss outside [0, 1]"};
  }
}

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kBgp: return "bgp";
    case Protocol::kOfControl: return "of";
    case Protocol::kProbe: return "probe";
    case Protocol::kData: return "data";
  }
  return "?";
}

std::string Packet::to_string() const {
  std::string s = src.to_string();
  s += " -> ";
  s += dst.to_string();
  s += " [";
  s += bgpsdn::net::to_string(proto);
  s += ", ";
  s += std::to_string(payload.size());
  s += "B]";
  return s;
}

core::EventLoop& Node::loop() const { return network().loop(); }
core::Logger& Node::logger() const { return network().logger(); }
core::Rng& Node::rng() const { return network().rng(); }

telemetry::Telemetry* Node::telemetry() const {
  return network_ != nullptr ? &network_->telemetry() : nullptr;
}

core::SessionId Node::allocate_session_id() {
  if (network_ != nullptr) return network_->session_ids().allocate();
  return detached_session_ids_.allocate();
}

void Node::send(core::PortId port, Packet packet) const {
  network().send(id_, port, std::move(packet));
}

void Network::register_node(std::unique_ptr<Node> node, std::string name) {
  const core::NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  node->attach(*this, id, std::move(name));
  nodes_.push_back(std::move(node));
  ports_.emplace_back();
}

core::LinkId Network::connect(core::NodeId a, core::NodeId b, LinkParams params) {
  params.validate();
  const core::LinkId id{static_cast<std::uint32_t>(links_.size())};
  const core::PortId pa{static_cast<std::uint32_t>(ports_.at(a.value()).size())};
  const core::PortId pb{static_cast<std::uint32_t>(ports_.at(b.value()).size())};
  ports_[a.value()].push_back(id);
  ports_[b.value()].push_back(id);
  links_.push_back(Link{{a, pa}, {b, pb}, params, /*up=*/true, {}});
  return id;
}

void Network::send(core::NodeId from, core::PortId port, Packet packet) {
  ++stats_.sent;
  const core::LinkId link_id = link_at(from, port);
  if (!link_id.is_valid()) {
    ++stats_.dropped_no_port;
    return;
  }
  Link& link = links_[link_id.value()];
  if (!link.up) {
    ++stats_.dropped_link_down;
    return;
  }
  if (packet.ttl == 0) {
    ++stats_.dropped_ttl;
    logger_.log(loop_.now(), core::LogLevel::kDebug, node(from).name(),
                "ttl_expired", packet.to_string());
    return;
  }
  if (link.params.loss > 0.0 && rng_.chance(link.params.loss)) {
    ++stats_.dropped_loss;
    return;
  }
  if (link.corrupt > 0.0 && !packet.payload.empty() &&
      rng_.chance(link.corrupt)) {
    // In-flight corruption: flip 1-3 payload bits. The packet is delivered
    // anyway — surviving garbage is the receiver's problem (codecs must
    // reject it without crashing; BGP answers with a NOTIFICATION).
    const auto flips = rng_.uniform_int(1, 3);
    const auto bits = static_cast<std::int64_t>(packet.payload.size()) * 8;
    auto& bytes = packet.payload.mutate();  // un-share before writing
    for (std::int64_t i = 0; i < flips; ++i) {
      const auto bit = static_cast<std::size_t>(rng_.uniform_int(0, bits - 1));
      bytes[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    }
    ++stats_.corrupted;
  }

  const int dir = (link.a.node == from && link.a.port == port) ? 0 : 1;
  core::TimePoint depart = loop_.now();
  if (link.params.bandwidth_bps > 0) {
    // Serialize after any packet still occupying the transmitter.
    if (link.tx_free[dir] > depart) depart = link.tx_free[dir];
    const auto bits = static_cast<std::uint64_t>(packet.size_bytes()) * 8;
    const auto ser = core::Duration::nanos(static_cast<std::int64_t>(
        bits * 1'000'000'000ull / link.params.bandwidth_bps));
    depart = depart + ser;
    link.tx_free[dir] = depart;
  }
  const core::TimePoint arrive = depart + link.params.delay;
  loop_.schedule_at(arrive, [this, link_id, dir, p = std::move(packet)]() {
    deliver(link_id, dir, p);
  });
}

void Network::deliver(core::LinkId link_id, int direction, const Packet& packet) {
  const Link& link = links_[link_id.value()];
  if (!link.up) {
    // Failed while in flight.
    ++stats_.dropped_link_down;
    return;
  }
  const LinkEnd& dst = direction == 0 ? link.b : link.a;
  ++stats_.delivered;
  Packet received = packet;
  received.ttl = static_cast<std::uint8_t>(received.ttl - 1);
  nodes_[dst.node.value()]->handle_packet(dst.port, received);
}

void Network::set_link_loss(core::LinkId id, double loss) {
  links_.at(id.value()).params.loss = checked_probability(loss, "link loss");
}

void Network::set_link_corruption(core::LinkId id, double probability) {
  links_.at(id.value()).corrupt =
      checked_probability(probability, "link corruption");
}

void Network::set_link_up(core::LinkId id, bool up) {
  Link& link = links_.at(id.value());
  if (link.up == up) return;
  link.up = up;
  logger_.log(loop_.now(), core::LogLevel::kInfo, "net", up ? "link_up" : "link_down",
              node(link.a.node).name() + " <-> " + node(link.b.node).name());
  nodes_[link.a.node.value()]->on_link_state(link.a.port, up);
  nodes_[link.b.node.value()]->on_link_state(link.b.port, up);
}

LinkEnd Network::peer_of(core::NodeId node, core::PortId port) const {
  const core::LinkId id = link_at(node, port);
  if (!id.is_valid()) return {};
  const Link& link = links_[id.value()];
  return (link.a.node == node && link.a.port == port) ? link.b : link.a;
}

core::LinkId Network::link_at(core::NodeId node, core::PortId port) const {
  const auto& node_ports = ports_.at(node.value());
  if (port.value() >= node_ports.size()) return core::LinkId::invalid();
  return node_ports[port.value()];
}

core::LinkId Network::find_link(core::NodeId a, core::NodeId b) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Link& l = links_[i];
    if ((l.a.node == a && l.b.node == b) || (l.a.node == b && l.b.node == a)) {
      return core::LinkId{static_cast<std::uint32_t>(i)};
    }
  }
  return core::LinkId::invalid();
}

void Network::start_all() {
  for (const auto& n : nodes_) n->start();
}

}  // namespace bgpsdn::net
