// The datagram that travels over emulated links.
//
// Control protocols (BGP, the OpenFlow-like channel) serialize themselves
// into the payload; data-plane probes use the header fields only. A TTL
// guards against forwarding loops during convergence — exactly the transient
// the experiments measure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace bgpsdn::net {

enum class Protocol : std::uint8_t {
  kBgp = 1,       // BGP-4 over its (abstracted) TCP session
  kOfControl = 2, // OpenFlow-like switch/controller channel
  kProbe = 3,     // data-plane reachability probe (the "ping"/video proxy)
  kData = 4,      // generic application traffic
};

const char* to_string(Protocol p);

struct Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  Protocol proto{Protocol::kData};
  std::uint8_t ttl{64};
  /// Serialized upper-layer message (wire bytes for BGP / OF control).
  /// Copy-on-write: forwarding and fan-out share one buffer.
  Bytes payload;
  /// Probe/flow correlation id, echoed back by probe responders.
  std::uint64_t flow_label{0};

  std::size_t size_bytes() const { return 20 + payload.size(); }

  std::string to_string() const;
};

}  // namespace bgpsdn::net
