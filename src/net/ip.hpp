// IPv4 addresses and CIDR prefixes.
//
// The framework "automatically assigns IP addresses and configures network
// devices"; these are the value types that flow through BGP NLRI, FIBs and
// SDN flow matches. Everything is host-byte-order internally.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bgpsdn::net {

/// An IPv4 address as a plain 32-bit value with parsing/formatting.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_{bits} {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}} {}

  /// Parse dotted-quad. Returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view s);

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr bool is_unspecified() const { return bits_ == 0; }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  std::string to_string() const;

 private:
  std::uint32_t bits_{0};
};

/// A CIDR prefix: address bits masked to `length` leading bits.
/// The stored address is always canonical (host bits zero).
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Addr addr, std::uint8_t length);

  /// Parse "a.b.c.d/len". Returns nullopt on malformed input or len > 32.
  static std::optional<Prefix> parse(std::string_view s);

  /// The default route 0.0.0.0/0.
  static constexpr Prefix default_route() { return Prefix{}; }

  Ipv4Addr network() const { return addr_; }
  std::uint8_t length() const { return len_; }

  /// Netmask as an address, e.g. /24 -> 255.255.255.0.
  Ipv4Addr netmask() const;

  bool contains(Ipv4Addr a) const;
  bool contains(const Prefix& other) const;
  bool overlaps(const Prefix& other) const;

  /// The two /(len+1) halves; length must be < 32.
  std::pair<Prefix, Prefix> split() const;

  /// The n-th address inside the prefix (0 = network address).
  Ipv4Addr address_at(std::uint32_t n) const;

  auto operator<=>(const Prefix&) const = default;

  std::string to_string() const;

 private:
  Ipv4Addr addr_{};
  std::uint8_t len_{0};
};

}  // namespace bgpsdn::net

namespace std {
template <>
struct hash<bgpsdn::net::Ipv4Addr> {
  size_t operator()(const bgpsdn::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};
template <>
struct hash<bgpsdn::net::Prefix> {
  size_t operator()(const bgpsdn::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{p.network().bits()} << 8) |
                                      p.length());
  }
};
}  // namespace std
