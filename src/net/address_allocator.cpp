#include "net/address_allocator.hpp"

namespace bgpsdn::net {

std::uint32_t AddressAllocator::index_of(core::AsNumber as) {
  const auto it = as_index_.find(as);
  if (it != as_index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(as_index_.size());
  if (idx >= 0xffff) throw std::length_error{"AddressAllocator: > 65535 ASes"};
  as_index_.emplace(as, idx);
  return idx;
}

Prefix AddressAllocator::as_prefix(core::AsNumber as) {
  const std::uint32_t idx = index_of(as);
  // 10.hi.lo.0/16 where hi.lo is the 16-bit dense index — but /16 needs the
  // third octet free, so place the index in octets 2-3 of a /16 boundary:
  // 10.<idx_hi>.<idx_lo>... does not align to /16. Use 10.idx_hi.idx_lo.0/24
  // when many ASes, else simply 10.idx.0.0/16 for idx < 256 and spill to
  // 11.x for more. Keep it simple: 16 bits of index across octets 1-2 of a
  // base that leaves 16 host bits.
  const std::uint32_t base = (10u << 24) | (idx << 8);
  // That yields 10.a.b.0/24-style alignment; widen to /16 only when idx fits
  // a single octet.
  if (idx < 256) return Prefix{Ipv4Addr{(10u << 24) | (idx << 16)}, 16};
  return Prefix{Ipv4Addr{base}, 24};
}

Ipv4Addr AddressAllocator::router_id(core::AsNumber as) {
  return as_prefix(as).address_at(1);
}

Ipv4Addr AddressAllocator::host_address(core::AsNumber as, std::uint32_t index) {
  return as_prefix(as).address_at(2 + index);
}

AddressAllocator::PointToPoint AddressAllocator::next_p2p() {
  // 172.16.0.0/12 carved into /30s: 2^18 subnets available.
  if (next_p2p_ >= (1u << 18)) throw std::length_error{"AddressAllocator: p2p space exhausted"};
  const std::uint32_t base = (172u << 24) | (16u << 16) | (next_p2p_ << 2);
  ++next_p2p_;
  const Prefix subnet{Ipv4Addr{base}, 30};
  return {subnet, subnet.address_at(1), subnet.address_at(2)};
}

}  // namespace bgpsdn::net
