#include "net/ip.hpp"

#include <charconv>
#include <cstdio>

namespace bgpsdn::net {

namespace {

constexpr std::uint32_t mask_for(std::uint8_t len) {
  return len == 0 ? 0u : (~std::uint32_t{0} << (32 - len));
}

// Parse one decimal octet from [p, end); advances p. Rejects values > 255
// and empty fields.
bool parse_octet(const char*& p, const char* end, std::uint32_t& out) {
  if (p == end) return false;
  unsigned v = 0;
  const auto [next, ec] = std::from_chars(p, end, v);
  if (ec != std::errc{} || next == p || v > 255) return false;
  p = next;
  out = v;
  return true;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  const char* p = s.data();
  const char* end = s.data() + s.size();
  std::uint32_t oct[4];
  for (int i = 0; i < 4; ++i) {
    if (!parse_octet(p, end, oct[i])) return std::nullopt;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{(oct[0] << 24) | (oct[1] << 16) | (oct[2] << 8) | oct[3]};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (bits_ >> 24) & 0xff,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

Prefix::Prefix(Ipv4Addr addr, std::uint8_t length)
    : addr_{addr.bits() & mask_for(length)}, len_{length} {}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_str = s.substr(slash + 1);
  unsigned len = 0;
  const auto [next, ec] =
      std::from_chars(len_str.data(), len_str.data() + len_str.size(), len);
  if (ec != std::errc{} || next != len_str.data() + len_str.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix{*addr, static_cast<std::uint8_t>(len)};
}

Ipv4Addr Prefix::netmask() const { return Ipv4Addr{mask_for(len_)}; }

bool Prefix::contains(Ipv4Addr a) const {
  return (a.bits() & mask_for(len_)) == addr_.bits();
}

bool Prefix::contains(const Prefix& other) const {
  return other.len_ >= len_ && contains(other.addr_);
}

bool Prefix::overlaps(const Prefix& other) const {
  return contains(other) || other.contains(*this);
}

std::pair<Prefix, Prefix> Prefix::split() const {
  const auto child_len = static_cast<std::uint8_t>(len_ + 1);
  const Prefix lo{addr_, child_len};
  const Prefix hi{Ipv4Addr{addr_.bits() | (1u << (32 - child_len))}, child_len};
  return {lo, hi};
}

Ipv4Addr Prefix::address_at(std::uint32_t n) const {
  return Ipv4Addr{addr_.bits() + n};
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace bgpsdn::net
