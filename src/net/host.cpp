#include "net/host.hpp"

#include "core/logger.hpp"
#include "net/network.hpp"

namespace bgpsdn::net {

void Host::handle_packet(core::PortId ingress, const Packet& packet) {
  (void)ingress;
  if (packet.proto != Protocol::kProbe || packet.dst != address_) return;
  if (packet.payload.empty()) return;
  if (packet.payload[0] == kRequest) {
    ++probes_received_;
    Packet reply;
    reply.src = address_;
    reply.dst = packet.src;
    reply.proto = Protocol::kProbe;
    reply.flow_label = packet.flow_label;
    reply.payload = {kReply};
    // Hosts are single-homed: port 0 is the uplink to their AS router.
    send(core::PortId{0}, std::move(reply));
  } else {
    ++replies_received_;
    last_reply_label_ = packet.flow_label;
    if (reply_callback_) reply_callback_(packet.flow_label);
  }
}

void Host::send_probe(Ipv4Addr dst, std::uint64_t flow_label) {
  Packet probe;
  probe.src = address_;
  probe.dst = dst;
  probe.proto = Protocol::kProbe;
  probe.flow_label = flow_label;
  probe.payload = {kRequest};
  send(core::PortId{0}, std::move(probe));
}

}  // namespace bgpsdn::net
