#include "sdn/openflow.hpp"

namespace bgpsdn::sdn {

namespace {

using bgp::ByteReader;
using bgp::ByteWriter;

void write_packet(ByteWriter& w, const net::Packet& p) {
  w.addr(p.src);
  w.addr(p.dst);
  w.u8(static_cast<std::uint8_t>(p.proto));
  w.u8(p.ttl);
  w.u64(p.flow_label);
  w.u16(static_cast<std::uint16_t>(p.payload.size()));
  w.bytes(p.payload);
}

net::Packet read_packet(ByteReader& r) {
  net::Packet p;
  p.src = r.addr();
  p.dst = r.addr();
  p.proto = static_cast<net::Protocol>(r.u8());
  p.ttl = r.u8();
  p.flow_label = r.u64();
  const std::uint16_t len = r.u16();
  p.payload = r.bytes(len);
  return p;
}

void write_match(ByteWriter& w, const FlowMatch& m) {
  w.u8(m.in_port ? 1 : 0);
  w.u32(m.in_port ? m.in_port->value() : 0);
  w.u8(m.proto ? 1 : 0);
  w.u8(m.proto ? static_cast<std::uint8_t>(*m.proto) : 0);
  w.addr(m.dst.network());
  w.u8(m.dst.length());
}

FlowMatch read_match(ByteReader& r) {
  FlowMatch m;
  const bool has_port = r.u8() != 0;
  const std::uint32_t port = r.u32();
  if (has_port) m.in_port = core::PortId{port};
  const bool has_proto = r.u8() != 0;
  const std::uint8_t proto = r.u8();
  if (has_proto) m.proto = static_cast<net::Protocol>(proto);
  const auto addr = r.addr();
  const auto len = r.u8();
  m.dst = net::Prefix{addr, len};
  return m;
}

void write_action(ByteWriter& w, const FlowAction& a) {
  w.u8(static_cast<std::uint8_t>(a.type));
  w.u32(a.type == ActionType::kOutput ? a.port.value() : 0);
}

FlowAction read_action(ByteReader& r) {
  FlowAction a;
  a.type = static_cast<ActionType>(r.u8());
  const std::uint32_t port = r.u32();
  if (a.type == ActionType::kOutput) a.port = core::PortId{port};
  return a;
}

}  // namespace

OfType type_of(const OfMessage& m) {
  return static_cast<OfType>(m.index());
}

std::vector<std::byte> encode(const OfMessage& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, OfHello>) {
          w.u64(msg.dpid);
          w.u16(msg.port_count);
        } else if constexpr (std::is_same_v<T, OfPacketIn>) {
          w.u32(msg.in_port.value());
          w.u8(static_cast<std::uint8_t>(msg.reason));
          write_packet(w, msg.packet);
        } else if constexpr (std::is_same_v<T, OfPacketOut>) {
          w.u32(msg.out_port.value());
          write_packet(w, msg.packet);
        } else if constexpr (std::is_same_v<T, OfFlowMod>) {
          w.u8(static_cast<std::uint8_t>(msg.command));
          write_match(w, msg.match);
          w.u16(msg.priority);
          write_action(w, msg.action);
          w.u32(msg.epoch);
        } else if constexpr (std::is_same_v<T, OfPortStatus>) {
          w.u32(msg.port.value());
          w.u8(msg.up ? 1 : 0);
        } else if constexpr (std::is_same_v<T, OfEcho>) {
          w.u64(msg.token);
          w.u8(msg.is_reply ? 1 : 0);
        }
      },
      m);
  return w.take();
}

std::optional<OfMessage> decode(const std::vector<std::byte>& wire) {
  ByteReader r{wire};
  const auto type = static_cast<OfType>(r.u8());
  OfMessage out;
  switch (type) {
    case OfType::kHello: {
      OfHello m;
      m.dpid = r.u64();
      m.port_count = r.u16();
      out = m;
      break;
    }
    case OfType::kPacketIn: {
      OfPacketIn m;
      m.in_port = core::PortId{r.u32()};
      m.reason = static_cast<PacketInReason>(r.u8());
      m.packet = read_packet(r);
      out = std::move(m);
      break;
    }
    case OfType::kPacketOut: {
      OfPacketOut m;
      m.out_port = core::PortId{r.u32()};
      m.packet = read_packet(r);
      out = std::move(m);
      break;
    }
    case OfType::kFlowMod: {
      OfFlowMod m;
      m.command = static_cast<FlowModCommand>(r.u8());
      m.match = read_match(r);
      m.priority = r.u16();
      m.action = read_action(r);
      m.epoch = r.u32();
      out = m;
      break;
    }
    case OfType::kPortStatus: {
      OfPortStatus m;
      m.port = core::PortId{r.u32()};
      m.up = r.u8() != 0;
      out = m;
      break;
    }
    case OfType::kEcho: {
      OfEcho m;
      m.token = r.u64();
      m.is_reply = r.u8() != 0;
      out = m;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return out;
}

}  // namespace bgpsdn::sdn
