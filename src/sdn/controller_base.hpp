// ControllerBase — the controller platform (the POX analogue).
//
// Provides the event-driven plumbing an SDN controller application builds
// on: switch channels (one control link per switch), Hello handshake,
// dispatch of PacketIn/PortStatus to virtual handlers, and FlowMod /
// PacketOut transmission. Cooperative and single-threaded by design; the
// paper argues this "focus on research questions, not concurrency" is the
// right trade-off for rapid prototyping (vs ONOS).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "core/ids.hpp"
#include "net/node.hpp"
#include "sdn/openflow.hpp"

namespace bgpsdn::sdn {

/// One connected switch as seen by the controller.
struct SwitchChannel {
  Dpid dpid{0};
  core::PortId local_port;  // controller port leading to this switch
  std::uint16_t port_count{0};
  bool connected{false};
};

struct ControllerCounters {
  std::uint64_t packet_ins{0};
  std::uint64_t flow_mods_sent{0};
  std::uint64_t packet_outs_sent{0};
  std::uint64_t port_status{0};
};

class ControllerBase : public net::Node {
 public:
  void handle_packet(core::PortId ingress, const net::Packet& packet) final;

  const std::map<Dpid, SwitchChannel>& switches() const { return switches_; }
  bool is_connected(Dpid dpid) const {
    const auto it = switches_.find(dpid);
    return it != switches_.end() && it->second.connected;
  }
  const ControllerCounters& base_counters() const { return counters_; }

  /// True between base_crash() and base_restart(): the process is "dead" —
  /// incoming control traffic is ignored, nothing can be sent.
  bool crashed() const { return crashed_; }

 protected:
  /// Emulate process death: forget every switch channel and go deaf. The
  /// node object stays (it anchors the network ports); derived controllers
  /// drop their own application state alongside.
  void base_crash();
  /// Come back empty: channels rebuild as switches re-Hello when their
  /// control links return.
  void base_restart();
  /// Application hooks.
  virtual void on_switch_connected(const SwitchChannel& channel) { (void)channel; }
  virtual void on_packet_in(const SwitchChannel& channel, const OfPacketIn& in) {
    (void)channel;
    (void)in;
  }
  virtual void on_port_status(const SwitchChannel& channel,
                              const OfPortStatus& status) {
    (void)channel;
    (void)status;
  }

  /// Program a switch's flow table.
  void send_flow_mod(Dpid dpid, const OfFlowMod& mod);
  /// Inject a packet out of a switch port.
  void send_packet_out(Dpid dpid, core::PortId out_port, const net::Packet& p);

 private:
  void send_to(Dpid dpid, const OfMessage& message);

  std::map<Dpid, SwitchChannel> switches_;
  std::unordered_map<std::uint32_t, Dpid> dpid_by_port_;
  ControllerCounters counters_;
  bool crashed_{false};
};

}  // namespace bgpsdn::sdn
