// Flow table of an SDN switch.
//
// Matches are (in_port, protocol, destination prefix) with a priority; the
// highest-priority most-specific match wins. Actions: output to a port,
// send to the controller, or drop. This is the OpenFlow 1.0 subset the
// paper's use-case needs (L3 destination routing + control-plane relays).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "net/ip.hpp"
#include "net/packet.hpp"

namespace bgpsdn::sdn {

/// Priority bands shared by everything that programs switch tables.
/// Data-plane routing rules sit below control-plane plumbing (the static
/// BGP relay paths), so a switch that loses its controller can flush all
/// routing state (`remove_below_priority(kRelayRulePriority)`) while the
/// relay rules — and with them the cluster speaker's reachability —
/// survive.
inline constexpr std::uint16_t kDataRulePriority = 100;
inline constexpr std::uint16_t kRelayRulePriority = 200;

struct FlowMatch {
  /// Wildcard when unset.
  std::optional<core::PortId> in_port;
  std::optional<net::Protocol> proto;
  /// Destination prefix; 0.0.0.0/0 matches everything.
  net::Prefix dst{net::Prefix::default_route()};

  bool matches(core::PortId ingress, const net::Packet& p) const {
    if (in_port && *in_port != ingress) return false;
    if (proto && *proto != p.proto) return false;
    return dst.contains(p.dst);
  }

  bool operator==(const FlowMatch&) const = default;

  std::string to_string() const;
};

enum class ActionType : std::uint8_t { kOutput = 0, kToController = 1, kDrop = 2 };

struct FlowAction {
  ActionType type{ActionType::kDrop};
  core::PortId port;  // for kOutput

  static FlowAction output(core::PortId p) { return {ActionType::kOutput, p}; }
  static FlowAction to_controller() { return {ActionType::kToController, {}}; }
  static FlowAction drop() { return {ActionType::kDrop, {}}; }

  bool operator==(const FlowAction&) const = default;

  std::string to_string() const;
};

struct FlowEntry {
  FlowMatch match;
  std::uint16_t priority{0};
  FlowAction action;
  /// Statistics.
  std::uint64_t packets{0};
  std::uint64_t bytes{0};

  std::string to_string() const;
};

/// Priority-ordered flow table. Selection: among entries whose match
/// accepts the packet, highest priority wins; ties broken by longer dst
/// prefix, then insertion order (first wins).
///
/// lookup() is indexed: entries are bucketed by dst prefix length and hashed
/// on the masked network bits, so a lookup probes one hash bucket per
/// distinct prefix length present in the table (tracked in a bitmask)
/// instead of scanning every entry. Because priority can beat prefix length,
/// every present length is probed — there is no longest-match early exit —
/// but the per-bucket candidate lists are tiny in practice. The index is
/// rebuilt wholesale by the remove_* APIs (control-plane-rate operations);
/// lookup (data-plane rate) never mutates it.
class FlowTable {
 public:
  /// Insert or overwrite (same match+priority replaces).
  void add(FlowEntry entry);

  /// Remove entries with identical match and priority. Returns count removed.
  std::size_t remove(const FlowMatch& match, std::uint16_t priority);

  /// Remove every entry whose dst prefix equals `dst` (any priority/port).
  std::size_t remove_by_dst(const net::Prefix& dst);

  /// Remove every entry with priority strictly below `floor` (standalone-
  /// mode flush: drop routing state, keep control-plane plumbing).
  std::size_t remove_below_priority(std::uint16_t floor);

  /// Find the winning entry (and bump its counters if `account`).
  const FlowEntry* lookup(core::PortId ingress, const net::Packet& p,
                          bool account = true);

  /// Reference implementation of lookup(): the original full linear scan.
  /// Kept so tests and benches can pin the indexed lookup's selection
  /// semantics (and speedup) against it; not for production use.
  const FlowEntry* lookup_linear(core::PortId ingress, const net::Packet& p,
                                 bool account = false);

  std::size_t size() const { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const { return entries_; }
  void clear();

  /// Deterministic bytes held by the table under the core/mem_stats.hpp
  /// allocation model: the entry slab plus the lookup index (hash nodes,
  /// bucket arrays, and per-bucket candidate vectors). Depends only on the
  /// programmed flow state, never on host allocator behavior.
  std::uint64_t approx_bytes() const;

 private:
  /// Masked network bits for `addr` at prefix length `len`.
  static std::uint32_t key_at(std::uint32_t addr_bits, int len) {
    return len == 0 ? 0u : addr_bits & (~std::uint32_t{0} << (32 - len));
  }
  void index_entry(std::size_t i);
  void rebuild_index();

  std::vector<FlowEntry> entries_;
  /// Entry indices (ascending = insertion order) bucketed by
  /// [dst prefix length][masked dst network bits].
  std::array<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>, 33>
      by_len_;
  /// Bit L set iff by_len_[L] is non-empty.
  std::uint64_t len_mask_{0};
};

}  // namespace bgpsdn::sdn
