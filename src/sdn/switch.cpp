#include "sdn/switch.hpp"

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::sdn {

void SdnSwitch::start() {
  if (!controller_port_) return;  // isolated switch: nothing to announce
  OfHello hello;
  hello.dpid = dpid();
  hello.port_count = static_cast<std::uint16_t>(network().port_count(id()));
  send_to_controller(hello);
}

void SdnSwitch::send_to_controller(const OfMessage& message) {
  if (!controller_port_) return;
  net::Packet pkt;
  pkt.proto = net::Protocol::kOfControl;
  pkt.payload = encode(message);
  send(*controller_port_, std::move(pkt));
}

void SdnSwitch::handle_packet(core::PortId ingress, const net::Packet& packet) {
  // Control messages normally arrive only on the controller channel; in
  // standalone mode the speaker's relay links are the surviving control
  // path, so any port may carry FlowMods.
  if (packet.proto == net::Protocol::kOfControl &&
      ((controller_port_ && ingress == *controller_port_) || standalone_)) {
    handle_control(packet);
    return;
  }

  ++counters_.packets_in;
  const FlowEntry* entry = table_.lookup(ingress, packet);
  if (entry == nullptr) {
    ++counters_.table_misses;
    if (standalone_) return;  // nobody to punt to
    OfPacketIn in;
    in.in_port = ingress;
    in.reason = PacketInReason::kNoMatch;
    in.packet = packet;
    send_to_controller(std::move(in));
    return;
  }
  switch (entry->action.type) {
    case ActionType::kOutput:
      send(entry->action.port, packet);
      break;
    case ActionType::kToController: {
      ++counters_.punts;
      OfPacketIn in;
      in.in_port = ingress;
      in.reason = PacketInReason::kAction;
      in.packet = packet;
      send_to_controller(std::move(in));
      break;
    }
    case ActionType::kDrop:
      ++counters_.dropped;
      break;
  }
}

void SdnSwitch::handle_control(const net::Packet& packet) {
  const auto msg = decode(packet.payload);
  if (!msg) {
    logger().log(loop().now(), core::LogLevel::kWarn, "sw." + name(),
                 "of_decode_error", "");
    return;
  }
  switch (type_of(*msg)) {
    case OfType::kFlowMod: {
      const auto& fm = std::get<OfFlowMod>(*msg);
      if (fm.epoch < max_epoch_seen_) {
        // A deposed leader's in-flight programming: the cluster has moved
        // to a higher epoch, so this mod would reintroduce stale state.
        ++counters_.stale_flowmods_rejected;
        logger().log(loop().now(), core::LogLevel::kWarn, "sw." + name(),
                     "stale_flow_mod",
                     "epoch " + std::to_string(fm.epoch) + " < " +
                         std::to_string(max_epoch_seen_));
        if (auto* tel = telemetry()) {
          tel->metrics().counter("sdn.switch.stale_flowmods_rejected").inc();
        }
        break;
      }
      max_epoch_seen_ = fm.epoch;
      ++counters_.flow_mods;
      if (fm.command == FlowModCommand::kAdd) {
        FlowEntry e;
        e.match = fm.match;
        e.priority = fm.priority;
        e.action = fm.action;
        table_.add(std::move(e));
      } else {
        table_.remove(fm.match, fm.priority);
      }
      logger().log(loop().now(), core::LogLevel::kDebug, "sw." + name(),
                   "flow_mod",
                   (fm.command == FlowModCommand::kAdd ? "add " : "del ") +
                       fm.match.to_string());
      if (auto* tel = telemetry()) {
        tel->metrics().counter("sdn.switch.flow_mods").inc();
        tel->metrics()
            .histogram("sdn.switch.table_size")
            .record(static_cast<std::int64_t>(table_.size()));
        if (tel->tracing()) {
          auto span = telemetry::TraceSpan::instant(loop().now(), "sdn",
                                                    "flow_mod", "sw." + name());
          span.arg("op", fm.command == FlowModCommand::kAdd ? "add" : "del")
              .arg("match", fm.match.to_string())
              .arg("table_size", static_cast<std::int64_t>(table_.size()));
          tel->emit(span);
        }
      }
      break;
    }
    case OfType::kPacketOut: {
      const auto& po = std::get<OfPacketOut>(*msg);
      ++counters_.packet_outs;
      send(po.out_port, po.packet);
      break;
    }
    case OfType::kEcho: {
      const auto& echo = std::get<OfEcho>(*msg);
      if (!echo.is_reply) send_to_controller(OfEcho{echo.token, true});
      break;
    }
    case OfType::kHello:
      break;  // controller greeting; nothing to do
    default:
      break;
  }
}

void SdnSwitch::on_link_state(core::PortId port, bool up) {
  if (controller_port_ && port == *controller_port_) {
    if (up) {
      exit_standalone();
    } else {
      enter_standalone();
    }
    return;
  }
  OfPortStatus status;
  status.port = port;
  status.up = up;
  send_to_controller(status);
}

void SdnSwitch::flush_data_rules(const char* why) {
  const auto flushed = table_.remove_below_priority(kRelayRulePriority);
  counters_.standalone_flushed += flushed;
  logger().log(loop().now(), core::LogLevel::kInfo, "sw." + name(), why,
               "flushed " + std::to_string(flushed) + " data rules");
}

void SdnSwitch::enter_standalone() {
  if (standalone_) return;
  standalone_ = true;
  ++counters_.standalone_entries;
  // Fail-secure: the dead controller cannot retract stale routes, so drop
  // every data rule. Relay rules survive — the cluster speaker keeps its
  // external BGP sessions and becomes the degraded control path.
  flush_data_rules("standalone_enter");
  if (auto* tel = telemetry()) {
    tel->metrics().counter("sdn.switch.standalone_entries").inc();
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "sdn",
                                                "standalone", "sw." + name());
      span.arg("up", false);
      tel->emit(span);
    }
  }
}

void SdnSwitch::exit_standalone() {
  if (!standalone_) return;
  standalone_ = false;
  // Rules installed over the degraded path are stale the moment a live
  // controller is back; flush again and re-handshake so it can repush.
  flush_data_rules("standalone_exit");
  if (auto* tel = telemetry()) {
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "sdn",
                                                "standalone", "sw." + name());
      span.arg("up", true);
      tel->emit(span);
    }
  }
  start();
  // Any cluster link that changed while the channel was down never produced
  // a PortStatus (there was nobody to send it to). Replay the current state
  // of every data port so the revived controller's SwitchGraph converges to
  // reality instead of its pre-crash snapshot; up-to-date ports are no-ops
  // on the graph side.
  resend_port_states();
}

void SdnSwitch::resend_port_states() {
  const auto ports = network().port_count(id());
  for (std::size_t p = 0; p < ports; ++p) {
    const core::PortId port{static_cast<std::uint32_t>(p)};
    if (controller_port_ && port == *controller_port_) continue;
    const core::LinkId link = network().link_at(id(), port);
    if (!link.is_valid()) continue;
    OfPortStatus status;
    status.port = port;
    status.up = network().link_is_up(link);
    send_to_controller(status);
  }
}

}  // namespace bgpsdn::sdn
