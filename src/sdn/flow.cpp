#include "sdn/flow.hpp"

#include <algorithm>

namespace bgpsdn::sdn {

std::string FlowMatch::to_string() const {
  std::string s = "dst=" + dst.to_string();
  if (in_port) s += " in_port=" + std::to_string(in_port->value());
  if (proto) s += std::string{" proto="} + net::to_string(*proto);
  return s;
}

std::string FlowAction::to_string() const {
  switch (type) {
    case ActionType::kOutput: return "output:" + std::to_string(port.value());
    case ActionType::kToController: return "controller";
    case ActionType::kDrop: return "drop";
  }
  return "?";
}

std::string FlowEntry::to_string() const {
  return match.to_string() + " prio=" + std::to_string(priority) + " -> " +
         action.to_string();
}

void FlowTable::add(FlowEntry entry) {
  for (auto& e : entries_) {
    if (e.match == entry.match && e.priority == entry.priority) {
      entry.packets = e.packets;
      entry.bytes = e.bytes;
      e = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

std::size_t FlowTable::remove(const FlowMatch& match, std::uint16_t priority) {
  const auto old = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& e) {
    return e.match == match && e.priority == priority;
  });
  return old - entries_.size();
}

std::size_t FlowTable::remove_by_dst(const net::Prefix& dst) {
  const auto old = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& e) { return e.match.dst == dst; });
  return old - entries_.size();
}

std::size_t FlowTable::remove_below_priority(std::uint16_t floor) {
  const auto old = entries_.size();
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return e.priority < floor; });
  return old - entries_.size();
}

const FlowEntry* FlowTable::lookup(core::PortId ingress, const net::Packet& p,
                                   bool account) {
  FlowEntry* best = nullptr;
  for (auto& e : entries_) {
    if (!e.match.matches(ingress, p)) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority &&
         e.match.dst.length() > best->match.dst.length())) {
      best = &e;
    }
  }
  if (best != nullptr && account) {
    ++best->packets;
    best->bytes += p.size_bytes();
  }
  return best;
}

}  // namespace bgpsdn::sdn
