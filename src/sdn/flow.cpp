#include "sdn/flow.hpp"

#include <algorithm>
#include <bit>

#include "core/mem_stats.hpp"

namespace bgpsdn::sdn {

std::string FlowMatch::to_string() const {
  std::string s = "dst=" + dst.to_string();
  if (in_port) s += " in_port=" + std::to_string(in_port->value());
  if (proto) s += std::string{" proto="} + net::to_string(*proto);
  return s;
}

std::string FlowAction::to_string() const {
  switch (type) {
    case ActionType::kOutput: return "output:" + std::to_string(port.value());
    case ActionType::kToController: return "controller";
    case ActionType::kDrop: return "drop";
  }
  return "?";
}

std::string FlowEntry::to_string() const {
  return match.to_string() + " prio=" + std::to_string(priority) + " -> " +
         action.to_string();
}

void FlowTable::index_entry(std::size_t i) {
  const net::Prefix& dst = entries_[i].match.dst;
  const int len = static_cast<int>(dst.length());
  by_len_[static_cast<std::size_t>(len)][key_at(dst.network().bits(), len)]
      .push_back(static_cast<std::uint32_t>(i));
  len_mask_ |= std::uint64_t{1} << len;
}

void FlowTable::rebuild_index() {
  for (std::uint64_t m = len_mask_; m != 0; m &= m - 1) {
    by_len_[static_cast<std::size_t>(std::countr_zero(m))].clear();
  }
  len_mask_ = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) index_entry(i);
}

void FlowTable::clear() {
  entries_.clear();
  rebuild_index();
}

void FlowTable::add(FlowEntry entry) {
  // Same match+priority replaces in place, preserving counters. Candidates
  // share the entry's dst bucket, so only that bucket is scanned.
  const int len = static_cast<int>(entry.match.dst.length());
  auto& bucket = by_len_[static_cast<std::size_t>(len)];
  if (const auto it =
          bucket.find(key_at(entry.match.dst.network().bits(), len));
      it != bucket.end()) {
    for (const std::uint32_t i : it->second) {
      FlowEntry& e = entries_[i];
      if (e.match == entry.match && e.priority == entry.priority) {
        entry.packets = e.packets;
        entry.bytes = e.bytes;
        e = std::move(entry);
        return;
      }
    }
  }
  entries_.push_back(std::move(entry));
  index_entry(entries_.size() - 1);
}

std::size_t FlowTable::remove(const FlowMatch& match, std::uint16_t priority) {
  const auto old = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& e) {
    return e.match == match && e.priority == priority;
  });
  if (entries_.size() != old) rebuild_index();
  return old - entries_.size();
}

std::size_t FlowTable::remove_by_dst(const net::Prefix& dst) {
  const auto old = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& e) { return e.match.dst == dst; });
  if (entries_.size() != old) rebuild_index();
  return old - entries_.size();
}

std::size_t FlowTable::remove_below_priority(std::uint16_t floor) {
  const auto old = entries_.size();
  std::erase_if(entries_,
                [&](const FlowEntry& e) { return e.priority < floor; });
  if (entries_.size() != old) rebuild_index();
  return old - entries_.size();
}

// lint: hotpath(per-packet match; the indexed buckets exist so forwarding
// costs no heap traffic regardless of table size)
const FlowEntry* FlowTable::lookup(core::PortId ingress, const net::Packet& p,
                                   bool account) {
  FlowEntry* best = nullptr;
  std::uint32_t best_index = 0;
  const std::uint32_t addr = p.dst.bits();
  for (std::uint64_t m = len_mask_; m != 0; m &= m - 1) {
    const int len = std::countr_zero(m);
    const auto& bucket = by_len_[static_cast<std::size_t>(len)];
    const auto it = bucket.find(key_at(addr, len));
    if (it == bucket.end()) continue;
    for (const std::uint32_t i : it->second) {
      FlowEntry& e = entries_[i];
      if (e.match.in_port && *e.match.in_port != ingress) continue;
      if (e.match.proto && *e.match.proto != p.proto) continue;
      // Same selection as the linear scan: (priority, dst length) strictly
      // better wins; ties keep the earliest-inserted entry. Buckets are
      // walked length-ascending, so within one length index order holds.
      if (best == nullptr || e.priority > best->priority ||
          (e.priority == best->priority &&
           (e.match.dst.length() > best->match.dst.length() ||
            (e.match.dst.length() == best->match.dst.length() &&
             i < best_index)))) {
        best = &e;
        best_index = i;
      }
    }
  }
  if (best != nullptr && account) {
    ++best->packets;
    best->bytes += p.size_bytes();
  }
  return best;
}

std::uint64_t FlowTable::approx_bytes() const {
  // Entry counts, not vector capacities: capacities depend on the exact
  // grow/erase history, counts only on the programmed state.
  std::uint64_t bytes = 0;
  if (!entries_.empty()) {
    bytes += core::alloc_block_bytes(entries_.size() * sizeof(FlowEntry));
  }
  for (std::uint64_t m = len_mask_; m != 0; m &= m - 1) {
    const auto& bucket = by_len_[static_cast<std::size_t>(std::countr_zero(m))];
    bytes += core::hash_buckets_bytes(bucket.bucket_count());
    for (const auto& [key, indices] : bucket) {
      bytes += core::hash_node_bytes(
          sizeof(std::pair<const std::uint32_t, std::vector<std::uint32_t>>));
      bytes += core::alloc_block_bytes(indices.size() * sizeof(std::uint32_t));
    }
  }
  return bytes;
}

const FlowEntry* FlowTable::lookup_linear(core::PortId ingress,
                                          const net::Packet& p, bool account) {
  FlowEntry* best = nullptr;
  for (auto& e : entries_) {
    if (!e.match.matches(ingress, p)) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority &&
         e.match.dst.length() > best->match.dst.length())) {
      best = &e;
    }
  }
  if (best != nullptr && account) {
    ++best->packets;
    best->bytes += p.size_bytes();
  }
  return best;
}

}  // namespace bgpsdn::sdn
