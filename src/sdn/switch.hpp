// SdnSwitch — an OpenFlow-like switch standing in for one cluster AS.
//
// In the paper's hybrid experiments, ASes that join the SDN cluster replace
// their BGP router with an SDN switch whose forwarding is programmed by the
// IDR controller. The switch keeps the AS identity (for logging and for the
// cluster's transparent interop with legacy BGP); all routing intelligence
// lives in the controller.
#pragma once

#include <cstdint>
#include <optional>

#include "core/ids.hpp"
#include "net/node.hpp"
#include "sdn/flow.hpp"
#include "sdn/openflow.hpp"

namespace bgpsdn::sdn {

struct SwitchCounters {
  std::uint64_t packets_in{0};       // data packets seen
  std::uint64_t table_misses{0};     // punted to controller (no match)
  std::uint64_t punts{0};            // punted by explicit to-controller action
  std::uint64_t flow_mods{0};
  std::uint64_t packet_outs{0};
  std::uint64_t dropped{0};
  std::uint64_t standalone_entries{0};  // controller-channel losses survived
  std::uint64_t standalone_flushed{0};  // data rules dropped across flushes
  std::uint64_t stale_flowmods_rejected{0};  // fenced-out deposed-leader mods
};

class SdnSwitch : public net::Node {
 public:
  /// `owner_as` is the AS this switch represents in the cluster.
  explicit SdnSwitch(core::AsNumber owner_as) : owner_as_{owner_as} {}

  core::AsNumber owner_as() const { return owner_as_; }
  Dpid dpid() const { return id().value(); }

  /// Must be set (by the cluster builder) before start(): the port whose
  /// link leads to the controller.
  void set_controller_port(core::PortId port) { controller_port_ = port; }
  std::optional<core::PortId> controller_port() const { return controller_port_; }

  /// Pre-installed rules (e.g. BGP relay paths) may be added directly by the
  /// cluster builder before start; runtime programming goes via FlowMod.
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }

  void start() override;
  void handle_packet(core::PortId ingress, const net::Packet& packet) override;
  void on_link_state(core::PortId port, bool up) override;

  /// True while the controller channel is down. In standalone mode the
  /// switch flushes its data-priority rules (fail-secure: no forwarding on
  /// state the dead controller can no longer retract), stops punting table
  /// misses, and accepts FlowMods arriving over any port — the degraded
  /// control path is the cluster speaker programming border switches
  /// through the static BGP relay rules.
  bool standalone() const { return standalone_; }

  /// Highest FlowMod programming epoch accepted so far (0 until a
  /// replicated controller starts fencing; see OfFlowMod::epoch).
  std::uint32_t max_epoch_seen() const { return max_epoch_seen_; }

  const SwitchCounters& counters() const { return counters_; }

 private:
  void handle_control(const net::Packet& packet);
  void send_to_controller(const OfMessage& message);
  void enter_standalone();
  void exit_standalone();
  void flush_data_rules(const char* why);
  void resend_port_states();

  core::AsNumber owner_as_;
  std::optional<core::PortId> controller_port_;
  FlowTable table_;
  SwitchCounters counters_;
  bool standalone_{false};
  std::uint32_t max_epoch_seen_{0};
};

}  // namespace bgpsdn::sdn
