// The OpenFlow-like switch/controller control channel.
//
// A compact binary protocol in the spirit of OpenFlow 1.0: Hello announces
// the switch's datapath id and port count, PacketIn carries table misses
// and controller-requested punts, FlowMod programs the table, PacketOut
// injects packets, PortStatus reports link changes. Messages are serialized
// with the shared ByteWriter/ByteReader and travel as Protocol::kOfControl
// packets over the dedicated control links — the controller is in-band in
// the emulation graph, as in the paper's Mininet setup.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "bgp/wire.hpp"
#include "core/ids.hpp"
#include "net/packet.hpp"
#include "sdn/flow.hpp"

namespace bgpsdn::sdn {

/// Datapath id: the switch's identity on the control channel.
using Dpid = std::uint64_t;

enum class OfType : std::uint8_t {
  kHello = 0,
  kPacketIn = 1,
  kPacketOut = 2,
  kFlowMod = 3,
  kPortStatus = 4,
  kEcho = 5,
};

struct OfHello {
  Dpid dpid{0};
  std::uint16_t port_count{0};
  bool operator==(const OfHello&) const = default;
};

enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };

struct OfPacketIn {
  core::PortId in_port;
  PacketInReason reason{PacketInReason::kNoMatch};
  net::Packet packet;
};

struct OfPacketOut {
  core::PortId out_port;
  net::Packet packet;
};

enum class FlowModCommand : std::uint8_t { kAdd = 0, kDelete = 1 };

struct OfFlowMod {
  FlowModCommand command{FlowModCommand::kAdd};
  FlowMatch match;
  std::uint16_t priority{0};
  FlowAction action;  // ignored for kDelete
  /// Programming epoch: switches remember the highest epoch they have seen
  /// and reject mods from a lower one, fencing out a deposed leader whose
  /// in-flight FlowMods arrive after a takeover. 0 (the default everywhere
  /// outside controller HA) never fences anything.
  std::uint32_t epoch{0};
};

struct OfPortStatus {
  core::PortId port;
  bool up{true};
  bool operator==(const OfPortStatus&) const = default;
};

struct OfEcho {
  std::uint64_t token{0};
  bool is_reply{false};
  bool operator==(const OfEcho&) const = default;
};

using OfMessage =
    std::variant<OfHello, OfPacketIn, OfPacketOut, OfFlowMod, OfPortStatus, OfEcho>;

OfType type_of(const OfMessage& m);

std::vector<std::byte> encode(const OfMessage& m);
std::optional<OfMessage> decode(const std::vector<std::byte>& wire);

}  // namespace bgpsdn::sdn
