#include "sdn/controller_base.hpp"

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"

namespace bgpsdn::sdn {

void ControllerBase::base_crash() {
  crashed_ = true;
  switches_.clear();
  dpid_by_port_.clear();
  logger().log(loop().now(), core::LogLevel::kWarn, "ctrl." + name(), "crash",
               "controller process down");
}

void ControllerBase::base_restart() {
  crashed_ = false;
  logger().log(loop().now(), core::LogLevel::kInfo, "ctrl." + name(), "restart",
               "controller process up, awaiting switch handshakes");
}

void ControllerBase::handle_packet(core::PortId ingress, const net::Packet& packet) {
  if (crashed_) return;  // a dead process reads no sockets
  if (packet.proto != net::Protocol::kOfControl) return;
  const auto msg = decode(packet.payload);
  if (!msg) {
    logger().log(loop().now(), core::LogLevel::kWarn, "ctrl." + name(),
                 "of_decode_error", "");
    return;
  }

  if (type_of(*msg) == OfType::kHello) {
    const auto& hello = std::get<OfHello>(*msg);
    SwitchChannel ch;
    ch.dpid = hello.dpid;
    ch.local_port = ingress;
    ch.port_count = hello.port_count;
    ch.connected = true;
    switches_[hello.dpid] = ch;
    dpid_by_port_[ingress.value()] = hello.dpid;
    // Greet back (completes the handshake; the switch ignores the content).
    send_to(hello.dpid, OfHello{0, 0});
    logger().log(loop().now(), core::LogLevel::kInfo, "ctrl." + name(),
                 "switch_connected", "dpid " + std::to_string(hello.dpid));
    on_switch_connected(switches_[hello.dpid]);
    return;
  }

  const auto it = dpid_by_port_.find(ingress.value());
  if (it == dpid_by_port_.end()) return;  // message before Hello: ignore
  SwitchChannel& ch = switches_[it->second];

  switch (type_of(*msg)) {
    case OfType::kPacketIn:
      ++counters_.packet_ins;
      on_packet_in(ch, std::get<OfPacketIn>(*msg));
      break;
    case OfType::kPortStatus:
      ++counters_.port_status;
      logger().log(loop().now(), core::LogLevel::kInfo, "ctrl." + name(),
                   "port_status",
                   "dpid " + std::to_string(ch.dpid) + " port " +
                       std::to_string(std::get<OfPortStatus>(*msg).port.value()) +
                       (std::get<OfPortStatus>(*msg).up ? " up" : " down"));
      on_port_status(ch, std::get<OfPortStatus>(*msg));
      break;
    case OfType::kEcho: {
      const auto& echo = std::get<OfEcho>(*msg);
      if (!echo.is_reply) send_to(ch.dpid, OfEcho{echo.token, true});
      break;
    }
    default:
      break;
  }
}

void ControllerBase::send_to(Dpid dpid, const OfMessage& message) {
  if (crashed_) return;
  const auto it = switches_.find(dpid);
  if (it == switches_.end() || !it->second.connected) return;
  net::Packet pkt;
  pkt.proto = net::Protocol::kOfControl;
  pkt.payload = encode(message);
  send(it->second.local_port, std::move(pkt));
}

void ControllerBase::send_flow_mod(Dpid dpid, const OfFlowMod& mod) {
  ++counters_.flow_mods_sent;
  logger().log(loop().now(), core::LogLevel::kDebug, "ctrl." + name(), "flow_mod_tx",
               "dpid " + std::to_string(dpid) + " " + mod.match.to_string() +
                   " -> " + mod.action.to_string());
  send_to(dpid, mod);
}

void ControllerBase::send_packet_out(Dpid dpid, core::PortId out_port,
                                     const net::Packet& p) {
  ++counters_.packet_outs_sent;
  OfPacketOut out;
  out.out_port = out_port;
  out.packet = p;
  send_to(dpid, std::move(out));
}

}  // namespace bgpsdn::sdn
