// RouteFlowController — the related-work baseline (Rothenberg et al.,
// HotSDN 2012), reimplemented for comparison.
//
// "RouteFlow is a platform where the controller application mirrors the
// SDN topology to a virtual network and runs a legacy routing protocol on
// top of it. Our controller however does not rely on routing decisions of
// legacy protocols but runs its own algorithms."
//
// This controller does exactly what the paper's baseline does: it builds a
// private virtual network inside the controller — one virtual BgpRouter
// per member switch, virtual links mirroring the intra-cluster links, and
// one "ghost" BGP peer per real border peering that replays the external
// world's updates into the virtual network (and relays the virtual
// routers' answers back out through the cluster speaker). Forwarding state
// is synchronized by polling each virtual router's Loc-RIB and compiling
// it into flow rules. Because all route selection is legacy BGP, the
// cluster converges at BGP speed — no centralization gain — which is what
// the comparison benches quantify.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "bgp/router.hpp"
#include "controller/cluster_controller.hpp"
#include "net/network.hpp"

namespace bgpsdn::controller {

struct RouteFlowConfig {
  /// Timers of the virtual (mirrored) BGP routers; defaults match the
  /// legacy world, as RouteFlow runs stock routing software.
  bgp::Timers timers{};
  /// Loc-RIB -> flow-table synchronization poll period.
  core::Duration sync_interval{core::Duration::millis(500)};
};

struct RouteFlowCounters {
  std::uint64_t sync_passes{0};
  std::uint64_t flow_adds{0};
  std::uint64_t flow_deletes{0};
  std::uint64_t relayed_in{0};   // external updates injected into the mirror
  std::uint64_t relayed_out{0};  // virtual announcements sent to the world
};

/// Plays the external BGP neighbor of one real peering inside the virtual
/// network: replays real updates inward, relays virtual answers outward.
class GhostPeer : public net::Node, public bgp::SessionHost {
 public:
  using RelayFn =
      std::function<void(speaker::PeeringId, const bgp::UpdateMessage&)>;

  GhostPeer(speaker::Peering peering, bgp::Timers timers, RelayFn relay)
      : peering_{std::move(peering)},
        timers_{timers},
        relay_{std::move(relay)} {}

  /// Create the session towards the virtual router on local port 0. Call
  /// after the ghost<->virtual-router link exists.
  void configure_session(net::Ipv4Addr local, net::Ipv4Addr remote);

  /// Replay a real-world update into the virtual network.
  void inject(const bgp::UpdateMessage& update);
  /// Withdraw everything previously injected (real peering went down).
  void flush_all();

  const speaker::Peering& peering() const { return peering_; }

  // Node
  void start() override;
  void handle_packet(core::PortId ingress, const net::Packet& packet) override;
  void on_link_state(core::PortId port, bool up) override;

  // SessionHost — the virtual router's updates come back through here and
  // are relayed to the real world.
  void session_transmit(bgp::Session& session, net::Bytes wire) override;
  void session_established(bgp::Session& session) override;
  void session_down(bgp::Session& session, const std::string& reason) override;
  void session_update(bgp::Session& session, const bgp::UpdateMessage& update) override;
  core::EventLoop& session_loop() override;
  core::Rng& session_rng() override;
  core::Logger& session_logger() override;
  std::string session_log_name() const override;
  telemetry::Telemetry* session_telemetry() override { return telemetry(); }

 private:
  speaker::Peering peering_;
  bgp::Timers timers_;
  RelayFn relay_;
  net::Ipv4Addr local_address_;
  net::Ipv4Addr remote_address_;
  std::unique_ptr<bgp::Session> session_;
  /// Prefixes currently injected (for flush_all on peer loss).
  std::set<net::Prefix> injected_;
  /// Updates that arrived before the virtual session established.
  std::vector<bgp::UpdateMessage> backlog_;
};

class RouteFlowController : public ClusterController {
 public:
  explicit RouteFlowController(RouteFlowConfig config = {}) : config_{config} {}

  // ClusterController
  SwitchGraph& switch_graph() override { return graph_; }
  void bind_speaker(speaker::ClusterBgpSpeaker& speaker) override;
  void originate(sdn::Dpid origin, const net::Prefix& prefix,
                 std::optional<core::PortId> host_port) override;
  void withdraw_origin(const net::Prefix& prefix) override;
  /// Builds the mirrored virtual network; must run after all switches,
  /// links and peerings are declared (the experiment builder calls it).
  void finalize() override;

  /// Boots the mirror network and the RIB->flows synchronization loop.
  void start() override;

  // SpeakerListener
  void on_peer_established(const speaker::Peering& peering) override;
  void on_peer_down(const speaker::Peering& peering,
                    const std::string& reason) override;
  void on_route_update(const speaker::Peering& peering,
                       const bgp::UpdateMessage& update) override;

  const RouteFlowCounters& counters() const { return rf_counters_; }
  /// The mirrored router for a member switch (tests peek at its RIBs).
  const bgp::BgpRouter* virtual_router(sdn::Dpid dpid) const;

 protected:
  void on_switch_connected(const sdn::SwitchChannel& channel) override;
  void on_port_status(const sdn::SwitchChannel& channel,
                      const sdn::OfPortStatus& status) override;

 private:
  void sync_flows();
  void relay_out(speaker::PeeringId peering, const bgp::UpdateMessage& update);

  RouteFlowConfig config_;
  SwitchGraph graph_;
  speaker::ClusterBgpSpeaker* speaker_{nullptr};

  /// The mirror world. Shares the real event loop/logger/rng.
  std::unique_ptr<net::Network> mirror_;
  std::map<sdn::Dpid, bgp::BgpRouter*> vrouters_;
  std::map<speaker::PeeringId, GhostPeer*> ghosts_;
  /// Virtual session id -> the real flow action its routes translate to.
  std::map<std::uint32_t, sdn::FlowAction> action_by_vsession_;
  /// Real (dpid, port) of an intra-cluster link -> mirrored link id.
  std::map<std::pair<sdn::Dpid, std::uint32_t>, core::LinkId> vlink_by_port_;
  /// Cluster-originated prefixes (host port for local delivery).
  std::map<net::Prefix, std::pair<sdn::Dpid, std::optional<core::PortId>>> origins_;
  /// Installed flows per prefix per switch (diff target).
  std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>> installed_;
  std::map<sdn::Dpid, std::uint64_t> synced_generation_;
  RouteFlowCounters rf_counters_;
  bool finalized_{false};
};

}  // namespace bgpsdn::controller
