// ControllerReplicaSet — hot-standby replication for the IDR controller.
//
// The paper runs a single IDR controller per cluster, so a controller crash
// degrades the cluster to distributed BGP (FallbackRouting). The follow-up
// centralization-broker model (Kotronis et al.) envisions replicated
// brokers; this layer models N controller replicas co-resident on the
// cluster's controller node (a VIP/shared-endpoint deployment): switches
// and the cluster speaker always talk to "the controller", and the replica
// set decides which modeled process is serving.
//
// The leader serves RouteFlow/FlowMod programming; standbys shadow its
// application state over a deterministic virtual-time replication channel:
//   - a sequence-numbered state-delta log (external-RIB updates, origin
//     changes, installed-flow mirror changes, SwitchGraph edge deltas),
//     fanned out to each standby with per-transmission seeded loss and
//     per-replica partitions, cumulative ACKs, and exponential-backoff
//     retransmission of the unacknowledged suffix;
//   - periodic full-snapshot anti-entropy for fresh joiners and chronic
//     laggards (and after a takeover, whose speaker replay bypasses the log).
//
// Leader election is lease/heartbeat-based with Raft-style terms: the
// leader heartbeats every standby; a standby that misses heartbeats for a
// seeded jittered election timeout becomes a candidate, collects one vote
// per replica per term, and wins with a majority of the *live* replicas
// (the emulation models an external failure detector, so crashed replicas
// leave the electorate — an N=2 leader crash self-elects; a replication
// partition does not, and epoch fencing preserves safety there). A
// pre-vote-style lease guard defers any candidacy started within
// election_min of a received heartbeat, so a healed rejoiner whose term was
// inflated by futile partition-era candidacies cannot depose a healthy
// leader.
//
// Every leadership transition — election win, degradation to fallback,
// recovery — bumps a monotonic cluster epoch stamped into FlowMods;
// switches reject programming from a lower epoch, fencing deposed leaders.
// Only when *all* replicas are down does the cluster degrade to PR 3's
// FallbackRouting, via the experiment-provided hooks.
//
// Determinism: all channel behaviour runs on the event loop in virtual
// time; the only randomness is the forked, seeded Rng for election jitter
// and loss draws, created exclusively in HA mode so non-HA runs draw the
// exact same stream as before this layer existed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "controller/idr_controller.hpp"
#include "core/random.hpp"
#include "core/time.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::core {
class EventLoop;
class Logger;
}  // namespace bgpsdn::core

namespace bgpsdn::telemetry {
class Telemetry;
}  // namespace bgpsdn::telemetry

namespace bgpsdn::controller {

struct ReplicaSetConfig {
  std::size_t replicas{2};
  /// Leader lease renewal period.
  core::Duration heartbeat{core::Duration::millis(50)};
  /// Election timeout drawn uniformly from [election_min, election_max].
  core::Duration election_min{core::Duration::millis(150)};
  core::Duration election_max{core::Duration::millis(300)};
  /// One-way replication/election message latency (intra-node channel).
  core::Duration replication_delay{core::Duration::micros(200)};
  /// Initial retransmit backoff; doubles per retry up to 64x.
  core::Duration retry_backoff{core::Duration::millis(20)};
  /// Full-snapshot anti-entropy period.
  core::Duration anti_entropy{core::Duration::seconds(1)};
  /// Ack gap (in deltas) beyond which anti-entropy snapshots a laggard.
  std::size_t snapshot_gap{64};
  /// Per-transmission drop probability on the delta channel.
  double replication_loss{0.0};
  /// Seed for the replica set's private jitter/loss stream.
  std::uint64_t seed{1};
};

struct ReplicaSetCounters {
  std::uint64_t elections{0};        // candidacies that won
  std::uint64_t takeovers{0};        // leadership adoptions by a standby
  std::uint64_t split_votes{0};      // candidacies that expired without quorum
  std::uint64_t heartbeats_sent{0};
  std::uint64_t deltas_appended{0};
  std::uint64_t deltas_replicated{0};  // delta transmissions that left the leader
  std::uint64_t deltas_lost{0};        // dropped by the seeded loss coin
  std::uint64_t retransmits{0};        // backoff-timer resends of a suffix
  std::uint64_t snapshots_sent{0};     // anti-entropy full snapshots
  std::uint64_t deltas_replayed{0};    // unacknowledged suffix at takeovers
  std::uint64_t flow_mods_replayed{0};  // flow-kind deltas in those suffixes
  std::uint64_t leaderless_events_dropped{0};
  std::uint64_t replica_crashes{0};
  std::uint64_t replica_restarts{0};
};

/// One entry of the replication log. The log is a journal of state the
/// leader has already applied, not a consensus log: standbys apply entries
/// as they arrive (in order; gaps wait for retransmission).
struct ReplicaDelta {
  enum class Kind : std::uint8_t {
    kRouteUpdate,     // speaker Adj-RIB-In change
    kPeerUp,          // peering established (no shadow state; informational)
    kPeerDown,        // peering lost: drop its routes
    kOriginate,       // cluster origination added
    kWithdrawOrigin,  // cluster origination removed
    kFlowInstall,     // installed-flow mirror upsert
    kFlowRemove,      // installed-flow mirror removal
    kEdge,            // SwitchGraph edge-delta changelog entry
  };
  Kind kind{Kind::kRouteUpdate};
  speaker::PeeringId peering{0};
  bgp::UpdateMessage update;  // kRouteUpdate
  net::Prefix prefix;         // origin / flow kinds
  sdn::Dpid dpid{0};          // origin / flow kinds; kEdge: from
  sdn::Dpid dpid2{0};         // kEdge: to
  bool edge_added{false};     // kEdge
  std::optional<core::PortId> host_port;  // kOriginate
  sdn::FlowAction action;     // kFlowInstall
};

class ControllerReplicaSet : public speaker::SpeakerListener {
 public:
  /// Called when the last live replica dies: the experiment runs the legacy
  /// full-crash path (control links down, FallbackRouting activates) and
  /// fences the fallback at the passed epoch.
  using DegradeHook = std::function<void(std::uint32_t epoch)>;
  /// Called when a replica restarts out of full degradation: the experiment
  /// runs the legacy restart path (fallback stands down, controller
  /// restarts and resyncs, control links heal).
  using RecoverHook = std::function<void(std::uint32_t epoch)>;

  ControllerReplicaSet(core::EventLoop& loop, core::Logger& logger,
                       telemetry::Telemetry* telemetry, IdrController& controller,
                       speaker::ClusterBgpSpeaker& speaker,
                       ReplicaSetConfig config);
  ControllerReplicaSet(const ControllerReplicaSet&) = delete;
  ControllerReplicaSet& operator=(const ControllerReplicaSet&) = delete;

  void set_degrade_hook(DegradeHook hook) { degrade_ = std::move(hook); }
  void set_recover_hook(RecoverHook hook) { recover_ = std::move(hook); }

  /// Interpose on the speaker and controller (flow observer + programming
  /// epoch), elect replica 0, and arm the heartbeat / election /
  /// anti-entropy timers. Call once, after the controller is bound to the
  /// speaker and before the experiment starts.
  void activate();

  // --- fault surface --------------------------------------------------------

  void crash_replica(std::size_t id);
  void restart_replica(std::size_t id);
  void crash_all();
  void restart_all();
  /// Partition a replica's replication links (both directions); heartbeats,
  /// votes, deltas, acks and snapshots to/from it are blocked. The switch
  /// and speaker channels are unaffected (shared-node model).
  void partition_replica(std::size_t id);
  void heal_replica(std::size_t id);

  // --- experiment integration ----------------------------------------------

  /// Record an origination/withdrawal into the replication log (the
  /// experiment calls these alongside IdrController::originate etc.).
  void record_originate(sdn::Dpid dpid, const net::Prefix& prefix,
                        std::optional<core::PortId> host_port);
  void record_withdraw_origin(const net::Prefix& prefix);

  // SpeakerListener: replicate, then forward to the live leader process.
  void on_peer_established(const speaker::Peering& peering) override;
  void on_peer_down(const speaker::Peering& peering,
                    const std::string& reason) override;
  void on_route_update(const speaker::Peering& peering,
                       const bgp::UpdateMessage& update) override;

  // --- introspection --------------------------------------------------------

  std::size_t size() const { return replicas_.size(); }
  std::optional<std::size_t> leader() const { return leader_; }
  bool degraded() const { return degraded_; }
  bool replica_crashed(std::size_t id) const { return replicas_.at(id).crashed; }
  bool replica_partitioned(std::size_t id) const {
    return replicas_.at(id).partitioned;
  }
  std::size_t live_count() const;
  std::uint32_t cluster_epoch() const { return cluster_epoch_; }
  std::size_t log_size() const { return log_.size(); }
  std::size_t replica_acked(std::size_t id) const { return replicas_.at(id).acked; }
  std::uint64_t replica_term(std::size_t id) const { return replicas_.at(id).term; }
  const ReplicaSetCounters& counters() const { return counters_; }
  /// Virtual-time span of the most recent leaderless window (crash of the
  /// old leader to the new leader's election win); zero before any.
  core::Duration last_election_latency() const { return last_election_latency_; }

 private:
  struct Replica {
    bool crashed{false};
    bool partitioned{false};
    std::uint64_t term{0};
    std::uint64_t voted_term{0};  // highest term this replica granted
    core::TimePoint last_leader_contact{};  // latest heartbeat receipt
    std::size_t applied{0};       // log entries applied to the shadow
    std::size_t acked{0};         // leader's view of `applied`
    bool needs_snapshot{false};   // fresh joiner / post-takeover resync
    IdrShadowState shadow;
    std::uint64_t election_gen{0};
    std::uint64_t candidacy_gen{0};
    std::uint64_t candidacy_term{0};
    int votes{0};
    std::uint32_t backoff_mult{1};
    bool retry_armed{false};
  };

  std::size_t quorum() const { return live_count() / 2 + 1; }
  bool channel_blocked(std::size_t a, std::size_t b) const {
    return replicas_[a].partitioned || replicas_[b].partitioned;
  }

  void append(ReplicaDelta delta);
  void send_suffix(std::size_t to);
  void deliver_suffix(std::size_t to, std::size_t end);
  void deliver_ack(std::size_t from, std::size_t pos);
  void arm_retry(std::size_t to);
  void apply_delta(IdrShadowState& shadow, const ReplicaDelta& delta) const;
  void harvest_graph_deltas();

  void arm_heartbeat();
  void heartbeat_tick(std::uint64_t gen);
  void arm_anti_entropy();
  void anti_entropy_tick(std::uint64_t gen);
  void send_snapshot(std::size_t to);

  void arm_election(std::size_t id);
  void on_election_timeout(std::size_t id, std::uint64_t gen);
  void start_candidacy(std::size_t id);
  void deliver_vote_request(std::size_t from, std::size_t to,
                            std::uint64_t term, std::uint64_t candidacy_gen);
  void deliver_vote_grant(std::size_t to, std::uint64_t term,
                          std::uint64_t candidacy_gen);
  void become_leader(std::size_t id);

  void on_all_down();
  void recover_from_degraded(std::size_t id);
  void rebind_controller();
  void count(const char* name);
  void log(const char* event, const std::string& detail) const;

  core::EventLoop& loop_;
  core::Logger& logger_;
  telemetry::Telemetry* telemetry_;
  IdrController& controller_;
  speaker::ClusterBgpSpeaker& speaker_;
  ReplicaSetConfig config_;
  core::Rng rng_;

  std::vector<Replica> replicas_;
  std::vector<ReplicaDelta> log_;
  std::optional<std::size_t> leader_;
  bool degraded_{false};
  bool leaderless_{false};
  core::TimePoint leaderless_since_{};
  std::uint32_t cluster_epoch_{0};
  std::size_t graph_seen_{0};  // SwitchGraph changelog harvest position
  std::uint64_t hb_gen_{0};
  std::uint64_t ae_gen_{0};
  core::Duration last_election_latency_{core::Duration::zero()};
  ReplicaSetCounters counters_;
  DegradeHook degrade_;
  RecoverHook recover_;
};

}  // namespace bgpsdn::controller
