#include "controller/as_topology.hpp"

#include <set>

namespace bgpsdn::controller {

namespace {
/// Short local alias; the canonical constant lives in the header so the
/// incremental decider can root its trees at the same node.
constexpr std::uint64_t kDestNode = kAsTopologyDestNode;

bool path_crosses_cluster(const SwitchGraph& switches, const bgp::AsPath& path) {
  for (const auto as : path.hops()) {
    if (switches.switch_of(as).has_value()) return true;
  }
  return false;
}

/// Egress bookkeeping: best (weight, peering) per border switch.
struct EgressChoice {
  std::uint32_t weight{0};
  speaker::PeeringId peering{0};
  const ExternalRoute* route{nullptr};
};
using EgressMap = std::map<sdn::Dpid, EgressChoice>;

void consider_egress(EgressMap& egress,
                     const speaker::ClusterBgpSpeaker& speaker,
                     const ExternalRoute& r) {
  const speaker::Peering* info = speaker.peering(r.peering);
  if (info == nullptr) return;
  const auto weight =
      static_cast<std::uint32_t>(1 + r.attributes->as_path.length());
  const auto it = egress.find(info->border_dpid);
  // Deterministic preference: lower weight, then lower peering id.
  if (it == egress.end() || weight < it->second.weight ||
      (weight == it->second.weight && r.peering < it->second.peering)) {
    egress[info->border_dpid] = EgressChoice{weight, r.peering, &r};
  }
}

/// Translate a Dijkstra result over the transformed graph into per-switch
/// hops and composed AS-level paths. Shared by the reference and the
/// incremental engines — the translation is where the output bytes are
/// made, so sharing it keeps the two engines trivially aligned there.
PrefixDecision translate(const SwitchGraph& switches, const DijkstraResult& res,
                         const EgressMap& egress,
                         std::optional<sdn::Dpid> origin_switch,
                         std::size_t pruned_routes) {
  PrefixDecision decision;
  decision.pruned_routes = pruned_routes;

  // prev[s] is the node after s on the path s -> destination (the Dijkstra
  // ran on reversed edges).
  for (const auto& sw : switches.all_switches()) {
    const auto dit = res.dist.find(sw.dpid);
    if (dit == res.dist.end()) continue;  // unreachable
    PrefixDecision::Hop hop;
    hop.distance = dit->second;
    const std::uint64_t next = res.prev.at(sw.dpid);
    if (next == kDestNode) {
      if (origin_switch && *origin_switch == sw.dpid &&
          (egress.count(sw.dpid) == 0 || dit->second == 0)) {
        hop.kind = PrefixDecision::HopKind::kLocalOrigin;
      } else {
        hop.kind = PrefixDecision::HopKind::kEgress;
        hop.egress = egress.at(sw.dpid).peering;
      }
    } else {
      hop.kind = PrefixDecision::HopKind::kNextSwitch;
      hop.next_switch = next;
    }
    decision.hops[sw.dpid] = hop;
  }

  // Compose AS-level paths: walk the hop chain, then append the external
  // route's path at the egress (or stop at the origin switch).
  for (const auto& [dpid, hop] : decision.hops) {
    std::vector<core::AsNumber> hops_out;
    bgp::Origin origin = bgp::Origin::kIgp;
    sdn::Dpid cur = dpid;
    bool ok = true;
    while (true) {
      const auto owner = switches.owner_of(cur);
      if (!owner) {
        ok = false;
        break;
      }
      hops_out.push_back(*owner);
      const auto& h = decision.hops.at(cur);
      if (h.kind == PrefixDecision::HopKind::kLocalOrigin) break;
      if (h.kind == PrefixDecision::HopKind::kEgress) {
        const auto& choice = egress.at(cur);
        for (const auto as : choice.route->attributes->as_path.hops()) {
          hops_out.push_back(as);
        }
        origin = choice.route->attributes->origin;
        break;
      }
      cur = h.next_switch;
    }
    if (!ok) continue;
    decision.as_paths[dpid] = bgp::AsPath{std::move(hops_out)};
    decision.origins[dpid] = origin;
  }

  return decision;
}
}  // namespace

bool AsTopologyGraph::crosses_cluster(const bgp::AsPath& path) const {
  return path_crosses_cluster(switches_, path);
}

PrefixDecision AsTopologyGraph::decide(const std::vector<ExternalRoute>& routes,
                                       std::optional<sdn::Dpid> origin_switch) const {
  // Component index per switch: needed by the sub-cluster rule below.
  std::map<sdn::Dpid, std::size_t> component_of;
  {
    const auto comps = switches_.components();
    for (std::size_t i = 0; i < comps.size(); ++i) {
      for (const auto dpid : comps[i]) component_of[dpid] = i;
    }
  }

  // Base reversed graph: Dijkstra runs from the virtual destination, so
  // every edge points *away* from it. Intra-cluster links are symmetric.
  AdjacencyList graph;
  graph.intern(kDestNode);
  for (const auto& sw : switches_.all_switches()) {
    graph.intern(sw.dpid);
    for (const auto& adj : switches_.neighbors(sw.dpid)) {
      graph.add_edge(sw.dpid, adj.peer, 1);
    }
  }

  EgressMap egress;

  // --- Pass 1: routes that never re-enter the cluster -------------------
  std::vector<const ExternalRoute*> crossing;
  for (const auto& r : routes) {
    if (crosses_cluster(r.attributes->as_path)) {
      crossing.push_back(&r);
    } else {
      consider_egress(egress, speaker_, r);
    }
  }
  const auto build_dest_edges = [&] {
    graph.clear_edges_from(kDestNode);
    for (const auto& [dpid, choice] : egress) {
      graph.add_edge(kDestNode, dpid, choice.weight);
    }
    if (origin_switch) graph.add_edge(kDestNode, *origin_switch, 0);
  };
  build_dest_edges();
  DijkstraResult res = shortest_paths(graph, kDestNode);

  // --- Pass 2: the sub-cluster rule --------------------------------------
  // "We want to support disjoint AS sub-clusters controlled by the same
  // controller, so that an intra-cluster link failure does not isolate the
  // controlled ASes: paths over the legacy Internet could still connect
  // the sub-clusters."
  //
  // A route whose AS_PATH contains cluster members is admissible only for
  // a border switch that pass 1 left unreachable, and only when every
  // crossed member (a) sits in a *different* component than that border
  // switch and (b) was itself reached in pass 1 without crossing the
  // cluster. Such traffic exits to the legacy world and re-enters a
  // sub-cluster whose forwarding never points back at the unreached one —
  // loop-free by construction. Everything else is pruned (the paper's
  // "naive BGP loop avoidance is not enough" insight).
  // Iterate to a fixpoint: each pass may admit routes whose crossed
  // members were all settled by *earlier* passes. A pass-k component only
  // forwards through components of pass < k, so the pass order is a
  // topological order and no forwarding cycle can form.
  std::vector<const ExternalRoute*> pending(crossing.begin(), crossing.end());
  std::size_t admitted_total = 0;
  bool progress = allow_bridging_;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<const ExternalRoute*> still_pending;
    std::vector<const ExternalRoute*> admitted;
    for (const ExternalRoute* r : pending) {
      const speaker::Peering* info = speaker_.peering(r->peering);
      if (info == nullptr) continue;
      const sdn::Dpid border = info->border_dpid;
      if (res.dist.count(border) > 0) continue;  // already safely routed
      bool safe = true;
      for (const auto as : r->attributes->as_path.hops()) {
        const auto crossed = switches_.switch_of(as);
        if (!crossed) continue;
        if (component_of.at(*crossed) == component_of.at(border) ||
            res.dist.count(*crossed) == 0) {
          safe = false;
          break;
        }
      }
      if (safe) {
        admitted.push_back(r);
      } else {
        still_pending.push_back(r);
      }
    }
    if (!admitted.empty()) {
      for (const ExternalRoute* r : admitted) consider_egress(egress, speaker_, *r);
      admitted_total += admitted.size();
      build_dest_edges();
      res = shortest_paths(graph, kDestNode);
      progress = true;
    }
    pending = std::move(still_pending);
  }

  return translate(switches_, res, egress, origin_switch,
                   crossing.size() - admitted_total);
}

// --- IncrementalDecider -----------------------------------------------------

IncrementalDecider::PrefixState& IncrementalDecider::get_state(
    const net::Prefix& prefix) {
  const auto it = states_.find(prefix);
  if (it != states_.end()) return it->second;
  auto& state = states_[prefix];
  // Seed the tree from the live switch graph; subsequent changes arrive
  // through the changelog suffix past this point.
  state.changelog_pos = switches_.changelog_size();
  for (const auto& sw : switches_.all_switches()) {
    for (const auto& adj : switches_.neighbors(sw.dpid)) {
      state.spt.edge_added(sw.dpid, adj.peer, 1);
    }
  }
  sync_replayed(state);
  return state;
}

void IncrementalDecider::catch_up(PrefixState& state) {
  const auto& log = switches_.changelog();
  for (; state.changelog_pos < log.size(); ++state.changelog_pos) {
    const auto& d = log[state.changelog_pos];
    if (d.kind == EdgeDelta::Kind::kAdded) {
      state.spt.edge_added(d.from, d.to, 1);
    } else {
      state.spt.edge_removed(d.from, d.to, 1);
    }
  }
  sync_replayed(state);
}

void IncrementalDecider::sync_replayed(PrefixState& state) {
  replayed_total_ += state.spt.vertices_replayed() - state.counted_replays;
  state.counted_replays = state.spt.vertices_replayed();
}

std::vector<net::Prefix> IncrementalDecider::apply_topology_deltas() {
  std::vector<net::Prefix> affected;
  for (auto& [prefix, state] : states_) {
    const auto revision = state.spt.revision();
    catch_up(state);
    if (state.spt.revision() != revision) affected.push_back(prefix);
  }
  return affected;
}

PrefixDecision IncrementalDecider::decide(const net::Prefix& prefix,
                                          const std::vector<ExternalRoute>& routes,
                                          std::optional<sdn::Dpid> origin_switch,
                                          IncrementalStats* stats) {
  // Split off cluster-crossing routes. With bridging enabled they engage
  // the admission fixpoint, which is not incrementalized: fall back to the
  // reference engine wholesale. With bridging disabled the reference
  // simply prunes them all, which the incremental path reproduces.
  std::size_t crossing = 0;
  std::vector<const ExternalRoute*> clean;
  clean.reserve(routes.size());
  for (const auto& r : routes) {
    if (path_crosses_cluster(switches_, r.attributes->as_path)) {
      ++crossing;
    } else {
      clean.push_back(&r);
    }
  }
  if (crossing > 0 && allow_bridging_) {
    ++fallbacks_;
    drop(prefix);  // the tree would go stale while we bypass it
    if (stats != nullptr) stats->reference_fallback = true;
    const AsTopologyGraph reference{switches_, speaker_, allow_bridging_};
    return reference.decide(routes, origin_switch);
  }

  const std::uint64_t replayed_before = replayed_total_;
  auto& state = get_state(prefix);
  catch_up(state);

  // Desired egress set from the clean routes.
  EgressMap egress;
  for (const ExternalRoute* r : clean) consider_egress(egress, speaker_, *r);

  // Diff the destination's egress edges into the tree. Both maps are
  // dpid-sorted, so a parallel walk yields removed/changed/added.
  {
    auto old_it = state.egress_weights.begin();
    auto new_it = egress.begin();
    while (old_it != state.egress_weights.end() || new_it != egress.end()) {
      if (new_it == egress.end() ||
          (old_it != state.egress_weights.end() && old_it->first < new_it->first)) {
        state.spt.edge_removed(kDestNode, old_it->first, old_it->second);
        ++old_it;
      } else if (old_it == state.egress_weights.end() ||
                 new_it->first < old_it->first) {
        state.spt.edge_added(kDestNode, new_it->first, new_it->second.weight);
        ++new_it;
      } else {
        if (old_it->second != new_it->second.weight) {
          state.spt.weight_changed(kDestNode, old_it->first, old_it->second,
                                   new_it->second.weight);
        }
        ++old_it;
        ++new_it;
      }
    }
  }
  {
    std::map<sdn::Dpid, std::uint32_t> weights;
    for (const auto& [dpid, choice] : egress) weights[dpid] = choice.weight;
    state.egress_weights = std::move(weights);
  }

  // Origin edge (the single weight-0 edge of the transformation).
  if (state.origin != origin_switch) {
    if (state.origin) state.spt.edge_removed(kDestNode, *state.origin, 0);
    if (origin_switch) state.spt.edge_added(kDestNode, *origin_switch, 0);
    state.origin = origin_switch;
  }
  sync_replayed(state);

  // Cached-decision fast path: identical tree, identical egress inputs
  // (weight, peering and attributes feed the translation), same origin and
  // prune count — the translation is a pure function of these.
  std::map<sdn::Dpid,
           std::tuple<std::uint32_t, speaker::PeeringId, bgp::AttrSetRef>>
      identity;
  for (const auto& [dpid, choice] : egress) {
    identity[dpid] =
        std::make_tuple(choice.weight, choice.peering, choice.route->attributes);
  }
  if (state.has_decision && state.decided_revision == state.spt.revision() &&
      state.egress_identity == identity && state.pruned == crossing) {
    if (stats != nullptr) {
      stats->vertices_replayed = replayed_total_ - replayed_before;
      stats->spt_changed = false;
    }
    return state.decision;
  }

  const DijkstraResult res = state.spt.snapshot();
  PrefixDecision decision =
      translate(switches_, res, egress, origin_switch, crossing);
  state.decision = decision;
  state.has_decision = true;
  state.decided_revision = state.spt.revision();
  state.egress_identity = std::move(identity);
  state.pruned = crossing;
  if (stats != nullptr) {
    stats->vertices_replayed = replayed_total_ - replayed_before;
    stats->spt_changed = true;
  }
  return decision;
}

}  // namespace bgpsdn::controller
