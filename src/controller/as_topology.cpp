#include "controller/as_topology.hpp"

#include <limits>
#include <set>

namespace bgpsdn::controller {

namespace {
/// Node id encoding for the transformed graph: switches keep their dpid,
/// the virtual destination gets an id above any dpid.
constexpr std::uint64_t kDestNode = std::numeric_limits<std::uint64_t>::max();
}  // namespace

bool AsTopologyGraph::crosses_cluster(const bgp::AsPath& path) const {
  for (const auto as : path.hops()) {
    if (switches_.switch_of(as).has_value()) return true;
  }
  return false;
}

PrefixDecision AsTopologyGraph::decide(const std::vector<ExternalRoute>& routes,
                                       std::optional<sdn::Dpid> origin_switch) const {
  PrefixDecision decision;

  // Component index per switch: needed by the sub-cluster rule below.
  std::map<sdn::Dpid, std::size_t> component_of;
  {
    const auto comps = switches_.components();
    for (std::size_t i = 0; i < comps.size(); ++i) {
      for (const auto dpid : comps[i]) component_of[dpid] = i;
    }
  }

  // Base reversed graph: Dijkstra runs from the virtual destination, so
  // every edge points *away* from it. Intra-cluster links are symmetric.
  AdjacencyList graph;
  graph[kDestNode];
  for (const auto& sw : switches_.all_switches()) {
    auto& edges = graph[sw.dpid];
    for (const auto& adj : switches_.neighbors(sw.dpid)) {
      edges.push_back(Edge{adj.peer, 1});
    }
  }

  // Egress bookkeeping: best (weight, peering) per border switch.
  struct EgressChoice {
    std::uint32_t weight{0};
    speaker::PeeringId peering{0};
    const ExternalRoute* route{nullptr};
  };
  std::map<sdn::Dpid, EgressChoice> egress;
  const auto consider_egress = [&](const ExternalRoute& r) {
    const speaker::Peering* info = speaker_.peering(r.peering);
    if (info == nullptr) return;
    const auto weight =
        static_cast<std::uint32_t>(1 + r.attributes->as_path.length());
    const auto it = egress.find(info->border_dpid);
    // Deterministic preference: lower weight, then lower peering id.
    if (it == egress.end() || weight < it->second.weight ||
        (weight == it->second.weight && r.peering < it->second.peering)) {
      egress[info->border_dpid] = EgressChoice{weight, r.peering, &r};
    }
  };

  // --- Pass 1: routes that never re-enter the cluster -------------------
  std::vector<const ExternalRoute*> crossing;
  for (const auto& r : routes) {
    if (crosses_cluster(r.attributes->as_path)) {
      crossing.push_back(&r);
    } else {
      consider_egress(r);
    }
  }
  const auto build_dest_edges = [&] {
    auto& dest = graph[kDestNode];
    dest.clear();
    for (const auto& [dpid, choice] : egress) {
      dest.push_back(Edge{dpid, choice.weight});
    }
    if (origin_switch) dest.push_back(Edge{*origin_switch, 0});
  };
  build_dest_edges();
  DijkstraResult res = shortest_paths(graph, kDestNode);

  // --- Pass 2: the sub-cluster rule --------------------------------------
  // "We want to support disjoint AS sub-clusters controlled by the same
  // controller, so that an intra-cluster link failure does not isolate the
  // controlled ASes: paths over the legacy Internet could still connect
  // the sub-clusters."
  //
  // A route whose AS_PATH contains cluster members is admissible only for
  // a border switch that pass 1 left unreachable, and only when every
  // crossed member (a) sits in a *different* component than that border
  // switch and (b) was itself reached in pass 1 without crossing the
  // cluster. Such traffic exits to the legacy world and re-enters a
  // sub-cluster whose forwarding never points back at the unreached one —
  // loop-free by construction. Everything else is pruned (the paper's
  // "naive BGP loop avoidance is not enough" insight).
  // Iterate to a fixpoint: each pass may admit routes whose crossed
  // members were all settled by *earlier* passes. A pass-k component only
  // forwards through components of pass < k, so the pass order is a
  // topological order and no forwarding cycle can form.
  std::vector<const ExternalRoute*> pending(crossing.begin(), crossing.end());
  std::size_t admitted_total = 0;
  bool progress = allow_bridging_;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<const ExternalRoute*> still_pending;
    std::vector<const ExternalRoute*> admitted;
    for (const ExternalRoute* r : pending) {
      const speaker::Peering* info = speaker_.peering(r->peering);
      if (info == nullptr) continue;
      const sdn::Dpid border = info->border_dpid;
      if (res.dist.count(border) > 0) continue;  // already safely routed
      bool safe = true;
      for (const auto as : r->attributes->as_path.hops()) {
        const auto crossed = switches_.switch_of(as);
        if (!crossed) continue;
        if (component_of.at(*crossed) == component_of.at(border) ||
            res.dist.count(*crossed) == 0) {
          safe = false;
          break;
        }
      }
      if (safe) {
        admitted.push_back(r);
      } else {
        still_pending.push_back(r);
      }
    }
    if (!admitted.empty()) {
      for (const ExternalRoute* r : admitted) consider_egress(*r);
      admitted_total += admitted.size();
      build_dest_edges();
      res = shortest_paths(graph, kDestNode);
      progress = true;
    }
    pending = std::move(still_pending);
  }
  decision.pruned_routes += crossing.size() - admitted_total;

  // --- Translate predecessors into per-switch hops ----------------------
  // prev[s] is the node after s on the path s -> destination (the Dijkstra
  // ran on reversed edges).
  for (const auto& sw : switches_.all_switches()) {
    const auto dit = res.dist.find(sw.dpid);
    if (dit == res.dist.end()) continue;  // unreachable
    PrefixDecision::Hop hop;
    hop.distance = dit->second;
    const std::uint64_t next = res.prev.at(sw.dpid);
    if (next == kDestNode) {
      if (origin_switch && *origin_switch == sw.dpid &&
          (egress.count(sw.dpid) == 0 || dit->second == 0)) {
        hop.kind = PrefixDecision::HopKind::kLocalOrigin;
      } else {
        hop.kind = PrefixDecision::HopKind::kEgress;
        hop.egress = egress.at(sw.dpid).peering;
      }
    } else {
      hop.kind = PrefixDecision::HopKind::kNextSwitch;
      hop.next_switch = next;
    }
    decision.hops[sw.dpid] = hop;
  }

  // --- Compose AS-level paths --------------------------------------------
  // Walk the hop chain, then append the external route's path at the
  // egress (or stop at the origin switch).
  for (const auto& [dpid, hop] : decision.hops) {
    std::vector<core::AsNumber> hops_out;
    bgp::Origin origin = bgp::Origin::kIgp;
    sdn::Dpid cur = dpid;
    bool ok = true;
    while (true) {
      const auto owner = switches_.owner_of(cur);
      if (!owner) {
        ok = false;
        break;
      }
      hops_out.push_back(*owner);
      const auto& h = decision.hops.at(cur);
      if (h.kind == PrefixDecision::HopKind::kLocalOrigin) break;
      if (h.kind == PrefixDecision::HopKind::kEgress) {
        const auto& choice = egress.at(cur);
        for (const auto as : choice.route->attributes->as_path.hops()) {
          hops_out.push_back(as);
        }
        origin = choice.route->attributes->origin;
        break;
      }
      cur = h.next_switch;
    }
    if (!ok) continue;
    decision.as_paths[dpid] = bgp::AsPath{std::move(hops_out)};
    decision.origins[dpid] = origin;
  }

  return decision;
}

}  // namespace bgpsdn::controller
