#include "controller/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace bgpsdn::controller {

DijkstraResult shortest_paths(const AdjacencyList& graph, std::uint64_t source) {
  DijkstraResult res;
  using Item = std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>;  // dist, node, via
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, source, source});
  while (!heap.empty()) {
    const auto [d, u, via] = heap.top();
    heap.pop();
    const auto it = res.dist.find(u);
    if (it != res.dist.end()) {
      // Already settled; apply the deterministic tiebreak on equal distance.
      if (it->second == d && u != source) {
        auto& p = res.prev[u];
        if (via < p) p = via;
      }
      continue;
    }
    res.dist[u] = d;
    if (u != source) res.prev[u] = via;
    const auto adj = graph.find(u);
    if (adj == graph.end()) continue;
    for (const auto& e : adj->second) {
      if (res.dist.count(e.to) == 0) heap.push({d + e.weight, e.to, u});
    }
  }
  return res;
}

std::vector<std::uint64_t> path_to(const DijkstraResult& result,
                                   std::uint64_t source, std::uint64_t target) {
  if (result.dist.count(target) == 0) return {};
  std::vector<std::uint64_t> path;
  std::uint64_t cur = target;
  path.push_back(cur);
  while (cur != source) {
    const auto it = result.prev.find(cur);
    if (it == result.prev.end()) return {};  // defensive: broken chain
    cur = it->second;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace bgpsdn::controller
