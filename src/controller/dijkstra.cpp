#include "controller/dijkstra.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace bgpsdn::controller {

// --- AdjacencyList ----------------------------------------------------------

std::uint32_t AdjacencyList::intern(std::uint64_t node) {
  const auto [it, inserted] =
      index_.try_emplace(node, static_cast<std::uint32_t>(ids_.size()));
  if (inserted) {
    ids_.push_back(node);
    out_.emplace_back();
  }
  return it->second;
}

std::uint32_t AdjacencyList::index_of(std::uint64_t node) const {
  const auto it = index_.find(node);
  return it == index_.end() ? kNoIndex : it->second;
}

void AdjacencyList::add_edge(std::uint64_t from, std::uint64_t to,
                             std::uint32_t weight) {
  const auto f = intern(from);
  const auto t = intern(to);
  out_[f].push_back(Arc{t, weight});
  ++arcs_;
}

bool AdjacencyList::remove_edge(std::uint64_t from, std::uint64_t to,
                                std::uint32_t weight) {
  const auto f = index_of(from);
  const auto t = index_of(to);
  if (f == kNoIndex || t == kNoIndex) return false;
  auto& arcs = out_[f];
  for (auto it = arcs.begin(); it != arcs.end(); ++it) {
    if (it->to == t && it->weight == weight) {
      arcs.erase(it);
      --arcs_;
      return true;
    }
  }
  return false;
}

void AdjacencyList::clear_edges_from(std::uint64_t node) {
  const auto f = index_of(node);
  if (f == kNoIndex) return;
  arcs_ -= out_[f].size();
  out_[f].clear();
}

// --- reference Dijkstra -----------------------------------------------------

DijkstraResult shortest_paths(const AdjacencyList& graph, std::uint64_t source) {
  DijkstraResult res;
  const std::uint32_t s = graph.index_of(source);
  if (s == AdjacencyList::kNoIndex) {
    res.dist[source] = 0;
    return res;
  }
  constexpr std::uint32_t kInf = 0xffffffffu;
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> dist(n, kInf);
  std::vector<std::uint64_t> prev(n, 0);
  std::vector<char> settled(n, 0);
  // Heap items carry *external* ids so the settle order (and therefore the
  // lower-node-id tie-break) is independent of interning order.
  using Item =
      std::tuple<std::uint32_t, std::uint64_t, std::uint64_t, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, source, source, s});
  while (!heap.empty()) {
    const auto [d, u, via, ui] = heap.top();
    heap.pop();
    if (settled[ui] != 0) {
      // Already settled; apply the deterministic tiebreak on equal distance.
      if (dist[ui] == d && ui != s && via < prev[ui]) prev[ui] = via;
      continue;
    }
    settled[ui] = 1;
    dist[ui] = d;
    if (ui != s) prev[ui] = via;
    for (const auto& a : graph.out(ui)) {
      if (settled[a.to] == 0) heap.push({d + a.weight, graph.node_id(a.to), u, a.to});
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (settled[i] == 0) continue;
    res.dist[graph.node_id(i)] = dist[i];
    if (i != s) res.prev[graph.node_id(i)] = prev[i];
  }
  return res;
}

std::vector<std::uint64_t> path_to(const DijkstraResult& result,
                                   std::uint64_t source, std::uint64_t target) {
  if (result.dist.count(target) == 0) return {};
  std::vector<std::uint64_t> path;
  std::uint64_t cur = target;
  path.push_back(cur);
  while (cur != source) {
    const auto it = result.prev.find(cur);
    if (it == result.prev.end()) return {};  // defensive: broken chain
    cur = it->second;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// --- IncrementalSpt ---------------------------------------------------------

IncrementalSpt::IncrementalSpt(std::uint64_t source) : source_{source} {
  source_index_ = ensure(source);
  dist_[source_index_] = 0;
}

std::uint32_t IncrementalSpt::ensure(std::uint64_t node) {
  const std::uint32_t idx = graph_.intern(node);
  if (idx >= in_.size()) {
    in_.resize(idx + 1);
    dist_.resize(idx + 1, kInfDist);
    prev_.resize(idx + 1, kNoPrev);
  }
  return idx;
}

void IncrementalSpt::recompute_prev(std::uint32_t v) {
  if (v == source_index_) return;
  const std::uint32_t dv = dist_[v];
  std::uint32_t best = kNoPrev;
  std::uint64_t best_id = 0;
  for (const auto& a : in_[v]) {
    if (dist_[a.from] == kInfDist) continue;
    if (static_cast<std::uint64_t>(dist_[a.from]) + a.weight != dv) continue;
    // "Settled before v" in the reference run: strictly closer, or the
    // source itself (the one vertex allowed to emit zero-weight edges).
    if (dist_[a.from] >= dv && a.from != source_index_) continue;
    const std::uint64_t id = graph_.node_id(a.from);
    if (best == kNoPrev || id < best_id) {
      best = a.from;
      best_id = id;
    }
  }
  if (prev_[v] != best) {
    prev_[v] = best;
    ++revision_;
  }
}

// lint: hotpath(delta-SPT replay runs once per topology delta; the member
// scratch heap keeps steady-state replays heap-traffic-free)
void IncrementalSpt::relax_improvement(std::uint32_t v, std::uint32_t d) {
  // replay_heap_ is empty here: every exit path below drains it fully.
  replay_heap_.push({d, graph_.node_id(v), v});
  while (!replay_heap_.empty()) {
    const auto [du, uid, u] = replay_heap_.top();
    replay_heap_.pop();
    if (dist_[u] <= du) {
      // Not an improvement; at equality the vertex may have gained a new
      // tight predecessor, so only the tie-break can change.
      if (dist_[u] == du) recompute_prev(u);
      continue;
    }
    dist_[u] = du;
    ++revision_;
    ++vertices_replayed_;
    // Every tight predecessor is final here: pushed candidates are
    // monotone, so anything settling later sits at >= du and (weights
    // being >= 1 off-source) cannot be tight for u.
    recompute_prev(u);
    for (const auto& a : graph_.out(u)) {
      const std::uint64_t cand = static_cast<std::uint64_t>(du) + a.weight;
      if (cand < dist_[a.to]) {
        replay_heap_.push(
            {static_cast<std::uint32_t>(cand), graph_.node_id(a.to), a.to});
      } else if (cand == dist_[a.to]) {
        recompute_prev(a.to);
      }
    }
  }
}

std::uint32_t IncrementalSpt::support_of(std::uint32_t v) const {
  std::uint64_t best = kInfDist;
  for (const auto& a : in_[v]) {
    if (dist_[a.from] == kInfDist) continue;
    best = std::min(best, static_cast<std::uint64_t>(dist_[a.from]) + a.weight);
  }
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(best, kInfDist));
}

// lint: hotpath(link-loss replay runs once per removed/worsened tight
// edge; region_/in_region_/replay_heap_ are member scratch so repeated
// failures reuse their capacity)
void IncrementalSpt::on_support_lost(std::uint32_t v) {
  if (support_of(v) == dist_[v]) {
    // Another in-edge still explains the distance; only the tie-break on
    // the predecessor can have changed.
    recompute_prev(v);
    return;
  }

  // Phase 1: collect the tree region hanging off v — every vertex whose
  // shortest path ran through the lost support (parent-pointer closure).
  region_.clear();
  region_.push_back(v);
  in_region_.assign(dist_.size(), 0);
  in_region_[v] = 1;
  for (std::size_t i = 0; i < region_.size(); ++i) {
    const std::uint32_t x = region_[i];
    for (const auto& a : graph_.out(x)) {
      if (in_region_[a.to] == 0 && prev_[a.to] == x) {
        in_region_[a.to] = 1;
        region_.push_back(a.to);
      }
    }
  }

  // Phase 2: invalidate the region and seed a frontier heap from in-edges
  // whose tails kept their (final) distances. replay_heap_ is empty here:
  // every loop over it below drains it fully.
  for (const auto x : region_) {
    dist_[x] = kInfDist;
    prev_[x] = kNoPrev;
  }
  ++revision_;  // v's distance provably changes (or it went unreachable)
  for (const auto x : region_) {
    std::uint64_t best = kInfDist;
    for (const auto& a : in_[x]) {
      if (in_region_[a.from] != 0 || dist_[a.from] == kInfDist) continue;
      best = std::min(best, static_cast<std::uint64_t>(dist_[a.from]) + a.weight);
    }
    if (best < kInfDist) {
      replay_heap_.push({static_cast<std::uint32_t>(best), graph_.node_id(x), x});
    }
  }

  // Phase 3: constrained Dijkstra — only region vertices re-settle; the
  // rest of the tree is untouched. Unreached region vertices stay
  // unreachable.
  while (!replay_heap_.empty()) {
    const auto [dx, xid, x] = replay_heap_.top();
    replay_heap_.pop();
    if (dist_[x] != kInfDist) continue;  // settled earlier in this replay
    dist_[x] = dx;
    ++vertices_replayed_;
    recompute_prev(x);
    for (const auto& a : graph_.out(x)) {
      if (in_region_[a.to] == 0 || dist_[a.to] != kInfDist) continue;
      const std::uint64_t cand = static_cast<std::uint64_t>(dx) + a.weight;
      if (cand < kInfDist) {
        replay_heap_.push(
            {static_cast<std::uint32_t>(cand), graph_.node_id(a.to), a.to});
      }
    }
  }
}

void IncrementalSpt::edge_added(std::uint64_t from, std::uint64_t to,
                                std::uint32_t weight) {
  const std::uint32_t ui = ensure(from);
  const std::uint32_t vi = ensure(to);
  assert(weight > 0 || ui == source_index_);
  graph_.add_edge(from, to, weight);
  in_[vi].push_back(InArc{ui, weight});
  if (dist_[ui] == kInfDist) return;
  const std::uint64_t cand = static_cast<std::uint64_t>(dist_[ui]) + weight;
  if (cand < dist_[vi]) {
    relax_improvement(vi, static_cast<std::uint32_t>(cand));
  } else if (cand == dist_[vi]) {
    recompute_prev(vi);
  }
}

void IncrementalSpt::edge_removed(std::uint64_t from, std::uint64_t to,
                                  std::uint32_t weight) {
  const std::uint32_t ui = graph_.index_of(from);
  const std::uint32_t vi = graph_.index_of(to);
  if (ui == AdjacencyList::kNoIndex || vi == AdjacencyList::kNoIndex) return;
  if (!graph_.remove_edge(from, to, weight)) return;
  auto& arcs = in_[vi];
  for (auto it = arcs.begin(); it != arcs.end(); ++it) {
    if (it->from == ui && it->weight == weight) {
      arcs.erase(it);
      break;
    }
  }
  if (dist_[ui] == kInfDist) return;
  if (static_cast<std::uint64_t>(dist_[ui]) + weight == dist_[vi]) {
    on_support_lost(vi);
  }
}

void IncrementalSpt::weight_changed(std::uint64_t from, std::uint64_t to,
                                    std::uint32_t old_weight,
                                    std::uint32_t new_weight) {
  if (old_weight == new_weight) return;
  const std::uint32_t ui = graph_.index_of(from);
  const std::uint32_t vi = graph_.index_of(to);
  if (ui == AdjacencyList::kNoIndex || vi == AdjacencyList::kNoIndex) return;
  assert(new_weight > 0 || ui == source_index_);
  if (!graph_.remove_edge(from, to, old_weight)) return;
  graph_.add_edge(from, to, new_weight);
  for (auto& a : in_[vi]) {
    if (a.from == ui && a.weight == old_weight) {
      a.weight = new_weight;
      break;
    }
  }
  if (dist_[ui] == kInfDist) return;
  const std::uint64_t old_cand =
      static_cast<std::uint64_t>(dist_[ui]) + old_weight;
  const std::uint64_t new_cand =
      static_cast<std::uint64_t>(dist_[ui]) + new_weight;
  if (new_cand < dist_[vi]) {
    relax_improvement(vi, static_cast<std::uint32_t>(new_cand));
  } else if (new_cand == dist_[vi]) {
    recompute_prev(vi);  // the edge became newly tight
  } else if (old_cand == dist_[vi]) {
    on_support_lost(vi);  // the edge was tight and worsened away
  }
}

std::optional<std::uint32_t> IncrementalSpt::distance(std::uint64_t node) const {
  const auto idx = graph_.index_of(node);
  if (idx == AdjacencyList::kNoIndex || dist_[idx] == kInfDist) {
    return std::nullopt;
  }
  return dist_[idx];
}

std::optional<std::uint64_t> IncrementalSpt::parent(std::uint64_t node) const {
  const auto idx = graph_.index_of(node);
  if (idx == AdjacencyList::kNoIndex || prev_[idx] == kNoPrev) {
    return std::nullopt;
  }
  return graph_.node_id(prev_[idx]);
}

DijkstraResult IncrementalSpt::snapshot() const {
  DijkstraResult res;
  for (std::uint32_t i = 0; i < dist_.size(); ++i) {
    if (dist_[i] == kInfDist) continue;
    res.dist[graph_.node_id(i)] = dist_[i];
    if (i != source_index_ && prev_[i] != kNoPrev) {
      res.prev[graph_.node_id(i)] = graph_.node_id(prev_[i]);
    }
  }
  return res;
}

}  // namespace bgpsdn::controller
