#include "controller/replica_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::controller {

namespace {
constexpr std::uint32_t kMaxBackoffMult = 64;
}  // namespace

ControllerReplicaSet::ControllerReplicaSet(core::EventLoop& loop,
                                           core::Logger& logger,
                                           telemetry::Telemetry* telemetry,
                                           IdrController& controller,
                                           speaker::ClusterBgpSpeaker& speaker,
                                           ReplicaSetConfig config)
    : loop_{loop},
      logger_{logger},
      telemetry_{telemetry},
      controller_{controller},
      speaker_{speaker},
      config_{config},
      rng_{config.seed} {
  if (config_.replicas < 2) {
    throw std::invalid_argument{"ControllerReplicaSet needs >= 2 replicas"};
  }
  if (config_.election_min > config_.election_max) {
    throw std::invalid_argument{"election_min must be <= election_max"};
  }
  replicas_.resize(config_.replicas);
}

void ControllerReplicaSet::count(const char* name) {
  if (telemetry_ != nullptr) telemetry_->metrics().counter(name).inc();
}

void ControllerReplicaSet::log(const char* event,
                               const std::string& detail) const {
  logger_.log(loop_.now(), core::LogLevel::kInfo, "replicaset", event, detail);
}

std::size_t ControllerReplicaSet::live_count() const {
  std::size_t live = 0;
  for (const auto& r : replicas_) {
    if (!r.crashed) ++live;
  }
  return live;
}

void ControllerReplicaSet::activate() {
  leader_ = 0;
  cluster_epoch_ = 1;
  rebind_controller();
  graph_seen_ = controller_.switch_graph().changelog_size();
  log("activate", std::to_string(replicas_.size()) + " replicas, leader 0");
  arm_heartbeat();
  arm_anti_entropy();
  for (std::size_t i = 1; i < replicas_.size(); ++i) arm_election(i);
}

void ControllerReplicaSet::rebind_controller() {
  speaker_.set_listener(this);
  controller_.set_programming_epoch(cluster_epoch_);
  controller_.set_flow_observer(
      [this](const net::Prefix& prefix, sdn::Dpid dpid,
             const sdn::FlowAction* action) {
        if (!leader_ || degraded_) return;
        ReplicaDelta d;
        d.kind = action != nullptr ? ReplicaDelta::Kind::kFlowInstall
                                   : ReplicaDelta::Kind::kFlowRemove;
        d.prefix = prefix;
        d.dpid = dpid;
        if (action != nullptr) d.action = *action;
        append(std::move(d));
      });
}

// --- replication log --------------------------------------------------------

void ControllerReplicaSet::append(ReplicaDelta delta) {
  // Originations are externally driven (the experiment, not the leader
  // process) and unrecoverable from the speaker, so they stay journaled
  // even while leaderless: the next leader applies the suffix at takeover.
  const bool durable = delta.kind == ReplicaDelta::Kind::kOriginate ||
                       delta.kind == ReplicaDelta::Kind::kWithdrawOrigin;
  if (degraded_ || (!leader_ && !durable)) {
    ++counters_.leaderless_events_dropped;
    return;
  }
  log_.push_back(std::move(delta));
  ++counters_.deltas_appended;
  if (!leader_) return;  // journaled; fanned out after the takeover
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == *leader_ || replicas_[i].crashed) continue;
    send_suffix(i);
  }
}

void ControllerReplicaSet::send_suffix(std::size_t to) {
  if (!leader_ || degraded_) return;
  Replica& r = replicas_[to];
  if (r.crashed || to == *leader_) return;
  const std::size_t end = log_.size();
  if (r.acked >= end) return;
  const std::size_t batch = end - r.acked;
  if (channel_blocked(*leader_, to)) {
    arm_retry(to);
    return;
  }
  if (config_.replication_loss > 0.0 && rng_.chance(config_.replication_loss)) {
    counters_.deltas_lost += batch;
    arm_retry(to);
    return;
  }
  counters_.deltas_replicated += batch;
  loop_.schedule(config_.replication_delay,
                 [this, to, end] { deliver_suffix(to, end); });
  arm_retry(to);
}

void ControllerReplicaSet::deliver_suffix(std::size_t to, std::size_t end) {
  Replica& r = replicas_[to];
  if (r.crashed) return;
  while (r.applied < end) {
    apply_delta(r.shadow, log_[r.applied]);
    ++r.applied;
  }
  // Cumulative ACK back to the leader; blocked by a partition on either
  // side at send time (the leader's retransmit backoff covers the loss).
  if (!leader_ || degraded_ || channel_blocked(to, *leader_)) return;
  const std::size_t pos = r.applied;
  loop_.schedule(config_.replication_delay,
                 [this, to, pos] { deliver_ack(to, pos); });
}

void ControllerReplicaSet::deliver_ack(std::size_t from, std::size_t pos) {
  if (!leader_ || degraded_) return;
  Replica& r = replicas_[from];
  if (pos > r.acked) {
    r.acked = pos;
    r.backoff_mult = 1;
  }
}

void ControllerReplicaSet::arm_retry(std::size_t to) {
  Replica& r = replicas_[to];
  if (r.retry_armed) return;
  r.retry_armed = true;
  const core::Duration delay =
      config_.retry_backoff * static_cast<std::int64_t>(r.backoff_mult);
  loop_.schedule(delay, [this, to] {
    Replica& rr = replicas_[to];
    rr.retry_armed = false;
    if (!leader_ || degraded_ || rr.crashed || to == *leader_) return;
    if (rr.acked >= log_.size()) {
      rr.backoff_mult = 1;
      return;
    }
    ++counters_.retransmits;
    rr.backoff_mult = std::min(rr.backoff_mult * 2, kMaxBackoffMult);
    send_suffix(to);
  });
}

void ControllerReplicaSet::apply_delta(IdrShadowState& shadow,
                                       const ReplicaDelta& delta) const {
  switch (delta.kind) {
    case ReplicaDelta::Kind::kRouteUpdate: {
      for (const auto& prefix : delta.update.withdrawn) {
        auto it = shadow.external_routes.find(prefix);
        if (it == shadow.external_routes.end()) continue;
        it->second.erase(delta.peering);
        if (it->second.empty()) shadow.external_routes.erase(it);
      }
      if (delta.update.nlri.empty()) break;
      const auto attrs = bgp::AttrSetRef::intern(delta.update.attributes);
      for (const auto& prefix : delta.update.nlri) {
        shadow.external_routes[prefix][delta.peering] = attrs;
      }
      break;
    }
    case ReplicaDelta::Kind::kPeerUp:
      break;  // session state is speaker-resident; nothing to shadow
    case ReplicaDelta::Kind::kPeerDown: {
      // lint: unordered-ok(pure state mutation; nothing is emitted and the
      // per-prefix result is independent of visit order)
      for (auto it = shadow.external_routes.begin();
           it != shadow.external_routes.end();) {
        it->second.erase(delta.peering);
        it = it->second.empty() ? shadow.external_routes.erase(it)
                                : std::next(it);
      }
      break;
    }
    case ReplicaDelta::Kind::kOriginate:
      shadow.origins[delta.prefix] =
          IdrShadowState::Origin{delta.dpid, delta.host_port};
      break;
    case ReplicaDelta::Kind::kWithdrawOrigin:
      shadow.origins.erase(delta.prefix);
      break;
    case ReplicaDelta::Kind::kFlowInstall:
      shadow.installed[delta.prefix][delta.dpid] = delta.action;
      break;
    case ReplicaDelta::Kind::kFlowRemove: {
      auto it = shadow.installed.find(delta.prefix);
      if (it == shadow.installed.end()) break;
      it->second.erase(delta.dpid);
      if (it->second.empty()) shadow.installed.erase(it);
      break;
    }
    case ReplicaDelta::Kind::kEdge:
      break;  // the SwitchGraph is node-resident config; replicated for
              // channel fidelity and takeover accounting only
  }
}

void ControllerReplicaSet::harvest_graph_deltas() {
  const auto& changelog = controller_.switch_graph().changelog();
  while (graph_seen_ < changelog.size()) {
    const EdgeDelta& e = changelog[graph_seen_];
    ++graph_seen_;
    ReplicaDelta d;
    d.kind = ReplicaDelta::Kind::kEdge;
    d.dpid = e.from;
    d.dpid2 = e.to;
    d.edge_added = e.kind == EdgeDelta::Kind::kAdded;
    append(std::move(d));
  }
}

// --- heartbeats & anti-entropy ----------------------------------------------

void ControllerReplicaSet::arm_heartbeat() {
  const std::uint64_t gen = ++hb_gen_;
  loop_.schedule(config_.heartbeat, [this, gen] { heartbeat_tick(gen); });
}

void ControllerReplicaSet::heartbeat_tick(std::uint64_t gen) {
  if (gen != hb_gen_) return;
  if (!leader_ || degraded_) return;
  harvest_graph_deltas();
  const std::size_t l = *leader_;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == l || replicas_[i].crashed) continue;
    if (channel_blocked(l, i)) continue;
    ++counters_.heartbeats_sent;
    const std::uint64_t term = replicas_[l].term;
    loop_.schedule(config_.replication_delay, [this, i, term] {
      Replica& r = replicas_[i];
      if (r.crashed) return;
      r.last_leader_contact = loop_.now();
      if (term >= r.term) {
        r.term = std::max(r.term, term);
        arm_election(i);  // lease renewed: push the timeout out again
      }
    });
    if (replicas_[i].acked < log_.size()) send_suffix(i);
  }
  // Re-arm from the same generation so a leadership change (which bumps
  // hb_gen_) silently retires this chain.
  loop_.schedule(config_.heartbeat, [this, gen] { heartbeat_tick(gen); });
}

void ControllerReplicaSet::arm_anti_entropy() {
  const std::uint64_t gen = ++ae_gen_;
  loop_.schedule(config_.anti_entropy, [this, gen] { anti_entropy_tick(gen); });
}

void ControllerReplicaSet::anti_entropy_tick(std::uint64_t gen) {
  if (gen != ae_gen_) return;
  if (leader_ && !degraded_) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (i == *leader_ || replicas_[i].crashed) continue;
      const Replica& r = replicas_[i];
      const std::size_t gap = log_.size() - std::min(r.acked, log_.size());
      if (r.needs_snapshot || gap >= config_.snapshot_gap) send_snapshot(i);
    }
  }
  loop_.schedule(config_.anti_entropy, [this, gen] { anti_entropy_tick(gen); });
}

void ControllerReplicaSet::send_snapshot(std::size_t to) {
  if (!leader_ || degraded_) return;
  if (channel_blocked(*leader_, to)) return;
  if (config_.replication_loss > 0.0 && rng_.chance(config_.replication_loss)) {
    ++counters_.deltas_lost;
    return;  // next anti-entropy period retries
  }
  ++counters_.snapshots_sent;
  const std::size_t end = log_.size();
  loop_.schedule(
      config_.replication_delay,
      [this, to, end, snap = controller_.export_shadow()]() mutable {
        Replica& r = replicas_[to];
        if (r.crashed) return;
        r.shadow = std::move(snap);
        r.applied = std::max(r.applied, end);
        r.needs_snapshot = false;
        if (!leader_ || degraded_ || channel_blocked(to, *leader_)) return;
        const std::size_t pos = r.applied;
        loop_.schedule(config_.replication_delay,
                       [this, to, pos] { deliver_ack(to, pos); });
      });
}

// --- election ---------------------------------------------------------------

void ControllerReplicaSet::arm_election(std::size_t id) {
  Replica& r = replicas_[id];
  const std::uint64_t gen = ++r.election_gen;
  const core::Duration timeout =
      rng_.uniform_duration(config_.election_min, config_.election_max);
  loop_.schedule(timeout, [this, id, gen] { on_election_timeout(id, gen); });
}

void ControllerReplicaSet::on_election_timeout(std::size_t id,
                                               std::uint64_t gen) {
  Replica& r = replicas_[id];
  if (gen != r.election_gen) return;
  if (r.crashed || degraded_) return;
  if (leader_ == id) return;
  // Leader lease, pre-vote style: a replica that heard a heartbeat within
  // the minimum election timeout defers its candidacy. This stops a healed
  // rejoiner — whose term was inflated by futile candidacies during its
  // partition — from deposing a perfectly healthy leader.
  if (loop_.now() - r.last_leader_contact < config_.election_min) {
    arm_election(id);
    return;
  }
  start_candidacy(id);
}

void ControllerReplicaSet::start_candidacy(std::size_t id) {
  Replica& r = replicas_[id];
  r.term += 1;
  r.voted_term = r.term;  // votes for itself
  r.votes = 1;
  r.candidacy_term = r.term;
  const std::uint64_t cg = ++r.candidacy_gen;
  log("candidacy", "replica " + std::to_string(id) + " term " +
                       std::to_string(r.term));
  if (static_cast<std::size_t>(r.votes) >= quorum()) {
    become_leader(id);
    return;
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == id || replicas_[i].crashed) continue;
    if (channel_blocked(id, i)) continue;
    const std::uint64_t term = r.candidacy_term;
    loop_.schedule(config_.replication_delay, [this, id, i, term, cg] {
      deliver_vote_request(id, i, term, cg);
    });
  }
  // Collection deadline: a candidacy that cannot assemble quorum (split
  // vote, partition minority) re-arms with fresh jitter and tries again.
  loop_.schedule(config_.election_max, [this, id, cg] {
    Replica& rr = replicas_[id];
    if (rr.candidacy_gen != cg || rr.crashed || degraded_) return;
    if (leader_ == id) return;
    ++counters_.split_votes;
    arm_election(id);
  });
}

void ControllerReplicaSet::deliver_vote_request(std::size_t from,
                                                std::size_t to,
                                                std::uint64_t term,
                                                std::uint64_t candidacy_gen) {
  Replica& voter = replicas_[to];
  if (voter.crashed) return;
  const bool grant = term > voter.term && term > voter.voted_term;
  if (term > voter.term) voter.term = term;
  if (!grant) return;
  voter.voted_term = term;
  if (leader_ != to) arm_election(to);  // granted: stand down this round
  if (channel_blocked(to, from)) return;
  loop_.schedule(config_.replication_delay, [this, from, term, candidacy_gen] {
    deliver_vote_grant(from, term, candidacy_gen);
  });
}

void ControllerReplicaSet::deliver_vote_grant(std::size_t to,
                                              std::uint64_t term,
                                              std::uint64_t candidacy_gen) {
  Replica& r = replicas_[to];
  if (r.crashed || degraded_ || leader_ == to) return;
  if (r.candidacy_gen != candidacy_gen || r.candidacy_term != term) return;
  ++r.votes;
  if (static_cast<std::size_t>(r.votes) >= quorum()) become_leader(to);
}

void ControllerReplicaSet::become_leader(std::size_t id) {
  Replica& r = replicas_[id];
  ++counters_.elections;
  ++counters_.takeovers;
  if (leaderless_) {
    last_election_latency_ = loop_.now() - leaderless_since_;
    leaderless_ = false;
  } else {
    last_election_latency_ = core::Duration::zero();
  }
  // Depose a still-live old leader (partition-triggered election): its
  // process state is stale; it rejoins as an empty standby and resyncs via
  // anti-entropy once healed. Its in-flight FlowMods are epoch-fenced.
  if (leader_ && *leader_ != id && !replicas_[*leader_].crashed) {
    Replica& old = replicas_[*leader_];
    old.shadow = IdrShadowState{};
    old.applied = 0;
    old.acked = 0;
    old.needs_snapshot = true;
    arm_election(*leader_);
  }
  // Takeover replays only the unacknowledged suffix: everything this
  // replica never applied — in-flight deltas at crash time plus anything
  // journaled during the leaderless window — lands in the shadow now.
  const std::size_t suffix = log_.size() - std::min(r.applied, log_.size());
  counters_.deltas_replayed += suffix;
  for (std::size_t i = r.applied; i < log_.size(); ++i) {
    apply_delta(r.shadow, log_[i]);
    const auto kind = log_[i].kind;
    if (kind == ReplicaDelta::Kind::kFlowInstall ||
        kind == ReplicaDelta::Kind::kFlowRemove) {
      ++counters_.flow_mods_replayed;
    }
  }
  r.applied = log_.size();
  // The journal cannot carry peer transitions from the leaderless window
  // (there was no leader to append them), so the shadowed external RIBs
  // may believe in peerings that died meanwhile. The speaker is
  // authoritative for Adj-RIBs-In and survives replica crashes: drop the
  // shadowed RIBs and rebuild them from the replay below.
  r.shadow.external_routes.clear();
  leader_ = id;
  ++cluster_epoch_;
  log("takeover", "replica " + std::to_string(id) + " epoch " +
                      std::to_string(cluster_epoch_) + ", replayed " +
                      std::to_string(suffix) + " deltas");
  count("ctrl.replica.takeovers");
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .histogram("ctrl.replica.election_latency_ns")
        .record(last_election_latency_.count_nanos());
  }
  controller_.set_programming_epoch(cluster_epoch_);
  controller_.reset_for_takeover();
  controller_.adopt_shadow(std::move(r.shadow));
  r.shadow = IdrShadowState{};
  // Anti-entropy for the leaderless window: the speaker retained every
  // Adj-RIB-In, so replaying it through the listener both fills the gap in
  // the new leader's state and journals it for the surviving standbys.
  speaker_.replay_to(*this);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == id || replicas_[i].crashed) continue;
    replicas_[i].needs_snapshot = true;
    arm_election(i);
  }
  arm_heartbeat();
}

// --- fault surface ----------------------------------------------------------

void ControllerReplicaSet::crash_replica(std::size_t id) {
  if (id >= replicas_.size()) {
    throw std::invalid_argument{"replica id " + std::to_string(id) +
                                " out of range (have " +
                                std::to_string(replicas_.size()) + ")"};
  }
  Replica& r = replicas_[id];
  if (r.crashed) return;
  r.crashed = true;
  r.shadow = IdrShadowState{};
  r.applied = 0;
  r.acked = 0;
  r.needs_snapshot = false;
  r.votes = 0;
  ++r.election_gen;
  ++r.candidacy_gen;
  ++counters_.replica_crashes;
  count("ctrl.replica.crashes");
  log("replica_crash", "replica " + std::to_string(id));
  if (live_count() == 0) {
    on_all_down();
    return;
  }
  if (leader_ == id) {
    leader_ = std::nullopt;
    leaderless_ = true;
    leaderless_since_ = loop_.now();
    ++hb_gen_;  // retire the dead leader's heartbeat chain
    // The leading process died with its state; pending recompute timers
    // fire against an empty application and no-op. Standby election
    // timeouts (already armed) drive the takeover.
    controller_.reset_for_takeover();
  }
}

void ControllerReplicaSet::restart_replica(std::size_t id) {
  if (id >= replicas_.size()) {
    throw std::invalid_argument{"replica id " + std::to_string(id) +
                                " out of range (have " +
                                std::to_string(replicas_.size()) + ")"};
  }
  Replica& r = replicas_[id];
  if (!r.crashed) return;
  r.crashed = false;
  r.shadow = IdrShadowState{};
  r.applied = 0;
  r.acked = 0;
  r.backoff_mult = 1;
  ++counters_.replica_restarts;
  count("ctrl.replica.restarts");
  log("replica_restart", "replica " + std::to_string(id));
  std::uint64_t max_term = 0;
  for (const auto& rep : replicas_) max_term = std::max(max_term, rep.term);
  r.term = max_term;
  if (degraded_) {
    recover_from_degraded(id);
    return;
  }
  // Rejoin as a standby: the next anti-entropy period full-syncs it.
  r.needs_snapshot = true;
  arm_election(id);
}

void ControllerReplicaSet::crash_all() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) crash_replica(i);
}

void ControllerReplicaSet::restart_all() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) restart_replica(i);
}

void ControllerReplicaSet::partition_replica(std::size_t id) {
  if (id >= replicas_.size()) {
    throw std::invalid_argument{"replica id " + std::to_string(id) +
                                " out of range (have " +
                                std::to_string(replicas_.size()) + ")"};
  }
  if (replicas_[id].partitioned) return;
  replicas_[id].partitioned = true;
  count("ctrl.replica.partitions");
  log("repl_partition", "replica " + std::to_string(id));
}

void ControllerReplicaSet::heal_replica(std::size_t id) {
  if (id >= replicas_.size()) {
    throw std::invalid_argument{"replica id " + std::to_string(id) +
                                " out of range (have " +
                                std::to_string(replicas_.size()) + ")"};
  }
  if (!replicas_[id].partitioned) return;
  replicas_[id].partitioned = false;
  log("repl_heal", "replica " + std::to_string(id));
  // Catch the healed replica up without waiting for new appends.
  if (leader_ && !degraded_ && !replicas_[id].crashed && leader_ != id) {
    send_suffix(id);
  }
}

void ControllerReplicaSet::on_all_down() {
  degraded_ = true;
  leader_ = std::nullopt;
  leaderless_ = false;
  ++hb_gen_;
  ++cluster_epoch_;  // degradation is a leadership change: fence the fallback
  log("degrade", "all replicas down; fallback at epoch " +
                     std::to_string(cluster_epoch_));
  count("ctrl.replica.degradations");
  if (degrade_) degrade_(cluster_epoch_);
}

void ControllerReplicaSet::recover_from_degraded(std::size_t id) {
  degraded_ = false;
  leader_ = id;
  leaderless_ = false;
  ++cluster_epoch_;
  ++counters_.elections;  // an electorate of one
  last_election_latency_ = core::Duration::zero();
  log("recover", "replica " + std::to_string(id) + " leads at epoch " +
                     std::to_string(cluster_epoch_));
  count("ctrl.replica.recoveries");
  // The experiment runs the legacy restart path: fallback stands down, the
  // controller restarts, rebinds the speaker (stealing the listener slot)
  // and resyncs from replayed originations + the speaker's Adj-RIBs-In.
  if (recover_) recover_(cluster_epoch_);
  // Re-interpose on the speaker and restamp the programming epoch.
  rebind_controller();
  graph_seen_ = controller_.switch_graph().changelog_size();
  arm_heartbeat();
}

// --- experiment integration -------------------------------------------------

void ControllerReplicaSet::record_originate(sdn::Dpid dpid,
                                            const net::Prefix& prefix,
                                            std::optional<core::PortId> host_port) {
  ReplicaDelta d;
  d.kind = ReplicaDelta::Kind::kOriginate;
  d.prefix = prefix;
  d.dpid = dpid;
  d.host_port = host_port;
  append(std::move(d));
}

void ControllerReplicaSet::record_withdraw_origin(const net::Prefix& prefix) {
  ReplicaDelta d;
  d.kind = ReplicaDelta::Kind::kWithdrawOrigin;
  d.prefix = prefix;
  append(std::move(d));
}

void ControllerReplicaSet::on_peer_established(const speaker::Peering& peering) {
  ReplicaDelta d;
  d.kind = ReplicaDelta::Kind::kPeerUp;
  d.peering = peering.id;
  append(std::move(d));
  if (leader_ && !degraded_) controller_.on_peer_established(peering);
}

void ControllerReplicaSet::on_peer_down(const speaker::Peering& peering,
                                        const std::string& reason) {
  ReplicaDelta d;
  d.kind = ReplicaDelta::Kind::kPeerDown;
  d.peering = peering.id;
  append(std::move(d));
  if (leader_ && !degraded_) controller_.on_peer_down(peering, reason);
}

void ControllerReplicaSet::on_route_update(const speaker::Peering& peering,
                                           const bgp::UpdateMessage& update) {
  ReplicaDelta d;
  d.kind = ReplicaDelta::Kind::kRouteUpdate;
  d.peering = peering.id;
  d.update = update;
  append(std::move(d));
  if (leader_ && !degraded_) controller_.on_route_update(peering, update);
}

}  // namespace bgpsdn::controller
