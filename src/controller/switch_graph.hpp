// SwitchGraph — the physical topology of the SDN cluster.
//
// One of the two graphs of the paper's route selection process: "the Switch
// graph, representing the physical topology of the switches in the cluster".
// Nodes are switches (with their owner-AS identity), edges are the
// intra-cluster links with the port each side uses. Link state is updated
// from PortStatus events.
//
// Besides the queryable live state, the graph keeps an append-only
// *edge-delta changelog*: every adjacency that comes up or goes down is
// recorded in event order. Consumers that maintain derived structures
// (the incremental per-prefix shortest-path trees) remember the changelog
// position they have applied and catch up by replaying the suffix, instead
// of being handed a rebuilt graph. The changelog is emitter-ordered state:
// its order is part of the determinism contract (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/ids.hpp"
#include "sdn/openflow.hpp"

namespace bgpsdn::controller {

struct SwitchInfo {
  sdn::Dpid dpid{0};
  core::AsNumber owner_as;
};

struct Adjacency {
  sdn::Dpid peer{0};
  core::PortId local_port;  // port on this switch towards peer
  bool up{true};
};

/// One directed adjacency transition, in event order. Link registration and
/// both directions of a state flip each append one entry per direction.
struct EdgeDelta {
  enum class Kind : std::uint8_t { kAdded, kRemoved };
  Kind kind{Kind::kAdded};
  sdn::Dpid from{0};
  sdn::Dpid to{0};
};

class SwitchGraph {
 public:
  void add_switch(sdn::Dpid dpid, core::AsNumber owner_as);

  /// Register an intra-cluster link (both directions).
  void add_link(sdn::Dpid a, core::PortId a_port, sdn::Dpid b, core::PortId b_port);

  /// Update link state from one side's PortStatus; affects both directions.
  /// Returns true if a registered intra-cluster adjacency changed.
  bool set_port_state(sdn::Dpid dpid, core::PortId port, bool up);

  bool contains(sdn::Dpid dpid) const { return switches_.count(dpid) > 0; }
  std::optional<core::AsNumber> owner_of(sdn::Dpid dpid) const;
  std::optional<sdn::Dpid> switch_of(core::AsNumber as) const;

  /// Live adjacencies of a switch (up links only unless include_down).
  std::vector<Adjacency> neighbors(sdn::Dpid dpid, bool include_down = false) const;

  std::vector<SwitchInfo> all_switches() const;
  std::size_t switch_count() const { return switches_.size(); }
  std::size_t link_count() const { return links_ / 2; }

  /// True if every switch can reach every other over up links (sub-cluster
  /// detection: the paper supports disjoint sub-clusters under one
  /// controller).
  bool is_connected() const;

  /// Connected components over up links, each a sorted dpid list.
  std::vector<std::vector<sdn::Dpid>> components() const;

  /// The append-only edge-delta changelog. Consumers remember how far they
  /// have applied (an index into this vector) and replay the suffix; a
  /// consumer seeded from the live state starts at changelog_size().
  const std::vector<EdgeDelta>& changelog() const { return changelog_; }
  std::size_t changelog_size() const { return changelog_.size(); }

 private:
  std::map<sdn::Dpid, SwitchInfo> switches_;
  std::map<sdn::Dpid, std::vector<Adjacency>> adj_;
  std::map<core::AsNumber, sdn::Dpid> by_as_;
  std::vector<EdgeDelta> changelog_;
  std::size_t links_{0};
};

}  // namespace bgpsdn::controller
