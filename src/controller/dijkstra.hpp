// Deterministic Dijkstra over small integer-keyed graphs, plus a dynamic
// shortest-path-tree engine that maintains the same answer under edge
// deltas.
//
// "Best path calculations are based on the Dijkstra algorithm, running on
// the AS topology graph." Ties are broken towards the lower node id so that
// repeated runs (and therefore installed flow rules) are stable — route
// stability is one of the controller's design goals.
//
// Two implementations share one output contract:
//
//   * shortest_paths() — the from-scratch reference. Small, obviously
//     correct, and the arbiter: every incremental answer must match it
//     byte-for-byte (the lookup_linear() pattern from the flow-table work).
//   * IncrementalSpt — Ramalingam/Reps-style dynamic maintenance. An
//     improving delta relaxes forward from the changed edge; a worsening
//     delta collects the tree region hanging off the affected vertex and
//     re-relaxes it from the frontier of still-valid distances. Work is
//     proportional to the affected region, not the graph.
//
// The output contract both implementations obey: dist[u] is the shortest
// distance from the source, and prev[u] is the lowest-node-id predecessor v
// with dist[v] + w(v,u) == dist[u] among vertices settled before u. Under
// the precondition that zero-weight edges leave only the source (the
// AS-topology graph's origin edge is the single weight-0 edge), "settled
// before u" reduces to dist[v] < dist[u] or v == source, which is a pure
// function of distances — that is what makes incremental maintenance of the
// tie-break exact rather than best-effort.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace bgpsdn::controller {

/// Compact indexed adjacency list. External 64-bit node ids are interned to
/// dense 32-bit indices once; edges live in per-node arrays addressed by
/// index, so the hot path never touches a node-keyed map. Parallel edges
/// are allowed and kept distinct.
class AdjacencyList {
 public:
  /// One directed arc. `to` is the dense target index (see index_of()).
  struct Arc {
    std::uint32_t to{0};
    std::uint32_t weight{1};
  };

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  /// Register a node id, returning its dense index (idempotent).
  std::uint32_t intern(std::uint64_t node);
  /// Dense index for a node id, or kNoIndex if never interned.
  std::uint32_t index_of(std::uint64_t node) const;
  std::uint64_t node_id(std::uint32_t index) const { return ids_[index]; }
  std::size_t node_count() const { return ids_.size(); }

  void add_edge(std::uint64_t from, std::uint64_t to, std::uint32_t weight = 1);
  /// Remove one arc matching (from, to, weight); false if absent.
  bool remove_edge(std::uint64_t from, std::uint64_t to, std::uint32_t weight);
  void clear_edges_from(std::uint64_t node);

  const std::vector<Arc>& out(std::uint32_t index) const { return out_[index]; }
  std::size_t arc_count() const { return arcs_; }

 private:
  std::vector<std::uint64_t> ids_;      // dense index -> external id
  std::vector<std::vector<Arc>> out_;   // dense index -> arcs
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  std::size_t arcs_{0};
};

struct DijkstraResult {
  /// Distance from the source; absent = unreachable.
  std::map<std::uint64_t, std::uint32_t> dist;
  /// Predecessor on the shortest path from the source; absent for source.
  std::map<std::uint64_t, std::uint64_t> prev;
};

/// From-scratch reference implementation (see the contract above).
DijkstraResult shortest_paths(const AdjacencyList& graph, std::uint64_t source);

/// Nodes from source to target inclusive; empty if unreachable.
std::vector<std::uint64_t> path_to(const DijkstraResult& result,
                                   std::uint64_t source, std::uint64_t target);

/// Dynamic single-source shortest-path tree. Owns its graph: feed it the
/// same edges and it maintains exactly what shortest_paths() would return,
/// touching only vertices whose distance or predecessor can change.
///
/// Precondition (asserted in debug builds): weight-0 edges may leave only
/// the source. The AS-topology transformation satisfies this by
/// construction — the origin edge is the single zero-weight edge and it
/// starts at the virtual destination the tree is rooted at.
class IncrementalSpt {
 public:
  explicit IncrementalSpt(std::uint64_t source);

  std::uint64_t source() const { return source_; }

  void edge_added(std::uint64_t from, std::uint64_t to, std::uint32_t weight);
  /// Remove one edge matching (from, to, weight); no-op if absent.
  void edge_removed(std::uint64_t from, std::uint64_t to, std::uint32_t weight);
  void weight_changed(std::uint64_t from, std::uint64_t to,
                      std::uint32_t old_weight, std::uint32_t new_weight);

  std::optional<std::uint32_t> distance(std::uint64_t node) const;
  std::optional<std::uint64_t> parent(std::uint64_t node) const;
  /// Materialize the full result in the reference format (byte-comparable
  /// against shortest_paths()).
  DijkstraResult snapshot() const;

  /// Vertices whose distance was (re)settled by delta replays, cumulative.
  /// The cost metric for the ablation: a full recomputation pays one settle
  /// per reachable vertex, the incremental engine only for the affected
  /// region.
  std::uint64_t vertices_replayed() const { return vertices_replayed_; }
  /// Bumped whenever any dist or prev entry changes — cheap "did this delta
  /// alter the tree at all" signal for dirty-prefix tracking.
  std::uint64_t revision() const { return revision_; }

  const AdjacencyList& graph() const { return graph_; }

 private:
  static constexpr std::uint32_t kInfDist = 0xffffffffu;
  static constexpr std::uint32_t kNoPrev = AdjacencyList::kNoIndex;

  struct InArc {
    std::uint32_t from{0};
    std::uint32_t weight{1};
  };

  std::uint32_t ensure(std::uint64_t node);
  /// Re-derive prev_[v] from scratch: the tight in-neighbor with the lowest
  /// external id (the reference tie-break, see the contract above).
  void recompute_prev(std::uint32_t v);
  /// Propagate a distance improvement starting at v with candidate dist d.
  void relax_improvement(std::uint32_t v, std::uint32_t d);
  /// Distance of v's best surviving in-neighbor path (kInfDist if none).
  std::uint32_t support_of(std::uint32_t v) const;
  /// Handle a tight edge into v getting removed or worsened.
  void on_support_lost(std::uint32_t v);

  AdjacencyList graph_;
  std::vector<std::vector<InArc>> in_;  // reverse arcs, for prev recompute
  std::vector<std::uint32_t> dist_;     // kInfDist = unreachable
  std::vector<std::uint32_t> prev_;     // dense index; kNoPrev for source
  std::uint64_t source_;
  std::uint32_t source_index_{0};
  std::uint64_t vertices_replayed_{0};
  std::uint64_t revision_{0};

  // Replay scratch, hoisted out of the per-delta calls so steady-state
  // delta processing costs no heap traffic: both replay loops fully drain
  // replay_heap_ before returning and never nest, so one queue serves
  // relax_improvement and on_support_lost; the backing storage keeps its
  // capacity across calls.
  using ReplayItem = std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>;
  std::priority_queue<ReplayItem, std::vector<ReplayItem>, std::greater<>>
      replay_heap_;
  std::vector<std::uint32_t> region_;  // parent-pointer closure of the loss
  std::vector<char> in_region_;        // dense membership flags for region_
};

}  // namespace bgpsdn::controller
