// Deterministic Dijkstra over small integer-keyed graphs.
//
// "Best path calculations are based on the Dijkstra algorithm, running on
// the AS topology graph." Ties are broken towards the lower node id so that
// repeated runs (and therefore installed flow rules) are stable — route
// stability is one of the controller's design goals.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace bgpsdn::controller {

struct Edge {
  std::uint64_t to{0};
  std::uint32_t weight{1};
};

using AdjacencyList = std::map<std::uint64_t, std::vector<Edge>>;

struct DijkstraResult {
  /// Distance from the source; absent = unreachable.
  std::map<std::uint64_t, std::uint32_t> dist;
  /// Predecessor on the shortest path from the source; absent for source.
  std::map<std::uint64_t, std::uint64_t> prev;
};

DijkstraResult shortest_paths(const AdjacencyList& graph, std::uint64_t source);

/// Nodes from source to target inclusive; empty if unreachable.
std::vector<std::uint64_t> path_to(const DijkstraResult& result,
                                   std::uint64_t source, std::uint64_t target);

}  // namespace bgpsdn::controller
