#include "controller/fallback.hpp"

#include <string>
#include <utility>
#include <vector>

#include "core/logger.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::controller {

void FallbackRouting::log(const char* event, const std::string& detail) const {
  logger_.log(loop_.now(), core::LogLevel::kInfo, "fallback", event, detail);
}

void FallbackRouting::activate(const std::map<net::Prefix, Origin>& origins) {
  if (active_) return;
  active_ = true;
  ++counters_.activations;
  origins_ = origins;
  log("activate", std::to_string(origins.size()) + " member origins");
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("ctrl.fallback.activations").inc();
    if (telemetry_->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop_.now(), "ctrl",
                                                "fallback_activate", "fallback");
      span.arg("origins", static_cast<std::int64_t>(origins.size()));
      telemetry_->emit(span);
    }
  }
  for (const auto& [prefix, origin] : origins_) dirty_.insert(prefix);
  // Seed the external RIB from the speaker's retained Adj-RIBs-In; the
  // replay arrives through the listener callbacks below and marks every
  // replayed prefix dirty.
  speaker_.set_listener(this);
  speaker_.replay_to(*this);
  if (!dirty_.empty()) schedule_recompute();
}

void FallbackRouting::deactivate() {
  if (!active_) return;
  active_ = false;
  ++epoch_;
  recompute_pending_ = false;
  external_routes_.clear();
  origins_.clear();
  installed_.clear();
  dirty_.clear();
  log("deactivate", "controller resumed control");
}

void FallbackRouting::originate(const net::Prefix& prefix, Origin origin) {
  if (!active_) return;
  origins_[prefix] = origin;
  mark_dirty(prefix);
}

void FallbackRouting::withdraw_origin(const net::Prefix& prefix) {
  if (!active_) return;
  if (origins_.erase(prefix) > 0) mark_dirty(prefix);
}

void FallbackRouting::on_peer_established(const speaker::Peering&) {
  if (!active_) return;
  // A fresh egress can change every best path; there is no batching in
  // degraded mode, so recompute everything known right away.
  for (const auto& [prefix, routes] : external_routes_) dirty_.insert(prefix);
  for (const auto& [prefix, origin] : origins_) dirty_.insert(prefix);
  for (const auto& [prefix, actions] : installed_) dirty_.insert(prefix);
  if (!dirty_.empty()) schedule_recompute();
}

void FallbackRouting::on_peer_down(const speaker::Peering& peering,
                                   const std::string&) {
  if (!active_) return;
  for (auto& [prefix, routes] : external_routes_) {
    if (routes.erase(peering.id) > 0) mark_dirty(prefix);
  }
}

void FallbackRouting::on_route_update(const speaker::Peering& peering,
                                      const bgp::UpdateMessage& update) {
  if (!active_) return;
  for (const auto& prefix : update.withdrawn) {
    auto it = external_routes_.find(prefix);
    if (it != external_routes_.end() && it->second.erase(peering.id) > 0) {
      mark_dirty(prefix);
    }
  }
  if (update.nlri.empty()) return;
  const auto attrs = bgp::AttrSetRef::intern(update.attributes);
  for (const auto& prefix : update.nlri) {
    auto& slot = external_routes_[prefix][peering.id];
    if (slot == attrs) continue;
    slot = attrs;
    mark_dirty(prefix);
  }
}

void FallbackRouting::mark_dirty(const net::Prefix& prefix) {
  dirty_.insert(prefix);
  schedule_recompute();
}

void FallbackRouting::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  const auto epoch = epoch_;
  // Zero delay: coalesces the prefixes of one burst (one UPDATE's worth of
  // events at the same instant) but adds none of the controller's batch
  // window — distributed BGP processes as it receives.
  loop_.schedule(core::Duration::zero(),
                 [this, epoch] { run_recompute(epoch); });
}

void FallbackRouting::run_recompute(std::uint64_t epoch) {
  if (epoch != epoch_ || !active_) return;
  recompute_pending_ = false;
  ++counters_.recomputes;
  const auto batch = std::move(dirty_);
  dirty_.clear();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("ctrl.fallback.recomputes").inc();
  }
  for (const auto& prefix : batch) recompute_prefix(prefix);
}

std::optional<speaker::PeeringId> FallbackRouting::relay_peering_for(
    sdn::Dpid dpid) const {
  for (const auto* peering : speaker_.peerings()) {
    if (peering->border_dpid == dpid) return peering->id;
  }
  return std::nullopt;
}

void FallbackRouting::recompute_prefix(const net::Prefix& prefix) {
  // Gather inputs (same shape as the controller's pass — the decision and
  // compilation logic is shared; only batching and the install path differ).
  std::vector<ExternalRoute> routes;
  if (const auto it = external_routes_.find(prefix);
      it != external_routes_.end()) {
    routes.reserve(it->second.size());
    for (const auto& [pid, attrs] : it->second) routes.push_back({pid, attrs});
  }
  std::optional<sdn::Dpid> origin_switch;
  std::map<sdn::Dpid, core::PortId> origin_host_ports;
  if (const auto it = origins_.find(prefix); it != origins_.end()) {
    origin_switch = it->second.dpid;
    if (it->second.host_port) {
      origin_host_ports[it->second.dpid] = *it->second.host_port;
    }
  }

  const AsTopologyGraph topo{graph_, speaker_, /*allow_subcluster_bridging=*/true};
  const PrefixDecision decision = topo.decide(routes, origin_switch);
  const CompiledFlows flows =
      compile_flows(decision, graph_, speaker_, origin_host_ports);

  // Install over the relay path. Only switches with a relay peering are
  // reachable; the rest are skipped (and not recorded as installed).
  auto& installed = installed_[prefix];
  const FlowDelta delta = diff_flows(flows, installed);
  for (const auto& [dpid, action] : delta.upserts) {
    const auto relay = relay_peering_for(dpid);
    if (!relay) {
      ++counters_.unprogrammable_skips;
      continue;
    }
    sdn::OfFlowMod mod;
    mod.command = sdn::FlowModCommand::kAdd;
    mod.match.dst = prefix;
    mod.priority = kDataRulePriority;
    mod.action = action;
    mod.epoch = programming_epoch_;
    speaker_.send_relay_control(*relay, mod);
    installed[dpid] = action;
    ++counters_.flow_adds;
    if (telemetry_ != nullptr) {
      telemetry_->metrics().counter("ctrl.fallback.flow_adds").inc();
    }
  }
  for (const auto dpid : delta.removals) {
    if (const auto relay = relay_peering_for(dpid)) {
      sdn::OfFlowMod mod;
      mod.command = sdn::FlowModCommand::kDelete;
      mod.match.dst = prefix;
      mod.priority = kDataRulePriority;
      mod.epoch = programming_epoch_;
      speaker_.send_relay_control(*relay, mod);
      ++counters_.flow_deletes;
      if (telemetry_ != nullptr) {
        telemetry_->metrics().counter("ctrl.fallback.flow_deletes").inc();
      }
    }
    installed.erase(dpid);
  }
  if (installed.empty()) installed_.erase(prefix);

  // Compose legacy announcements exactly as the controller would; the
  // speaker's Adj-RIB-Out dedup means taking over after a converged
  // controller produces zero external churn.
  for (const auto* peering : speaker_.peerings()) {
    const auto path_it = decision.as_paths.find(peering->border_dpid);
    bool announce = path_it != decision.as_paths.end();
    if (announce && peering->expected_peer_as.value() != 0 &&
        path_it->second.contains(peering->expected_peer_as)) {
      announce = false;
    }
    if (announce) {
      bgp::PathAttributes attrs;
      attrs.as_path = path_it->second;
      attrs.origin = decision.origins.count(peering->border_dpid) > 0
                         ? decision.origins.at(peering->border_dpid)
                         : bgp::Origin::kIgp;
      attrs.next_hop = peering->local_address;
      ++counters_.announces;
      speaker_.announce(peering->id, prefix, attrs);
    } else {
      ++counters_.withdraws;
      speaker_.withdraw(peering->id, prefix);
    }
  }
}

}  // namespace bgpsdn::controller
