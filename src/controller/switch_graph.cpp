#include "controller/switch_graph.hpp"

#include <algorithm>
#include <set>

namespace bgpsdn::controller {

void SwitchGraph::add_switch(sdn::Dpid dpid, core::AsNumber owner_as) {
  switches_[dpid] = SwitchInfo{dpid, owner_as};
  by_as_[owner_as] = dpid;
  adj_.try_emplace(dpid);
}

void SwitchGraph::add_link(sdn::Dpid a, core::PortId a_port, sdn::Dpid b,
                           core::PortId b_port) {
  adj_[a].push_back(Adjacency{b, a_port, true});
  adj_[b].push_back(Adjacency{a, b_port, true});
  changelog_.push_back(EdgeDelta{EdgeDelta::Kind::kAdded, a, b});
  changelog_.push_back(EdgeDelta{EdgeDelta::Kind::kAdded, b, a});
  links_ += 2;
}

bool SwitchGraph::set_port_state(sdn::Dpid dpid, core::PortId port, bool up) {
  const auto it = adj_.find(dpid);
  if (it == adj_.end()) return false;
  const auto kind = up ? EdgeDelta::Kind::kAdded : EdgeDelta::Kind::kRemoved;
  for (auto& a : it->second) {
    if (a.local_port != port) continue;
    if (a.up != up) {
      a.up = up;
      changelog_.push_back(EdgeDelta{kind, dpid, a.peer});
    }
    // Mirror on the peer side. Only actual transitions enter the
    // changelog, so a repeated PortStatus does not replay into consumers.
    for (auto& back : adj_[a.peer]) {
      if (back.peer != dpid || back.up == up) continue;
      back.up = up;
      changelog_.push_back(EdgeDelta{kind, a.peer, dpid});
    }
    return true;
  }
  return false;
}

std::optional<core::AsNumber> SwitchGraph::owner_of(sdn::Dpid dpid) const {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return std::nullopt;
  return it->second.owner_as;
}

std::optional<sdn::Dpid> SwitchGraph::switch_of(core::AsNumber as) const {
  const auto it = by_as_.find(as);
  if (it == by_as_.end()) return std::nullopt;
  return it->second;
}

std::vector<Adjacency> SwitchGraph::neighbors(sdn::Dpid dpid,
                                              bool include_down) const {
  std::vector<Adjacency> out;
  const auto it = adj_.find(dpid);
  if (it == adj_.end()) return out;
  for (const auto& a : it->second) {
    if (a.up || include_down) out.push_back(a);
  }
  return out;
}

std::vector<SwitchInfo> SwitchGraph::all_switches() const {
  std::vector<SwitchInfo> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, info] : switches_) out.push_back(info);
  return out;
}

std::vector<std::vector<sdn::Dpid>> SwitchGraph::components() const {
  std::vector<std::vector<sdn::Dpid>> comps;
  std::set<sdn::Dpid> seen;
  for (const auto& [dpid, info] : switches_) {
    if (seen.count(dpid) > 0) continue;
    std::vector<sdn::Dpid> comp;
    std::vector<sdn::Dpid> stack{dpid};
    seen.insert(dpid);
    while (!stack.empty()) {
      const auto cur = stack.back();
      stack.pop_back();
      comp.push_back(cur);
      for (const auto& a : neighbors(cur)) {
        if (seen.insert(a.peer).second) stack.push_back(a.peer);
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool SwitchGraph::is_connected() const {
  return switches_.empty() || components().size() == 1;
}

}  // namespace bgpsdn::controller
