#include "controller/idr_controller.hpp"

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::controller {

void IdrController::bind_speaker(speaker::ClusterBgpSpeaker& speaker) {
  speaker_ = &speaker;
  speaker.set_listener(this);
  if (config_.incremental) {
    decider_ = std::make_unique<IncrementalDecider>(graph_, *speaker_,
                                                    config_.subcluster_bridging);
  }
}

void IdrController::originate(sdn::Dpid origin, const net::Prefix& prefix,
                              std::optional<core::PortId> host_port) {
  origins_[prefix] = OriginInfo{origin, host_port};
  logger().log(loop().now(), core::LogLevel::kInfo, "idr." + name(),
               "origin_announce",
               prefix.to_string() + " at dpid " + std::to_string(origin));
  mark_dirty(prefix);
}

void IdrController::withdraw_origin(const net::Prefix& prefix) {
  if (origins_.erase(prefix) == 0) return;
  logger().log(loop().now(), core::LogLevel::kInfo, "idr." + name(),
               "origin_withdraw", prefix.to_string());
  mark_dirty(prefix);
}

// --- crash / restart --------------------------------------------------------

void IdrController::on_crash() {
  external_routes_.clear();
  origins_.clear();
  installed_.clear();
  decisions_.clear();
  dirty_.clear();
  if (decider_ != nullptr) decider_->clear();
  topology_pending_ = false;
  recompute_pending_ = false;
  if (auto* tel = telemetry()) tel->metrics().counter("ctrl.idr.crashes").inc();
}

void IdrController::on_restart() {
  // Nothing to rebuild here: switches re-Hello (-> mark_all_dirty), the
  // experiment replays originations and the speaker replays its RIBs.
  if (auto* tel = telemetry()) tel->metrics().counter("ctrl.idr.restarts").inc();
}

// --- controller HA hooks ----------------------------------------------------

void IdrController::reset_for_takeover() {
  external_routes_.clear();
  origins_.clear();
  installed_.clear();
  decisions_.clear();
  dirty_.clear();
  if (decider_ != nullptr) decider_->clear();
  topology_pending_ = false;
  recompute_pending_ = false;
}

void IdrController::adopt_shadow(IdrShadowState&& shadow) {
  external_routes_ = std::move(shadow.external_routes);
  origins_ = std::move(shadow.origins);
  installed_ = std::move(shadow.installed);
  logger().log(loop().now(), core::LogLevel::kInfo, "idr." + name(),
               "adopt_shadow",
               std::to_string(external_routes_.size()) + " rib prefixes, " +
                   std::to_string(installed_.size()) + " flow prefixes");
  mark_all_dirty();
}

IdrShadowState IdrController::export_shadow() const {
  IdrShadowState out;
  out.external_routes = external_routes_;
  out.origins = origins_;
  out.installed = installed_;
  return out;
}

// --- speaker input ----------------------------------------------------------

void IdrController::on_peer_established(const speaker::Peering&) {
  // Announce the current table to the fresh peer (and re-derive everything:
  // a new egress may change best paths).
  mark_all_dirty();
}

void IdrController::on_peer_down(const speaker::Peering& peering,
                                 const std::string&) {
  // lint: unordered-ok(dirty_ is a std::set; visit order cannot leak)
  for (auto& [prefix, routes] : external_routes_) {
    if (routes.erase(peering.id) > 0) mark_dirty(prefix);
  }
}

void IdrController::on_route_update(const speaker::Peering& peering,
                                    const bgp::UpdateMessage& update) {
  for (const auto& prefix : update.withdrawn) {
    auto it = external_routes_.find(prefix);
    if (it != external_routes_.end() && it->second.erase(peering.id) > 0) {
      mark_dirty(prefix);
    }
  }
  if (update.nlri.empty()) return;
  const auto attrs = bgp::AttrSetRef::intern(update.attributes);
  for (const auto& prefix : update.nlri) {
    auto& slot = external_routes_[prefix][peering.id];
    if (slot == attrs) continue;  // duplicate announcement
    slot = attrs;
    mark_dirty(prefix);
  }
}

// --- switch input -----------------------------------------------------------

void IdrController::on_switch_connected(const sdn::SwitchChannel&) {
  mark_all_dirty();
}

void IdrController::on_packet_in(const sdn::SwitchChannel& channel,
                                 const sdn::OfPacketIn& in) {
  // Reactive repair: if we already decided a route for this destination,
  // reinstall the rule and forward the packet along it.
  const net::Ipv4Addr dst = in.packet.dst;
  const net::Prefix* best_prefix = nullptr;
  for (const auto& [prefix, actions] : installed_) {
    if (!prefix.contains(dst)) continue;
    if (best_prefix == nullptr || prefix.length() > best_prefix->length()) {
      best_prefix = &prefix;
    }
  }
  if (best_prefix == nullptr) return;  // no route: drop
  const auto& actions = installed_.at(*best_prefix);
  const auto it = actions.find(channel.dpid);
  if (it == actions.end()) return;
  sdn::OfFlowMod mod;
  mod.command = sdn::FlowModCommand::kAdd;
  mod.match.dst = *best_prefix;
  mod.priority = kDataRulePriority;
  mod.action = it->second;
  mod.epoch = programming_epoch_;
  send_flow_mod(channel.dpid, mod);
  if (it->second.type == sdn::ActionType::kOutput) {
    send_packet_out(channel.dpid, it->second.port, in.packet);
  }
}

void IdrController::on_port_status(const sdn::SwitchChannel& channel,
                                   const sdn::OfPortStatus& status) {
  // Intra-cluster link?
  if (graph_.set_port_state(channel.dpid, status.port, status.up)) {
    logger().log(loop().now(), core::LogLevel::kInfo, "idr." + name(),
                 "cluster_link_state",
                 "dpid " + std::to_string(channel.dpid) + " port " +
                     std::to_string(status.port.value()) +
                     (status.up ? " up" : " down"));
    if (decider_ != nullptr) {
      // The change sits in the switch graph's changelog; the recompute
      // pass replays it into the per-prefix trees and re-decides only the
      // prefixes whose tree actually moved.
      mark_topology_dirty();
    } else {
      mark_all_dirty();
    }
    return;
  }
  // Border port of a relayed peering? Centralized failure handling: reset
  // the session immediately instead of waiting for its hold timer.
  if (speaker_ == nullptr) return;
  for (const auto* peering : speaker_->peerings()) {
    if (peering->border_dpid != channel.dpid ||
        peering->switch_external_port != status.port) {
      continue;
    }
    if (!status.up) {
      ++idr_counters_.border_port_resets;
      speaker_->reset_peering(peering->id, "border port down");
    }
    // on_peer_down() marks the affected prefixes dirty.
    return;
  }
}

// --- recomputation ----------------------------------------------------------

void IdrController::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  batch_opened_at_ = loop().now();
  loop().schedule(config_.recompute_delay, [this] { run_recompute(); });
}

void IdrController::mark_dirty(const net::Prefix& prefix) {
  if (crashed()) return;
  dirty_.insert(prefix);
  schedule_recompute();
}

void IdrController::mark_all_dirty() {
  if (crashed()) return;
  for (const auto& prefix : known_prefixes()) dirty_.insert(prefix);
  if (dirty_.empty()) return;
  schedule_recompute();
}

void IdrController::mark_topology_dirty() {
  if (crashed()) return;
  topology_pending_ = true;
  // Mirror mark_all_dirty's no-op condition: with no prefixes known there
  // is nothing a topology change could re-decide, so no pass is scheduled
  // (the changelog suffix is replayed whenever a tree is next consulted).
  if (known_prefixes().empty()) return;
  schedule_recompute();
}

std::set<net::Prefix> IdrController::known_prefixes() const {
  std::set<net::Prefix> out;
  // lint: unordered-ok(collected into a sorted std::set before use)
  for (const auto& [prefix, routes] : external_routes_) out.insert(prefix);
  for (const auto& [prefix, info] : origins_) out.insert(prefix);
  for (const auto& [prefix, actions] : installed_) out.insert(prefix);
  return out;
}

void IdrController::run_recompute() {
  // A batch timer armed before a crash may still fire; the dead process
  // computes nothing.
  if (crashed()) return;
  recompute_pending_ = false;
  ++idr_counters_.recompute_passes;
  auto batch = std::move(dirty_);
  dirty_.clear();
  const std::uint64_t replayed_before =
      decider_ != nullptr ? decider_->vertices_replayed() : 0;
  const std::uint64_t fallbacks_before =
      decider_ != nullptr ? decider_->reference_fallbacks() : 0;
  if (topology_pending_) {
    topology_pending_ = false;
    if (decider_ != nullptr) {
      // Replay the changelog suffix into every tree; only prefixes whose
      // tree moved join the batch (reference mode marks everything).
      for (const auto& prefix : decider_->apply_topology_deltas()) {
        batch.insert(prefix);
      }
    }
  }
  idr_counters_.prefixes_dirty += batch.size();
  logger().log(loop().now(), core::LogLevel::kInfo, "idr." + name(), "recompute",
               std::to_string(batch.size()) + " prefixes");
  if (auto* tel = telemetry()) {
    auto& metrics = tel->metrics();
    metrics.counter("ctrl.idr.recompute_passes").inc();
    metrics.counter("ctrl.idr.prefixes_dirty")
        .inc(static_cast<std::int64_t>(batch.size()));
    metrics.histogram("ctrl.idr.batch_prefixes")
        .record(static_cast<std::int64_t>(batch.size()));
    metrics.histogram("ctrl.idr.batch_wait_ns")
        .record((loop().now() - batch_opened_at_).count_nanos());
    if (tel->tracing()) {
      // The span covers the batching delay: opened at the first dirtying
      // input, closed here where the recomputation pass runs.
      auto span = telemetry::TraceSpan{batch_opened_at_, loop().now(), "ctrl",
                                       "recompute_batch", "idr." + name()};
      span.arg("prefixes", static_cast<std::int64_t>(batch.size()));
      tel->emit(span);
    }
  }
  for (const auto& prefix : batch) recompute_prefix(prefix);
  if (decider_ != nullptr) {
    const std::uint64_t replayed =
        decider_->vertices_replayed() - replayed_before;
    idr_counters_.spt_vertices_replayed += replayed;
    idr_counters_.reference_fallbacks +=
        decider_->reference_fallbacks() - fallbacks_before;
    if (auto* tel = telemetry(); tel != nullptr && replayed > 0) {
      tel->metrics()
          .counter("ctrl.idr.spt_vertices_replayed")
          .inc(static_cast<std::int64_t>(replayed));
    }
  }
}

void IdrController::recompute_prefix(const net::Prefix& prefix) {
  ++idr_counters_.prefix_recomputes;
  if (speaker_ == nullptr) return;

  // Gather inputs.
  std::vector<ExternalRoute> routes;
  if (const auto it = external_routes_.find(prefix); it != external_routes_.end()) {
    routes.reserve(it->second.size());
    for (const auto& [pid, attrs] : it->second) routes.push_back({pid, attrs});
  }
  std::optional<sdn::Dpid> origin_switch;
  std::map<sdn::Dpid, core::PortId> origin_host_ports;
  if (const auto it = origins_.find(prefix); it != origins_.end()) {
    origin_switch = it->second.dpid;
    if (it->second.host_port) {
      origin_host_ports[it->second.dpid] = *it->second.host_port;
    }
  }

  auto* tel = telemetry();
  const bool tracing = tel != nullptr && tel->tracing();
  const auto phase = [&](const char* phase_name, std::int64_t detail) {
    // Phases of one recomputation share a virtual instant; instant spans
    // keep the taxonomy (graph_transform -> dijkstra -> flow_install)
    // visible in the trace without inventing fake durations.
    auto span = telemetry::TraceSpan::instant(loop().now(), "ctrl", phase_name,
                                              "idr." + name());
    span.arg("prefix", prefix.to_string()).arg("n", detail);
    tel->emit(span);
  };

  // Decide.
  if (tracing) phase("graph_transform", static_cast<std::int64_t>(routes.size()));
  PrefixDecision decision;
  if (decider_ != nullptr) {
    decision = decider_->decide(prefix, routes, origin_switch);
    // A prefix with no inputs left converges to an empty decision; free
    // its tree (it re-seeds if the prefix ever comes back).
    if (routes.empty() && !origin_switch) decider_->drop(prefix);
  } else {
    const AsTopologyGraph topo{graph_, *speaker_, config_.subcluster_bridging};
    decision = topo.decide(routes, origin_switch);
  }
  idr_counters_.routes_pruned_loop += decision.pruned_routes;
  if (tracing) phase("dijkstra", static_cast<std::int64_t>(decision.as_paths.size()));

  // Compile and diff flow rules against the installed mirror; unchanged
  // prefixes emit zero FlowMods.
  const std::uint64_t adds_before = idr_counters_.flow_adds;
  const std::uint64_t deletes_before = idr_counters_.flow_deletes;
  const CompiledFlows flows =
      compile_flows(decision, graph_, *speaker_, origin_host_ports);
  auto& installed = installed_[prefix];
  const FlowDelta delta = diff_flows(flows, installed);
  for (const auto& [dpid, action] : delta.upserts) {
    if (!is_connected(dpid)) continue;
    sdn::OfFlowMod mod;
    mod.command = sdn::FlowModCommand::kAdd;
    mod.match.dst = prefix;
    mod.priority = kDataRulePriority;
    mod.action = action;
    mod.epoch = programming_epoch_;
    send_flow_mod(dpid, mod);
    installed[dpid] = action;
    ++idr_counters_.flow_adds;
    if (flow_observer_) flow_observer_(prefix, dpid, &action);
  }
  for (const auto dpid : delta.removals) {
    sdn::OfFlowMod mod;
    mod.command = sdn::FlowModCommand::kDelete;
    mod.match.dst = prefix;
    mod.priority = kDataRulePriority;
    mod.epoch = programming_epoch_;
    send_flow_mod(dpid, mod);
    ++idr_counters_.flow_deletes;
    installed.erase(dpid);
    if (flow_observer_) flow_observer_(prefix, dpid, nullptr);
  }
  if (installed.empty()) installed_.erase(prefix);
  if (tel != nullptr) {
    const auto adds =
        static_cast<std::int64_t>(idr_counters_.flow_adds - adds_before);
    const auto dels =
        static_cast<std::int64_t>(idr_counters_.flow_deletes - deletes_before);
    auto& metrics = tel->metrics();
    metrics.counter("ctrl.idr.prefix_recomputes").inc();
    if (adds > 0) metrics.counter("ctrl.idr.flow_adds").inc(adds);
    if (dels > 0) metrics.counter("ctrl.idr.flow_deletes").inc(dels);
    if (tracing) phase("flow_install", adds + dels);
  }

  // Compose announcements to every legacy peering. The AS path starts with
  // the border switch's own AS and is the exact AS-level route traffic will
  // take — the cluster stays transparent to the legacy world.
  for (const auto* peering : speaker_->peerings()) {
    const sdn::Dpid border = peering->border_dpid;
    const auto path_it = decision.as_paths.find(border);
    bool announce = path_it != decision.as_paths.end();
    if (announce && peering->expected_peer_as.value() != 0 &&
        path_it->second.contains(peering->expected_peer_as)) {
      // The path runs through the receiving AS (e.g. it is our chosen
      // egress); announcing it would be an immediate loop.
      announce = false;
    }
    if (announce) {
      bgp::PathAttributes attrs;
      attrs.as_path = path_it->second;
      attrs.origin = decision.origins.count(border) > 0
                         ? decision.origins.at(border)
                         : bgp::Origin::kIgp;
      attrs.next_hop = peering->local_address;
      ++idr_counters_.announces;
      speaker_->announce(peering->id, prefix, attrs);
    } else {
      ++idr_counters_.withdraws;
      speaker_->withdraw(peering->id, prefix);
    }
  }

  decisions_[prefix] = std::move(decision);
}

const PrefixDecision* IdrController::decision_for(const net::Prefix& prefix) const {
  const auto it = decisions_.find(prefix);
  return it == decisions_.end() ? nullptr : &it->second;
}

std::size_t IdrController::route_count(const net::Prefix& prefix) const {
  const auto it = external_routes_.find(prefix);
  return it == external_routes_.end() ? 0 : it->second.size();
}

}  // namespace bgpsdn::controller
