// FallbackRouting — graceful degradation to distributed BGP when the
// controller is down.
//
// Kotronis et al. frame fallback to distributed BGP as the safety property
// of the hybrid model: losing the controller must not take the cluster off
// the Internet. This engine implements that degraded mode. It becomes the
// cluster speaker's listener when the controller crashes and re-derives
// routing from the speaker's retained per-peering Adj-RIBs-In plus the
// recorded member originations. Unlike the controller it performs no
// centralized batching — every update is processed immediately, modelling
// the per-router processing of ordinary distributed BGP (this is exactly
// the behaviour the chaos bench contrasts against centralized recovery).
//
// The only programmable switches in degraded mode are border switches: the
// controller channel is dead, so FlowMods travel over the speaker's BGP
// relay links (which the switch accepts while standalone). Interior
// switches of a non-clique cluster stay unprogrammed — a documented
// limitation of the degraded mode, counted in `unprogrammable_skips`.
// Intra-cluster topology changes are likewise invisible while degraded
// (PortStatus has nowhere to go).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "controller/as_topology.hpp"
#include "controller/route_compiler.hpp"
#include "controller/switch_graph.hpp"
#include "core/event_loop.hpp"
#include "net/ip.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::core {
class Logger;
}  // namespace bgpsdn::core

namespace bgpsdn::telemetry {
class Telemetry;
}  // namespace bgpsdn::telemetry

namespace bgpsdn::controller {

struct FallbackCounters {
  std::uint64_t activations{0};
  std::uint64_t recomputes{0};
  std::uint64_t flow_adds{0};
  std::uint64_t flow_deletes{0};
  std::uint64_t announces{0};
  std::uint64_t withdraws{0};
  /// (prefix, switch) installs skipped because the switch has no relay
  /// peering — interior switches are unreachable in degraded mode.
  std::uint64_t unprogrammable_skips{0};
};

class FallbackRouting : public speaker::SpeakerListener {
 public:
  /// A cluster-originated prefix the fallback must keep routable.
  struct Origin {
    sdn::Dpid dpid{0};
    std::optional<core::PortId> host_port;
  };

  FallbackRouting(core::EventLoop& loop, core::Logger& logger,
                  telemetry::Telemetry* telemetry, const SwitchGraph& graph,
                  speaker::ClusterBgpSpeaker& speaker)
      : loop_{loop},
        logger_{logger},
        telemetry_{telemetry},
        graph_{graph},
        speaker_{speaker} {}
  FallbackRouting(const FallbackRouting&) = delete;
  FallbackRouting& operator=(const FallbackRouting&) = delete;

  /// Take over from a crashed controller: become the speaker's listener,
  /// seed state from its retained Adj-RIBs-In plus `origins`, and schedule
  /// an immediate recomputation of everything known.
  void activate(const std::map<net::Prefix, Origin>& origins);

  /// Stand down (the controller restarted). Drops all engine state; the
  /// caller rebinds the controller as the speaker's listener itself.
  void deactivate();

  /// Member originations declared while degraded (no-ops when inactive).
  void originate(const net::Prefix& prefix, Origin origin);
  void withdraw_origin(const net::Prefix& prefix);

  bool active() const { return active_; }
  const FallbackCounters& counters() const { return counters_; }

  /// Epoch stamped into relay-path FlowMods. Under controller HA the
  /// degradation itself is a leadership change: the experiment fences the
  /// fallback above every dead replica so switches that saw HA programming
  /// still accept the degraded path's rules.
  void set_programming_epoch(std::uint32_t epoch) { programming_epoch_ = epoch; }

  // SpeakerListener
  void on_peer_established(const speaker::Peering& peering) override;
  void on_peer_down(const speaker::Peering& peering,
                    const std::string& reason) override;
  void on_route_update(const speaker::Peering& peering,
                       const bgp::UpdateMessage& update) override;

 private:
  void mark_dirty(const net::Prefix& prefix);
  void schedule_recompute();
  void run_recompute(std::uint64_t epoch);
  void recompute_prefix(const net::Prefix& prefix);
  std::optional<speaker::PeeringId> relay_peering_for(sdn::Dpid dpid) const;
  void log(const char* event, const std::string& detail) const;

  core::EventLoop& loop_;
  core::Logger& logger_;
  telemetry::Telemetry* telemetry_;
  const SwitchGraph& graph_;
  speaker::ClusterBgpSpeaker& speaker_;

  bool active_{false};
  /// Invalidates queued recompute callbacks across deactivate/reactivate.
  std::uint64_t epoch_{0};
  bool recompute_pending_{false};

  std::map<net::Prefix, std::map<speaker::PeeringId, bgp::AttrSetRef>>
      external_routes_;
  std::map<net::Prefix, Origin> origins_;
  /// Flows this engine pushed over the relay path (diff target; the switch
  /// flushed all controller rules when it went standalone).
  std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>> installed_;
  std::set<net::Prefix> dirty_;
  FallbackCounters counters_;
  std::uint32_t programming_epoch_{0};
};

}  // namespace bgpsdn::controller
