// RouteCompiler — "AS routes are then compiled to flow rules on the SDN
// switches."
//
// Pure translation from a PrefixDecision to the concrete flow action each
// switch needs, so it is unit-testable without a live controller. The
// IdrController diffs the result against installed state and emits FlowMods.
#pragma once

#include <map>
#include <optional>

#include "controller/as_topology.hpp"
#include "controller/switch_graph.hpp"
#include "net/ip.hpp"
#include "sdn/flow.hpp"

namespace bgpsdn::controller {

/// Data-plane rules install at this priority; the cluster builder's static
/// BGP-relay rules sit above them. Canonical values live in sdn/flow.hpp so
/// the switch's standalone-mode flush agrees on the band boundary.
inline constexpr std::uint16_t kDataRulePriority = sdn::kDataRulePriority;
inline constexpr std::uint16_t kRelayRulePriority = sdn::kRelayRulePriority;

struct CompiledFlows {
  /// Desired action per switch for the prefix. Switches missing from the
  /// map must have their rule removed.
  std::map<sdn::Dpid, sdn::FlowAction> actions;
};

/// `host_port` resolves an attached host port for (dpid) local delivery of
/// an origin prefix, if any.
CompiledFlows compile_flows(
    const PrefixDecision& decision, const SwitchGraph& switches,
    const speaker::ClusterBgpSpeaker& speaker,
    const std::map<sdn::Dpid, core::PortId>& origin_host_ports);

}  // namespace bgpsdn::controller
