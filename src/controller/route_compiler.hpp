// RouteCompiler — "AS routes are then compiled to flow rules on the SDN
// switches."
//
// Pure translation from a PrefixDecision to the concrete flow action each
// switch needs, so it is unit-testable without a live controller. The
// IdrController diffs the result against installed state and emits FlowMods.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "controller/as_topology.hpp"
#include "controller/switch_graph.hpp"
#include "net/ip.hpp"
#include "sdn/flow.hpp"

namespace bgpsdn::controller {

/// Data-plane rules install at this priority; the cluster builder's static
/// BGP-relay rules sit above them. Canonical values live in sdn/flow.hpp so
/// the switch's standalone-mode flush agrees on the band boundary.
inline constexpr std::uint16_t kDataRulePriority = sdn::kDataRulePriority;
inline constexpr std::uint16_t kRelayRulePriority = sdn::kRelayRulePriority;

struct CompiledFlows {
  /// Desired action per switch for the prefix. Switches missing from the
  /// map must have their rule removed.
  std::map<sdn::Dpid, sdn::FlowAction> actions;
};

/// `host_port` resolves an attached host port for (dpid) local delivery of
/// an origin prefix, if any.
CompiledFlows compile_flows(
    const PrefixDecision& decision, const SwitchGraph& switches,
    const speaker::ClusterBgpSpeaker& speaker,
    const std::map<sdn::Dpid, core::PortId>& origin_host_ports);

/// Flow-rule delta for one prefix: what the installer must change to move
/// one switch set from `installed` to `desired`. Both lists come out in
/// ascending dpid order, matching the historical FlowMod emission order so
/// switching to delta compilation changes zero wire bytes.
struct FlowDelta {
  /// New or changed actions to (re)install.
  std::vector<std::pair<sdn::Dpid, sdn::FlowAction>> upserts;
  /// Switches whose rule must be removed (installed but no longer desired).
  std::vector<sdn::Dpid> removals;

  bool empty() const { return upserts.empty() && removals.empty(); }
};

/// Diff compiled (desired) flows for a prefix against the installed mirror.
/// An unchanged prefix yields an empty delta — zero FlowMods.
FlowDelta diff_flows(const CompiledFlows& desired,
                     const std::map<sdn::Dpid, sdn::FlowAction>& installed);

/// Per-switch variant used by the RouteFlow baseline, whose sync walks one
/// switch across all prefixes: what must change on `dpid` to realize
/// `desired` given the global installed mirror (prefix -> dpid -> action).
struct SwitchFlowDelta {
  std::vector<std::pair<net::Prefix, sdn::FlowAction>> upserts;
  std::vector<net::Prefix> removals;

  bool empty() const { return upserts.empty() && removals.empty(); }
};

SwitchFlowDelta diff_switch_flows(
    const std::map<net::Prefix, sdn::FlowAction>& desired, sdn::Dpid dpid,
    const std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>>& installed);

}  // namespace bgpsdn::controller
