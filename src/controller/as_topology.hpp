// AsTopologyGraph — the per-prefix transformation of the switch graph.
//
// The paper's key design insight: the controller "can not naively use the
// same loop avoidance mechanism as BGP, due to the differences between the
// distributed path selection of BGP and the centralized routing control of
// SDN". For each destination prefix the switch graph is restructured into
// an AS topology graph:
//
//   * nodes: cluster switches plus one virtual destination node;
//   * intra-cluster links become weight-1 edges;
//   * every usable external route learned on a border peering becomes an
//     edge border-switch -> destination weighted by its AS-path length
//     (+1 for the egress hop), so legacy paths compete fairly with paths
//     that stay inside the cluster;
//   * a cluster-originated prefix becomes a weight-0 edge from its origin
//     switch to the destination.
//
// Loop avoidance across the legacy/SDN boundary: an external route whose
// AS_PATH contains any cluster-member AS re-enters the cluster, and naively
// using it could forward traffic back to a switch that would send it out
// again. Such routes are pruned, with one carefully-scoped exception
// implementing the paper's sub-cluster goal ("an intra-cluster link failure
// does not isolate the controlled ASes: paths over the legacy Internet
// could still connect the sub-clusters"): a cluster-crossing route is
// admitted for a border switch that would otherwise be unreachable, when
// every crossed member belongs to a different connected component and that
// component already routes the prefix without crossing the cluster — then
// the re-entered sub-cluster provably never forwards back.
//
// Dijkstra from the virtual destination over reversed edges yields, per
// switch, the distance and the next hop towards the destination — either a
// neighbor switch, one of the switch's own border peerings, or local
// delivery at the origin switch.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bgp/attr_intern.hpp"
#include "bgp/path_attributes.hpp"
#include "controller/dijkstra.hpp"
#include "controller/switch_graph.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::controller {

/// One external route for the prefix under decision. Attributes are an
/// interned handle shared with the speaker/controller RIB entry.
struct ExternalRoute {
  speaker::PeeringId peering{0};
  bgp::AttrSetRef attributes;
};

/// The controller's routing decision for one prefix.
struct PrefixDecision {
  enum class HopKind : std::uint8_t { kNextSwitch, kEgress, kLocalOrigin };
  struct Hop {
    HopKind kind{HopKind::kNextSwitch};
    sdn::Dpid next_switch{0};           // kNextSwitch
    speaker::PeeringId egress{0};       // kEgress
    std::uint32_t distance{0};
  };
  /// Switches that can reach the destination.
  std::map<sdn::Dpid, Hop> hops;
  /// AS-level path from each reachable switch to the destination, starting
  /// with that switch's own AS (used to compose legacy announcements).
  std::map<sdn::Dpid, bgp::AsPath> as_paths;
  /// Origin attribute propagated from the chosen external route (or IGP for
  /// cluster-originated prefixes), per switch.
  std::map<sdn::Dpid, bgp::Origin> origins;
  /// Routes pruned by the loop-avoidance rule (for diagnostics/tests).
  std::size_t pruned_routes{0};

  bool reachable(sdn::Dpid dpid) const { return hops.count(dpid) > 0; }
};

class AsTopologyGraph {
 public:
  /// `allow_subcluster_bridging` enables pass 2 (legacy bridges between
  /// disjoint sub-clusters); disabling it reproduces the naive
  /// prune-everything rule for ablation.
  AsTopologyGraph(const SwitchGraph& switches,
                  const speaker::ClusterBgpSpeaker& speaker,
                  bool allow_subcluster_bridging = true)
      : switches_{switches},
        speaker_{speaker},
        allow_bridging_{allow_subcluster_bridging} {}

  /// Build the transformed graph for one prefix and run Dijkstra.
  /// `origin_switch`: set when a cluster member originates the prefix.
  PrefixDecision decide(const std::vector<ExternalRoute>& routes,
                        std::optional<sdn::Dpid> origin_switch) const;

 private:
  bool crosses_cluster(const bgp::AsPath& path) const;

  const SwitchGraph& switches_;
  const speaker::ClusterBgpSpeaker& speaker_;
  bool allow_bridging_;
};

}  // namespace bgpsdn::controller
