// AsTopologyGraph — the per-prefix transformation of the switch graph.
//
// The paper's key design insight: the controller "can not naively use the
// same loop avoidance mechanism as BGP, due to the differences between the
// distributed path selection of BGP and the centralized routing control of
// SDN". For each destination prefix the switch graph is restructured into
// an AS topology graph:
//
//   * nodes: cluster switches plus one virtual destination node;
//   * intra-cluster links become weight-1 edges;
//   * every usable external route learned on a border peering becomes an
//     edge border-switch -> destination weighted by its AS-path length
//     (+1 for the egress hop), so legacy paths compete fairly with paths
//     that stay inside the cluster;
//   * a cluster-originated prefix becomes a weight-0 edge from its origin
//     switch to the destination.
//
// Loop avoidance across the legacy/SDN boundary: an external route whose
// AS_PATH contains any cluster-member AS re-enters the cluster, and naively
// using it could forward traffic back to a switch that would send it out
// again. Such routes are pruned, with one carefully-scoped exception
// implementing the paper's sub-cluster goal ("an intra-cluster link failure
// does not isolate the controlled ASes: paths over the legacy Internet
// could still connect the sub-clusters"): a cluster-crossing route is
// admitted for a border switch that would otherwise be unreachable, when
// every crossed member belongs to a different connected component and that
// component already routes the prefix without crossing the cluster — then
// the re-entered sub-cluster provably never forwards back.
//
// Dijkstra from the virtual destination over reversed edges yields, per
// switch, the distance and the next hop towards the destination — either a
// neighbor switch, one of the switch's own border peerings, or local
// delivery at the origin switch.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "bgp/attr_intern.hpp"
#include "bgp/path_attributes.hpp"
#include "controller/dijkstra.hpp"
#include "controller/switch_graph.hpp"
#include "net/ip.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::controller {

/// Node id of the virtual destination in the transformed graph: switches
/// keep their dpid, the destination sits above any dpid.
inline constexpr std::uint64_t kAsTopologyDestNode =
    0xffffffffffffffffull;

/// One external route for the prefix under decision. Attributes are an
/// interned handle shared with the speaker/controller RIB entry.
struct ExternalRoute {
  speaker::PeeringId peering{0};
  bgp::AttrSetRef attributes;
};

/// The controller's routing decision for one prefix.
struct PrefixDecision {
  enum class HopKind : std::uint8_t { kNextSwitch, kEgress, kLocalOrigin };
  struct Hop {
    HopKind kind{HopKind::kNextSwitch};
    sdn::Dpid next_switch{0};           // kNextSwitch
    speaker::PeeringId egress{0};       // kEgress
    std::uint32_t distance{0};
  };
  /// Switches that can reach the destination.
  std::map<sdn::Dpid, Hop> hops;
  /// AS-level path from each reachable switch to the destination, starting
  /// with that switch's own AS (used to compose legacy announcements).
  std::map<sdn::Dpid, bgp::AsPath> as_paths;
  /// Origin attribute propagated from the chosen external route (or IGP for
  /// cluster-originated prefixes), per switch.
  std::map<sdn::Dpid, bgp::Origin> origins;
  /// Routes pruned by the loop-avoidance rule (for diagnostics/tests).
  std::size_t pruned_routes{0};

  bool reachable(sdn::Dpid dpid) const { return hops.count(dpid) > 0; }
};

class AsTopologyGraph {
 public:
  /// `allow_subcluster_bridging` enables pass 2 (legacy bridges between
  /// disjoint sub-clusters); disabling it reproduces the naive
  /// prune-everything rule for ablation.
  AsTopologyGraph(const SwitchGraph& switches,
                  const speaker::ClusterBgpSpeaker& speaker,
                  bool allow_subcluster_bridging = true)
      : switches_{switches},
        speaker_{speaker},
        allow_bridging_{allow_subcluster_bridging} {}

  /// Build the transformed graph for one prefix and run Dijkstra.
  /// `origin_switch`: set when a cluster member originates the prefix.
  PrefixDecision decide(const std::vector<ExternalRoute>& routes,
                        std::optional<sdn::Dpid> origin_switch) const;

 private:
  bool crosses_cluster(const bgp::AsPath& path) const;

  const SwitchGraph& switches_;
  const speaker::ClusterBgpSpeaker& speaker_;
  bool allow_bridging_;
};

/// Per-call cost/outcome report from IncrementalDecider::decide().
struct IncrementalStats {
  /// Vertices (re)settled by delta replay during this call.
  std::uint64_t vertices_replayed{0};
  /// False when the cached decision was returned untouched.
  bool spt_changed{true};
  /// True when the call fell back to the reference AsTopologyGraph (the
  /// sub-cluster bridging fixpoint is not incrementalized).
  bool reference_fallback{false};
};

/// Incremental counterpart of AsTopologyGraph::decide(): keeps one dynamic
/// shortest-path tree per prefix, fed by the switch graph's edge-delta
/// changelog and by egress-set diffs, and re-translates a decision only
/// when the tree or the candidate egress set actually changed. Produces
/// byte-identical decisions to the reference implementation — equivalence
/// is enforced by tests that run every scenario under both engines.
///
/// Not incrementalized: prefixes with cluster-crossing routes while
/// sub-cluster bridging is enabled fall back to the reference fixpoint
/// (rare, and correctness there hinges on the admission order).
class IncrementalDecider {
 public:
  IncrementalDecider(const SwitchGraph& switches,
                     const speaker::ClusterBgpSpeaker& speaker,
                     bool allow_subcluster_bridging = true)
      : switches_{switches},
        speaker_{speaker},
        allow_bridging_{allow_subcluster_bridging} {}

  /// Same contract as AsTopologyGraph::decide(), keyed by prefix so the
  /// maintained tree can be found again on the next call.
  PrefixDecision decide(const net::Prefix& prefix,
                        const std::vector<ExternalRoute>& routes,
                        std::optional<sdn::Dpid> origin_switch,
                        IncrementalStats* stats = nullptr);

  /// Catch every maintained tree up with the switch-graph changelog.
  /// Returns the prefixes whose tree changed (sorted): the dirty set a
  /// topology event implies, replacing reference mode's mark-everything.
  std::vector<net::Prefix> apply_topology_deltas();

  /// Cumulative vertices replayed across all prefixes (cost telemetry).
  std::uint64_t vertices_replayed() const { return replayed_total_; }
  /// Calls that fell back to the reference implementation.
  std::uint64_t reference_fallbacks() const { return fallbacks_; }

  void drop(const net::Prefix& prefix) { states_.erase(prefix); }
  void clear() { states_.clear(); }
  std::size_t state_count() const { return states_.size(); }

 private:
  struct PrefixState {
    IncrementalSpt spt{kAsTopologyDestNode};
    std::size_t changelog_pos{0};
    /// Egress edges currently installed in the tree: border dpid -> weight.
    std::map<sdn::Dpid, std::uint32_t> egress_weights;
    /// Input identity of the cached decision: border dpid ->
    /// (weight, peering, interned attributes). When this, the tree
    /// revision, the origin and the pruned count all match, the decision
    /// is returned from cache without re-translation.
    std::map<sdn::Dpid,
             std::tuple<std::uint32_t, speaker::PeeringId, bgp::AttrSetRef>>
        egress_identity;
    std::optional<sdn::Dpid> origin;
    std::uint64_t decided_revision{0};
    std::uint64_t counted_replays{0};
    std::size_t pruned{0};
    bool has_decision{false};
    PrefixDecision decision;
  };

  PrefixState& get_state(const net::Prefix& prefix);
  void catch_up(PrefixState& state);
  void sync_replayed(PrefixState& state);

  const SwitchGraph& switches_;
  const speaker::ClusterBgpSpeaker& speaker_;
  bool allow_bridging_;
  std::map<net::Prefix, PrefixState> states_;
  std::uint64_t replayed_total_{0};
  std::uint64_t fallbacks_{0};
};

}  // namespace bgpsdn::controller
