#include "controller/route_compiler.hpp"

namespace bgpsdn::controller {

CompiledFlows compile_flows(
    const PrefixDecision& decision, const SwitchGraph& switches,
    const speaker::ClusterBgpSpeaker& speaker,
    const std::map<sdn::Dpid, core::PortId>& origin_host_ports) {
  CompiledFlows out;
  for (const auto& [dpid, hop] : decision.hops) {
    switch (hop.kind) {
      case PrefixDecision::HopKind::kNextSwitch: {
        // Pick the (deterministically first) up adjacency towards the
        // chosen neighbor.
        std::optional<core::PortId> port;
        for (const auto& adj : switches.neighbors(dpid)) {
          if (adj.peer == hop.next_switch) {
            port = adj.local_port;
            break;
          }
        }
        if (port) out.actions[dpid] = sdn::FlowAction::output(*port);
        break;
      }
      case PrefixDecision::HopKind::kEgress: {
        const speaker::Peering* info = speaker.peering(hop.egress);
        if (info != nullptr) {
          out.actions[dpid] = sdn::FlowAction::output(info->switch_external_port);
        }
        break;
      }
      case PrefixDecision::HopKind::kLocalOrigin: {
        const auto it = origin_host_ports.find(dpid);
        if (it != origin_host_ports.end()) {
          out.actions[dpid] = sdn::FlowAction::output(it->second);
        } else {
          // Prefix terminates here with no host attached: drop explicitly
          // rather than punting every packet to the controller.
          out.actions[dpid] = sdn::FlowAction::drop();
        }
        break;
      }
    }
  }
  return out;
}

FlowDelta diff_flows(const CompiledFlows& desired,
                     const std::map<sdn::Dpid, sdn::FlowAction>& installed) {
  FlowDelta delta;
  for (const auto& [dpid, action] : desired.actions) {
    const auto it = installed.find(dpid);
    if (it != installed.end() && it->second == action) continue;
    delta.upserts.emplace_back(dpid, action);
  }
  for (const auto& [dpid, action] : installed) {
    if (desired.actions.count(dpid) == 0) delta.removals.push_back(dpid);
  }
  return delta;
}

SwitchFlowDelta diff_switch_flows(
    const std::map<net::Prefix, sdn::FlowAction>& desired, sdn::Dpid dpid,
    const std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>>& installed) {
  SwitchFlowDelta delta;
  for (const auto& [prefix, action] : desired) {
    const auto cell = installed.find(prefix);
    if (cell != installed.end()) {
      const auto it = cell->second.find(dpid);
      if (it != cell->second.end() && it->second == action) continue;
    }
    delta.upserts.emplace_back(prefix, action);
  }
  for (const auto& [prefix, cell] : installed) {
    if (desired.count(prefix) == 0 && cell.count(dpid) > 0) {
      delta.removals.push_back(prefix);
    }
  }
  return delta;
}

}  // namespace bgpsdn::controller
