// IdrController — the paper's proof-of-concept IDR SDN controller.
//
// Centralizes routing for the cluster: consumes BGP input from the cluster
// BGP speaker and topology events from the switches, recomputes best paths
// on the per-prefix AS topology graph (Dijkstra), compiles them to flow
// rules, and composes the cluster's announcements to the legacy world
// (keeping each member's AS identity — the cluster is transparent).
//
// Design insight #2 from the paper: "the need for a delayed recomputation
// of best paths on the controller's side, so as to improve overall
// stability and rate-limit route flaps due to bursts in external BGP
// input." Inputs mark prefixes dirty; one timer batches them and a single
// recomputation pass handles the burst.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "controller/as_topology.hpp"
#include "controller/cluster_controller.hpp"
#include "controller/route_compiler.hpp"
#include "controller/switch_graph.hpp"
#include "core/time.hpp"
#include "sdn/controller_base.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::controller {

struct IdrControllerConfig {
  /// Batch window between the first dirtying input and recomputation.
  core::Duration recompute_delay{core::Duration::seconds(2)};
  /// Admit legacy paths that bridge disjoint sub-clusters (pass 2 of the
  /// AS-topology transformation). Off = naive prune-everything rule.
  bool subcluster_bridging{true};
  /// Maintain per-prefix shortest-path trees under topology deltas instead
  /// of re-running Dijkstra from scratch every pass. Decisions are
  /// byte-identical either way (enforced by the equivalence test suite);
  /// off = the reference engine, kept for ablation.
  bool incremental{true};
};

struct IdrCounters {
  std::uint64_t recompute_passes{0};
  std::uint64_t prefix_recomputes{0};
  std::uint64_t flow_adds{0};
  std::uint64_t flow_deletes{0};
  std::uint64_t announces{0};
  std::uint64_t withdraws{0};
  std::uint64_t border_port_resets{0};
  std::uint64_t routes_pruned_loop{0};
  /// Incremental engine cost/outcome (zero in reference mode).
  std::uint64_t spt_vertices_replayed{0};
  std::uint64_t prefixes_dirty{0};
  std::uint64_t reference_fallbacks{0};
};

/// Application state a controller replica shadows (and a new leader adopts
/// at takeover): the external RIB, cluster originations and the
/// installed-flow mirror. The cluster graph is node-resident config and is
/// not part of the shadow.
struct IdrShadowState {
  std::unordered_map<net::Prefix, std::map<speaker::PeeringId, bgp::AttrSetRef>>
      external_routes;
  struct Origin {
    sdn::Dpid dpid{0};
    std::optional<core::PortId> host_port;
  };
  std::map<net::Prefix, Origin> origins;
  std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>> installed;
};

class IdrController : public ClusterController {
 public:
  explicit IdrController(IdrControllerConfig config = {}) : config_{config} {}

  /// Wire up the speaker (also registers this controller as its listener).
  void bind_speaker(speaker::ClusterBgpSpeaker& speaker) override;

  /// The cluster builder declares the physical cluster before start.
  SwitchGraph& switch_graph() override { return graph_; }
  const SwitchGraph& switch_graph() const { return graph_; }

  /// Originate a prefix at a member switch ("SDN switches can originate
  /// prefixes"); optional attached host port for local delivery.
  void originate(sdn::Dpid origin, const net::Prefix& prefix,
                 std::optional<core::PortId> host_port = std::nullopt) override;
  void withdraw_origin(const net::Prefix& prefix) override;

  // SpeakerListener
  void on_peer_established(const speaker::Peering& peering) override;
  void on_peer_down(const speaker::Peering& peering,
                    const std::string& reason) override;
  void on_route_update(const speaker::Peering& peering,
                       const bgp::UpdateMessage& update) override;

  // --- controller HA hooks (ControllerReplicaSet) ---------------------------

  /// Observer for flow-mirror changes: (prefix, dpid, action) with a null
  /// action meaning removal. Called after the FlowMod was sent, so the
  /// replicated mirror never claims state a switch might not have.
  using FlowObserver =
      std::function<void(const net::Prefix&, sdn::Dpid, const sdn::FlowAction*)>;
  void set_flow_observer(FlowObserver observer) {
    flow_observer_ = std::move(observer);
  }

  /// Epoch stamped into every FlowMod; switches fence out lower epochs.
  void set_programming_epoch(std::uint32_t epoch) { programming_epoch_ = epoch; }
  std::uint32_t programming_epoch() const { return programming_epoch_; }

  /// Drop the leading process's application state at a leadership change
  /// without modeling a node crash: switches stay connected (same physical
  /// node), no crash counters move. The new leader's shadow follows via
  /// adopt_shadow().
  void reset_for_takeover();

  /// Install a standby's shadowed state as the live application state and
  /// schedule a full recomputation pass to diff it against reality.
  void adopt_shadow(IdrShadowState&& shadow);

  /// Snapshot the live application state (anti-entropy full sync source).
  IdrShadowState export_shadow() const;

  const IdrCounters& counters() const { return idr_counters_; }
  /// Latest decision per prefix (for tests and analysis tools).
  const PrefixDecision* decision_for(const net::Prefix& prefix) const;
  /// External routes currently known for a prefix.
  std::size_t route_count(const net::Prefix& prefix) const;

 protected:
  /// Crash drops the whole application state (external RIB, originations,
  /// pushed-flow mirror, decisions, dirty set); the declared cluster graph
  /// survives like any other static config, but port states are refreshed
  /// from scratch as switches re-handshake. Restart comes back empty and
  /// resyncs from the speaker replay + re-originations.
  void on_crash() override;
  void on_restart() override;

  void on_switch_connected(const sdn::SwitchChannel& channel) override;
  void on_packet_in(const sdn::SwitchChannel& channel,
                    const sdn::OfPacketIn& in) override;
  void on_port_status(const sdn::SwitchChannel& channel,
                      const sdn::OfPortStatus& status) override;

 private:
  void mark_dirty(const net::Prefix& prefix);
  void mark_all_dirty();
  /// Incremental mode's answer to a cluster-link change: note that the
  /// topology moved and let run_recompute() derive the dirty prefixes from
  /// the edge-delta changelog, instead of marking everything.
  void mark_topology_dirty();
  void schedule_recompute();
  void run_recompute();
  void recompute_prefix(const net::Prefix& prefix);
  std::set<net::Prefix> known_prefixes() const;

  IdrControllerConfig config_;
  speaker::ClusterBgpSpeaker* speaker_{nullptr};
  SwitchGraph graph_;
  /// Per-prefix dynamic SPTs (incremental mode only; null = reference).
  std::unique_ptr<IncrementalDecider> decider_;

  /// External RIB: prefix -> (peering -> interned attributes as received).
  std::unordered_map<net::Prefix, std::map<speaker::PeeringId, bgp::AttrSetRef>>
      external_routes_;
  /// Cluster-originated prefixes: prefix -> (origin switch, host port).
  using OriginInfo = IdrShadowState::Origin;
  std::map<net::Prefix, OriginInfo> origins_;

  /// Installed flow state: prefix -> per-switch action (diff target).
  std::map<net::Prefix, std::map<sdn::Dpid, sdn::FlowAction>> installed_;
  /// Latest decisions, for introspection.
  std::map<net::Prefix, PrefixDecision> decisions_;

  std::set<net::Prefix> dirty_;
  /// Set when cluster-link deltas are waiting to be applied to the trees.
  bool topology_pending_{false};
  bool recompute_pending_{false};
  /// When the pending batch window opened (first dirtying input), for the
  /// "recompute_batch" delay-wait span and batch_wait histogram.
  core::TimePoint batch_opened_at_{};
  IdrCounters idr_counters_;
  FlowObserver flow_observer_;
  std::uint32_t programming_epoch_{0};
};

}  // namespace bgpsdn::controller
