// ClusterController — the interface every cluster routing application
// implements.
//
// Two implementations exist: IdrController (the paper's contribution —
// centralized Dijkstra on the AS topology graph) and RouteFlowController
// (the related-work baseline — a mirrored virtual network running legacy
// BGP). The experiment framework builds either behind this interface, so
// benches can compare them on identical scenarios.
#pragma once

#include <optional>

#include "controller/switch_graph.hpp"
#include "sdn/controller_base.hpp"
#include "speaker/cluster_speaker.hpp"

namespace bgpsdn::controller {

class ClusterController : public sdn::ControllerBase,
                          public speaker::SpeakerListener {
 public:
  /// The physical cluster topology; the experiment builder populates it.
  virtual SwitchGraph& switch_graph() = 0;

  /// Wire up the cluster BGP speaker (registers this controller as its
  /// listener).
  virtual void bind_speaker(speaker::ClusterBgpSpeaker& speaker) = 0;

  /// Originate / withdraw a prefix at a member switch.
  virtual void originate(sdn::Dpid origin, const net::Prefix& prefix,
                         std::optional<core::PortId> host_port) = 0;
  virtual void withdraw_origin(const net::Prefix& prefix) = 0;

  /// Called once by the builder after every switch, link and peering has
  /// been declared (implementations that precompute state hook in here).
  virtual void finalize() {}

  /// Emulate a controller process crash: switch channels and application
  /// state (learned routes, pushed flows, originations) are lost. The
  /// experiment framework pairs this with failing the control links so
  /// switches observe the outage and degrade to standalone mode.
  void crash() {
    base_crash();
    on_crash();
  }

  /// Restart after crash(): the application comes back empty and resyncs —
  /// switches re-handshake when their links heal, the speaker replays its
  /// retained Adj-RIBs-In, and the experiment replays originations.
  void restart() {
    base_restart();
    on_restart();
  }

 protected:
  /// Application-state teardown/rebuild hooks for crash()/restart().
  virtual void on_crash() {}
  virtual void on_restart() {}
};

}  // namespace bgpsdn::controller
