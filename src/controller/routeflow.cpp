#include "controller/routeflow.hpp"

#include "bgp/policy.hpp"
#include "controller/route_compiler.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/address_allocator.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::controller {

// --- GhostPeer ---------------------------------------------------------------

void GhostPeer::configure_session(net::Ipv4Addr local, net::Ipv4Addr remote) {
  local_address_ = local;
  remote_address_ = remote;
  bgp::SessionConfig sc;
  sc.id = allocate_session_id();  // net::Node: network-scoped allocation
  sc.local_as = peering_.expected_peer_as;  // we impersonate the external AS
  sc.local_id = local;
  sc.local_address = local;
  sc.remote_address = remote;
  sc.expected_peer_as = peering_.cluster_as;
  sc.timers = timers_;
  session_ = std::make_unique<bgp::Session>(*this, sc);
}

void GhostPeer::start() {
  if (session_) session_->start();
}

void GhostPeer::inject(const bgp::UpdateMessage& update) {
  for (const auto& p : update.withdrawn) injected_.erase(p);
  for (const auto& p : update.nlri) injected_.insert(p);
  if (session_ == nullptr || !session_->established()) {
    backlog_.push_back(update);
    return;
  }
  session_->send_update(update);
}

void GhostPeer::flush_all() {
  if (injected_.empty()) return;
  bgp::UpdateMessage wd;
  wd.withdrawn.assign(injected_.begin(), injected_.end());
  injected_.clear();
  backlog_.clear();
  if (session_ != nullptr && session_->established()) {
    session_->send_update(wd);
  }
}

void GhostPeer::handle_packet(core::PortId, const net::Packet& packet) {
  if (packet.proto == net::Protocol::kBgp && session_ != nullptr) {
    session_->receive(packet.payload);
  }
}

void GhostPeer::on_link_state(core::PortId, bool up) {
  if (session_ == nullptr) return;
  if (up) {
    session_->start();
  } else {
    session_->stop("mirror link down");
  }
}

void GhostPeer::session_transmit(bgp::Session&, net::Bytes wire) {
  net::Packet pkt;
  pkt.src = local_address_;
  pkt.dst = remote_address_;
  pkt.proto = net::Protocol::kBgp;
  pkt.payload = std::move(wire);
  send(core::PortId{0}, std::move(pkt));
}

void GhostPeer::session_established(bgp::Session&) {
  // Replay everything the real world told us while the mirror session was
  // still coming up.
  auto backlog = std::move(backlog_);
  backlog_.clear();
  for (const auto& update : backlog) session_->send_update(update);
}

void GhostPeer::session_down(bgp::Session&, const std::string&) {
  // The virtual router drops our routes with the session. The attributes
  // were not retained here, so a re-established mirror session starts
  // empty until the real world updates again — acceptable, because the
  // mirror session only drops when a test fails the mirror link.
}

void GhostPeer::session_update(bgp::Session&, const bgp::UpdateMessage& update) {
  relay_(peering_.id, update);
}

core::EventLoop& GhostPeer::session_loop() { return loop(); }
core::Rng& GhostPeer::session_rng() { return rng(); }
core::Logger& GhostPeer::session_logger() { return logger(); }
std::string GhostPeer::session_log_name() const { return "ghost." + name(); }

// --- RouteFlowController -----------------------------------------------------

void RouteFlowController::bind_speaker(speaker::ClusterBgpSpeaker& speaker) {
  speaker_ = &speaker;
  speaker.set_listener(this);
}

void RouteFlowController::finalize() {
  if (finalized_ || speaker_ == nullptr) return;
  finalized_ = true;

  mirror_ = std::make_unique<net::Network>(loop(), logger(), rng());
  net::AddressAllocator alloc;
  const net::LinkParams mirror_link{core::Duration::micros(100), 0, 0.0};

  // One virtual BGP router per member switch.
  for (const auto& sw : graph_.all_switches()) {
    bgp::RouterConfig rc;
    rc.asn = sw.owner_as;
    rc.router_id = alloc.router_id(sw.owner_as);
    rc.timers = config_.timers;
    std::string vname = "v";
    vname += sw.owner_as.to_string();
    auto& vr = mirror_->add<bgp::BgpRouter>(vname, rc);
    vrouters_[sw.dpid] = &vr;
  }

  // Mirror the intra-cluster links (full-transit peerings, as RouteFlow's
  // virtual routers simply run the routing protocol).
  std::set<std::pair<sdn::Dpid, sdn::Dpid>> wired;
  for (const auto& sw : graph_.all_switches()) {
    for (const auto& adj : graph_.neighbors(sw.dpid, /*include_down=*/true)) {
      const auto key = std::minmax(sw.dpid, adj.peer);
      if (!wired.insert({key.first, key.second}).second) continue;
      bgp::BgpRouter& a = *vrouters_.at(sw.dpid);
      bgp::BgpRouter& b = *vrouters_.at(adj.peer);
      const auto vlink = mirror_->connect(a.id(), b.id(), mirror_link);
      const auto& l = mirror_->link(vlink);
      const auto p2p = alloc.next_p2p();
      bgp::PeerConfig pa;
      pa.local_address = p2p.left;
      pa.remote_address = p2p.right;
      pa.expected_peer_as = b.asn();
      a.add_peer(l.a.port, pa);
      bgp::PeerConfig pb;
      pb.local_address = p2p.right;
      pb.remote_address = p2p.left;
      pb.expected_peer_as = a.asn();
      b.add_peer(l.b.port, pb);

      // Virtual routes learned over this mirror link translate to the real
      // port towards the same neighbor.
      action_by_vsession_[a.session_on(l.a.port)->id().value()] =
          sdn::FlowAction::output(adj.local_port);
      for (const auto& back : graph_.neighbors(adj.peer, true)) {
        if (back.peer == sw.dpid) {
          action_by_vsession_[b.session_on(l.b.port)->id().value()] =
              sdn::FlowAction::output(back.local_port);
          break;
        }
      }
      vlink_by_port_[{sw.dpid, adj.local_port.value()}] = vlink;
      for (const auto& back : graph_.neighbors(adj.peer, true)) {
        if (back.peer == sw.dpid) {
          vlink_by_port_[{adj.peer, back.local_port.value()}] = vlink;
        }
      }
    }
  }

  // One ghost peer per real border peering.
  for (const auto* peering : speaker_->peerings()) {
    std::string gname = "g";
    gname += std::to_string(peering->id);
    auto& ghost = mirror_->add<GhostPeer>(
        gname, *peering, config_.timers,
        [this](speaker::PeeringId id, const bgp::UpdateMessage& update) {
          relay_out(id, update);
        });
    bgp::BgpRouter& vr = *vrouters_.at(peering->border_dpid);
    const auto vlink = mirror_->connect(ghost.id(), vr.id(), mirror_link);
    const auto& l = mirror_->link(vlink);
    const auto p2p = alloc.next_p2p();
    ghost.configure_session(p2p.left, p2p.right);
    bgp::PeerConfig pc;
    pc.local_address = p2p.right;
    pc.remote_address = p2p.left;
    pc.expected_peer_as = peering->expected_peer_as;
    vr.add_peer(l.b.port, pc);
    ghosts_[peering->id] = &ghost;
    action_by_vsession_[vr.session_on(l.b.port)->id().value()] =
        sdn::FlowAction::output(peering->switch_external_port);
  }
}

void RouteFlowController::start() {
  if (mirror_ != nullptr) mirror_->start_all();
  // Periodic Loc-RIB -> flow-table synchronization (the RouteFlow "RIB to
  // flows" daemon).
  const auto tick = [this](const auto& self) -> void {
    loop().schedule(config_.sync_interval, [this, self] {
      sync_flows();
      self(self);
    });
  };
  tick(tick);
}

void RouteFlowController::originate(sdn::Dpid origin, const net::Prefix& prefix,
                                    std::optional<core::PortId> host_port) {
  origins_[prefix] = {origin, host_port};
  if (const auto it = vrouters_.find(origin); it != vrouters_.end()) {
    it->second->originate(prefix);
  }
}

void RouteFlowController::withdraw_origin(const net::Prefix& prefix) {
  const auto it = origins_.find(prefix);
  if (it == origins_.end()) return;
  if (const auto vr = vrouters_.find(it->second.first); vr != vrouters_.end()) {
    vr->second->withdraw_origin(prefix);
  }
  origins_.erase(it);
}

void RouteFlowController::on_peer_established(const speaker::Peering& peering) {
  // The speaker's Adj-RIB-Out was cleared; replaying is handled naturally:
  // the ghost's virtual session is still up and the next sync/update cycle
  // re-announces. Proactively relay the virtual router's current best
  // routes by nudging the ghost: nothing to do — relay_out caches below.
  (void)peering;
}

void RouteFlowController::on_peer_down(const speaker::Peering& peering,
                                       const std::string&) {
  const auto it = ghosts_.find(peering.id);
  if (it != ghosts_.end()) it->second->flush_all();
}

void RouteFlowController::on_route_update(const speaker::Peering& peering,
                                          const bgp::UpdateMessage& update) {
  ++rf_counters_.relayed_in;
  const auto it = ghosts_.find(peering.id);
  if (it != ghosts_.end()) it->second->inject(update);
}

void RouteFlowController::relay_out(speaker::PeeringId peering,
                                    const bgp::UpdateMessage& update) {
  if (speaker_ == nullptr) return;
  const speaker::Peering* info = speaker_->peering(peering);
  if (info == nullptr) return;
  ++rf_counters_.relayed_out;
  for (const auto& prefix : update.withdrawn) {
    speaker_->withdraw(peering, prefix);
  }
  for (const auto& prefix : update.nlri) {
    bgp::PathAttributes attrs = update.attributes;
    // Announcing a path through the receiver itself would loop; withdraw
    // instead (the receiver-side check would reject it anyway).
    if (info->expected_peer_as.value() != 0 &&
        attrs.as_path.contains(info->expected_peer_as)) {
      speaker_->withdraw(peering, prefix);
      continue;
    }
    attrs.next_hop = info->local_address;
    attrs.local_pref.reset();
    speaker_->announce(peering, prefix, attrs);
  }
}

void RouteFlowController::on_switch_connected(const sdn::SwitchChannel&) {}

void RouteFlowController::on_port_status(const sdn::SwitchChannel& channel,
                                         const sdn::OfPortStatus& status) {
  if (graph_.set_port_state(channel.dpid, status.port, status.up)) {
    // Mirror the physical change into the virtual network; the virtual
    // BGP sessions react exactly like the legacy protocol would.
    const auto it = vlink_by_port_.find({channel.dpid, status.port.value()});
    if (it != vlink_by_port_.end() && mirror_ != nullptr) {
      mirror_->set_link_up(it->second, status.up);
    }
    return;
  }
  if (speaker_ == nullptr) return;
  for (const auto* peering : speaker_->peerings()) {
    if (peering->border_dpid != channel.dpid ||
        peering->switch_external_port != status.port) {
      continue;
    }
    if (!status.up) speaker_->reset_peering(peering->id, "border port down");
    return;
  }
}

void RouteFlowController::sync_flows() {
  ++rf_counters_.sync_passes;
  const std::uint64_t adds_before = rf_counters_.flow_adds;
  const std::uint64_t deletes_before = rf_counters_.flow_deletes;
  for (const auto& [dpid, vr] : vrouters_) {
    const auto gen = vr->loc_rib().generation();
    if (synced_generation_[dpid] == gen) continue;
    synced_generation_[dpid] = gen;

    // Desired flows for this switch from the virtual Loc-RIB.
    std::map<net::Prefix, sdn::FlowAction> desired;
    vr->loc_rib().for_each([&](const bgp::Route& route) {
      const net::Prefix prefix = route.prefix;
      if (route.is_local()) {
        const auto it = origins_.find(prefix);
        if (it != origins_.end() && it->second.second) {
          desired[prefix] = sdn::FlowAction::output(*it->second.second);
        } else {
          desired[prefix] = sdn::FlowAction::drop();
        }
      } else {
        const auto it = action_by_vsession_.find(route.learned_from.value());
        if (it != action_by_vsession_.end()) desired[prefix] = it->second;
      }
    });

    // Delta compilation against the installed mirror: unchanged prefixes
    // emit zero FlowMods.
    const SwitchFlowDelta delta = diff_switch_flows(desired, dpid, installed_);
    for (const auto& [prefix, action] : delta.upserts) {
      if (!is_connected(dpid)) continue;
      sdn::OfFlowMod mod;
      mod.match.dst = prefix;
      mod.priority = kDataRulePriority;
      mod.action = action;
      send_flow_mod(dpid, mod);
      installed_[prefix][dpid] = action;
      ++rf_counters_.flow_adds;
    }
    for (const auto& prefix : delta.removals) {
      sdn::OfFlowMod mod;
      mod.command = sdn::FlowModCommand::kDelete;
      mod.match.dst = prefix;
      mod.priority = kDataRulePriority;
      send_flow_mod(dpid, mod);
      installed_[prefix].erase(dpid);
      ++rf_counters_.flow_deletes;
    }
    for (auto it = installed_.begin(); it != installed_.end();) {
      it = it->second.empty() ? installed_.erase(it) : std::next(it);
    }
  }
  if (auto* tel = telemetry()) {
    const auto adds =
        static_cast<std::int64_t>(rf_counters_.flow_adds - adds_before);
    const auto dels =
        static_cast<std::int64_t>(rf_counters_.flow_deletes - deletes_before);
    auto& metrics = tel->metrics();
    metrics.counter("ctrl.routeflow.sync_passes").inc();
    if (adds > 0) metrics.counter("ctrl.routeflow.flow_adds").inc(adds);
    if (dels > 0) metrics.counter("ctrl.routeflow.flow_deletes").inc(dels);
    if (tel->tracing() && (adds > 0 || dels > 0)) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "ctrl", "rf_sync",
                                                "rf." + name());
      span.arg("adds", adds).arg("dels", dels);
      tel->emit(span);
    }
  }
}

const bgp::BgpRouter* RouteFlowController::virtual_router(sdn::Dpid dpid) const {
  const auto it = vrouters_.find(dpid);
  return it == vrouters_.end() ? nullptr : it->second;
}

}  // namespace bgpsdn::controller
