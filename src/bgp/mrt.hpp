// MRT export/import (RFC 6396, BGP4MP_MESSAGE_AS4 subset).
//
// Real route collectors publish their update streams as MRT dumps that
// tools like bgpdump consume. The framework's RouteCollector does the
// same: its observation tape (re-encoded through the RFC 4271 codec)
// serializes to standard BGP4MP_MESSAGE_AS4 records, and the reader loads
// such dumps back — a round-trippable interchange format for traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/collector.hpp"
#include "bgp/message.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

/// One BGP4MP_MESSAGE_AS4 record: who spoke to whom, when, and the raw
/// BGP message.
struct MrtRecord {
  /// Seconds since the epoch of the trace (virtual time in our dumps).
  std::uint32_t timestamp_s{0};
  core::AsNumber peer_as;
  core::AsNumber local_as;
  net::Ipv4Addr peer_ip;
  net::Ipv4Addr local_ip;
  std::vector<std::byte> bgp_message;
};

/// Serialize records into an MRT byte stream.
std::vector<std::byte> write_mrt(const std::vector<MrtRecord>& records);

/// Parse an MRT byte stream; unknown record types are skipped, malformed
/// framing returns nullopt.
std::optional<std::vector<MrtRecord>> read_mrt(const std::vector<std::byte>& data);

/// Convert a collector's observation tape into MRT records (updates are
/// re-encoded through the wire codec; the collector itself is the "local"
/// side of every record).
std::vector<MrtRecord> collector_to_mrt(
    const std::vector<RouteObservation>& tape,
    net::Ipv4Addr collector_ip = net::Ipv4Addr{192, 0, 2, 1},
    core::AsNumber collector_as = core::AsNumber{64512});

}  // namespace bgpsdn::bgp
