#include "bgp/decision.hpp"

namespace bgpsdn::bgp {

namespace {

constexpr std::uint32_t kDefaultLocalPref = 100;

std::uint32_t local_pref_of(const Route& r) {
  return r.attributes->local_pref.value_or(kDefaultLocalPref);
}

std::uint32_t med_of(const Route& r) {
  // Missing MED is treated as the best (0), Quagga's default.
  return r.attributes->med.value_or(0);
}

template <typename T>
int cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int compare_routes(const Route& a, const Route& b) {
  // 1. LOCAL_PREF, higher wins.
  if (const int c = cmp(local_pref_of(b), local_pref_of(a))) return c;
  // 2. AS_PATH length, shorter wins.
  if (const int c = cmp(a.attributes->as_path.length(), b.attributes->as_path.length()))
    return c;
  // 3. ORIGIN, lower wins.
  if (const int c = cmp(static_cast<int>(a.attributes->origin),
                        static_cast<int>(b.attributes->origin)))
    return c;
  // 4. MED, lower wins.
  if (const int c = cmp(med_of(a), med_of(b))) return c;
  // 5. Older route wins (stability).
  if (const int c = cmp(a.installed_at, b.installed_at)) return c;
  // 6. Lower peer BGP id wins.
  if (const int c = cmp(a.peer_bgp_id, b.peer_bgp_id)) return c;
  // 7. Lower peer address wins.
  return cmp(a.peer_address, b.peer_address);
}

const Route* select_best(const std::vector<const Route*>& candidates) {
  const Route* best = nullptr;
  for (const Route* r : candidates) {
    if (best == nullptr || compare_routes(*r, *best) < 0) best = r;
  }
  return best;
}

const char* to_string(DecisionReason r) {
  switch (r) {
    case DecisionReason::kOnlyCandidate: return "only-candidate";
    case DecisionReason::kLocalPref: return "local-pref";
    case DecisionReason::kAsPathLength: return "as-path-length";
    case DecisionReason::kOrigin: return "origin";
    case DecisionReason::kMed: return "med";
    case DecisionReason::kAge: return "age";
    case DecisionReason::kBgpId: return "bgp-id";
    case DecisionReason::kPeerAddress: return "peer-address";
    case DecisionReason::kTie: return "tie";
  }
  return "?";
}

DecisionReason decide_reason(const Route& a, const Route& b) {
  if (local_pref_of(a) != local_pref_of(b)) return DecisionReason::kLocalPref;
  if (a.attributes->as_path.length() != b.attributes->as_path.length())
    return DecisionReason::kAsPathLength;
  if (a.attributes->origin != b.attributes->origin) return DecisionReason::kOrigin;
  if (med_of(a) != med_of(b)) return DecisionReason::kMed;
  if (a.installed_at != b.installed_at) return DecisionReason::kAge;
  if (a.peer_bgp_id != b.peer_bgp_id) return DecisionReason::kBgpId;
  if (a.peer_address != b.peer_address) return DecisionReason::kPeerAddress;
  return DecisionReason::kTie;
}

}  // namespace bgpsdn::bgp
