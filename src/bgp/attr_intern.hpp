// Path-attribute interning (the Quagga `attrhash` idea).
//
// A converged emulation carries the same attribute bundle in many places at
// once: every NLRI of an UPDATE, every Adj-RIB-In entry it produced, the
// Loc-RIB winner, per-peer Adj-RIBs-Out, the speaker's relay RIBs, and the
// IDR controller's external RIB. Storing `PathAttributes` by value copies
// the AS-path and community vectors at each of those hops. AttrSetRef
// replaces the copies with one immutable, refcounted canonical bundle per
// distinct attribute set, interned in a per-thread pool:
//
//  - Lifetime: the pool holds weak references. A bundle lives exactly as
//    long as some RIB/message still points at it; intern() revives the
//    canonical instance while any holder survives, and expired pool entries
//    are swept lazily (amortized O(1) per intern).
//  - The pool is thread_local: parallel trials each run an independent
//    simulation on one worker thread, so no locks and no cross-trial
//    canonical sharing (determinism does not depend on pool state either
//    way — equality falls back to value comparison).
//  - Mutation is copy-on-write by construction: to change attributes, copy
//    the bundle out (`PathAttributes a = *ref`), edit, re-intern.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "bgp/path_attributes.hpp"

namespace bgpsdn::bgp {

/// Hash of a full attribute bundle (all fields that participate in
/// PathAttributes::operator==).
std::size_t hash_value(const PathAttributes& attrs);

/// Shared, immutable handle to a canonical PathAttributes. Never null:
/// default-constructed refs point at the shared default bundle.
class AttrSetRef {
 public:
  AttrSetRef();

  /// The canonical handle for `attrs`: returns the pooled instance when one
  /// is alive, otherwise adopts `attrs` as the new canonical bundle.
  static AttrSetRef intern(PathAttributes attrs);

  const PathAttributes& operator*() const { return *ptr_; }
  const PathAttributes* operator->() const { return ptr_.get(); }
  const PathAttributes& get() const { return *ptr_; }

  /// True when both handles share one canonical bundle (pointer identity).
  bool same_set(const AttrSetRef& other) const { return ptr_ == other.ptr_; }

  /// Value equality with a pointer-identity fast path. Correctness never
  /// depends on interning: two refs with equal bundles compare equal even
  /// if they were interned on different threads.
  bool operator==(const AttrSetRef& other) const {
    return ptr_ == other.ptr_ || *ptr_ == *other.ptr_;
  }
  bool operator==(const PathAttributes& value) const { return *ptr_ == value; }

 private:
  explicit AttrSetRef(std::shared_ptr<const PathAttributes> ptr)
      : ptr_{std::move(ptr)} {}

  std::shared_ptr<const PathAttributes> ptr_;
};

/// Introspection for tests and diagnostics (this thread's pool).
struct AttrPoolStats {
  /// Pool entries, including not-yet-swept expired ones.
  std::size_t entries{0};
  /// Entries whose bundle is still referenced somewhere.
  std::size_t live{0};
  std::uint64_t interns{0};
  /// intern() calls resolved to an existing canonical bundle.
  std::uint64_t hits{0};
  std::uint64_t purges{0};
};
AttrPoolStats attr_pool_stats();

/// Deterministic bytes held by this thread's live canonical bundles
/// (core/mem_stats.hpp allocation model; element counts, not capacities, so
/// the figure depends only on the simulated workload).
std::uint64_t attr_pool_live_bytes();

/// Sweep expired entries now (tests; normal operation relies on the
/// amortized lazy sweep).
void attr_pool_purge();

}  // namespace bgpsdn::bgp
