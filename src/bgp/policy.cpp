#include "bgp/policy.hpp"

namespace bgpsdn::bgp {

bool PolicyEngine::denied(const std::vector<net::Prefix>& deny,
                          const net::Prefix& p) {
  for (const auto& d : deny) {
    if (d.contains(p)) return true;
  }
  return false;
}

bool PolicyEngine::apply_import(const PeerPolicy& policy, const net::Prefix& prefix,
                                PathAttributes& attrs) {
  if (denied(policy.import_deny, prefix)) return false;
  if (policy.local_pref) {
    attrs.local_pref = *policy.local_pref;
  } else if (policy.mode == PolicyMode::kGaoRexford) {
    attrs.local_pref = default_local_pref(policy.relationship);
  } else {
    attrs.local_pref = 100;
  }
  if (policy.import_map && !policy.import_map(attrs)) return false;
  return true;
}

bool PolicyEngine::apply_export(const PeerPolicy& policy,
                                std::optional<Relationship> learned_rel,
                                const net::Prefix& prefix, PathAttributes& attrs,
                                core::AsNumber local_as) {
  if (denied(policy.export_deny, prefix)) return false;
  if (policy.mode == PolicyMode::kGaoRexford && learned_rel.has_value()) {
    // Valley-free rule: a route learned from a peer or provider is only
    // exported to customers. Customer routes and local routes go everywhere.
    const bool from_customer = *learned_rel == Relationship::kCustomer;
    const bool to_customer = policy.relationship == Relationship::kCustomer;
    if (!from_customer && !to_customer) return false;
  }
  // eBGP export: LOCAL_PREF is not sent; MED is not propagated to third
  // parties (we simply drop it, as all our sessions are eBGP).
  attrs.local_pref.reset();
  attrs.med.reset();
  // Backup-link de-preference: extra prepends beyond the router's own
  // mandatory one (which the caller adds after this returns).
  if (local_as.value() != 0) {
    for (std::uint8_t i = 0; i < policy.prepend; ++i) {
      attrs.as_path = attrs.as_path.prepend(local_as);
    }
  }
  if (policy.export_map && !policy.export_map(attrs)) return false;
  return true;
}

}  // namespace bgpsdn::bgp
