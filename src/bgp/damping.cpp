#include "bgp/damping.hpp"

#include <algorithm>
#include <cmath>

namespace bgpsdn::bgp {

double FlapDampener::decayed(const State& s, core::TimePoint now) const {
  const double dt = (now - s.updated_at).to_seconds();
  if (dt <= 0.0) return s.penalty;
  return s.penalty * std::exp2(-dt / config_.half_life.to_seconds());
}

core::Duration FlapDampener::time_to_reach(double from, double to) const {
  if (from <= to) return core::Duration::zero();
  const double half_lives = std::log2(from / to);
  return config_.half_life * half_lives;
}

FlapDampener::Verdict FlapDampener::record_flap(core::SessionId session,
                                                const net::Prefix& prefix,
                                                bool withdrawal,
                                                core::TimePoint now) {
  Verdict verdict;
  if (!config_.enabled) return verdict;

  State& s = state_[{session.value(), prefix}];
  const double before = decayed(s, now);
  // Suppression that already lapsed by decay is cleared before the new
  // flap is scored.
  if (s.suppressed && before <= config_.reuse_threshold) s.suppressed = false;
  double penalty = before + (withdrawal ? config_.withdraw_penalty
                                        : config_.update_penalty);
  // Ceiling: a route may never stay suppressed longer than max_suppress
  // after its last flap.
  const double ceiling =
      config_.reuse_threshold *
      std::exp2(config_.max_suppress.to_seconds() / config_.half_life.to_seconds());
  penalty = std::min(penalty, ceiling);

  const bool was_suppressed = s.suppressed;
  s.penalty = penalty;
  s.updated_at = now;
  if (penalty >= config_.suppress_threshold) {
    s.suppressed = true;
    if (!was_suppressed) ++suppressions_;
  }
  verdict.penalty = penalty;
  verdict.suppressed = s.suppressed;
  if (s.suppressed) {
    verdict.reuse_after = time_to_reach(penalty, config_.reuse_threshold);
  }
  return verdict;
}

bool FlapDampener::is_suppressed(core::SessionId session,
                                 const net::Prefix& prefix,
                                 core::TimePoint now) const {
  if (!config_.enabled) return false;
  const auto it = state_.find({session.value(), prefix});
  if (it == state_.end() || !it->second.suppressed) return false;
  // Suppression lapses once the decayed penalty crosses the reuse line.
  return decayed(it->second, now) > config_.reuse_threshold;
}

double FlapDampener::penalty(core::SessionId session, const net::Prefix& prefix,
                             core::TimePoint now) const {
  const auto it = state_.find({session.value(), prefix});
  return it == state_.end() ? 0.0 : decayed(it->second, now);
}

bool FlapDampener::has_history(core::SessionId session,
                               const net::Prefix& prefix) const {
  return state_.count({session.value(), prefix}) > 0;
}

void FlapDampener::clear_session(core::SessionId session) {
  for (auto it = state_.begin(); it != state_.end();) {
    if (it->first.first == session.value()) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace bgpsdn::bgp
