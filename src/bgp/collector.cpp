#include "bgp/collector.hpp"

#include "bgp/router.hpp"
#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "net/network.hpp"

namespace bgpsdn::bgp {

std::string RouteObservation::to_string() const {
  std::string s = when.to_string();
  s += announce ? " A " : " W ";
  s += prefix.to_string();
  s += " from ";
  s += peer_as.to_string();
  if (announce) {
    s += " path [" + as_path.to_string() + "]";
  }
  return s;
}

void RouteCollector::add_peer(core::PortId port, net::Ipv4Addr local_address,
                              net::Ipv4Addr remote_address) {
  SessionConfig sc;
  sc.id = allocate_session_id();  // net::Node: network-scoped allocation
  sc.local_as = core::AsNumber{64512};  // private collector AS
  sc.local_id = id_;
  sc.local_address = local_address;
  sc.remote_address = remote_address;
  sc.expected_peer_as = core::AsNumber{0};  // accept anyone

  Peer peer;
  peer.port = port;
  peer.local_address = local_address;
  peer.remote_address = remote_address;
  peer.session = std::make_unique<Session>(*this, sc);
  auto [it, fresh] = by_port_.insert_or_assign(port.value(), std::move(peer));
  by_session_[sc.id.value()] = &it->second;
  if (started_) it->second.session->start();
}

void RouteCollector::start() {
  started_ = true;
  for (auto& [port, peer] : by_port_) peer.session->start();
}

void RouteCollector::handle_packet(core::PortId ingress, const net::Packet& packet) {
  if (packet.proto != net::Protocol::kBgp) return;
  const auto it = by_port_.find(ingress.value());
  if (it != by_port_.end()) it->second.session->receive(packet.payload);
}

void RouteCollector::on_link_state(core::PortId port, bool up) {
  const auto it = by_port_.find(port.value());
  if (it == by_port_.end()) return;
  if (up) {
    it->second.session->start();
  } else {
    it->second.session->stop("link down");
  }
}

void RouteCollector::session_transmit(Session& session, net::Bytes wire) {
  Peer* peer = by_session_.at(session.id().value());
  net::Packet pkt;
  pkt.src = peer->local_address;
  pkt.dst = peer->remote_address;
  pkt.proto = net::Protocol::kBgp;
  pkt.payload = std::move(wire);
  send(peer->port, std::move(pkt));
}

void RouteCollector::session_established(Session&) {}

void RouteCollector::session_down(Session& session, const std::string& reason) {
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_down",
               "peer " + session.peer_as().to_string() + ": " + reason);
}

void RouteCollector::session_update(Session& session, const UpdateMessage& update) {
  for (const auto& prefix : update.withdrawn) {
    tape_.push_back({loop().now(), session.peer_as(), false, prefix, {}});
  }
  for (const auto& prefix : update.nlri) {
    tape_.push_back(
        {loop().now(), session.peer_as(), true, prefix, update.attributes.as_path});
  }
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "collector_rx",
               "from " + session.peer_as().to_string() + " " + update.to_string());
}

core::EventLoop& RouteCollector::session_loop() { return loop(); }
core::Rng& RouteCollector::session_rng() { return rng(); }
core::Logger& RouteCollector::session_logger() { return logger(); }
std::string RouteCollector::session_log_name() const {
  return "collector." + name();
}

core::TimePoint RouteCollector::last_activity() const {
  return tape_.empty() ? core::TimePoint::origin() : tape_.back().when;
}

std::size_t RouteCollector::established_count() const {
  std::size_t n = 0;
  for (const auto& [port, peer] : by_port_) {
    if (peer.session->established()) ++n;
  }
  return n;
}

}  // namespace bgpsdn::bgp
