#include "bgp/router.hpp"

#include <algorithm>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "net/network.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::bgp {

namespace {
/// Locally-originated routes always win the decision process.
constexpr std::uint32_t kLocalRoutePref = 1000;

/// Shared bundle for locally-originated candidates (one canonical instance
/// per thread instead of a fresh PathAttributes per recompute).
const AttrSetRef& local_route_attrs() {
  thread_local const AttrSetRef attrs = [] {
    PathAttributes a;
    a.origin = Origin::kIgp;
    a.local_pref = kLocalRoutePref;
    return AttrSetRef::intern(std::move(a));
  }();
  return attrs;
}
}  // namespace

void BgpRouter::add_peer(core::PortId port, PeerConfig peer_config) {
  SessionConfig sc;
  sc.id = allocate_session_id();
  sc.local_as = config_.asn;
  sc.local_id = config_.router_id;
  sc.local_address = peer_config.local_address;
  sc.remote_address = peer_config.remote_address;
  sc.expected_peer_as = peer_config.expected_peer_as;
  sc.timers = config_.timers;

  auto [it, fresh] = peers_.try_emplace(port);
  Peer& peer = it->second;
  // Every peer's Adj-RIB-Out is one column of the router-wide store so
  // per-prefix advertised state is shared across peers.
  if (fresh) peer.rib_out = AdjRibOut(rib_out_store_);
  peer.port = port;
  peer.config = std::move(peer_config);
  peer.session = std::make_unique<Session>(*this, sc);
  peers_by_session_[sc.id.value()] = &peer;
  if (started_) peer.session->start();
}

void BgpRouter::attach_host(core::PortId port, const net::Prefix& prefix) {
  host_ports_[prefix] = port;
  fib_.insert(prefix, port);
  originate(prefix);
}

void BgpRouter::originate(const net::Prefix& prefix) {
  local_prefixes_.emplace(prefix, loop().now());
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "origin_announce", prefix.to_string());
  TxBatch batch{*this};
  recompute(prefix);
}

void BgpRouter::withdraw_origin(const net::Prefix& prefix) {
  if (local_prefixes_.erase(prefix) == 0) return;
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "origin_withdraw", prefix.to_string());
  TxBatch batch{*this};
  recompute(prefix);
}

void BgpRouter::start() {
  started_ = true;
  for (auto& [port, peer] : peers_) peer.session->start();
}

void BgpRouter::handle_packet(core::PortId ingress, const net::Packet& packet) {
  if (packet.proto == net::Protocol::kBgp) {
    Peer* peer = peer_on(ingress);
    if (peer != nullptr) peer->session->receive(packet.payload);
    return;
  }
  forward_data(packet);
}

void BgpRouter::forward_data(const net::Packet& packet) {
  const auto hit = fib_.lookup(packet.dst);
  if (!hit) {
    ++counters_.packets_no_route;
    return;
  }
  ++counters_.packets_forwarded;
  send(*hit->second, packet);
}

void BgpRouter::on_link_state(core::PortId port, bool up) {
  Peer* peer = peer_on(port);
  if (peer == nullptr) return;
  if (up) {
    peer->session->start();
  } else {
    peer->session->stop("link down");
  }
}

// --- SessionHost ----------------------------------------------------------

void BgpRouter::session_transmit(Session& session, net::Bytes wire) {
  Peer* peer = peer_of(session);
  if (peer == nullptr) return;
  net::Packet pkt;
  pkt.src = peer->config.local_address;
  pkt.dst = peer->config.remote_address;
  pkt.proto = net::Protocol::kBgp;
  pkt.payload = std::move(wire);
  send(peer->port, std::move(pkt));
}

void BgpRouter::session_established(Session& session) {
  Peer* peer = peer_of(session);
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_up", "peer " + session.peer_as().to_string());
  if (config_.timers.mrai_style == MraiStyle::kPeriodicQuagga &&
      peer_mrai(*peer) > core::Duration::zero()) {
    // Initial table transfer goes out promptly; afterwards the
    // free-running advertisement timer paces everything.
    for (const auto& prefix : loc_rib_.prefixes()) peer->pending.insert(prefix);
    flush_peer(*peer);
    arm_mrai(*peer);
  } else {
    TxBatch batch{*this};
    for (const auto& prefix : loc_rib_.prefixes()) {
      schedule_peer_update(*peer, prefix);
    }
  }
}

void BgpRouter::session_down(Session& session, const std::string& reason) {
  Peer* peer = peer_of(session);
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "session_down",
               "peer " + session.peer_as().to_string() + ": " + reason);
  ++peer->epoch;
  peer->rib_out.clear();
  peer->pending.clear();
  peer->batch_dirty.clear();
  if (peer->mrai_timer.is_valid()) loop().cancel(peer->mrai_timer);
  peer->mrai_running = false;
  dampener_.clear_session(session.id());
  TxBatch batch{*this};
  for (const auto& prefix : adj_rib_in_.erase_session(session.id())) {
    recompute(prefix);
  }
}

void BgpRouter::session_update(Session& session, const UpdateMessage& update) {
  Peer* peer = peer_of(session);
  ++counters_.updates_rx;
  logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
               "update_rx",
               "from " + session.peer_as().to_string() + " " + update.to_string());
  const auto routes = update.nlri.size() + update.withdrawn.size();
  if (auto* tel = telemetry(); tel != nullptr && tel->tracing()) {
    auto span = telemetry::TraceSpan::instant(loop().now(), "bgp", "update_rx",
                                              session_log_name());
    span.arg("from", session.peer_as().to_string())
        .arg("nlri", static_cast<std::int64_t>(update.nlri.size()))
        .arg("withdrawn", static_cast<std::int64_t>(update.withdrawn.size()));
    tel->emit(span);
  }
  const auto cost = config_.processing.per_update +
                    config_.processing.per_route * static_cast<std::int64_t>(routes);
  const auto epoch = peer->epoch;
  enqueue_work(cost, [this, peer, epoch, update] {
    if (peer->epoch != epoch || !peer->session->established()) return;
    process_update(*peer, update);
  });
}

core::EventLoop& BgpRouter::session_loop() { return loop(); }
core::Rng& BgpRouter::session_rng() { return rng(); }
core::Logger& BgpRouter::session_logger() { return logger(); }
telemetry::Telemetry* BgpRouter::session_telemetry() { return telemetry(); }

void BgpRouter::init_metrics() {
  if (metrics_resolved_) return;
  metrics_resolved_ = true;
  if (auto* tel = telemetry()) {
    auto& metrics = tel->metrics();
    decision_runs_metric_ = &metrics.counter("bgp.decision.runs");
    best_changes_metric_ = &metrics.counter("bgp.decision.best_changes");
    updates_tx_metric_ = &metrics.counter("bgp.router.updates_tx");
    decision_candidates_metric_ = &metrics.histogram("bgp.decision.candidates");
  }
}
std::string BgpRouter::session_log_name() const {
  return "bgp." + (name().empty() ? config_.asn.to_string() : name());
}

// --- update processing ------------------------------------------------------

void BgpRouter::process_update(Peer& peer, const UpdateMessage& update) {
  const auto sid = peer.session->id();
  TxBatch batch{*this};
  for (const auto& prefix : update.withdrawn) {
    if (adj_rib_in_.erase(prefix, sid)) {
      note_flap(sid, prefix, /*withdrawal=*/true);
      recompute(prefix);
    }
  }
  for (const auto& prefix : update.nlri) {
    PathAttributes attrs = update.attributes;
    if (attrs.as_path.contains(config_.asn)) {
      ++counters_.routes_rejected_loop;
      if (adj_rib_in_.erase(prefix, sid)) recompute(prefix);
      continue;
    }
    if (!PolicyEngine::apply_import(peer.config.policy, prefix, attrs)) {
      ++counters_.routes_rejected_policy;
      if (adj_rib_in_.erase(prefix, sid)) recompute(prefix);
      continue;
    }
    Route route;
    route.prefix = prefix;
    route.attributes = AttrSetRef::intern(std::move(attrs));
    route.learned_from = sid;
    route.peer_bgp_id = peer.session->peer_bgp_id();
    route.peer_address = peer.config.remote_address;
    route.installed_at = loop().now();
    // Re-announcements with unchanged attributes keep their age (the
    // decision process prefers older routes) and do not count as flaps.
    // Interning makes this the pointer-identity fast path.
    const Route* existing = adj_rib_in_.find(prefix, sid);
    if (existing != nullptr && existing->attributes == route.attributes) {
      route.installed_at = existing->installed_at;
    } else if (existing != nullptr || dampener_.has_history(sid, prefix)) {
      // Attribute change or re-advertisement after a withdrawal: a flap.
      note_flap(sid, prefix, /*withdrawal=*/false);
    }
    // Dirty-prefix decision: an unchanged candidate set (a duplicate
    // re-announcement) cannot move the best path, so skip the decision
    // process entirely.
    if (adj_rib_in_.put(route)) recompute(prefix);
  }
}

void BgpRouter::note_flap(core::SessionId session, const net::Prefix& prefix,
                          bool withdrawal) {
  const auto verdict =
      dampener_.record_flap(session, prefix, withdrawal, loop().now());
  if (!verdict.suppressed) return;
  ++counters_.routes_suppressed;
  logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
               "route_damped",
               prefix.to_string() + " penalty " +
                   std::to_string(static_cast<int>(verdict.penalty)));
  // Re-evaluate once the penalty decays to the reuse threshold.
  loop().schedule(verdict.reuse_after + core::Duration::millis(1),
                  [this, prefix] {
                    TxBatch batch{*this};
                    recompute(prefix);
                  });
}

// lint: hotpath(decision process runs once per affected prefix per UPDATE;
// at internet scale it dominates the event loop)
void BgpRouter::recompute(const net::Prefix& prefix) {
  init_metrics();
  if (decision_runs_metric_ != nullptr) decision_runs_metric_->inc();
  const std::uint64_t best_changes_before = counters_.best_changes;
  // Incremental best-path selection over an allocation-free visitation of
  // the Adj-RIB-In candidates (visited in session-ascending order, so ties
  // resolve exactly as the old select_best-over-vector did). The running
  // winner is copied out: the compact layout materializes each candidate
  // into scratch storage that the next visit reuses.
  Route best;
  bool have_best = false;
  std::size_t candidate_count = 0;
  adj_rib_in_.for_each_candidate(prefix, [&](const Route& r) {
    if (config_.damping.enabled &&
        dampener_.is_suppressed(r.learned_from, prefix, loop().now())) {
      return;
    }
    ++candidate_count;
    if (!have_best || compare_routes(r, best) < 0) {
      best = r;
      have_best = true;
    }
  });
  if (const auto it = local_prefixes_.find(prefix); it != local_prefixes_.end()) {
    Route local;
    local.prefix = prefix;
    local.attributes = local_route_attrs();
    local.installed_at = it->second;
    ++candidate_count;
    if (!have_best || compare_routes(local, best) < 0) {
      best = local;
      have_best = true;
    }
  }

  if (decision_candidates_metric_ != nullptr) {
    decision_candidates_metric_->record(
        static_cast<std::int64_t>(candidate_count));
  }

  const Route* current = loc_rib_.find(prefix);

  if (!have_best) {
    if (current == nullptr) return;
    loc_rib_.remove(prefix);
    if (host_ports_.count(prefix) == 0) fib_.erase(prefix);
    ++counters_.best_changes;
    logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
                 "best_lost", prefix.to_string());
  } else {
    const bool changed = current == nullptr ||
                         current->attributes != best.attributes ||
                         current->learned_from != best.learned_from;
    if (!changed) return;
    loc_rib_.install(best);
    if (best.is_local()) {
      // Delivered locally (to the attached host if any).
      if (const auto it = host_ports_.find(prefix); it != host_ports_.end()) {
        fib_.insert(prefix, it->second);
      } else {
        fib_.erase(prefix);
      }
    } else {
      fib_.insert(prefix, peers_by_session_.at(best.learned_from.value())->port);
    }
    ++counters_.best_changes;
    // lint: alloc-ok(the log line is built only on best-path change
    // events, not per decision run)
    logger().log(loop().now(), core::LogLevel::kInfo, session_log_name(),
                 "best_changed",
                 prefix.to_string() + " via [" +
                     best.attributes->as_path.to_string() + "]");
  }

  if (auto* tel = telemetry()) {
    if (best_changes_metric_ != nullptr &&
        counters_.best_changes != best_changes_before) {
      best_changes_metric_->inc();
    }
    if (tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "bgp", "decision",
                                                session_log_name());
      span.arg("prefix", prefix.to_string())
          .arg("candidates", static_cast<std::int64_t>(candidate_count))
          .arg("best_changed", counters_.best_changes != best_changes_before);
      tel->emit(span);
    }
  }

  for (auto& [port, peer] : peers_) schedule_peer_update(peer, prefix);
}

// --- advertisement / MRAI ---------------------------------------------------

std::optional<Relationship> BgpRouter::relationship_of_best(const Route& best) {
  if (best.is_local()) return std::nullopt;
  return peers_by_session_.at(best.learned_from.value())
      ->config.policy.relationship;
}

BgpRouter::ExportAction BgpRouter::evaluate_export(Peer& peer,
                                                   const net::Prefix& prefix,
                                                   AttrSetRef& out_attrs) {
  const Route* best = loc_rib_.find(prefix);
  if (best == nullptr) return ExportAction::kWithdraw;
  if (config_.split_horizon && best->learned_from == peer.session->id()) {
    return ExportAction::kWithdraw;
  }
  // Copy-out / edit / re-intern: the canonical bundle is immutable.
  PathAttributes attrs = *best->attributes;
  if (!PolicyEngine::apply_export(peer.config.policy, relationship_of_best(*best),
                                  prefix, attrs, config_.asn)) {
    return ExportAction::kWithdraw;
  }
  attrs.as_path = attrs.as_path.prepend(config_.asn);
  attrs.next_hop = peer.config.local_address;
  out_attrs = AttrSetRef::intern(std::move(attrs));
  return ExportAction::kAnnounce;
}

core::Duration BgpRouter::peer_mrai(const Peer& peer) const {
  return peer.config.mrai.value_or(config_.timers.mrai);
}

void BgpRouter::schedule_peer_update(Peer& peer, const net::Prefix& prefix) {
  if (!peer.session->established()) return;
  AttrSetRef attrs;
  const ExportAction action = evaluate_export(peer, prefix, attrs);
  const bool announce = action == ExportAction::kAnnounce;
  const bool gated = (announce || config_.timers.mrai_applies_to_withdrawals) &&
                     peer_mrai(peer) > core::Duration::zero();
  if (!gated) {
    // Ungated (withdrawal, or MRAI disabled): send right away, leaving any
    // MRAI-gated announcements queued. Inside a TxBatch the send is
    // deferred to the batch flush so same-bundle prefixes pack into one
    // multi-NLRI UPDATE.
    peer.pending.erase(prefix);
    if (tx_batch_depth_ > 0) {
      peer.batch_dirty.insert(prefix);
      return;
    }
    UpdateMessage msg;
    if (announce) {
      if (!peer.rib_out.advertise(prefix, attrs)) return;  // duplicate
      msg.attributes = *attrs;
      msg.nlri.push_back(prefix);
    } else {
      if (!peer.rib_out.withdraw(prefix)) return;  // never advertised
      msg.withdrawn.push_back(prefix);
    }
    ++counters_.updates_tx;
    init_metrics();
    if (updates_tx_metric_ != nullptr) updates_tx_metric_->inc();
    logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
                 "update_tx",
                 "to " + peer.session->peer_as().to_string() + " " +
                     msg.to_string());
    if (auto* tel = telemetry(); tel != nullptr && tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "bgp",
                                                "update_tx", session_log_name());
      span.arg("to", peer.session->peer_as().to_string())
          .arg("nlri", static_cast<std::int64_t>(msg.nlri.size()))
          .arg("withdrawn", static_cast<std::int64_t>(msg.withdrawn.size()));
      tel->emit(span);
    }
    peer.session->send_update(msg);
    return;
  }
  peer.pending.insert(prefix);
  if (config_.timers.mrai_style == MraiStyle::kPeriodicQuagga) {
    // The free-running advertisement timer (armed at session
    // establishment) will flush this at its next tick.
    return;
  }
  if (!peer.mrai_running) {
    flush_peer(peer);
    arm_mrai(peer);
  }
}

// lint: hotpath(flush-buffer coalescing runs once per MRAI tick per peer;
// a convergence burst funnels every dirty prefix through here)
void BgpRouter::flush_peer(Peer& peer) {
  if (!peer.session->established()) {
    peer.pending.clear();
    return;
  }
  if (peer.mrai_span_open) {
    // Close the MRAI window opened at arm_mrai: this flush is the gated
    // advertisement the timer was pacing.
    peer.mrai_span_open = false;
    if (auto* tel = telemetry()) {
      const auto now = loop().now();
      tel->metrics()
          .histogram("bgp.mrai.wait_ns")
          .record((now - peer.mrai_armed_at).count_nanos());
      if (tel->tracing()) {
        auto span = telemetry::TraceSpan{peer.mrai_armed_at, now, "bgp",
                                         "mrai_wait", session_log_name()};
        span.arg("peer", peer.session->peer_as().to_string())
            .arg("pending", static_cast<std::int64_t>(peer.pending.size()));
        tel->emit(span);
      }
    }
  }
  std::vector<net::Prefix> withdrawals;
  withdrawals.reserve(peer.pending.size());
  // Announcement groups keyed by attribute bundle (one bundle per UPDATE).
  // Interned handles make the group lookup a pointer compare.
  std::vector<std::pair<AttrSetRef, std::vector<net::Prefix>>> groups;
  groups.reserve(peer.pending.size());
  for (const auto& prefix : peer.pending) {
    AttrSetRef attrs;
    if (evaluate_export(peer, prefix, attrs) == ExportAction::kAnnounce) {
      if (!peer.rib_out.advertise(prefix, attrs)) continue;  // unchanged
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == attrs; });
      if (it == groups.end()) {
        groups.push_back({attrs, {prefix}});
      } else {
        // lint: alloc-ok(grows the per-bundle NLRI list; amortized across
        // the burst and bounded by the pending set just reserved for)
        it->second.push_back(prefix);
      }
    } else {
      if (peer.rib_out.withdraw(prefix)) withdrawals.push_back(prefix);
    }
  }
  peer.pending.clear();
  emit_updates(peer, groups, withdrawals);
}

// lint: hotpath(every UPDATE leaving the router is packed here; TX volume
// scales with topology size times churn)
void BgpRouter::emit_updates(Peer& peer, UpdateGroups& groups,
                             std::vector<net::Prefix>& withdrawals) {
  std::vector<UpdateMessage> messages;
  messages.reserve(groups.size() + 1);
  for (auto& [attrs, nlri] : groups) {
    UpdateMessage m;
    m.attributes = *attrs;
    m.nlri = std::move(nlri);
    messages.push_back(std::move(m));
  }
  if (!withdrawals.empty()) {
    if (messages.empty()) messages.emplace_back();
    messages.front().withdrawn = std::move(withdrawals);
  }
  for (auto& m : messages) {
    ++counters_.updates_tx;
    init_metrics();
    if (updates_tx_metric_ != nullptr) updates_tx_metric_->inc();
    // lint: alloc-ok(one debug line per UPDATE actually sent; TX is paced
    // by MRAI/batch ticks, and the text is part of the replayable trace)
    logger().log(loop().now(), core::LogLevel::kDebug, session_log_name(),
                 "update_tx",
                 "to " + peer.session->peer_as().to_string() + " " + m.to_string());
    if (auto* tel = telemetry(); tel != nullptr && tel->tracing()) {
      auto span = telemetry::TraceSpan::instant(loop().now(), "bgp",
                                                "update_tx", session_log_name());
      span.arg("to", peer.session->peer_as().to_string())
          .arg("nlri", static_cast<std::int64_t>(m.nlri.size()))
          .arg("withdrawn", static_cast<std::int64_t>(m.withdrawn.size()));
      tel->emit(span);
    }
    peer.session->send_update(m);
  }
}

// lint: hotpath(batch-mode coalescing: one pass over every dirty prefix of
// every peer at each batch boundary)
void BgpRouter::flush_tx_batches() {
  for (auto& [port, peer] : peers_) {
    if (peer.batch_dirty.empty()) continue;
    std::set<net::Prefix> dirty;
    dirty.swap(peer.batch_dirty);
    if (!peer.session->established()) continue;
    // Export state is re-evaluated now, against the final Loc-RIB of the
    // burst — intermediate states within one batch never hit the wire
    // (exactly the coalescing the MRAI flush path always did).
    std::vector<net::Prefix> withdrawals;
    withdrawals.reserve(dirty.size());
    UpdateGroups groups;
    groups.reserve(dirty.size());
    bool spilled = false;
    for (const auto& prefix : dirty) {
      AttrSetRef attrs;
      const ExportAction action = evaluate_export(peer, prefix, attrs);
      const bool announce = action == ExportAction::kAnnounce;
      const bool gated =
          (announce || config_.timers.mrai_applies_to_withdrawals) &&
          peer_mrai(peer) > core::Duration::zero();
      if (gated) {
        // The export flipped announce/withdraw since it was queued and is
        // now subject to MRAI: hand it to the gated machinery.
        peer.pending.insert(prefix);
        spilled = true;
        continue;
      }
      if (announce) {
        if (!peer.rib_out.advertise(prefix, attrs)) continue;  // duplicate
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto& g) { return g.first == attrs; });
        if (it == groups.end()) {
          groups.push_back({attrs, {prefix}});
        } else {
          // lint: alloc-ok(grows the per-bundle NLRI list; amortized
          // across the burst and bounded by the dirty set reserved for)
          it->second.push_back(prefix);
        }
      } else {
        if (peer.rib_out.withdraw(prefix)) withdrawals.push_back(prefix);
      }
    }
    emit_updates(peer, groups, withdrawals);
    if (spilled && config_.timers.mrai_style == MraiStyle::kImmediateThenGate &&
        !peer.mrai_running) {
      flush_peer(peer);
      arm_mrai(peer);
    }
  }
}

void BgpRouter::arm_mrai(Peer& peer) {
  const auto mrai = peer_mrai(peer);
  if (mrai <= core::Duration::zero()) return;
  peer.mrai_running = true;
  peer.mrai_armed_at = loop().now();
  peer.mrai_span_open = true;
  const auto delay =
      rng().jittered(mrai, config_.timers.jitter_low, config_.timers.jitter_high);
  const auto epoch = peer.epoch;
  Peer* p = &peer;
  if (config_.timers.mrai_style == MraiStyle::kPeriodicQuagga) {
    // Free-running tick: flush pending (if any) and always re-arm.
    peer.mrai_timer = loop().schedule(delay, [this, p, epoch] {
      if (p->epoch != epoch || !p->session->established()) return;
      if (!p->pending.empty()) flush_peer(*p);
      arm_mrai(*p);
    });
    return;
  }
  peer.mrai_timer = loop().schedule(delay, [this, p, epoch] {
    if (p->epoch != epoch) return;
    p->mrai_running = false;
    if (!p->pending.empty()) {
      flush_peer(*p);
      arm_mrai(*p);
    }
  });
}

// --- misc -------------------------------------------------------------------

void BgpRouter::enqueue_work(core::Duration cost, std::function<void()> fn) {
  const auto now = loop().now();
  if (busy_until_ < now) busy_until_ = now;
  busy_until_ += cost;
  loop().schedule_at(busy_until_, std::move(fn));
}

BgpRouter::Peer* BgpRouter::peer_on(core::PortId port) {
  const auto it = peers_.find(port);
  return it == peers_.end() ? nullptr : &it->second;
}

BgpRouter::Peer* BgpRouter::peer_of(const Session& session) {
  const auto it = peers_by_session_.find(session.id().value());
  return it == peers_by_session_.end() ? nullptr : it->second;
}

const Session* BgpRouter::session_on(core::PortId port) const {
  const auto it = peers_.find(port);
  return it == peers_.end() ? nullptr : it->second.session.get();
}

std::vector<const Session*> BgpRouter::sessions() const {
  std::vector<const Session*> out;
  out.reserve(peers_.size());
  for (const auto& [port, peer] : peers_) out.push_back(peer.session.get());
  return out;
}

std::optional<core::PortId> BgpRouter::fib_lookup(net::Ipv4Addr dst) const {
  const auto hit = fib_.lookup(dst);
  if (!hit) return std::nullopt;
  return *hit->second;
}

}  // namespace bgpsdn::bgp
