#include "bgp/message.hpp"

#include <algorithm>

#include "bgp/wire.hpp"

namespace bgpsdn::bgp {

namespace {

// Attribute type codes (RFC 4271 / RFC 1997).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunities = 8;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLen = 0x10;

// OPEN optional parameter / capability codes.
constexpr std::uint8_t kParamCapabilities = 2;
constexpr std::uint8_t kCapFourOctetAs = 65;

constexpr std::uint8_t kAsSequence = 2;

void write_prefix(ByteWriter& w, const net::Prefix& p) {
  w.u8(p.length());
  const std::uint32_t bits = p.network().bits();
  const int n = (p.length() + 7) / 8;
  for (int i = 0; i < n; ++i) w.u8(static_cast<std::uint8_t>(bits >> (24 - 8 * i)));
}

std::optional<net::Prefix> read_prefix(ByteReader& r) {
  const std::uint8_t len = r.u8();
  if (len > 32) {
    r.fail();
    return std::nullopt;
  }
  std::uint32_t bits = 0;
  const int n = (len + 7) / 8;
  for (int i = 0; i < n; ++i) bits |= std::uint32_t{r.u8()} << (24 - 8 * i);
  if (!r.ok()) return std::nullopt;
  return net::Prefix{net::Ipv4Addr{bits}, len};
}

void write_attr_header(ByteWriter& w, std::uint8_t flags, std::uint8_t type,
                       std::uint16_t len) {
  if (len > 255) flags |= kFlagExtendedLen;
  w.u8(flags);
  w.u8(type);
  if (flags & kFlagExtendedLen) {
    w.u16(len);
  } else {
    w.u8(static_cast<std::uint8_t>(len));
  }
}

void encode_attributes(ByteWriter& w, const PathAttributes& attrs,
                       const CodecOptions& opts) {
  // ORIGIN
  write_attr_header(w, kFlagTransitive, kAttrOrigin, 1);
  w.u8(static_cast<std::uint8_t>(attrs.origin));

  // AS_PATH: one AS_SEQUENCE segment (empty path -> zero segments).
  {
    const auto& hops = attrs.as_path.hops();
    const std::uint16_t body =
        hops.empty() ? 0
                     : static_cast<std::uint16_t>(
                           2 + hops.size() * (opts.four_octet_as ? 4 : 2));
    write_attr_header(w, kFlagTransitive, kAttrAsPath, body);
    if (!hops.empty()) {
      w.u8(kAsSequence);
      w.u8(static_cast<std::uint8_t>(hops.size()));
      for (const auto as : hops) {
        if (opts.four_octet_as) {
          w.u32(as.value());
        } else {
          w.u16(as.value() > 0xffff ? kAsTrans
                                    : static_cast<std::uint16_t>(as.value()));
        }
      }
    }
  }

  // NEXT_HOP
  write_attr_header(w, kFlagTransitive, kAttrNextHop, 4);
  w.addr(attrs.next_hop);

  if (attrs.med) {
    write_attr_header(w, kFlagOptional, kAttrMed, 4);
    w.u32(*attrs.med);
  }
  if (attrs.local_pref) {
    write_attr_header(w, kFlagTransitive, kAttrLocalPref, 4);
    w.u32(*attrs.local_pref);
  }
  if (!attrs.communities.empty()) {
    write_attr_header(w, kFlagOptional | kFlagTransitive, kAttrCommunities,
                      static_cast<std::uint16_t>(attrs.communities.size() * 4));
    for (const auto c : attrs.communities) w.u32(c);
  }
}

bool decode_attributes(ByteReader& r, PathAttributes& attrs,
                       const CodecOptions& opts) {
  while (r.remaining() > 0) {
    const std::uint8_t flags = r.u8();
    const std::uint8_t type = r.u8();
    const std::uint16_t len = (flags & kFlagExtendedLen) ? r.u16() : r.u8();
    ByteReader body = r.sub(len);
    if (!r.ok()) return false;
    switch (type) {
      case kAttrOrigin: {
        const std::uint8_t o = body.u8();
        if (o > 2) return false;
        attrs.origin = static_cast<Origin>(o);
        break;
      }
      case kAttrAsPath: {
        std::vector<core::AsNumber> hops;
        while (body.remaining() > 0) {
          const std::uint8_t seg_type = body.u8();
          const std::uint8_t count = body.u8();
          if (seg_type != kAsSequence) return false;  // AS_SET unsupported
          for (int i = 0; i < count; ++i) {
            hops.emplace_back(opts.four_octet_as ? body.u32() : body.u16());
          }
        }
        if (!body.ok()) return false;
        attrs.as_path = AsPath{std::move(hops)};
        break;
      }
      case kAttrNextHop:
        attrs.next_hop = body.addr();
        break;
      case kAttrMed:
        attrs.med = body.u32();
        break;
      case kAttrLocalPref:
        attrs.local_pref = body.u32();
        break;
      case kAttrCommunities: {
        if (len % 4 != 0) return false;
        attrs.communities.clear();
        while (body.remaining() >= 4) attrs.communities.push_back(body.u32());
        break;
      }
      default:
        // Unknown optional attributes are skipped (already consumed by sub).
        if (!(flags & kFlagOptional)) return false;
        break;
    }
    if (!body.ok()) return false;
  }
  return r.ok();
}

void encode_body(ByteWriter& w, const OpenMessage& m, const CodecOptions&) {
  w.u8(m.version);
  w.u16(m.my_as.value() > 0xffff ? kAsTrans
                                 : static_cast<std::uint16_t>(m.my_as.value()));
  w.u16(m.hold_time_s);
  w.addr(m.bgp_id);
  if (m.four_octet_as) {
    // Opt-params: one capabilities parameter with the 4-octet-AS capability.
    w.u8(8);  // opt params total length
    w.u8(kParamCapabilities);
    w.u8(6);  // param length
    w.u8(kCapFourOctetAs);
    w.u8(4);  // capability length
    w.u32(m.my_as.value());
  } else {
    w.u8(0);
  }
}

void encode_body(ByteWriter& w, const UpdateMessage& m, const CodecOptions& opts) {
  // Withdrawn routes.
  const std::size_t wr_len_pos = w.size();
  w.u16(0);
  for (const auto& p : m.withdrawn) write_prefix(w, p);
  w.patch_u16(wr_len_pos,
              static_cast<std::uint16_t>(w.size() - wr_len_pos - 2));

  // Path attributes (only when there is NLRI to describe).
  const std::size_t pa_len_pos = w.size();
  w.u16(0);
  if (!m.nlri.empty()) encode_attributes(w, m.attributes, opts);
  w.patch_u16(pa_len_pos, static_cast<std::uint16_t>(w.size() - pa_len_pos - 2));

  for (const auto& p : m.nlri) write_prefix(w, p);
}

void encode_body(ByteWriter& w, const NotificationMessage& m, const CodecOptions&) {
  w.u8(m.code);
  w.u8(m.subcode);
  w.bytes(m.data);
}

void encode_body(ByteWriter&, const KeepaliveMessage&, const CodecOptions&) {}

std::optional<Message> decode_open(ByteReader& r) {
  OpenMessage m;
  m.version = r.u8();
  std::uint16_t as2 = r.u16();
  m.hold_time_s = r.u16();
  m.bgp_id = r.addr();
  m.four_octet_as = false;
  std::uint32_t as4 = 0;
  const std::uint8_t opt_len = r.u8();
  ByteReader params = r.sub(opt_len);
  if (!r.ok()) return std::nullopt;
  while (params.remaining() > 0) {
    const std::uint8_t ptype = params.u8();
    const std::uint8_t plen = params.u8();
    ByteReader pr = params.sub(plen);
    if (!params.ok()) return std::nullopt;
    if (ptype != kParamCapabilities) continue;
    while (pr.remaining() > 0) {
      const std::uint8_t cap = pr.u8();
      const std::uint8_t clen = pr.u8();
      ByteReader cr = pr.sub(clen);
      if (!pr.ok()) return std::nullopt;
      if (cap == kCapFourOctetAs && clen == 4) {
        m.four_octet_as = true;
        as4 = cr.u32();
      }
    }
  }
  m.my_as = core::AsNumber{m.four_octet_as ? as4 : as2};
  if (!r.ok()) return std::nullopt;
  return m;
}

std::optional<Message> decode_update(ByteReader& r, const CodecOptions& opts) {
  UpdateMessage m;
  const std::uint16_t wr_len = r.u16();
  ByteReader wr = r.sub(wr_len);
  if (!r.ok()) return std::nullopt;
  while (wr.remaining() > 0) {
    const auto p = read_prefix(wr);
    if (!p) return std::nullopt;
    m.withdrawn.push_back(*p);
  }
  const std::uint16_t pa_len = r.u16();
  ByteReader pa = r.sub(pa_len);
  if (!r.ok()) return std::nullopt;
  if (pa_len > 0 && !decode_attributes(pa, m.attributes, opts)) return std::nullopt;
  while (r.remaining() > 0) {
    const auto p = read_prefix(r);
    if (!p) return std::nullopt;
    m.nlri.push_back(*p);
  }
  if (!m.nlri.empty() && pa_len == 0) return std::nullopt;  // RFC: attrs required
  return m;
}

}  // namespace

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kOpen: return "OPEN";
    case MessageType::kUpdate: return "UPDATE";
    case MessageType::kNotification: return "NOTIFICATION";
    case MessageType::kKeepalive: return "KEEPALIVE";
  }
  return "?";
}

MessageType type_of(const Message& m) {
  if (std::holds_alternative<OpenMessage>(m)) return MessageType::kOpen;
  if (std::holds_alternative<UpdateMessage>(m)) return MessageType::kUpdate;
  if (std::holds_alternative<NotificationMessage>(m)) return MessageType::kNotification;
  return MessageType::kKeepalive;
}

std::string UpdateMessage::to_string() const {
  std::string s = "UPDATE";
  if (!withdrawn.empty()) {
    s += " withdraw{";
    for (std::size_t i = 0; i < withdrawn.size(); ++i) {
      if (i > 0) s += ' ';
      s += withdrawn[i].to_string();
    }
    s += '}';
  }
  if (!nlri.empty()) {
    s += " announce{";
    for (std::size_t i = 0; i < nlri.size(); ++i) {
      if (i > 0) s += ' ';
      s += nlri[i].to_string();
    }
    s += "} ";
    s += attributes.to_string();
  }
  return s;
}

std::vector<std::byte> encode(const Message& message, const CodecOptions& opts) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  const std::size_t len_pos = w.size();
  w.u16(0);
  w.u8(static_cast<std::uint8_t>(type_of(message)));
  std::visit([&](const auto& m) { encode_body(w, m, opts); }, message);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

net::Bytes encode_shared(const Message& message, const CodecOptions& opts) {
  if (std::holds_alternative<KeepaliveMessage>(message)) {
    // KEEPALIVE is 19 fixed bytes regardless of codec options: one wire
    // image per thread serves every session for the whole run.
    thread_local const std::shared_ptr<const std::vector<std::byte>> kWire =
        std::make_shared<std::vector<std::byte>>(encode(Message{KeepaliveMessage{}}));
    return net::Bytes::adopt(kWire);
  }
  if (const auto* update = std::get_if<UpdateMessage>(&message)) {
    // Fan-out cache: a best-path change is advertised on every session
    // back-to-back with identical content. Tiny per-thread ring, keyed by
    // message value + codec width — encode once, share the buffer N ways.
    struct Entry {
      UpdateMessage msg;
      bool four_octet{false};
      std::shared_ptr<const std::vector<std::byte>> wire;
    };
    constexpr std::size_t kCacheSize = 8;
    thread_local Entry cache[kCacheSize];
    thread_local std::size_t next = 0;
    for (const auto& e : cache) {
      if (e.wire != nullptr && e.four_octet == opts.four_octet_as &&
          e.msg == *update) {
        return net::Bytes::adopt(e.wire);
      }
    }
    std::shared_ptr<const std::vector<std::byte>> wire =
        std::make_shared<std::vector<std::byte>>(encode(message, opts));
    cache[next] = Entry{*update, opts.four_octet_as, wire};
    next = (next + 1) % kCacheSize;
    return net::Bytes::adopt(std::move(wire));
  }
  // OPEN / NOTIFICATION: rare, connection-scoped, not worth caching.
  return net::Bytes{encode(message, opts)};
}

std::vector<UpdateMessage> split_update(const UpdateMessage& update,
                                        const CodecOptions& opts) {
  if (encode(update, opts).size() <= kMaxMessageSize) return {update};

  // Budget below the hard cap leaving room for header + attribute bundle.
  // Attributes only encode when NLRI is present, so measure the bundle via
  // a single-prefix probe message.
  UpdateMessage probe;
  probe.attributes = update.attributes;
  const std::size_t overhead = encode(probe, opts).size();
  std::size_t attr_overhead = overhead;
  if (!update.nlri.empty()) {
    UpdateMessage one;
    one.attributes = update.attributes;
    one.nlri.push_back(update.nlri.front());
    attr_overhead = encode(one, opts).size();
  }
  const std::size_t per_prefix = 5;  // 1 length byte + up to 4 prefix bytes
  const std::size_t room = kMaxMessageSize - std::max(overhead, attr_overhead);
  const std::size_t chunk = std::max<std::size_t>(1, room / per_prefix);

  std::vector<UpdateMessage> out;
  for (std::size_t i = 0; i < update.withdrawn.size(); i += chunk) {
    UpdateMessage m;
    const auto end = std::min(update.withdrawn.size(), i + chunk);
    m.withdrawn.assign(update.withdrawn.begin() + static_cast<long>(i),
                       update.withdrawn.begin() + static_cast<long>(end));
    out.push_back(std::move(m));
  }
  for (std::size_t i = 0; i < update.nlri.size(); i += chunk) {
    UpdateMessage m;
    m.attributes = update.attributes;
    const auto end = std::min(update.nlri.size(), i + chunk);
    m.nlri.assign(update.nlri.begin() + static_cast<long>(i),
                  update.nlri.begin() + static_cast<long>(end));
    out.push_back(std::move(m));
  }
  return out;
}

std::optional<Message> decode(const std::vector<std::byte>& wire,
                              const CodecOptions& opts) {
  ByteReader r{wire};
  for (int i = 0; i < 16; ++i) {
    if (r.u8() != 0xff) return std::nullopt;
  }
  const std::uint16_t len = r.u16();
  if (!r.ok() || len != wire.size() || len < 19) return std::nullopt;
  const std::uint8_t type = r.u8();
  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen:
      return decode_open(r);
    case MessageType::kUpdate:
      return decode_update(r, opts);
    case MessageType::kNotification: {
      NotificationMessage m;
      m.code = r.u8();
      m.subcode = r.u8();
      m.data = r.bytes(r.remaining());
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kKeepalive:
      if (r.remaining() != 0) return std::nullopt;
      return Message{KeepaliveMessage{}};
  }
  return std::nullopt;
}

}  // namespace bgpsdn::bgp
