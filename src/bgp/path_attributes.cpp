#include "bgp/path_attributes.hpp"

namespace bgpsdn::bgp {

const char* to_string(Origin o) {
  switch (o) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

AsPath AsPath::prepend(core::AsNumber as) const {
  std::vector<core::AsNumber> hops;
  hops.reserve(hops_.size() + 1);
  hops.push_back(as);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath{std::move(hops)};
}

bool AsPath::contains(core::AsNumber as) const {
  for (const auto h : hops_) {
    if (h == as) return true;
  }
  return false;
}

std::optional<core::AsNumber> AsPath::first() const {
  if (hops_.empty()) return std::nullopt;
  return hops_.front();
}

std::optional<core::AsNumber> AsPath::origin_as() const {
  if (hops_.empty()) return std::nullopt;
  return hops_.back();
}

std::string AsPath::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(hops_[i].value());
  }
  return s;
}

std::string PathAttributes::to_string() const {
  std::string s = "path=[" + as_path.to_string() + "] nh=" + next_hop.to_string() +
                  " origin=" + bgpsdn::bgp::to_string(origin);
  if (local_pref) s += " lp=" + std::to_string(*local_pref);
  if (med) s += " med=" + std::to_string(*med);
  return s;
}

}  // namespace bgpsdn::bgp
