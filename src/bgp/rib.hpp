// Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//
// Mirrors the Quagga/RFC 4271 structure: per-peer inbound tables feed the
// decision process, the Loc-RIB holds winners, and per-peer outbound tables
// record what was advertised so update generation can be delta-based.
//
// Each RIB supports two storage layouts behind one API (RibLayout):
//
//  - kCompact (default): flat open-addressing tables keyed by prefix whose
//    cells index into shared slabs. An Adj-RIB-In candidate costs 16 bytes
//    (session, attr-registry index, installed-at) because the prefix lives
//    in the table key, the peer tiebreak identity in a per-session side
//    table and the attribute bundle in the simulation-wide refcounted
//    AttrRegistry; Adj-RIB-Out keeps one row per prefix with a per-peer
//    column of attr indices shared across all peers of the router
//    (RibOutStore).
//  - kReference: the original node-based containers
//    (unordered_map<Prefix, map<SessionId, Route>> and friends), kept as the
//    equivalence-tested reference implementation — the same pattern as
//    FlowTable::lookup_linear() and the controller's shortest_paths().
//
// Both layouts expose identical iteration order and tie-break semantics:
// candidates visit in session-ascending order, and whole-table walks
// (for_each, prefixes, erase_session) are in sorted-prefix order. Every RIB
// tracks a deterministic peak-byte figure (core/mem_stats.hpp model) so
// layouts can be compared without touching OS RSS.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/attr_intern.hpp"
#include "bgp/path_attributes.hpp"
#include "core/ids.hpp"
#include "core/mem_stats.hpp"
#include "core/time.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

/// Storage layout of the RIB classes. kReference preserves the original
/// node-based containers for equivalence testing.
enum class RibLayout : std::uint8_t { kCompact, kReference };

const char* to_string(RibLayout layout);

/// One candidate route for one prefix. Attributes are an interned handle:
/// every route carrying the same bundle shares one canonical instance.
struct Route {
  net::Prefix prefix;
  AttrSetRef attributes;
  /// Session the route was learned from; invalid for locally-originated.
  core::SessionId learned_from{core::SessionId::invalid()};
  /// Decision-process tiebreak inputs.
  net::Ipv4Addr peer_bgp_id;
  net::Ipv4Addr peer_address;
  core::TimePoint installed_at;

  bool is_local() const { return !learned_from.is_valid(); }
};

namespace detail {

/// Open-addressing hash table keyed by prefix, the compact layouts' index
/// structure. Linear probing with backshift deletion (no tombstones), power-
/// of-two capacity, 70% max load. V supplies the free-slot sentinel via
/// V::empty()/is_empty(); a stored value must never equal the sentinel.
/// Iteration via scan() is in table order — callers that emit must go
/// through sorted_keys() instead.
template <typename V>
class PrefixTable {
 public:
  const V* find(const net::Prefix& key) const {
    if (size_ == 0) return nullptr;
    std::size_t i = slot_hash(key) & mask_;
    while (!cells_[i].value.is_empty()) {
      if (cells_[i].key == key) return &cells_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  V* find(const net::Prefix& key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Insert or overwrite. `value` must not be the empty sentinel.
  void put(const net::Prefix& key, V value) {
    if (cells_.empty() || (size_ + 1) * 10 > cells_.size() * 7) grow();
    std::size_t i = slot_hash(key) & mask_;
    while (!cells_[i].value.is_empty()) {
      if (cells_[i].key == key) {
        cells_[i].value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    cells_[i].key = key;
    cells_[i].value = value;
    ++size_;
  }

  bool erase(const net::Prefix& key) {
    if (size_ == 0) return false;
    std::size_t i = slot_hash(key) & mask_;
    while (!cells_[i].value.is_empty() && !(cells_[i].key == key)) {
      i = (i + 1) & mask_;
    }
    if (cells_[i].value.is_empty()) return false;
    // Backshift: pull later entries of the probe chain over the hole so
    // lookups never need tombstones.
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (cells_[j].value.is_empty()) break;
      const std::size_t ideal = slot_hash(cells_[j].key) & mask_;
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }

  /// Visit every occupied cell in table order (NOT deterministic across
  /// layouts; internal bookkeeping only, never for emission).
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (const auto& cell : cells_) {
      if (!cell.value.is_empty()) fn(cell.key, cell.value);
    }
  }

  /// Mutable scan: values by reference, same table order. Values may be
  /// rewritten but must stay non-empty; keys must not change.
  template <typename Fn>
  void scan_mut(Fn&& fn) {
    for (auto& cell : cells_) {
      if (!cell.value.is_empty()) fn(cell.key, cell.value);
    }
  }

  std::vector<net::Prefix> sorted_keys() const {
    std::vector<net::Prefix> keys;
    keys.reserve(size_);
    scan([&](const net::Prefix& key, const V&) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::uint64_t slot_bytes() const {
    return static_cast<std::uint64_t>(cells_.size()) * sizeof(Cell);
  }

 private:
  struct Cell {
    net::Prefix key{};
    V value{V::empty()};
  };

  static std::size_t slot_hash(const net::Prefix& p) {
    // splitmix64 finalizer: std::hash<Prefix> is identity-like and the
    // allocator hands out prefixes with zero low network bits, which would
    // cluster catastrophically under power-of-two masking.
    std::uint64_t x = (std::uint64_t{p.network().bits()} << 8) | p.length();
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.empty() ? 16 : old.size() * 2, Cell{});
    mask_ = cells_.size() - 1;
    size_ = 0;
    for (const auto& cell : old) {
      if (cell.value.is_empty()) continue;
      std::size_t i = slot_hash(cell.key) & mask_;
      while (!cells_[i].value.is_empty()) i = (i + 1) & mask_;
      cells_[i] = cell;
      ++size_;
    }
  }

  std::vector<Cell> cells_;
  std::size_t mask_{0};
  std::size_t size_{0};
};

/// Peer identity shared by every stored entry learned from one session,
/// refcounted by the number of entries referencing it.
struct SessionInfo {
  std::uint32_t session;
  std::uint32_t bgp_id;
  std::uint32_t address;
  std::uint32_t routes;
};

/// Session-ascending side table of SessionInfo; linear-scanned via
/// lower_bound (routers have few peers).
class SessionTable {
 public:
  SessionInfo* find(std::uint32_t session) {
    return const_cast<SessionInfo*>(std::as_const(*this).find(session));
  }
  const SessionInfo* find(std::uint32_t session) const;

  /// Count one more entry for `session`, inserting it and refreshing the
  /// identity fields (peer identity is constant per session in practice;
  /// last-writer-wins keeps the table in step with the newest route).
  void add(std::uint32_t session, std::uint32_t bgp_id, std::uint32_t address);
  /// Count one entry less; the session is removed at zero.
  void drop(std::uint32_t session);

  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(infos_.size()) * sizeof(SessionInfo);
  }

 private:
  std::vector<SessionInfo> infos_;
};

}  // namespace detail

/// Refcounted attribute-handle registry: compact-layout RIBs store 4-byte
/// indices into here instead of 16-byte AttrSetRef handles per entry.
/// Deduplicated by canonical-bundle address (interning makes pointer
/// identity equal value identity within a trial thread).
///
/// One registry is shared by every RIB of a simulation — the Experiment
/// wires a single instance through all routers and the speaker — so a
/// bundle referenced from thousands of RIB entries pays one handle entry
/// network-wide. Its footprint therefore scales with distinct bundles (like
/// the intern pool), not with (prefix x peer) entries, and is accounted by
/// its owner as mem.attr_registry, never inside RIB peak bytes. Standalone
/// RIBs fall back to a private instance.
///
/// The dedup index is open addressing over entry ids: a pointer-keyed
/// unordered_map node costs ~7x the 4-byte slot. Pointer values hash the
/// probe order, which is invisible to callers; slot counts depend only on
/// the acquire/release sequence, so bytes() stays deterministic.
class AttrRegistry {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Index for `ref`, refcount +1.
  std::uint32_t acquire(const AttrSetRef& ref);
  /// Refcount +1 on an index already held.
  void retain(std::uint32_t index) { ++entries_[index].refs; }
  /// Refcount -1; frees the slot (and the bundle reference) at zero.
  void release(std::uint32_t index);

  const AttrSetRef& at(std::uint32_t index) const {
    return entries_[index].ref;
  }

  /// Live (referenced) entries.
  std::size_t size() const { return live_; }
  /// Deterministic footprint (core/mem_stats.hpp model): the entry slab
  /// plus the open-addressing id index.
  std::uint64_t bytes() const;

 private:
  struct Entry {
    AttrSetRef ref{};
    std::uint32_t refs{0};
  };

  void grow();

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  /// Open-addressing dedup index: slots hold entry ids (kNone = empty),
  /// keyed by the canonical bundle address of the entry's ref. Linear
  /// probing with backshift deletion, 70% max load.
  std::vector<std::uint32_t> slots_;
  std::size_t slot_mask_{0};
  std::size_t live_{0};
};

using AttrRegistryRef = std::shared_ptr<AttrRegistry>;

/// Inbound routes, indexed prefix-first so the decision process can see all
/// candidates for a prefix at once. Candidates for a prefix are kept in
/// session-ascending order in both layouts, so iteration (and thus any
/// residual tie behaviour) is deterministic and layout-independent.
class AdjRibIn {
 public:
  explicit AdjRibIn(RibLayout layout = RibLayout::kCompact,
                    AttrRegistryRef attrs = nullptr);

  /// Insert/replace the route from one peer (implicit withdraw semantics).
  /// Returns true when the stored entry actually changed — new candidate,
  /// different attributes, different installed-at, or different peer
  /// identity — so callers can skip the decision process otherwise.
  bool put(const Route& route);

  /// Remove the route for (prefix, session). Returns true if present.
  bool erase(const net::Prefix& prefix, core::SessionId session);

  /// Drop everything learned from a session (session reset). Returns the
  /// affected prefixes in sorted order.
  std::vector<net::Prefix> erase_session(core::SessionId session);

  /// The stored route, or nullptr. In the compact layout the pointer refers
  /// to a scratch slot valid until the next AdjRibIn call.
  const Route* find(const net::Prefix& prefix, core::SessionId session) const;

  /// All candidates for one prefix, session-ascending. Compact-layout
  /// pointers refer to scratch storage valid until the next call.
  std::vector<const Route*> candidates(const net::Prefix& prefix) const;

  /// Allocation-light visitation of the candidates for one prefix, in the
  /// same deterministic (session-ascending) order as candidates(). The
  /// decision process runs per prefix on every received update; the Route&
  /// handed to `fn` is only valid for the duration of the call.
  template <typename Fn>
  void for_each_candidate(const net::Prefix& prefix, Fn&& fn) const {
    if (layout_ == RibLayout::kReference) {
      const auto it = by_prefix_.find(prefix);
      if (it == by_prefix_.end()) return;
      for (const auto& [sid, route] : it->second) fn(route);
      return;
    }
    const InSpan* span = spans_.find(prefix);
    if (span == nullptr) return;
    Route r;
    r.prefix = prefix;
    for (std::uint16_t i = 0; i < span->size; ++i) {
      materialize(slab_[span->offset + i], r);
      fn(static_cast<const Route&>(r));
    }
  }

  /// The registry this RIB stores attribute handles in (shared or private).
  const AttrRegistryRef& attr_registry() const { return attrs_; }

  std::size_t route_count() const;
  /// All prefixes with at least one candidate, sorted.
  std::vector<net::Prefix> prefixes() const;

  RibLayout layout() const { return layout_; }
  /// Deterministic high-water footprint (core/mem_stats.hpp model).
  std::uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  /// Compact candidate: 16 bytes. The prefix is the table key, the peer
  /// tiebreak identity lives in the per-session side table, the attribute
  /// bundle in the refcounted side table.
  struct Candidate {
    std::uint32_t session;
    std::uint32_t attr;
    std::int64_t installed_ns;
  };
  /// Per-prefix slice of the candidate slab; capacity is a power of two.
  struct InSpan {
    std::uint32_t offset{0};
    std::uint16_t size{0};
    std::uint16_t capacity{0};
    static InSpan empty() { return {}; }
    bool is_empty() const { return capacity == 0; }
  };

  bool put_compact(const Route& route);
  bool put_reference(const Route& route);
  bool erase_compact(const net::Prefix& prefix, std::uint32_t session);
  std::uint32_t alloc_span(std::uint16_t capacity);
  void free_span(std::uint32_t offset, std::uint16_t capacity);
  /// Rebuild the slab tightly (spans packed, free lists emptied) once dead
  /// span slots from the grow-by-doubling churn exceed a third of it.
  void maybe_defrag();
  void materialize(const Candidate& c, Route& out) const;
  std::uint64_t current_bytes() const;
  void note_usage();

  RibLayout layout_;

  // --- compact layout ----------------------------------------------------
  detail::PrefixTable<InSpan> spans_;
  std::vector<Candidate> slab_;
  /// Free spans by log2(capacity).
  std::vector<std::vector<std::uint32_t>> free_spans_;
  /// Total slots sitting on free_spans_ (the defrag trigger).
  std::size_t free_slots_{0};
  AttrRegistryRef attrs_;
  detail::SessionTable sessions_;
  std::size_t count_{0};
  mutable Route scratch_;
  mutable std::vector<Route> scratch_candidates_;

  // --- reference layout --------------------------------------------------
  std::unordered_map<net::Prefix, std::map<core::SessionId, Route>> by_prefix_;

  std::uint64_t peak_bytes_{0};
};

/// The selected best route per prefix.
class LocRib {
 public:
  explicit LocRib(RibLayout layout = RibLayout::kCompact,
                  AttrRegistryRef attrs = nullptr);

  /// Install/replace the best route. Returns true if this changed the entry.
  bool install(const Route& route);

  /// Remove the entry. Returns true if present.
  bool remove(const net::Prefix& prefix);

  /// The winner, or nullptr. In the compact layout the pointer refers to a
  /// scratch slot valid until the next LocRib call.
  const Route* find(const net::Prefix& prefix) const;
  std::size_t size() const;
  /// Installed prefixes, sorted.
  std::vector<net::Prefix> prefixes() const;

  /// Visit every installed route in sorted-prefix order (both layouts). The
  /// Route& is only valid for the duration of the call.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& prefix : prefixes()) fn(*find(prefix));
  }

  /// Bumped on every change; convergence checks compare generations.
  std::uint64_t generation() const { return generation_; }

  RibLayout layout() const { return layout_; }
  std::uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  /// Compact winner: 16 bytes + the 8-byte prefix key in the table cell.
  /// The peer tiebreak identity lives in the per-session side table, the
  /// attribute bundle in the shared registry.
  struct LocEntry {
    std::uint32_t attr{AttrRegistry::kNone};
    std::uint32_t session{0};
    std::int64_t installed_ns{0};
    static LocEntry empty() { return {}; }
    bool is_empty() const { return attr == AttrRegistry::kNone; }
  };

  std::uint64_t current_bytes() const;
  void note_usage();

  RibLayout layout_;
  detail::PrefixTable<LocEntry> table_;
  AttrRegistryRef attrs_;
  detail::SessionTable sessions_;
  mutable Route scratch_;
  std::unordered_map<net::Prefix, Route> routes_;
  std::uint64_t generation_{0};
  std::uint64_t peak_bytes_{0};
};

/// Shared advertised-state store for all Adj-RIBs-Out of one router. The
/// compact layout keeps one row per prefix holding a per-peer column of
/// 4-byte attr-table indices: N peers cost 4N bytes per advertised prefix
/// plus one shared table cell, instead of N hash nodes. Each AdjRibOut
/// facade owns one column.
class RibOutStore {
 public:
  explicit RibOutStore(RibLayout layout = RibLayout::kCompact,
                       AttrRegistryRef attrs = nullptr);

  RibLayout layout() const { return layout_; }
  /// Register one more peer; returns its column ordinal.
  std::uint16_t add_column();
  std::uint16_t columns() const { return columns_; }

  bool advertise(std::uint16_t col, const net::Prefix& prefix,
                 const AttrSetRef& attrs);
  bool withdraw(std::uint16_t col, const net::Prefix& prefix);
  const AttrSetRef* advertised(std::uint16_t col,
                               const net::Prefix& prefix) const;
  std::size_t size(std::uint16_t col) const;
  void clear(std::uint16_t col);
  /// Advertised prefixes of one column, sorted.
  std::vector<net::Prefix> prefixes(std::uint16_t col) const;

  std::uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  static constexpr std::uint32_t kNone = AttrRegistry::kNone;

  /// Row of per-column attr indices in the slab; width is the column count
  /// at allocation (rows are widened lazily when peers are added late).
  struct OutSpan {
    std::uint32_t offset{0};
    std::uint32_t width{0};
    static OutSpan empty() { return {}; }
    bool is_empty() const { return width == 0; }
  };

  std::uint32_t alloc_row(std::uint32_t width);
  OutSpan* widen_row(OutSpan* span);
  void maybe_drop_row(const net::Prefix& prefix);
  std::uint64_t current_bytes() const;
  void note_usage();

  RibLayout layout_;
  std::uint16_t columns_{0};

  detail::PrefixTable<OutSpan> spans_;
  std::vector<std::uint32_t> slab_;
  /// Free rows by width (widths vary only when peers are added mid-run).
  std::map<std::uint32_t, std::vector<std::uint32_t>> free_rows_;
  AttrRegistryRef attrs_;
  std::vector<std::size_t> col_size_;

  std::vector<std::unordered_map<net::Prefix, AttrSetRef>> ref_cols_;

  std::uint64_t peak_bytes_{0};
};

/// What has been advertised to one peer, for delta-based update generation.
/// A thin facade over one RibOutStore column: routers hand every peer a
/// column of their shared store; standalone uses (speaker slots, tests) own
/// a private single-column store.
class AdjRibOut {
 public:
  AdjRibOut() : AdjRibOut(RibLayout::kCompact) {}
  explicit AdjRibOut(RibLayout layout, AttrRegistryRef attrs = nullptr)
      : owned_{std::make_unique<RibOutStore>(layout, std::move(attrs))},
        store_{owned_.get()},
        column_{store_->add_column()} {}
  explicit AdjRibOut(RibOutStore& store)
      : store_{&store}, column_{store.add_column()} {}

  AdjRibOut(AdjRibOut&&) = default;
  AdjRibOut& operator=(AdjRibOut&&) = default;

  /// Record an advertisement; returns false if identical attributes were
  /// already advertised (update suppressed).
  bool advertise(const net::Prefix& prefix, const AttrSetRef& attrs) {
    return store_->advertise(column_, prefix, attrs);
  }

  /// Record a withdrawal; returns false if nothing was advertised.
  bool withdraw(const net::Prefix& prefix) {
    return store_->withdraw(column_, prefix);
  }

  /// The advertised bundle, or nullptr. The pointer is valid until the next
  /// mutation of any column of the owning store.
  const AttrSetRef* advertised(const net::Prefix& prefix) const {
    return store_->advertised(column_, prefix);
  }

  std::size_t size() const { return store_->size(column_); }
  void clear() { store_->clear(column_); }
  /// Advertised prefixes, sorted.
  std::vector<net::Prefix> prefixes() const {
    return store_->prefixes(column_);
  }

  /// Peak bytes of the private store; zero for store-backed facades (the
  /// shared store is accounted once by its owner).
  std::uint64_t peak_bytes() const {
    return owned_ != nullptr ? owned_->peak_bytes() : 0;
  }

 private:
  std::unique_ptr<RibOutStore> owned_;
  RibOutStore* store_;
  std::uint16_t column_;
};

}  // namespace bgpsdn::bgp
