// Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//
// Mirrors the Quagga/RFC 4271 structure: per-peer inbound tables feed the
// decision process, the Loc-RIB holds winners, and per-peer outbound tables
// record what was advertised so update generation can be delta-based.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "bgp/attr_intern.hpp"
#include "bgp/path_attributes.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

/// One candidate route for one prefix. Attributes are an interned handle:
/// every route carrying the same bundle shares one canonical instance.
struct Route {
  net::Prefix prefix;
  AttrSetRef attributes;
  /// Session the route was learned from; invalid for locally-originated.
  core::SessionId learned_from{core::SessionId::invalid()};
  /// Decision-process tiebreak inputs.
  net::Ipv4Addr peer_bgp_id;
  net::Ipv4Addr peer_address;
  core::TimePoint installed_at;

  bool is_local() const { return !learned_from.is_valid(); }
};

/// Inbound routes, indexed prefix-first so the decision process can see all
/// candidates for a prefix at once. Keyed by session within a prefix with an
/// ordered map so iteration order (and thus any residual tie behaviour) is
/// deterministic.
class AdjRibIn {
 public:
  /// Insert/replace the route from one peer (implicit withdraw semantics).
  void put(const Route& route);

  /// Remove the route for (prefix, session). Returns true if present.
  bool erase(const net::Prefix& prefix, core::SessionId session);

  /// Drop everything learned from a session (session reset). Returns the
  /// affected prefixes.
  std::vector<net::Prefix> erase_session(core::SessionId session);

  const Route* find(const net::Prefix& prefix, core::SessionId session) const;

  /// All candidates for one prefix, deterministic order.
  std::vector<const Route*> candidates(const net::Prefix& prefix) const;

  /// Allocation-free visitation of the candidates for one prefix, in the
  /// same deterministic (session-ascending) order as candidates(). The
  /// decision process runs per prefix on every received update; this avoids
  /// the per-invocation vector the old interface forced.
  template <typename Fn>
  void for_each_candidate(const net::Prefix& prefix, Fn&& fn) const {
    const auto it = by_prefix_.find(prefix);
    if (it == by_prefix_.end()) return;
    for (const auto& [sid, route] : it->second) fn(route);
  }

  std::size_t route_count() const;
  std::vector<net::Prefix> prefixes() const;

 private:
  std::unordered_map<net::Prefix, std::map<core::SessionId, Route>> by_prefix_;
};

/// The selected best route per prefix.
class LocRib {
 public:
  /// Install/replace the best route. Returns true if this changed the entry.
  bool install(const Route& route);

  /// Remove the entry. Returns true if present.
  bool remove(const net::Prefix& prefix);

  const Route* find(const net::Prefix& prefix) const;
  std::size_t size() const { return routes_.size(); }
  std::vector<net::Prefix> prefixes() const;
  const std::unordered_map<net::Prefix, Route>& all() const { return routes_; }

  /// Bumped on every change; convergence checks compare generations.
  std::uint64_t generation() const { return generation_; }

 private:
  std::unordered_map<net::Prefix, Route> routes_;
  std::uint64_t generation_{0};
};

/// What has been advertised to one peer, for delta-based update generation.
/// Stores interned attribute handles: a full-table advertisement holds one
/// canonical bundle per distinct attribute set, not one copy per prefix.
class AdjRibOut {
 public:
  /// Record an advertisement; returns false if identical attributes were
  /// already advertised (update suppressed).
  bool advertise(const net::Prefix& prefix, const AttrSetRef& attrs);

  /// Record a withdrawal; returns false if nothing was advertised.
  bool withdraw(const net::Prefix& prefix);

  const AttrSetRef* advertised(const net::Prefix& prefix) const;
  std::size_t size() const { return advertised_.size(); }
  void clear() { advertised_.clear(); }
  std::vector<net::Prefix> prefixes() const;

 private:
  std::unordered_map<net::Prefix, AttrSetRef> advertised_;
};

}  // namespace bgpsdn::bgp
