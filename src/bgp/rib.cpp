#include "bgp/rib.hpp"

#include <algorithm>
#include <cassert>

namespace bgpsdn::bgp {

const char* to_string(RibLayout layout) {
  switch (layout) {
    case RibLayout::kCompact:
      return "compact";
    case RibLayout::kReference:
      return "reference";
  }
  return "?";
}

namespace detail {

const SessionInfo* SessionTable::find(std::uint32_t session) const {
  const auto it = std::lower_bound(
      infos_.begin(), infos_.end(), session,
      [](const SessionInfo& s, std::uint32_t v) { return s.session < v; });
  if (it == infos_.end() || it->session != session) return nullptr;
  return &*it;
}

void SessionTable::add(std::uint32_t session, std::uint32_t bgp_id,
                       std::uint32_t address) {
  const auto it = std::lower_bound(
      infos_.begin(), infos_.end(), session,
      [](const SessionInfo& s, std::uint32_t v) { return s.session < v; });
  if (it != infos_.end() && it->session == session) {
    it->bgp_id = bgp_id;
    it->address = address;
    ++it->routes;
    return;
  }
  infos_.insert(it, SessionInfo{session, bgp_id, address, 1});
}

void SessionTable::drop(std::uint32_t session) {
  const auto it = std::lower_bound(
      infos_.begin(), infos_.end(), session,
      [](const SessionInfo& s, std::uint32_t v) { return s.session < v; });
  assert(it != infos_.end() && it->session == session);
  if (--it->routes == 0) infos_.erase(it);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// AttrRegistry

namespace {

std::size_t attr_slot_hash(const PathAttributes* key) {
  // splitmix64 finalizer over the canonical bundle address. Heap addresses
  // differ across runs, which only steers the probe order — slot counts and
  // lookup results depend on the acquire/release sequence alone.
  auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(key));
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

}  // namespace

std::uint32_t AttrRegistry::acquire(const AttrSetRef& ref) {
  // Interning makes the canonical bundle address a value key within one
  // trial thread, so dedup is a pointer probe.
  const PathAttributes* key = &ref.get();
  if (slots_.empty() || (live_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t i = attr_slot_hash(key) & slot_mask_;
  while (slots_[i] != kNone) {
    Entry& e = entries_[slots_[i]];
    if (&e.ref.get() == key) {
      ++e.refs;
      return slots_[i];
    }
    i = (i + 1) & slot_mask_;
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  entries_[index].ref = ref;
  entries_[index].refs = 1;
  slots_[i] = index;
  ++live_;
  return index;
}

void AttrRegistry::release(std::uint32_t index) {
  Entry& e = entries_[index];
  if (--e.refs > 0) return;
  const PathAttributes* key = &e.ref.get();
  std::size_t i = attr_slot_hash(key) & slot_mask_;
  while (slots_[i] != index) i = (i + 1) & slot_mask_;
  // Backshift: pull later entries of the probe chain over the hole so
  // lookups never need tombstones.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & slot_mask_;
    if (slots_[j] == kNone) break;
    const std::size_t ideal =
        attr_slot_hash(&entries_[slots_[j]].ref.get()) & slot_mask_;
    if (((j - ideal) & slot_mask_) >= ((j - hole) & slot_mask_)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole] = kNone;
  e.ref = AttrSetRef{};
  free_.push_back(index);
  --live_;
}

void AttrRegistry::grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, kNone);
  slot_mask_ = slots_.size() - 1;
  for (const std::uint32_t id : old) {
    if (id == kNone) continue;
    std::size_t i = attr_slot_hash(&entries_[id].ref.get()) & slot_mask_;
    while (slots_[i] != kNone) i = (i + 1) & slot_mask_;
    slots_[i] = id;
  }
}

std::uint64_t AttrRegistry::bytes() const {
  return static_cast<std::uint64_t>(entries_.size()) * sizeof(Entry) +
         static_cast<std::uint64_t>(free_.size()) * sizeof(std::uint32_t) +
         static_cast<std::uint64_t>(slots_.size()) * sizeof(std::uint32_t);
}

// ---------------------------------------------------------------------------
// AdjRibIn

AdjRibIn::AdjRibIn(RibLayout layout, AttrRegistryRef attrs)
    : layout_{layout},
      attrs_{attrs != nullptr ? std::move(attrs)
                              : std::make_shared<AttrRegistry>()} {}

bool AdjRibIn::put(const Route& route) {
  return layout_ == RibLayout::kReference ? put_reference(route)
                                          : put_compact(route);
}

bool AdjRibIn::put_reference(const Route& route) {
  auto& slot = by_prefix_[route.prefix];
  const auto it = slot.find(route.learned_from);
  bool changed = true;
  if (it != slot.end()) {
    const Route& old = it->second;
    changed = !(old.attributes == route.attributes &&
                old.installed_at == route.installed_at &&
                old.peer_bgp_id == route.peer_bgp_id &&
                old.peer_address == route.peer_address);
    it->second = route;
  } else {
    slot.emplace(route.learned_from, route);
    ++count_;
  }
  note_usage();
  return changed;
}

// lint: hotpath(compact-RIB insert runs once per received route; the slab
// layout exists precisely so this path never touches the heap per call)
bool AdjRibIn::put_compact(const Route& route) {
  const std::uint32_t sid = route.learned_from.value();
  const std::uint32_t bgp_id = route.peer_bgp_id.bits();
  const std::uint32_t address = route.peer_address.bits();
  const std::int64_t installed = route.installed_at.nanos_since_origin();

  InSpan* span = spans_.find(route.prefix);
  if (span == nullptr) {
    InSpan fresh;
    fresh.capacity = 1;
    fresh.size = 0;
    fresh.offset = alloc_span(1);
    spans_.put(route.prefix, fresh);
    span = spans_.find(route.prefix);
  }

  // Candidates are kept session-ascending so iteration order matches the
  // reference std::map<SessionId, Route>.
  std::uint32_t lo = 0;
  std::uint32_t hi = span->size;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (slab_[span->offset + mid].session < sid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }

  if (lo < span->size && slab_[span->offset + lo].session == sid) {
    Candidate& c = slab_[span->offset + lo];
    detail::SessionInfo* info = sessions_.find(sid);
    const bool same = attrs_->at(c.attr) == route.attributes &&
                      c.installed_ns == installed && info->bgp_id == bgp_id &&
                      info->address == address;
    if (same) return false;
    const std::uint32_t index = attrs_->acquire(route.attributes);
    attrs_->release(c.attr);
    c.attr = index;
    c.installed_ns = installed;
    info->bgp_id = bgp_id;
    info->address = address;
    note_usage();
    return true;
  }

  if (span->size == span->capacity) {
    const auto capacity = static_cast<std::uint16_t>(span->capacity * 2);
    const std::uint32_t offset = alloc_span(capacity);
    std::memcpy(&slab_[offset], &slab_[span->offset],
                span->size * sizeof(Candidate));
    free_span(span->offset, span->capacity);
    span->offset = offset;
    span->capacity = capacity;
  }
  Candidate* base = slab_.data() + span->offset;
  std::memmove(base + lo + 1, base + lo,
               (span->size - lo) * sizeof(Candidate));
  base[lo] = Candidate{sid, attrs_->acquire(route.attributes), installed};
  ++span->size;
  ++count_;
  sessions_.add(sid, bgp_id, address);
  maybe_defrag();
  note_usage();
  return true;
}

bool AdjRibIn::erase(const net::Prefix& prefix, core::SessionId session) {
  if (layout_ == RibLayout::kReference) {
    const auto it = by_prefix_.find(prefix);
    if (it == by_prefix_.end()) return false;
    const bool erased = it->second.erase(session) > 0;
    if (erased) --count_;
    if (it->second.empty()) by_prefix_.erase(it);
    return erased;
  }
  const bool erased = erase_compact(prefix, session.value());
  if (erased) maybe_defrag();
  return erased;
}

// lint: hotpath(compact-RIB erase runs once per withdrawal/session drop;
// pure span bookkeeping, no per-call heap traffic)
bool AdjRibIn::erase_compact(const net::Prefix& prefix,
                             std::uint32_t session) {
  InSpan* span = spans_.find(prefix);
  if (span == nullptr) return false;
  Candidate* base = slab_.data() + span->offset;
  std::uint32_t lo = 0;
  std::uint32_t hi = span->size;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (base[mid].session < session) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == span->size || base[lo].session != session) return false;
  attrs_->release(base[lo].attr);
  std::memmove(base + lo, base + lo + 1,
               (span->size - lo - 1) * sizeof(Candidate));
  --span->size;
  --count_;
  sessions_.drop(session);
  if (span->size == 0) {
    free_span(span->offset, span->capacity);
    spans_.erase(prefix);
  }
  return true;
}

std::vector<net::Prefix> AdjRibIn::erase_session(core::SessionId session) {
  std::vector<net::Prefix> affected;
  if (layout_ == RibLayout::kReference) {
    for (auto it = by_prefix_.begin(); it != by_prefix_.end();) {
      if (it->second.erase(session) > 0) {
        --count_;
        affected.push_back(it->first);
      }
      if (it->second.empty()) {
        it = by_prefix_.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(affected.begin(), affected.end());
    return affected;
  }
  const std::uint32_t sid = session.value();
  if (sessions_.find(sid) == nullptr) return affected;
  spans_.scan([&](const net::Prefix& prefix, const InSpan& span) {
    for (std::uint32_t i = 0; i < span.size; ++i) {
      if (slab_[span.offset + i].session == sid) {
        affected.push_back(prefix);
        return;
      }
    }
  });
  std::sort(affected.begin(), affected.end());
  for (const auto& prefix : affected) erase_compact(prefix, sid);
  maybe_defrag();
  return affected;
}

const Route* AdjRibIn::find(const net::Prefix& prefix,
                            core::SessionId session) const {
  if (layout_ == RibLayout::kReference) {
    const auto it = by_prefix_.find(prefix);
    if (it == by_prefix_.end()) return nullptr;
    const auto rit = it->second.find(session);
    return rit == it->second.end() ? nullptr : &rit->second;
  }
  const InSpan* span = spans_.find(prefix);
  if (span == nullptr) return nullptr;
  const std::uint32_t sid = session.value();
  for (std::uint32_t i = 0; i < span->size; ++i) {
    const Candidate& c = slab_[span->offset + i];
    if (c.session == sid) {
      scratch_.prefix = prefix;
      materialize(c, scratch_);
      return &scratch_;
    }
  }
  return nullptr;
}

std::vector<const Route*> AdjRibIn::candidates(
    const net::Prefix& prefix) const {
  std::vector<const Route*> out;
  if (layout_ == RibLayout::kReference) {
    const auto it = by_prefix_.find(prefix);
    if (it == by_prefix_.end()) return out;
    out.reserve(it->second.size());
    for (const auto& [sid, route] : it->second) out.push_back(&route);
    return out;
  }
  const InSpan* span = spans_.find(prefix);
  if (span == nullptr) return out;
  scratch_candidates_.assign(span->size, Route{});
  for (std::uint32_t i = 0; i < span->size; ++i) {
    scratch_candidates_[i].prefix = prefix;
    materialize(slab_[span->offset + i], scratch_candidates_[i]);
  }
  out.reserve(span->size);
  for (const auto& route : scratch_candidates_) out.push_back(&route);
  return out;
}

std::size_t AdjRibIn::route_count() const { return count_; }

std::vector<net::Prefix> AdjRibIn::prefixes() const {
  if (layout_ == RibLayout::kReference) {
    std::vector<net::Prefix> out;
    out.reserve(by_prefix_.size());
    for (const auto& [prefix, slot] : by_prefix_) out.push_back(prefix);
    std::sort(out.begin(), out.end());
    return out;
  }
  return spans_.sorted_keys();
}

std::uint32_t AdjRibIn::alloc_span(std::uint16_t capacity) {
  std::uint32_t log2 = 0;
  while ((std::uint32_t{1} << log2) < capacity) ++log2;
  if (log2 < free_spans_.size() && !free_spans_[log2].empty()) {
    const std::uint32_t offset = free_spans_[log2].back();
    free_spans_[log2].pop_back();
    free_slots_ -= std::size_t{1} << log2;
    return offset;
  }
  const auto offset = static_cast<std::uint32_t>(slab_.size());
  slab_.resize(slab_.size() + capacity);
  return offset;
}

void AdjRibIn::free_span(std::uint32_t offset, std::uint16_t capacity) {
  std::uint32_t log2 = 0;
  while ((std::uint32_t{1} << log2) < capacity) ++log2;
  if (free_spans_.size() <= log2) free_spans_.resize(log2 + 1);
  free_spans_[log2].push_back(offset);
  free_slots_ += std::size_t{1} << log2;
}

void AdjRibIn::maybe_defrag() {
  // The grow-by-doubling churn strands small spans on the free lists (every
  // span that outgrew capacity 1 or 2 leaves its old slots behind, and no
  // later allocation wants them once all prefixes have spans). Rebuilding
  // packs live spans tightly — span capacities stay power-of-two, only the
  // dead slots go — and is amortized by the one-third trigger.
  if (slab_.size() < 256 || free_slots_ * 3 < slab_.size()) return;
  std::vector<Candidate> packed;
  packed.reserve(slab_.size() - free_slots_);
  spans_.scan_mut([&](const net::Prefix&, InSpan& span) {
    const auto offset = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), slab_.begin() + span.offset,
                  slab_.begin() + span.offset + span.size);
    packed.resize(packed.size() + (span.capacity - span.size));
    span.offset = offset;
  });
  slab_ = std::move(packed);
  for (auto& bucket : free_spans_) bucket.clear();
  free_slots_ = 0;
}

void AdjRibIn::materialize(const Candidate& c, Route& out) const {
  const detail::SessionInfo* info = sessions_.find(c.session);
  out.attributes = attrs_->at(c.attr);
  out.learned_from = core::SessionId{c.session};
  out.peer_bgp_id = net::Ipv4Addr{info->bgp_id};
  out.peer_address = net::Ipv4Addr{info->address};
  out.installed_at = core::TimePoint::from_nanos(c.installed_ns);
}

std::uint64_t AdjRibIn::current_bytes() const {
  if (layout_ == RibLayout::kReference) {
    return count_ * core::rb_node_bytes(
                        sizeof(std::pair<const core::SessionId, Route>)) +
           by_prefix_.size() *
               core::hash_node_bytes(
                   sizeof(std::pair<const net::Prefix,
                                    std::map<core::SessionId, Route>>)) +
           core::hash_buckets_bytes(by_prefix_.size());
  }
  // Slab extent (live spans + not-yet-defragged free spans), never vector
  // capacity: growth-doubling slack is an artifact of std::vector, a real
  // slab allocator would chunk. The shared attr registry is accounted by
  // its owner (mem.attr_registry).
  return spans_.slot_bytes() +
         static_cast<std::uint64_t>(slab_.size()) * sizeof(Candidate) +
         sessions_.bytes();
}

void AdjRibIn::note_usage() {
  peak_bytes_ = std::max(peak_bytes_, current_bytes());
}

// ---------------------------------------------------------------------------
// LocRib

LocRib::LocRib(RibLayout layout, AttrRegistryRef attrs)
    : layout_{layout},
      attrs_{attrs != nullptr ? std::move(attrs)
                              : std::make_shared<AttrRegistry>()} {}

bool LocRib::install(const Route& route) {
  if (layout_ == RibLayout::kReference) {
    const auto it = routes_.find(route.prefix);
    if (it != routes_.end() && it->second.attributes == route.attributes &&
        it->second.learned_from == route.learned_from) {
      return false;
    }
    routes_[route.prefix] = route;
    ++generation_;
    note_usage();
    return true;
  }
  LocEntry* entry = table_.find(route.prefix);
  const std::uint32_t sid = route.learned_from.value();
  if (entry != nullptr && attrs_->at(entry->attr) == route.attributes &&
      entry->session == sid) {
    return false;
  }
  const std::uint32_t index = attrs_->acquire(route.attributes);
  const std::uint32_t bgp_id = route.peer_bgp_id.bits();
  const std::uint32_t address = route.peer_address.bits();
  if (entry != nullptr) {
    attrs_->release(entry->attr);
    if (entry->session != sid) {
      sessions_.drop(entry->session);
      sessions_.add(sid, bgp_id, address);
    } else {
      detail::SessionInfo* info = sessions_.find(sid);
      info->bgp_id = bgp_id;
      info->address = address;
    }
    entry->attr = index;
    entry->session = sid;
    entry->installed_ns = route.installed_at.nanos_since_origin();
  } else {
    sessions_.add(sid, bgp_id, address);
    LocEntry fresh;
    fresh.attr = index;
    fresh.session = sid;
    fresh.installed_ns = route.installed_at.nanos_since_origin();
    table_.put(route.prefix, fresh);
  }
  ++generation_;
  note_usage();
  return true;
}

bool LocRib::remove(const net::Prefix& prefix) {
  if (layout_ == RibLayout::kReference) {
    if (routes_.erase(prefix) == 0) return false;
    ++generation_;
    return true;
  }
  LocEntry* entry = table_.find(prefix);
  if (entry == nullptr) return false;
  attrs_->release(entry->attr);
  sessions_.drop(entry->session);
  table_.erase(prefix);
  ++generation_;
  return true;
}

const Route* LocRib::find(const net::Prefix& prefix) const {
  if (layout_ == RibLayout::kReference) {
    const auto it = routes_.find(prefix);
    return it == routes_.end() ? nullptr : &it->second;
  }
  const LocEntry* entry = table_.find(prefix);
  if (entry == nullptr) return nullptr;
  const detail::SessionInfo* info = sessions_.find(entry->session);
  scratch_.prefix = prefix;
  scratch_.attributes = attrs_->at(entry->attr);
  scratch_.learned_from = core::SessionId{entry->session};
  scratch_.peer_bgp_id = net::Ipv4Addr{info->bgp_id};
  scratch_.peer_address = net::Ipv4Addr{info->address};
  scratch_.installed_at = core::TimePoint::from_nanos(entry->installed_ns);
  return &scratch_;
}

std::size_t LocRib::size() const {
  return layout_ == RibLayout::kReference ? routes_.size() : table_.size();
}

std::vector<net::Prefix> LocRib::prefixes() const {
  if (layout_ == RibLayout::kReference) {
    std::vector<net::Prefix> out;
    out.reserve(routes_.size());
    for (const auto& [prefix, route] : routes_) out.push_back(prefix);
    std::sort(out.begin(), out.end());
    return out;
  }
  return table_.sorted_keys();
}

std::uint64_t LocRib::current_bytes() const {
  if (layout_ == RibLayout::kReference) {
    return routes_.size() * core::hash_node_bytes(
                                sizeof(std::pair<const net::Prefix, Route>)) +
           core::hash_buckets_bytes(routes_.size());
  }
  return table_.slot_bytes() + sessions_.bytes();
}

void LocRib::note_usage() {
  peak_bytes_ = std::max(peak_bytes_, current_bytes());
}

// ---------------------------------------------------------------------------
// RibOutStore

RibOutStore::RibOutStore(RibLayout layout, AttrRegistryRef attrs)
    : layout_{layout},
      attrs_{attrs != nullptr ? std::move(attrs)
                              : std::make_shared<AttrRegistry>()} {}

std::uint16_t RibOutStore::add_column() {
  const std::uint16_t column = columns_++;
  col_size_.push_back(0);
  if (layout_ == RibLayout::kReference) ref_cols_.emplace_back();
  return column;
}

bool RibOutStore::advertise(std::uint16_t col, const net::Prefix& prefix,
                            const AttrSetRef& attrs) {
  if (layout_ == RibLayout::kReference) {
    auto& advertised = ref_cols_[col];
    const auto it = advertised.find(prefix);
    if (it != advertised.end() && it->second == attrs) return false;
    if (it == advertised.end()) ++col_size_[col];
    advertised[prefix] = attrs;
    note_usage();
    return true;
  }
  OutSpan* span = spans_.find(prefix);
  if (span == nullptr) {
    OutSpan fresh;
    fresh.width = columns_;
    fresh.offset = alloc_row(columns_);
    spans_.put(prefix, fresh);
    span = spans_.find(prefix);
  } else if (col >= span->width) {
    span = widen_row(span);
  }
  std::uint32_t& slot = slab_[span->offset + col];
  // Index equality is value equality: within one trial thread interning
  // canonicalizes bundles and the registry dedups by canonical address.
  const std::uint32_t index = attrs_->acquire(attrs);
  if (slot == index) {
    attrs_->release(index);
    return false;
  }
  if (slot != kNone) {
    attrs_->release(slot);
  } else {
    ++col_size_[col];
  }
  slot = index;
  note_usage();
  return true;
}

bool RibOutStore::withdraw(std::uint16_t col, const net::Prefix& prefix) {
  if (layout_ == RibLayout::kReference) {
    if (ref_cols_[col].erase(prefix) == 0) return false;
    --col_size_[col];
    return true;
  }
  OutSpan* span = spans_.find(prefix);
  if (span == nullptr || col >= span->width) return false;
  std::uint32_t& slot = slab_[span->offset + col];
  if (slot == kNone) return false;
  attrs_->release(slot);
  slot = kNone;
  --col_size_[col];
  maybe_drop_row(prefix);
  return true;
}

const AttrSetRef* RibOutStore::advertised(std::uint16_t col,
                                          const net::Prefix& prefix) const {
  if (layout_ == RibLayout::kReference) {
    const auto& advertised = ref_cols_[col];
    const auto it = advertised.find(prefix);
    return it == advertised.end() ? nullptr : &it->second;
  }
  const OutSpan* span = spans_.find(prefix);
  if (span == nullptr || col >= span->width) return nullptr;
  const std::uint32_t slot = slab_[span->offset + col];
  return slot == kNone ? nullptr : &attrs_->at(slot);
}

std::size_t RibOutStore::size(std::uint16_t col) const {
  return col_size_[col];
}

void RibOutStore::clear(std::uint16_t col) {
  if (layout_ == RibLayout::kReference) {
    ref_cols_[col].clear();
    col_size_[col] = 0;
    return;
  }
  if (col_size_[col] == 0) return;
  std::vector<net::Prefix> occupied;
  spans_.scan([&](const net::Prefix& prefix, const OutSpan& span) {
    if (col < span.width && slab_[span.offset + col] != kNone) {
      occupied.push_back(prefix);
    }
  });
  for (const auto& prefix : occupied) withdraw(col, prefix);
}

std::vector<net::Prefix> RibOutStore::prefixes(std::uint16_t col) const {
  std::vector<net::Prefix> out;
  out.reserve(col_size_[col]);
  if (layout_ == RibLayout::kReference) {
    for (const auto& [prefix, attrs] : ref_cols_[col]) out.push_back(prefix);
  } else {
    spans_.scan([&](const net::Prefix& prefix, const OutSpan& span) {
      if (col < span.width && slab_[span.offset + col] != kNone) {
        out.push_back(prefix);
      }
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t RibOutStore::alloc_row(std::uint32_t width) {
  const auto it = free_rows_.find(width);
  if (it != free_rows_.end() && !it->second.empty()) {
    const std::uint32_t offset = it->second.back();
    it->second.pop_back();
    std::fill_n(slab_.begin() + offset, width, kNone);
    return offset;
  }
  const auto offset = static_cast<std::uint32_t>(slab_.size());
  slab_.resize(slab_.size() + width, kNone);
  return offset;
}

RibOutStore::OutSpan* RibOutStore::widen_row(OutSpan* span) {
  const std::uint32_t width = columns_;
  const std::uint32_t offset = alloc_row(width);
  for (std::uint32_t i = 0; i < span->width; ++i) {
    slab_[offset + i] = slab_[span->offset + i];
  }
  free_rows_[span->width].push_back(span->offset);
  span->offset = offset;
  span->width = width;
  return span;
}

void RibOutStore::maybe_drop_row(const net::Prefix& prefix) {
  OutSpan* span = spans_.find(prefix);
  for (std::uint32_t i = 0; i < span->width; ++i) {
    if (slab_[span->offset + i] != kNone) return;
  }
  free_rows_[span->width].push_back(span->offset);
  spans_.erase(prefix);
}

std::uint64_t RibOutStore::current_bytes() const {
  if (layout_ == RibLayout::kReference) {
    std::uint64_t bytes = 0;
    for (const std::size_t size : col_size_) {
      bytes += size * core::hash_node_bytes(
                          sizeof(std::pair<const net::Prefix, AttrSetRef>)) +
               core::hash_buckets_bytes(size);
    }
    return bytes;
  }
  // Slab extent, not vector capacity; the shared attr registry is accounted
  // by its owner (mem.attr_registry).
  return spans_.slot_bytes() +
         static_cast<std::uint64_t>(slab_.size()) * sizeof(std::uint32_t);
}

void RibOutStore::note_usage() {
  peak_bytes_ = std::max(peak_bytes_, current_bytes());
}

}  // namespace bgpsdn::bgp
