#include "bgp/rib.hpp"

namespace bgpsdn::bgp {

void AdjRibIn::put(const Route& route) {
  by_prefix_[route.prefix][route.learned_from] = route;
}

bool AdjRibIn::erase(const net::Prefix& prefix, core::SessionId session) {
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return false;
  const bool erased = it->second.erase(session) > 0;
  if (it->second.empty()) by_prefix_.erase(it);
  return erased;
}

std::vector<net::Prefix> AdjRibIn::erase_session(core::SessionId session) {
  std::vector<net::Prefix> affected;
  for (auto it = by_prefix_.begin(); it != by_prefix_.end();) {
    if (it->second.erase(session) > 0) affected.push_back(it->first);
    if (it->second.empty()) {
      it = by_prefix_.erase(it);
    } else {
      ++it;
    }
  }
  return affected;
}

const Route* AdjRibIn::find(const net::Prefix& prefix,
                            core::SessionId session) const {
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return nullptr;
  const auto rit = it->second.find(session);
  return rit == it->second.end() ? nullptr : &rit->second;
}

std::vector<const Route*> AdjRibIn::candidates(const net::Prefix& prefix) const {
  std::vector<const Route*> out;
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [sid, route] : it->second) out.push_back(&route);
  return out;
}

std::size_t AdjRibIn::route_count() const {
  std::size_t n = 0;
  for (const auto& [p, m] : by_prefix_) n += m.size();
  return n;
}

std::vector<net::Prefix> AdjRibIn::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(by_prefix_.size());
  for (const auto& [p, m] : by_prefix_) out.push_back(p);
  return out;
}

bool LocRib::install(const Route& route) {
  auto it = routes_.find(route.prefix);
  if (it != routes_.end() && it->second.attributes == route.attributes &&
      it->second.learned_from == route.learned_from) {
    return false;
  }
  routes_[route.prefix] = route;
  ++generation_;
  return true;
}

bool LocRib::remove(const net::Prefix& prefix) {
  if (routes_.erase(prefix) == 0) return false;
  ++generation_;
  return true;
}

const Route* LocRib::find(const net::Prefix& prefix) const {
  const auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> LocRib::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(routes_.size());
  for (const auto& [p, r] : routes_) out.push_back(p);
  return out;
}

bool AdjRibOut::advertise(const net::Prefix& prefix, const AttrSetRef& attrs) {
  const auto it = advertised_.find(prefix);
  if (it != advertised_.end() && it->second == attrs) return false;
  advertised_[prefix] = attrs;
  return true;
}

bool AdjRibOut::withdraw(const net::Prefix& prefix) {
  return advertised_.erase(prefix) > 0;
}

const AttrSetRef* AdjRibOut::advertised(const net::Prefix& prefix) const {
  const auto it = advertised_.find(prefix);
  return it == advertised_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> AdjRibOut::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(advertised_.size());
  for (const auto& [p, a] : advertised_) out.push_back(p);
  return out;
}

}  // namespace bgpsdn::bgp
