// BGP-4 messages and their RFC 4271 wire codec.
//
// The emulation keeps the paper's "real router software" spirit: speakers
// exchange genuine BGP byte streams. OPEN carries the 4-octet-AS capability
// (RFC 6793); when both sides advertise it the session encodes AS_PATH with
// 32-bit AS numbers, otherwise 16-bit with AS_TRANS substitution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bgp/path_attributes.hpp"
#include "bgp/types.hpp"
#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

const char* to_string(MessageType t);

/// RFC 6793: the 2-octet stand-in for a 4-octet AS number.
inline constexpr std::uint16_t kAsTrans = 23456;

/// RFC 4271 §4: maximum BGP message size in bytes.
inline constexpr std::size_t kMaxMessageSize = 4096;

struct OpenMessage {
  std::uint8_t version{4};
  core::AsNumber my_as;
  std::uint16_t hold_time_s{90};
  net::Ipv4Addr bgp_id;
  bool four_octet_as{true};

  bool operator==(const OpenMessage&) const = default;
};

struct UpdateMessage {
  std::vector<net::Prefix> withdrawn;
  /// Attributes apply to every NLRI prefix (one bundle per UPDATE, per RFC).
  /// Meaningless when nlri is empty.
  PathAttributes attributes;
  std::vector<net::Prefix> nlri;

  bool operator==(const UpdateMessage&) const = default;

  std::string to_string() const;
};

struct NotificationMessage {
  std::uint8_t code{0};
  std::uint8_t subcode{0};
  std::vector<std::byte> data;

  bool operator==(const NotificationMessage&) const = default;
};

struct KeepaliveMessage {
  bool operator==(const KeepaliveMessage&) const = default;
};

using Message =
    std::variant<OpenMessage, UpdateMessage, NotificationMessage, KeepaliveMessage>;

MessageType type_of(const Message& m);

/// Session-scoped codec options.
struct CodecOptions {
  /// Encode AS numbers in AS_PATH as 4 octets (negotiated via capability).
  bool four_octet_as{true};
};

/// Serialize to RFC 4271 wire format (16-byte marker, length, type, body).
std::vector<std::byte> encode(const Message& message, const CodecOptions& opts = {});

/// Serialize with buffer sharing (the encode-once fan-out path):
/// KEEPALIVEs reuse one static wire image, and UPDATEs hit a small
/// per-thread cache keyed by message value + codec so advertising one
/// best-path change to N peers encodes once and shares the bytes N ways.
/// Byte-for-byte identical to encode().
net::Bytes encode_shared(const Message& message, const CodecOptions& opts = {});

/// Split an UPDATE into pieces that each encode within kMaxMessageSize
/// (withdrawn routes and NLRI distributed across messages; the attribute
/// bundle repeated on every NLRI-carrying piece). Returns {update} when it
/// already fits.
std::vector<UpdateMessage> split_update(const UpdateMessage& update,
                                        const CodecOptions& opts = {});

/// Decode one message from wire bytes. Returns nullopt on any framing,
/// length or attribute error (a real speaker would send NOTIFICATION; the
/// session layer does that on decode failure).
std::optional<Message> decode(const std::vector<std::byte>& wire,
                              const CodecOptions& opts = {});

}  // namespace bgpsdn::bgp
