// Route-flap damping (RFC 2439, simplified).
//
// The distributed counterpart of the controller's delayed recomputation:
// where the IDR controller batches bursty input centrally, a damping BGP
// router penalizes prefixes that flap on a peering and suppresses them
// until the exponentially-decaying penalty falls below the reuse
// threshold. Disabled by default (as in Quagga); the experiments enable it
// for stability comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

struct DampingConfig {
  bool enabled{false};
  /// Penalty added when the route is withdrawn / when it is re-advertised
  /// or its attributes change (RFC 2439 suggested figures).
  double withdraw_penalty{1000.0};
  double update_penalty{500.0};
  /// Suppress above this, reuse below that.
  double suppress_threshold{2000.0};
  double reuse_threshold{750.0};
  /// Penalty halves every half_life.
  core::Duration half_life{core::Duration::seconds(900)};
  /// Penalty ceiling, expressed as the longest time a route may stay
  /// suppressed after its last flap.
  core::Duration max_suppress{core::Duration::seconds(3600)};
};

/// Per-(session, prefix) flap bookkeeping.
class FlapDampener {
 public:
  explicit FlapDampener(DampingConfig config = {}) : config_{config} {}

  const DampingConfig& config() const { return config_; }

  struct Verdict {
    double penalty{0.0};
    bool suppressed{false};
    /// When suppressed: how long until the penalty decays to the reuse
    /// threshold (callers schedule a re-evaluation then).
    core::Duration reuse_after{core::Duration::zero()};
  };

  /// Record one flap (withdrawal or attribute-changing update) and return
  /// the resulting state. No-op (never suppressed) when disabled.
  Verdict record_flap(core::SessionId session, const net::Prefix& prefix,
                      bool withdrawal, core::TimePoint now);

  /// Current suppression state without adding penalty.
  bool is_suppressed(core::SessionId session, const net::Prefix& prefix,
                     core::TimePoint now) const;

  double penalty(core::SessionId session, const net::Prefix& prefix,
                 core::TimePoint now) const;

  /// Whether the dampener has ever seen this route flap.
  bool has_history(core::SessionId session, const net::Prefix& prefix) const;

  /// Drop all state learned from a session (session reset).
  void clear_session(core::SessionId session);

  std::size_t tracked_routes() const { return state_.size(); }
  std::uint64_t total_suppressions() const { return suppressions_; }

 private:
  struct State {
    double penalty{0.0};
    core::TimePoint updated_at;
    bool suppressed{false};
  };
  using Key = std::pair<std::uint32_t, net::Prefix>;

  double decayed(const State& s, core::TimePoint now) const;
  core::Duration time_to_reach(double from, double to) const;

  DampingConfig config_;
  std::map<Key, State> state_;
  std::uint64_t suppressions_{0};
};

}  // namespace bgpsdn::bgp
