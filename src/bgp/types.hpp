// Common BGP value types and protocol constants.
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace bgpsdn::bgp {

/// ORIGIN attribute values (RFC 4271 §5.1.1); lower is preferred.
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

const char* to_string(Origin o);

/// Business relationship of a peer, Gao-Rexford style. Drives both the
/// import local-preference and the export filter.
enum class Relationship : std::uint8_t {
  kCustomer,  // peer is our customer
  kPeer,      // settlement-free peer
  kProvider,  // peer is our provider
};

const char* to_string(Relationship r);

/// The relationship seen from the other side of the link.
constexpr Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

/// Default import local-preference per relationship: prefer customer routes
/// over peer routes over provider routes (standard operator practice).
constexpr std::uint32_t default_local_pref(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return 130;
    case Relationship::kPeer: return 100;
    case Relationship::kProvider: return 70;
  }
  return 100;
}

/// How the Minimum Route Advertisement Interval paces updates.
enum class MraiStyle : std::uint8_t {
  /// Quagga's behaviour: a free-running per-peer advertisement timer fires
  /// every (jittered) MRAI and flushes whatever changes are pending. A
  /// change waits for the next tick — on average half an interval.
  kPeriodicQuagga,
  /// Cisco-style: the first change after an idle interval is sent
  /// immediately, then the peer is gated for one MRAI.
  kImmediateThenGate,
};

/// Protocol timer defaults. MRAI and keepalive follow Quagga's eBGP
/// defaults; jitter fraction matches BGP implementations (75%-100%).
struct Timers {
  core::Duration hold{core::Duration::seconds(90)};
  core::Duration keepalive{core::Duration::seconds(30)};
  core::Duration connect_retry{core::Duration::seconds(5)};
  /// Minimum Route Advertisement Interval (per peer). The dominant clock of
  /// BGP path exploration and therefore of the paper's experiments.
  core::Duration mrai{core::Duration::seconds(30)};
  MraiStyle mrai_style{MraiStyle::kPeriodicQuagga};
  /// Whether withdrawals are also MRAI-limited (RFC 4271 leaves this to the
  /// implementation; Quagga does not rate-limit withdrawals by default).
  bool mrai_applies_to_withdrawals{false};
  double jitter_low{0.75};
  double jitter_high{1.0};
};

/// Per-update processing cost, modelling Quagga's work per UPDATE.
struct ProcessingModel {
  core::Duration per_update{core::Duration::micros(500)};
  core::Duration per_route{core::Duration::micros(50)};
};

}  // namespace bgpsdn::bgp
