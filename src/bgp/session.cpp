#include "bgp/session.hpp"

#include <algorithm>

#include "core/event_loop.hpp"
#include "core/logger.hpp"
#include "core/random.hpp"
#include "telemetry/trace.hpp"

namespace bgpsdn::bgp {

namespace {
// NOTIFICATION error codes (RFC 4271 §4.5).
constexpr std::uint8_t kErrMessageHeader = 1;
constexpr std::uint8_t kErrOpen = 2;
constexpr std::uint8_t kErrUpdate = 3;
constexpr std::uint8_t kErrHoldTimer = 4;
constexpr std::uint8_t kErrFsm = 5;
constexpr std::uint8_t kErrCease = 6;
}  // namespace

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kConnect: return "Connect";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

void Session::log(const std::string& event, const std::string& detail) {
  host_.session_logger().log(host_.session_loop().now(), core::LogLevel::kDebug,
                             host_.session_log_name() + ".s" +
                                 std::to_string(config_.id.value()),
                             event, detail);
}

void Session::init_metrics() {
  if (metrics_resolved_) return;
  metrics_resolved_ = true;
  if (auto* tel = host_.session_telemetry()) {
    auto& metrics = tel->metrics();
    updates_tx_metric_ = &metrics.counter("bgp.session.updates_tx");
    updates_rx_metric_ = &metrics.counter("bgp.session.updates_rx");
    transitions_metric_ = &metrics.counter("bgp.session.transitions");
  }
}

void Session::transition(SessionState next) {
  const SessionState prev = state_;
  if (prev == next) return;
  state_ = next;
  if (prev == SessionState::kIdle && next == SessionState::kConnect) {
    connect_started_ = host_.session_loop().now();
  }
  init_metrics();
  if (transitions_metric_ != nullptr) transitions_metric_->inc();
  auto* tel = host_.session_telemetry();
  if (tel == nullptr) return;
  auto& metrics = tel->metrics();
  if (next == SessionState::kEstablished) {
    metrics.counter("bgp.session.established").inc();
    metrics.histogram("bgp.session.establish_ns")
        .record((host_.session_loop().now() - connect_started_).count_nanos());
  } else if (prev == SessionState::kEstablished) {
    metrics.counter("bgp.session.dropped").inc();
  }
  if (tel->tracing()) {
    auto span = telemetry::TraceSpan::instant(
        host_.session_loop().now(), "bgp", "fsm",
        host_.session_log_name() + ".s" + std::to_string(config_.id.value()));
    span.arg("from", to_string(prev)).arg("to", to_string(next));
    tel->emit(span);
  }
}

void Session::start() {
  if (state_ != SessionState::kIdle) return;
  transition(SessionState::kConnect);
  const auto delay = host_.session_rng().uniform_duration(
      config_.connect_delay_min, config_.connect_delay_max);
  const auto my_epoch = epoch_;
  connect_timer_ = host_.session_loop().schedule(delay, [this, my_epoch] {
    if (epoch_ != my_epoch || state_ != SessionState::kConnect) return;
    // "TCP" is up: send OPEN.
    OpenMessage open;
    open.my_as = config_.local_as;
    open.hold_time_s =
        static_cast<std::uint16_t>(config_.timers.hold.to_seconds());
    open.bgp_id = config_.local_id;
    open.four_octet_as = true;
    transmit(open);
    transition(SessionState::kOpenSent);
    reset_hold_timer();
    log("open_sent", "to " + config_.remote_address.to_string());
  });
}

void Session::stop(const std::string& reason, bool auto_restart) {
  const bool was_established = established();
  cancel_timers();
  ++epoch_;
  transition(SessionState::kIdle);
  // Every stop path forgets what the dead "connection" negotiated: hold
  // time, codec width and capabilities are per-connection state (RFC 4271
  // §8 releases all resources on ManualStop/AutomaticStop). Keeping them
  // would make a restarted session run OpenSent on the stale peer's hold
  // time and decode with the stale AS width.
  negotiated_hold_s_ = 0;
  peer_four_octet_ = false;
  codec_ = CodecOptions{};
  if (was_established) {
    ++counters_.flaps;
    log("session_down", reason);
    host_.session_down(*this, reason);
  }
  if (auto_restart) {
    const auto delay = host_.session_rng().jittered(config_.timers.connect_retry,
                                                    0.75, 1.25);
    const auto my_epoch = epoch_;
    connect_timer_ = host_.session_loop().schedule(delay, [this, my_epoch] {
      if (epoch_ != my_epoch || state_ != SessionState::kIdle) return;
      start();
    });
  }
}

void Session::fail(std::uint8_t code, std::uint8_t subcode,
                   const std::string& reason) {
  NotificationMessage n;
  n.code = code;
  n.subcode = subcode;
  transmit(n);
  ++counters_.notifications_tx;
  stop(reason, /*auto_restart=*/true);
}

void Session::transmit(const Message& m) {
  // OPEN must be readable before negotiation; only UPDATE uses the
  // negotiated AS width, and it is only sent when established.
  host_.session_transmit(*this, encode_shared(m, codec_));
  if (type_of(m) == MessageType::kKeepalive) ++counters_.keepalives_tx;
}

void Session::receive(const std::vector<std::byte>& wire) {
  if (state_ == SessionState::kIdle) {
    // Passive open: a fresh OPEN from the peer wakes an idle session (the
    // TCP-accept path of a real speaker). Anything else is stale bytes.
    const auto peek = decode(wire, CodecOptions{});
    if (!peek || type_of(*peek) != MessageType::kOpen) return;
    transition(SessionState::kConnect);
  }
  const auto msg = decode(wire, codec_);
  if (!msg) {
    ++counters_.decode_errors;
    fail(kErrMessageHeader, 0, "decode error");
    return;
  }
  switch (type_of(*msg)) {
    case MessageType::kOpen:
      ++counters_.opens_rx;
      on_open(std::get<OpenMessage>(*msg));
      break;
    case MessageType::kKeepalive:
      ++counters_.keepalives_rx;
      on_keepalive();
      break;
    case MessageType::kUpdate:
      ++counters_.updates_rx;
      init_metrics();
      if (updates_rx_metric_ != nullptr) updates_rx_metric_->inc();
      on_update(std::get<UpdateMessage>(*msg));
      break;
    case MessageType::kNotification:
      ++counters_.notifications_rx;
      on_notification(std::get<NotificationMessage>(*msg));
      break;
  }
}

void Session::on_open(const OpenMessage& m) {
  if (state_ == SessionState::kEstablished ||
      state_ == SessionState::kOpenConfirm) {
    // The peer restarted and opened a fresh "connection": tear the old
    // session down and accept the new OPEN (collision-resolution spirit of
    // RFC 4271 §6.8).
    stop("peer re-opened");
    transition(SessionState::kConnect);
  }
  // Accept OPEN in Connect too (peer's OPEN can beat our connect timer).
  if (state_ != SessionState::kOpenSent && state_ != SessionState::kConnect) {
    fail(kErrFsm, 0, "OPEN in " + std::string{to_string(state_)});
    return;
  }
  if (m.version != 4) {
    fail(kErrOpen, 1, "bad version");
    return;
  }
  if (config_.expected_peer_as.value() != 0 && m.my_as != config_.expected_peer_as) {
    fail(kErrOpen, 2, "unexpected peer AS " + m.my_as.to_string());
    return;
  }
  if (m.hold_time_s != 0 && m.hold_time_s < 3) {
    fail(kErrOpen, 6, "unacceptable hold time");
    return;
  }
  peer_as_ = m.my_as;
  peer_id_ = m.bgp_id;
  peer_four_octet_ = m.four_octet_as;
  codec_.four_octet_as = peer_four_octet_;  // we always offer it
  negotiated_hold_s_ = std::min<std::uint16_t>(
      static_cast<std::uint16_t>(config_.timers.hold.to_seconds()), m.hold_time_s);

  if (state_ == SessionState::kConnect) {
    // Simultaneous open: our OPEN has not gone out yet; send it now.
    if (connect_timer_.is_valid()) host_.session_loop().cancel(connect_timer_);
    OpenMessage open;
    open.my_as = config_.local_as;
    open.hold_time_s =
        static_cast<std::uint16_t>(config_.timers.hold.to_seconds());
    open.bgp_id = config_.local_id;
    open.four_octet_as = true;
    transmit(open);
  }
  transmit(KeepaliveMessage{});
  transition(SessionState::kOpenConfirm);
  reset_hold_timer();
  log("open_rx", "peer " + peer_as_.to_string());
}

void Session::on_keepalive() {
  switch (state_) {
    case SessionState::kOpenConfirm:
      enter_established();
      break;
    case SessionState::kEstablished:
      reset_hold_timer();
      break;
    default:
      fail(kErrFsm, 0, "KEEPALIVE in " + std::string{to_string(state_)});
  }
}

void Session::on_update(const UpdateMessage& m) {
  if (state_ != SessionState::kEstablished) {
    fail(kErrFsm, 0, "UPDATE in " + std::string{to_string(state_)});
    return;
  }
  reset_hold_timer();
  host_.session_update(*this, m);
}

void Session::on_notification(const NotificationMessage& m) {
  stop("NOTIFICATION code=" + std::to_string(m.code) +
           " sub=" + std::to_string(m.subcode),
       /*auto_restart=*/true);
}

void Session::enter_established() {
  transition(SessionState::kEstablished);
  reset_hold_timer();
  arm_keepalive_timer();
  log("session_up", "peer " + peer_as_.to_string());
  host_.session_established(*this);
}

void Session::send_update(const UpdateMessage& update) {
  if (!established()) return;
  // Honour the RFC 4271 4096-byte message cap: oversized updates are split
  // transparently (one attribute bundle per NLRI piece).
  init_metrics();
  for (const auto& piece : split_update(update, codec_)) {
    ++counters_.updates_tx;
    if (updates_tx_metric_ != nullptr) updates_tx_metric_->inc();
    transmit(piece);
  }
}

void Session::reset_hold_timer() {
  if (hold_timer_.is_valid()) host_.session_loop().cancel(hold_timer_);
  if (negotiated_hold_s_ == 0 && state_ == SessionState::kEstablished) return;
  const auto hold = negotiated_hold_s_ > 0
                        ? core::Duration::seconds(negotiated_hold_s_)
                        : config_.timers.hold;
  const auto my_epoch = epoch_;
  hold_timer_ = host_.session_loop().schedule(hold, [this, my_epoch] {
    if (epoch_ != my_epoch) return;
    fail(kErrHoldTimer, 0, "hold timer expired");
  });
}

void Session::arm_keepalive_timer() {
  const auto base = negotiated_hold_s_ > 0
                        ? core::Duration::seconds(negotiated_hold_s_ / 3)
                        : config_.timers.keepalive;
  const auto delay = host_.session_rng().jittered(base, config_.timers.jitter_low,
                                                  config_.timers.jitter_high);
  const auto my_epoch = epoch_;
  keepalive_timer_ = host_.session_loop().schedule(delay, [this, my_epoch] {
    if (epoch_ != my_epoch || state_ != SessionState::kEstablished) return;
    transmit(KeepaliveMessage{});
    arm_keepalive_timer();
  });
}

void Session::cancel_timers() {
  auto& loop = host_.session_loop();
  if (connect_timer_.is_valid()) loop.cancel(connect_timer_);
  if (hold_timer_.is_valid()) loop.cancel(hold_timer_);
  if (keepalive_timer_.is_valid()) loop.cancel(keepalive_timer_);
  connect_timer_ = hold_timer_ = keepalive_timer_ = core::TimerId::invalid();
}

}  // namespace bgpsdn::bgp
