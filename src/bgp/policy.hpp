// Import/export policy: the "BGP policy templates" the framework configures.
//
// Two modes cover the paper's topologies:
//  * kFullTransit — every AS re-exports its best route to every peer
//    (the clique experiments: all ASes provide transit).
//  * kGaoRexford  — valley-free routing from CAIDA-style relationships:
//    customer routes go to everyone; peer/provider routes only to customers.
// Prefix filters and a route-map hook cover bespoke experiment policies.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/types.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

enum class PolicyMode { kFullTransit, kGaoRexford };

/// Per-peer policy configuration.
struct PeerPolicy {
  PolicyMode mode{PolicyMode::kFullTransit};
  Relationship relationship{Relationship::kPeer};
  /// Import LOCAL_PREF override; defaults from the relationship in
  /// Gao-Rexford mode, 100 in full-transit mode.
  std::optional<std::uint32_t> local_pref;
  /// Prefixes rejected on import / never exported.
  std::vector<net::Prefix> import_deny;
  std::vector<net::Prefix> export_deny;
  /// Extra copies of the local AS prepended on export towards this peer —
  /// the standard way to de-prefer a backup link. 0 = no prepending (the
  /// router's single mandatory prepend happens regardless).
  std::uint8_t prepend{0};
  /// Route-map hooks: may rewrite attributes; return false to reject.
  std::function<bool(PathAttributes&)> import_map;
  std::function<bool(PathAttributes&)> export_map;
};

class PolicyEngine {
 public:
  /// Apply import policy to a route received from a peer with `policy`.
  /// Sets LOCAL_PREF, runs filters and the route map. Returns false if the
  /// route is rejected.
  static bool apply_import(const PeerPolicy& policy, const net::Prefix& prefix,
                           PathAttributes& attrs);

  /// Decide whether `route` (best in Loc-RIB, learned via a session whose
  /// relationship is `learned_rel`, or locally originated) may be exported
  /// to a peer with `policy`; if so, rewrite `attrs` for export (strip
  /// LOCAL_PREF/MED, apply prepending with `local_as`, run the export
  /// map). Returns false to suppress.
  static bool apply_export(const PeerPolicy& policy,
                           std::optional<Relationship> learned_rel,
                           const net::Prefix& prefix, PathAttributes& attrs,
                           core::AsNumber local_as = core::AsNumber{0});

 private:
  static bool denied(const std::vector<net::Prefix>& deny, const net::Prefix& p);
};

}  // namespace bgpsdn::bgp
