// RouteCollector — the monitoring peer of the framework.
//
// "All BGP routers peer with a BGP route collector, which collects routing
// updates for monitoring purposes." The collector is a passive BGP speaker
// that accepts any peer AS, never advertises, and timestamps every
// announcement/withdrawal it hears. Convergence analysis reads its tape.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/session.hpp"
#include "net/node.hpp"

namespace bgpsdn::bgp {

/// One observed routing event.
struct RouteObservation {
  core::TimePoint when;
  core::AsNumber peer_as;
  bool announce{false};
  net::Prefix prefix;
  AsPath as_path;  // empty for withdrawals

  std::string to_string() const;
};

class RouteCollector : public net::Node, public SessionHost {
 public:
  explicit RouteCollector(net::Ipv4Addr collector_id) : id_{collector_id} {}

  /// Declare a peering on a local port (one per monitored router).
  void add_peer(core::PortId port, net::Ipv4Addr local_address,
                net::Ipv4Addr remote_address);

  // Node
  void start() override;
  void handle_packet(core::PortId ingress, const net::Packet& packet) override;
  void on_link_state(core::PortId port, bool up) override;

  // SessionHost
  void session_transmit(Session& session, net::Bytes wire) override;
  void session_established(Session& session) override;
  void session_down(Session& session, const std::string& reason) override;
  void session_update(Session& session, const UpdateMessage& update) override;
  core::EventLoop& session_loop() override;
  core::Rng& session_rng() override;
  core::Logger& session_logger() override;
  std::string session_log_name() const override;
  telemetry::Telemetry* session_telemetry() override { return telemetry(); }

  const std::vector<RouteObservation>& observations() const { return tape_; }
  void clear() { tape_.clear(); }

  /// Time of the last observation at or before `at` (origin if none) —
  /// convergence detectors use "no update seen since t".
  core::TimePoint last_activity() const;

  /// Number of established peerings.
  std::size_t established_count() const;

 private:
  struct Peer {
    core::PortId port;
    net::Ipv4Addr local_address;
    net::Ipv4Addr remote_address;
    std::unique_ptr<Session> session;
  };

  net::Ipv4Addr id_;
  bool started_{false};
  std::unordered_map<std::uint32_t, Peer> by_port_;
  std::unordered_map<std::uint32_t, Peer*> by_session_;
  std::vector<RouteObservation> tape_;
};

}  // namespace bgpsdn::bgp
