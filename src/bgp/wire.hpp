// Big-endian byte stream helpers for protocol codecs.
//
// Used by the BGP RFC 4271 codec and the OpenFlow-like control channel.
// Decoding never throws on truncated input; the reader enters a failed
// state that callers check once at the end (torn-tape style).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.hpp"

namespace bgpsdn::bgp {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(const std::vector<std::byte>& b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void addr(net::Ipv4Addr a) { u32(a.bits()); }

  /// Overwrite a previously written big-endian u16 at `pos` (for
  /// back-patching length fields).
  void patch_u16(std::size_t pos, std::uint16_t v) {
    buf_[pos] = static_cast<std::byte>(v >> 8);
    buf_[pos + 1] = static_cast<std::byte>(v & 0xff);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::byte>& data() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::byte>& buf)
      : data_{buf.data()}, size_{buf.size()} {}
  ByteReader(const std::byte* data, std::size_t size) : data_{data}, size_{size} {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  net::Ipv4Addr addr() { return net::Ipv4Addr{u32()}; }
  std::vector<std::byte> bytes(std::size_t n) {
    if (!need(n)) return {};
    std::vector<std::byte> out{data_ + pos_, data_ + pos_ + n};
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    if (need(n)) pos_ += n;
  }

  std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool ok() const { return !failed_; }
  /// Force-fail (semantic error discovered by the caller).
  void fail() { failed_ = true; }

  /// A sub-reader over the next n bytes; consumes them from this reader.
  ByteReader sub(std::size_t n) {
    if (!need(n)) return ByteReader{data_, 0};
    ByteReader r{data_ + pos_, n};
    pos_ += n;
    return r;
  }

 private:
  bool need(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_{0};
  bool failed_{false};
};

}  // namespace bgpsdn::bgp
