// BGP path attributes: AS_PATH and the attribute bundle carried by routes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "bgp/types.hpp"
#include "net/ip.hpp"

namespace bgpsdn::bgp {

/// AS_PATH as a flat AS_SEQUENCE (sufficient for non-aggregated routing;
/// AS_SET only arises from aggregation, which the emulated ASes do not do).
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<core::AsNumber> hops) : hops_{std::move(hops)} {}

  /// New path with `as` prepended (what an AS does when propagating).
  AsPath prepend(core::AsNumber as) const;

  bool contains(core::AsNumber as) const;
  std::size_t length() const { return hops_.size(); }
  bool empty() const { return hops_.empty(); }

  /// The neighbor that sent us the route (first hop), if any.
  std::optional<core::AsNumber> first() const;
  /// The origin AS (last hop), if any.
  std::optional<core::AsNumber> origin_as() const;

  const std::vector<core::AsNumber>& hops() const { return hops_; }

  bool operator==(const AsPath&) const = default;

  /// e.g. "3 2 1" (left = most recent hop).
  std::string to_string() const;

 private:
  std::vector<core::AsNumber> hops_;
};

/// The attribute bundle of one route. LOCAL_PREF is kept here even on eBGP
/// routes because the emulation assigns it at import time and the decision
/// process reads it (matching how Quagga stores imported routes).
struct PathAttributes {
  Origin origin{Origin::kIgp};
  AsPath as_path;
  net::Ipv4Addr next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  std::vector<std::uint32_t> communities;

  bool operator==(const PathAttributes&) const = default;

  std::string to_string() const;
};

}  // namespace bgpsdn::bgp
