#include "bgp/mrt.hpp"

#include "bgp/wire.hpp"

namespace bgpsdn::bgp {

namespace {
// RFC 6396 type/subtype for BGP4MP with 4-byte AS numbers.
constexpr std::uint16_t kTypeBgp4mp = 16;
constexpr std::uint16_t kSubtypeMessageAs4 = 4;
constexpr std::uint16_t kAfiIpv4 = 1;
}  // namespace

std::vector<std::byte> write_mrt(const std::vector<MrtRecord>& records) {
  ByteWriter w;
  for (const auto& rec : records) {
    w.u32(rec.timestamp_s);
    w.u16(kTypeBgp4mp);
    w.u16(kSubtypeMessageAs4);
    // Body: peer AS(4) local AS(4) ifindex(2) AFI(2) peer IP(4) local
    // IP(4) + message.
    w.u32(static_cast<std::uint32_t>(20 + rec.bgp_message.size()));
    w.u32(rec.peer_as.value());
    w.u32(rec.local_as.value());
    w.u16(0);  // interface index
    w.u16(kAfiIpv4);
    w.addr(rec.peer_ip);
    w.addr(rec.local_ip);
    w.bytes(rec.bgp_message);
  }
  return w.take();
}

std::optional<std::vector<MrtRecord>> read_mrt(const std::vector<std::byte>& data) {
  std::vector<MrtRecord> out;
  ByteReader r{data};
  while (r.remaining() > 0) {
    const std::uint32_t ts = r.u32();
    const std::uint16_t type = r.u16();
    const std::uint16_t subtype = r.u16();
    const std::uint32_t len = r.u32();
    ByteReader body = r.sub(len);
    if (!r.ok()) return std::nullopt;
    if (type != kTypeBgp4mp || subtype != kSubtypeMessageAs4) continue;
    MrtRecord rec;
    rec.timestamp_s = ts;
    rec.peer_as = core::AsNumber{body.u32()};
    rec.local_as = core::AsNumber{body.u32()};
    body.u16();  // interface index
    const std::uint16_t afi = body.u16();
    if (afi != kAfiIpv4) continue;  // IPv4-only framework
    rec.peer_ip = body.addr();
    rec.local_ip = body.addr();
    rec.bgp_message = body.bytes(body.remaining());
    if (!body.ok()) return std::nullopt;
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<MrtRecord> collector_to_mrt(const std::vector<RouteObservation>& tape,
                                        net::Ipv4Addr collector_ip,
                                        core::AsNumber collector_as) {
  std::vector<MrtRecord> out;
  out.reserve(tape.size());
  for (const auto& obs : tape) {
    UpdateMessage update;
    if (obs.announce) {
      update.attributes.as_path = obs.as_path;
      update.attributes.origin = Origin::kIgp;
      update.nlri.push_back(obs.prefix);
    } else {
      update.withdrawn.push_back(obs.prefix);
    }
    MrtRecord rec;
    rec.timestamp_s = static_cast<std::uint32_t>(obs.when.to_seconds());
    rec.peer_as = obs.peer_as;
    rec.local_as = collector_as;
    rec.local_ip = collector_ip;
    // The tape does not retain the peer's interface address; derive a
    // stable synthetic one from the AS number (documented MRT-export
    // convention of this framework).
    rec.peer_ip = net::Ipv4Addr{(198u << 24) | (18u << 16) |
                                (obs.peer_as.value() & 0xffffu)};
    rec.bgp_message = encode(update);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace bgpsdn::bgp
