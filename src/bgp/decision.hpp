// The BGP decision process (RFC 4271 §9.1.2, eBGP subset).
//
// Every AS is one router and all sessions are eBGP, so the IGP-cost and
// iBGP steps are vacuous; the remaining ladder matches Quagga:
//   1. highest LOCAL_PREF (import policy sets it from the relationship)
//   2. shortest AS_PATH
//   3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//   4. lowest MED (compared across all candidates — "always-compare-med")
//   5. oldest route (stability preference, like Quagga's best-path aging)
//   6. lowest peer BGP identifier
//   7. lowest peer address
#pragma once

#include <vector>

#include "bgp/rib.hpp"

namespace bgpsdn::bgp {

/// Three-way comparison: negative if `a` is preferred, positive if `b` is,
/// zero only for fully tied candidates (which cannot happen for distinct
/// peers thanks to the address tiebreak).
int compare_routes(const Route& a, const Route& b);

/// The best candidate, or nullptr if the set is empty.
const Route* select_best(const std::vector<const Route*>& candidates);

/// Which rung of the ladder decided between two routes; for diagnostics and
/// tests ("why did this path win?").
enum class DecisionReason {
  kOnlyCandidate,
  kLocalPref,
  kAsPathLength,
  kOrigin,
  kMed,
  kAge,
  kBgpId,
  kPeerAddress,
  kTie,
};

const char* to_string(DecisionReason r);

DecisionReason decide_reason(const Route& a, const Route& b);

}  // namespace bgpsdn::bgp
