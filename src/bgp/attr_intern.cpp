#include "bgp/attr_intern.hpp"

#include <functional>
#include <unordered_map>
#include <utility>

#include "core/mem_stats.hpp"

namespace bgpsdn::bgp {

namespace {

/// Below this many entries the pool is never swept.
constexpr std::size_t kPurgeFloor = 64;

struct Pool {
  std::unordered_multimap<std::size_t, std::weak_ptr<const PathAttributes>>
      entries;
  /// Sweep when entries reaches this; doubled after each sweep so the cost
  /// amortizes to O(1) per intern.
  std::size_t purge_threshold{kPurgeFloor};
  std::uint64_t interns{0};
  std::uint64_t hits{0};
  std::uint64_t purges{0};

  void sweep() {
    std::erase_if(entries,
                  [](const auto& kv) { return kv.second.expired(); });
    purge_threshold = std::max(kPurgeFloor, entries.size() * 2);
    ++purges;
  }
};

Pool& pool() {
  thread_local Pool p;
  return p;
}

}  // namespace

std::size_t hash_value(const PathAttributes& attrs) {
  std::size_t h = static_cast<std::size_t>(attrs.origin);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const auto as : attrs.as_path.hops()) mix(as.value());
  mix(attrs.next_hop.bits());
  mix(attrs.med ? (std::uint64_t{1} << 32) | *attrs.med : 0);
  mix(attrs.local_pref ? (std::uint64_t{1} << 32) | *attrs.local_pref : 0);
  for (const auto c : attrs.communities) mix(c);
  return h;
}

AttrSetRef::AttrSetRef() {
  // One shared default bundle per thread: default-constructed Routes and
  // RIB slots all point here instead of each allocating empty vectors.
  thread_local const std::shared_ptr<const PathAttributes> kDefault =
      std::make_shared<const PathAttributes>();
  ptr_ = kDefault;
}

AttrSetRef AttrSetRef::intern(PathAttributes attrs) {
  Pool& p = pool();
  ++p.interns;
  const std::size_t h = hash_value(attrs);
  const auto [lo, hi] = p.entries.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (auto sp = it->second.lock(); sp != nullptr && *sp == attrs) {
      ++p.hits;
      return AttrSetRef{std::move(sp)};
    }
  }
  auto sp = std::make_shared<const PathAttributes>(std::move(attrs));
  p.entries.emplace(h, sp);
  if (p.entries.size() >= p.purge_threshold) p.sweep();
  return AttrSetRef{std::move(sp)};
}

AttrPoolStats attr_pool_stats() {
  const Pool& p = pool();
  AttrPoolStats stats;
  stats.entries = p.entries.size();
  for (const auto& [h, wp] : p.entries) {
    if (!wp.expired()) ++stats.live;
  }
  stats.interns = p.interns;
  stats.hits = p.hits;
  stats.purges = p.purges;
  return stats;
}

std::uint64_t attr_pool_live_bytes() {
  const Pool& p = pool();
  std::uint64_t bytes = 0;
  for (const auto& [h, wp] : p.entries) {
    if (const auto sp = wp.lock(); sp != nullptr) {
      // Bundle plus its shared_ptr control block, then the heap arrays
      // behind the AS-path and community vectors.
      bytes += core::alloc_block_bytes(sizeof(PathAttributes) + 32);
      if (!sp->as_path.hops().empty()) {
        bytes += core::alloc_block_bytes(sp->as_path.hops().size() *
                                         sizeof(core::AsNumber));
      }
      if (!sp->communities.empty()) {
        bytes += core::alloc_block_bytes(sp->communities.size() *
                                         sizeof(std::uint32_t));
      }
    }
  }
  return bytes;
}

void attr_pool_purge() { pool().sweep(); }

}  // namespace bgpsdn::bgp
