// BgpRouter — one emulated AS border router (the Quagga bgpd substitute).
//
// "To isolate the effects of inter-domain from intra-domain routing every AS
// is emulated by a single network device": a BgpRouter is that device. It
// terminates eBGP sessions on its ports, runs the RFC 4271 decision process
// over Adj-RIB-In, programs its FIB from the Loc-RIB, applies per-peer
// policy on import/export, and rate-limits advertisements with per-peer
// MRAI timers — the mechanism behind BGP path exploration, which the
// paper's experiments measure.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/damping.hpp"
#include "bgp/decision.hpp"
#include "bgp/policy.hpp"
#include "bgp/rib.hpp"
#include "bgp/session.hpp"
#include "bgp/types.hpp"
#include "net/lpm.hpp"
#include "net/node.hpp"

namespace bgpsdn::bgp {

struct RouterConfig {
  core::AsNumber asn;
  net::Ipv4Addr router_id;
  Timers timers;
  ProcessingModel processing;
  /// When false (Quagga behaviour), the best route is advertised even to
  /// the peer it was learned from; the receiver rejects it via AS_PATH
  /// loop detection — at MRAI pace, which is part of BGP's convergence
  /// dynamics. When true, such advertisements become immediate
  /// withdrawals instead (Cisco-like sender-side suppression).
  bool split_horizon{false};
  /// Route-flap damping (RFC 2439); disabled by default like Quagga.
  DampingConfig damping{};
  /// RIB storage layout (kReference keeps the node-based containers for
  /// equivalence testing; behaviour is byte-identical either way).
  RibLayout rib_layout{RibLayout::kCompact};
  /// Attribute-handle registry shared across the simulation (the Experiment
  /// wires one instance through every router and the speaker). Null makes
  /// each RIB create a private registry, which standalone-router tests use.
  AttrRegistryRef attr_registry{};
};

/// Configuration of one peering, bound to a local port.
struct PeerConfig {
  PeerPolicy policy;
  net::Ipv4Addr local_address;
  net::Ipv4Addr remote_address;
  /// Expected peer AS (0 = accept any).
  core::AsNumber expected_peer_as{0};
  /// Per-peer MRAI override (e.g. 0 towards a route collector).
  std::optional<core::Duration> mrai;
};

struct RouterCounters {
  std::uint64_t updates_rx{0};
  std::uint64_t updates_tx{0};
  std::uint64_t routes_rejected_loop{0};
  std::uint64_t routes_rejected_policy{0};
  std::uint64_t best_changes{0};
  std::uint64_t routes_suppressed{0};
  std::uint64_t packets_forwarded{0};
  std::uint64_t packets_no_route{0};
};

class BgpRouter : public net::Node, public SessionHost {
 public:
  explicit BgpRouter(RouterConfig config)
      : config_{std::move(config)},
        adj_rib_in_{config_.rib_layout, config_.attr_registry},
        loc_rib_{config_.rib_layout, config_.attr_registry},
        rib_out_store_{config_.rib_layout, config_.attr_registry},
        dampener_{config_.damping} {}

  // --- configuration (before or after start) ---------------------------

  /// Declare a peering on `port`. Creates the session; it begins connecting
  /// at start() (or immediately if the router already started).
  void add_peer(core::PortId port, PeerConfig peer_config);

  /// Attach a host subnet reachable out of `port`; the prefix is originated
  /// into BGP and delivered locally.
  void attach_host(core::PortId port, const net::Prefix& prefix);

  /// Originate a prefix (no attached host; traffic to it terminates here).
  void originate(const net::Prefix& prefix);

  /// Stop originating; propagates withdrawals.
  void withdraw_origin(const net::Prefix& prefix);

  // --- Node -------------------------------------------------------------
  void start() override;
  void handle_packet(core::PortId ingress, const net::Packet& packet) override;
  void on_link_state(core::PortId port, bool up) override;

  // --- SessionHost --------------------------------------------------------
  void session_transmit(Session& session, net::Bytes wire) override;
  void session_established(Session& session) override;
  void session_down(Session& session, const std::string& reason) override;
  void session_update(Session& session, const UpdateMessage& update) override;
  core::EventLoop& session_loop() override;
  core::Rng& session_rng() override;
  core::Logger& session_logger() override;
  std::string session_log_name() const override;
  telemetry::Telemetry* session_telemetry() override;

  // --- introspection ------------------------------------------------------
  core::AsNumber asn() const { return config_.asn; }
  const RouterConfig& config() const { return config_; }
  const LocRib& loc_rib() const { return loc_rib_; }
  const AdjRibIn& adj_rib_in() const { return adj_rib_in_; }
  const RouterCounters& counters() const { return counters_; }
  const Session* session_on(core::PortId port) const;
  std::vector<const Session*> sessions() const;
  /// FIB egress port for a destination, if any.
  std::optional<core::PortId> fib_lookup(net::Ipv4Addr dst) const;
  bool originates(const net::Prefix& prefix) const {
    return local_prefixes_.count(prefix) > 0;
  }
  const FlapDampener& dampener() const { return dampener_; }

  /// Report deterministic RIB footprints (high-water marks computed with the
  /// core/mem_stats.hpp allocation model) into `stats`.
  void account_memory(core::MemStats& stats) const {
    stats.rib_in += adj_rib_in_.peak_bytes();
    stats.loc_rib += loc_rib_.peak_bytes();
    stats.rib_out += rib_out_store_.peak_bytes();
  }

 private:
  struct Peer {
    core::PortId port;
    PeerConfig config;
    std::unique_ptr<Session> session;
    AdjRibOut rib_out;
    /// Prefixes whose export state must be re-evaluated at next flush.
    std::set<net::Prefix> pending;
    /// Prefixes touched inside the current TxBatch whose ungated UPDATE is
    /// deferred to the batch flush (where same-bundle prefixes coalesce
    /// into one multi-NLRI message).
    std::set<net::Prefix> batch_dirty;
    bool mrai_running{false};
    core::TimerId mrai_timer{core::TimerId::invalid()};
    std::uint64_t epoch{0};
    /// Open "mrai_wait" span: armed instant, closed at the gated flush.
    core::TimePoint mrai_armed_at{};
    bool mrai_span_open{false};
  };

  Peer* peer_on(core::PortId port);
  Peer* peer_of(const Session& session);

  /// Serialized-CPU work model: runs `fn` after queued processing cost.
  void enqueue_work(core::Duration cost, std::function<void()> fn);

  void process_update(Peer& peer, const UpdateMessage& update);
  /// Re-run the decision process for one prefix; on change, update Loc-RIB +
  /// FIB and queue advertisements. Damping-suppressed candidates are
  /// excluded.
  void recompute(const net::Prefix& prefix);
  /// Record a flap with the dampener; on suppression, schedules the
  /// reuse-time re-evaluation.
  void note_flap(core::SessionId session, const net::Prefix& prefix,
                 bool withdrawal);
  /// Queue (or immediately send) the current state of `prefix` to `peer`.
  void schedule_peer_update(Peer& peer, const net::Prefix& prefix);
  /// Evaluate export policy: the UPDATE content for `prefix` towards `peer`
  /// right now (announce with attrs / withdraw / nothing).
  enum class ExportAction { kAnnounce, kWithdraw, kNone };
  ExportAction evaluate_export(Peer& peer, const net::Prefix& prefix,
                               AttrSetRef& out_attrs);
  /// Send everything pending for the peer; groups NLRI by attribute bundle.
  void flush_peer(Peer& peer);
  void arm_mrai(Peer& peer);
  core::Duration peer_mrai(const Peer& peer) const;

  /// One announcement group: every prefix advertised with the same bundle
  /// rides in a single multi-NLRI UPDATE.
  using UpdateGroups = std::vector<std::pair<AttrSetRef, std::vector<net::Prefix>>>;
  /// Emit one UPDATE per group (withdrawals ride in the first message),
  /// with per-message counters, logging and tracing.
  void emit_updates(Peer& peer, UpdateGroups& groups,
                    std::vector<net::Prefix>& withdrawals);

  /// RAII scope coalescing ungated UPDATE emission across one burst of RIB
  /// mutations (one received UPDATE, session event or origin change):
  /// schedule_peer_update defers ungated sends to `batch_dirty`, and the
  /// outermost scope flushes them peer by peer, packed by attribute bundle.
  struct TxBatch {
    explicit TxBatch(BgpRouter& r) : router{r} { ++router.tx_batch_depth_; }
    ~TxBatch() {
      if (--router.tx_batch_depth_ == 0) router.flush_tx_batches();
    }
    TxBatch(const TxBatch&) = delete;
    TxBatch& operator=(const TxBatch&) = delete;
    BgpRouter& router;
  };
  void flush_tx_batches();

  void forward_data(const net::Packet& packet);
  std::optional<Relationship> relationship_of_best(const Route& best);

  RouterConfig config_;
  bool started_{false};
  std::map<core::PortId, Peer> peers_;
  std::unordered_map<std::uint32_t, Peer*> peers_by_session_;
  AdjRibIn adj_rib_in_;
  LocRib loc_rib_;
  /// Shared advertised-state store; every Peer's rib_out is one column.
  RibOutStore rib_out_store_;
  int tx_batch_depth_{0};
  /// Locally-originated prefixes and when they were originated.
  std::map<net::Prefix, core::TimePoint> local_prefixes_;
  /// Host delivery: local prefix -> port of the attached host.
  std::map<net::Prefix, core::PortId> host_ports_;
  net::LpmTable<core::PortId> fib_;
  core::TimePoint busy_until_{};
  FlapDampener dampener_;
  RouterCounters counters_;
  /// Cached network-wide metric handles (see Session for the pattern).
  void init_metrics();
  bool metrics_resolved_{false};
  telemetry::Counter* decision_runs_metric_{nullptr};
  telemetry::Counter* best_changes_metric_{nullptr};
  telemetry::Counter* updates_tx_metric_{nullptr};
  telemetry::Histogram* decision_candidates_metric_{nullptr};
};

}  // namespace bgpsdn::bgp
