// BGP session finite state machine (RFC 4271 §8, emulation subset).
//
// One Session object lives on each side of a peering link, owned by the
// speaker node (router, collector, cluster speaker). TCP is abstracted as a
// short jittered connect delay; everything above it — OPEN exchange,
// capability negotiation, keepalive/hold timers, NOTIFICATION on error —
// is real and runs over the emulated network in wire format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "bgp/message.hpp"
#include "bgp/types.hpp"
#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace bgpsdn::core {
class EventLoop;
class Logger;
class Rng;
}  // namespace bgpsdn::core

namespace bgpsdn::telemetry {
class Counter;
class Histogram;
class Telemetry;
}  // namespace bgpsdn::telemetry

namespace bgpsdn::bgp {

enum class SessionState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

const char* to_string(SessionState s);

class Session;

/// The node hosting a session implements this to supply transport, timers
/// and route handling.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Transmit wire bytes towards the peer (the host wraps them in a Packet
  /// and picks the right port). The buffer is copy-on-write shared: the
  /// same encoded UPDATE fans out to many peers without re-encoding.
  virtual void session_transmit(Session& session, net::Bytes wire) = 0;

  virtual void session_established(Session& session) = 0;
  virtual void session_down(Session& session, const std::string& reason) = 0;
  virtual void session_update(Session& session, const UpdateMessage& update) = 0;

  virtual core::EventLoop& session_loop() = 0;
  virtual core::Rng& session_rng() = 0;
  virtual core::Logger& session_logger() = 0;
  virtual std::string session_log_name() const = 0;

  /// Telemetry hub for FSM/update instrumentation. Default: none (bare
  /// test hosts); attached nodes forward their network's hub.
  virtual telemetry::Telemetry* session_telemetry() { return nullptr; }
};

struct SessionConfig {
  core::SessionId id;
  core::AsNumber local_as;
  net::Ipv4Addr local_id;
  net::Ipv4Addr local_address;
  net::Ipv4Addr remote_address;
  /// Expected peer AS (0 = accept any, collector style).
  core::AsNumber expected_peer_as{0};
  Timers timers;
  /// Abstracted TCP connection setup bounds.
  core::Duration connect_delay_min{core::Duration::millis(10)};
  core::Duration connect_delay_max{core::Duration::millis(100)};
};

struct SessionCounters {
  std::uint64_t opens_rx{0};
  std::uint64_t updates_rx{0};
  std::uint64_t updates_tx{0};
  std::uint64_t keepalives_rx{0};
  std::uint64_t keepalives_tx{0};
  std::uint64_t notifications_rx{0};
  std::uint64_t notifications_tx{0};
  std::uint64_t decode_errors{0};
  std::uint64_t flaps{0};  // established -> down transitions
};

class Session {
 public:
  Session(SessionHost& host, SessionConfig config)
      : host_{host}, config_{std::move(config)} {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Begin connecting (Idle -> Connect). Safe to call repeatedly.
  void start();

  /// Administrative or link-driven stop; sends no messages (the link is
  /// presumed dead). If the session was established the host gets
  /// session_down(). With `auto_restart`, the session re-enters Connect
  /// after a jittered connect-retry delay (protocol failures recover this
  /// way; link-down stops wait for the link-up event instead).
  void stop(const std::string& reason, bool auto_restart = false);

  /// Feed received wire bytes into the FSM.
  void receive(const std::vector<std::byte>& wire);

  /// Send an UPDATE (only valid when established).
  void send_update(const UpdateMessage& update);

  SessionState state() const { return state_; }
  bool established() const { return state_ == SessionState::kEstablished; }
  const SessionConfig& config() const { return config_; }
  core::SessionId id() const { return config_.id; }
  /// Peer AS learned from the OPEN (valid once past OpenSent).
  core::AsNumber peer_as() const { return peer_as_; }
  net::Ipv4Addr peer_bgp_id() const { return peer_id_; }
  const SessionCounters& counters() const { return counters_; }
  /// Negotiated codec (4-octet AS iff both sides advertised it).
  const CodecOptions& codec() const { return codec_; }
  /// Negotiated hold time in seconds; 0 until an OPEN has been accepted on
  /// the current connection (stop() resets it).
  std::uint16_t negotiated_hold_s() const { return negotiated_hold_s_; }

 private:
  /// Single funnel for every FSM state change: updates counters, emits an
  /// instant "fsm" trace span, and records the connect→established latency.
  void transition(SessionState next);
  void init_metrics();
  void transmit(const Message& m);
  void on_open(const OpenMessage& m);
  void on_keepalive();
  void on_update(const UpdateMessage& m);
  void on_notification(const NotificationMessage& m);
  void enter_established();
  void fail(std::uint8_t code, std::uint8_t subcode, const std::string& reason);
  void reset_hold_timer();
  void arm_keepalive_timer();
  void cancel_timers();
  void log(const std::string& event, const std::string& detail);

  SessionHost& host_;
  SessionConfig config_;
  SessionState state_{SessionState::kIdle};
  core::AsNumber peer_as_{0};
  net::Ipv4Addr peer_id_;
  bool peer_four_octet_{false};
  CodecOptions codec_{};
  SessionCounters counters_;
  core::TimerId connect_timer_{core::TimerId::invalid()};
  core::TimerId hold_timer_{core::TimerId::invalid()};
  core::TimerId keepalive_timer_{core::TimerId::invalid()};
  /// Negotiated hold time (min of both sides), seconds.
  std::uint16_t negotiated_hold_s_{0};
  /// Guards stale timer callbacks after resets.
  std::uint64_t epoch_{0};
  /// When the current connect attempt began (for the establish histogram).
  core::TimePoint connect_started_{};
  /// Cached metric handles (network-wide aggregates); nullptr when the host
  /// has no telemetry. Resolved once on first use.
  bool metrics_resolved_{false};
  telemetry::Counter* updates_tx_metric_{nullptr};
  telemetry::Counter* updates_rx_metric_{nullptr};
  telemetry::Counter* transitions_metric_{nullptr};
};

}  // namespace bgpsdn::bgp
