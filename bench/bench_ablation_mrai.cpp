// Baseline sensitivity: MRAI drives BGP path exploration.
//
// The paper's BGP baseline inherits Quagga's 30 s eBGP MRAI; this ablation
// verifies that the framework's withdrawal convergence behaves like the
// classic BGP result (convergence ~ O(clique size x MRAI)) and quantifies
// how the Fig. 2 baseline would move under different MRAI settings —
// the knob that dominates the absolute numbers of the reproduction.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  std::printf("# BGP-only withdrawal convergence [s]: clique size x MRAI\n");
  std::printf("# medians over %zu runs\n", runs);
  std::printf("clique\\mrai");
  const double mrais[] = {0.0, 5.0, 15.0, 30.0};
  const std::size_t cliques[] = {4, 8, 12, 16};
  constexpr std::size_t kCols = std::size(mrais);
  for (const double m : mrais) std::printf("\t%.0fs", m);
  std::printf("\n");

  // Every (clique, MRAI, seed) triple is one independent simulation; run
  // the whole grid on the shared pool and print it cell by cell after.
  framework::ParamSweepRunner runner{runs, cli.seed_or(3000)};
  const auto sweep = runner.run(
      std::size(cliques) * kCols, [&](std::size_t point, std::uint64_t seed) {
        const auto cell =
            framework::ExperimentSpecBuilder{}
                .topology(framework::TopologyModel::kClique,
                          cliques[point / kCols])
                .event(framework::EventKind::kWithdrawal)
                .config(bench::paper_config())
                .mrai(core::Duration::seconds_f(mrais[point % kCols]))
                .build();
        return cell.run_trial(seed);
      });
  for (std::size_t row = 0; row < std::size(cliques); ++row) {
    std::printf("%zu", cliques[row]);
    for (std::size_t col = 0; col < kCols; ++col) {
      std::printf("\t%.2f", sweep.points[row * kCols + col].summary.median);
    }
    std::printf("\n");
  }
  bench::print_parallel_footer(sweep);
  if (cli.want_json()) {
    framework::BenchReport report{"ablation_mrai"};
    report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
    for (std::size_t row = 0; row < std::size(cliques); ++row) {
      for (std::size_t col = 0; col < kCols; ++col) {
        const auto& point = sweep.points[row * kCols + col];
        char label[48];
        std::snprintf(label, sizeof label, "clique%zu_mrai%.0fs", cliques[row],
                      mrais[col]);
        report.add_point(label, point.summary, point.values);
      }
    }
    report.set_footer(static_cast<std::int64_t>(sweep.trials),
                      static_cast<std::int64_t>(sweep.jobs), sweep.wall_seconds,
                      sweep.trial_seconds);
    bench::finish_report(report, cli);
  }
  return 0;
}
