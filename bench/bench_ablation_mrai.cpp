// Baseline sensitivity: MRAI drives BGP path exploration.
//
// The paper's BGP baseline inherits Quagga's 30 s eBGP MRAI; this ablation
// verifies that the framework's withdrawal convergence behaves like the
// classic BGP result (convergence ~ O(clique size x MRAI)) and quantifies
// how the Fig. 2 baseline would move under different MRAI settings —
// the knob that dominates the absolute numbers of the reproduction.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

int main() {
  const std::size_t runs = bench::default_runs();
  std::printf("# BGP-only withdrawal convergence [s]: clique size x MRAI\n");
  std::printf("# medians over %zu runs\n", runs);
  std::printf("clique\\mrai");
  const double mrais[] = {0.0, 5.0, 15.0, 30.0};
  for (const double m : mrais) std::printf("\t%.0fs", m);
  std::printf("\n");
  for (const std::size_t n : {4u, 8u, 12u, 16u}) {
    std::printf("%zu", n);
    for (const double mrai_s : mrais) {
      bench::ScenarioParams params;
      params.clique_size = n;
      params.sdn_count = 0;
      params.event = bench::Event::kWithdrawal;
      params.config = bench::paper_config();
      params.config.timers.mrai = core::Duration::seconds_f(mrai_s);
      framework::TrialRunner runner{runs, 3000};
      const auto s = runner.run([&](std::uint64_t seed) {
        return bench::run_convergence_trial(params, seed);
      });
      std::printf("\t%.2f", s.median);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
