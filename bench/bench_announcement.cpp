// §4 prose result: new-prefix announcement shows smaller reductions than
// withdrawal.
//
// After initial convergence AS 1 announces a second, previously unknown
// prefix. Announcement propagation has no path hunting — every AS accepts
// the first (and best) path it hears, so convergence is a single wave of
// updates bounded by one MRAI round; centralization helps only modestly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bgpsdn;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  framework::BenchReport report{"announcement"};
  bench::run_sdn_sweep(bench::EventKind::kAnnouncement, 16,
                       cli.runs_or(bench::default_runs()),
                       bench::paper_config(),
                       cli.want_json() ? &report : nullptr,
                       cli.seed_or(1000));
  bench::finish_report(report, cli);
  return 0;
}
