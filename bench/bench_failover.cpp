// §4 prose result: "route fail-over ... experiments did not show this
// linear improvement, but smaller reductions."
//
// A dual-homed stub AS originates the prefix: primary link into clique
// member AS 1, backup path via an intermediate AS into the opposite side
// of the clique. Failing the primary link is a classic Tlong event: the
// clique hunts from the short [1 100] routes towards the valid but longer
// [.. 101 100] backup, but the exploration terminates as soon as the
// backup is found — far fewer MRAI rounds than a full withdrawal, so
// centralization helps less and non-linearly (the paper's observation).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bgpsdn;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  framework::BenchReport report{"failover"};
  bench::run_sdn_sweep(bench::EventKind::kFailover, 16,
                       cli.runs_or(bench::default_runs()),
                       bench::paper_config(),
                       cli.want_json() ? &report : nullptr,
                       cli.seed_or(1000));
  bench::finish_report(report, cli);
  return 0;
}
