// Related-work comparison: the paper's IDR controller vs a RouteFlow-style
// baseline on the Fig. 2 withdrawal scenario.
//
// "RouteFlow is a platform where the controller application mirrors the
// SDN topology to a virtual network and runs a legacy routing protocol on
// top of it. Our controller however does not rely on routing decisions of
// legacy protocols but runs its own algorithms, enabling better
// integration with SDN concepts."
//
// Both controllers drive identical clusters on identical scenarios. The
// IDR controller computes routes centrally (one delayed recomputation per
// burst), so convergence falls with the SDN fraction; RouteFlow's mirrored
// virtual routers hunt at legacy BGP speed, so centralizing more ASes buys
// little — the cluster is BGP all the way down.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

namespace {

double run_one(framework::ControllerStyle style, std::size_t sdn_count,
               std::uint64_t seed) {
  framework::ExperimentConfig cfg = bench::paper_config();
  cfg.seed = seed;
  cfg.controller_style = style;
  const auto spec = topology::clique(16);
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < sdn_count; ++i) {
    members.insert(core::AsNumber{static_cast<std::uint32_t>(16 - i)});
  }
  framework::Experiment exp{spec, members, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  if (!exp.start(core::Duration::seconds(600))) return -1;
  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged(framework::WaitOpts{
      core::Duration::seconds(61), core::Duration::seconds(3600)});
  return conv.since(t0).to_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  std::printf("# withdrawal convergence [s] on a 16-AS clique: IDR controller "
              "vs RouteFlow-style mirror\n");
  std::printf("# medians over %zu runs, paper-faithful timers\n", runs);
  std::printf("sdn_frac\tidr\trouteflow\n");
  const std::size_t fractions[] = {0, 4, 8, 12, 15};
  // Point = (fraction, controller style); both styles of a fraction are
  // independent simulations, so the whole comparison shares one pool.
  framework::ParamSweepRunner runner{runs, 6000};
  const auto sweep = runner.run(
      std::size(fractions) * 2, [&](std::size_t point, std::uint64_t seed) {
        const auto style = point % 2 == 0
                               ? framework::ControllerStyle::kIdrCentralized
                               : framework::ControllerStyle::kRouteFlowMirror;
        return run_one(style, fractions[point / 2], seed);
      });
  for (std::size_t f = 0; f < std::size(fractions); ++f) {
    std::printf("%zu/16\t%.2f\t%.2f\n", fractions[f],
                sweep.points[2 * f].summary.median,
                sweep.points[2 * f + 1].summary.median);
  }
  bench::print_parallel_footer(sweep);
  if (cli.want_json()) {
    framework::BenchReport report{"routeflow_comparison"};
    report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
    for (std::size_t f = 0; f < std::size(fractions); ++f) {
      for (std::size_t style = 0; style < 2; ++style) {
        const auto& point = sweep.points[2 * f + style];
        char label[48];
        std::snprintf(label, sizeof label, "sdn%zu_%s", fractions[f],
                      style == 0 ? "idr" : "routeflow");
        report.add_point(label, point.summary, point.values);
      }
    }
    report.set_footer(static_cast<std::int64_t>(sweep.trials),
                      static_cast<std::int64_t>(sweep.jobs), sweep.wall_seconds,
                      sweep.trial_seconds);
    bench::finish_report(report, cli);
  }
  return 0;
}
