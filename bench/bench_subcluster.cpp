// Sub-cluster resilience experiment (paper objective §2: "an intra-cluster
// link failure does not isolate the controlled ASes: paths over the legacy
// Internet could still connect the sub-clusters").
//
// Topology: an interleaved line 1-[2]-3-[4]-5-... where every even AS is
// an SDN member. Members are mutually non-adjacent, so each is its own
// sub-cluster, and every member beyond the first only hears routes to the
// origin (AS 1) whose AS paths cross the members closer to the origin —
// exactly the situation where the naive "prune anything crossing the
// cluster" rule isolates the deep members, while the fixpoint bridging
// rule settles them pass by pass over the legacy hops in between. We
// report, with bridging ON vs OFF:
//   * how many member switches can route the origin prefix,
//   * end-to-end reachability from the deepest member's host,
//   * convergence time of the withdrawal that follows.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

namespace {

struct Result {
  std::size_t members_routed{0};
  std::size_t members_total{0};
  bool deep_host_reachable{false};
  double withdrawal_conv_s{0};
};

Result run(bool bridging, std::size_t members_n, std::uint64_t seed) {
  framework::ExperimentConfig cfg = bench::paper_config();
  cfg.seed = seed;
  cfg.subcluster_bridging = bridging;
  cfg.timers.mrai = core::Duration::seconds(5);  // keep the sweep snappy

  // Interleaved line: AS 2, 4, 6, ... are members.
  const std::size_t total = 2 * members_n + 1;
  const auto spec = topology::line(total);
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < members_n; ++i) {
    members.insert(core::AsNumber{static_cast<std::uint32_t>(2 * (i + 1))});
  }

  framework::Experiment exp{spec, members, cfg};
  auto& origin_host = exp.add_host(core::AsNumber{1});
  const core::AsNumber deepest{static_cast<std::uint32_t>(2 * members_n)};
  exp.add_host(deepest);
  if (!exp.start()) return {};

  Result res;
  res.members_total = members_n;
  const auto pfx = exp.as_prefix(core::AsNumber{1});
  const auto* decision = exp.idr_controller()->decision_for(pfx);
  for (const auto as : members) {
    if (decision != nullptr &&
        decision->reachable(exp.member_switch(as).dpid())) {
      ++res.members_routed;
    }
  }
  res.deep_host_reachable =
      !exp.trace_route(deepest, origin_host.address()).empty();

  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged(framework::WaitOpts{
      core::Duration::seconds(11), core::Duration::seconds(1200)});
  res.withdrawal_conv_s = conv.since(t0).to_seconds();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  std::printf(
      "# sub-cluster bridging: interleaved line 1-[2]-3-[4]-..., origin at "
      "AS1\n");
  std::printf("# medians over %zu runs; MRAI 5 s\n", runs);
  std::printf("members\tbridging\trouted\tdeep_reach\twithdraw_conv_s\n");
  const std::size_t member_counts[] = {2, 4, 6};
  // Point = (members_n, bridging) combo, bridging fastest-varying to match
  // the printed row order.
  std::vector<Result> grid;
  const auto timing = bench::run_trial_grid(
      std::size(member_counts) * 2, runs, grid,
      [&](std::size_t point, std::size_t r) {
        return run(point % 2 == 1, member_counts[point / 2], 4000 + r);
      });
  framework::BenchReport report{"subcluster"};
  report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
  for (std::size_t point = 0; point < std::size(member_counts) * 2; ++point) {
    const std::size_t members_n = member_counts[point / 2];
    const bool bridging = point % 2 == 1;
    std::vector<double> routed, reach, conv;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto& res = grid[point * runs + r];
      routed.push_back(static_cast<double>(res.members_routed));
      reach.push_back(res.deep_host_reachable ? 1.0 : 0.0);
      conv.push_back(res.withdrawal_conv_s);
    }
    std::printf("%zu\t%s\t%.0f/%zu\t%.0f%%\t%.2f\n", members_n,
                bridging ? "on" : "off", framework::quantile(routed, 0.5),
                members_n, 100.0 * framework::quantile(reach, 0.5),
                framework::quantile(conv, 0.5));
    std::fflush(stdout);
    if (cli.want_json()) {
      char label[48];
      std::snprintf(label, sizeof label, "members%zu_bridging_%s", members_n,
                    bridging ? "on" : "off");
      telemetry::Json extra = telemetry::Json::object();
      extra["members_total"] = static_cast<std::int64_t>(members_n);
      extra["routed_median"] = framework::quantile(routed, 0.5);
      extra["deep_reach_median"] = framework::quantile(reach, 0.5);
      report.add_point(label, framework::summarize(conv), conv,
                       std::move(extra));
    }
  }
  bench::print_parallel_footer(timing);
  report.set_footer(static_cast<std::int64_t>(timing.trials),
                    static_cast<std::int64_t>(timing.jobs),
                    timing.wall_seconds, timing.trial_seconds);
  bench::finish_report(report, cli);
  return 0;
}
