// Internet-scale RIB sweep: convergence wall cost and deterministic memory
// footprint as the AS count grows to 10k+.
//
// Two cell families:
//
//   il<N>_<event>      three-tier internet-like topologies (N total ASes,
//                      4 uplinks per non-core AS) under a withdrawal or a
//                      fresh announcement after full convergence. 16 origin
//                      ASes spread over the stub tier pre-announce 11 /24s
//                      each (176 prefixes), so the RIBs carry a real
//                      multi-prefix load — and because the 11 prefixes of an
//                      origin share one attribute bundle at every observer,
//                      the load exercises multi-NLRI UPDATE packing and
//                      attr-handle sharing the way full tables do.
//   caida<N>_withdrawal the synthesize_caida_text serial graphs, same
//                      pre-announced load, withdrawal event.
//
// plus one memory-comparison pair at the largest internet-like size:
// mem_compact_<N> / mem_reference_<N> run the identical seeded trial under
// both RIB layouts. Their point values are convergence *virtual* seconds —
// byte-identical across layouts by construction (the validator enforces
// equality) — and their extras carry the deterministic mem.* model bytes
// (slab/interner/RIB accounting, never OS RSS), which is where the
// compact-vs-reference ratio gate lives. The compact cell's bytes are also
// exported as top-level `mem.*` counters.
//
// Everything except the wall-clock footer is deterministic per seed:
// byte-identical at any BGPSDN_JOBS (check.sh diffs jobs=1 vs 4).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mem_stats.hpp"

using namespace bgpsdn;

namespace {

constexpr std::uint64_t kBaseSeed = 11000;
constexpr std::size_t kOrigins = 16;
constexpr std::size_t kPrefixesPerOrigin = 11;

struct Cell {
  std::string label;
  framework::TopologyModel model;
  std::size_t size;
  bench::EventKind event;
  bgp::RibLayout layout;
  std::size_t runs;
  bool mem_cell;
};

/// Per-trial observables; everything here is virtual-time or model-byte
/// deterministic (per seed), so it may land in points/extras/counters.
struct TrialResult {
  double seconds{-1.0};
  core::MemStats mem{};
  std::int64_t updates_rx{0};
  std::int64_t decision_runs{0};
};

/// Short-MRAI profile: paper semantics, but the virtual clock (and with it
/// the event count a trial simulates) stays proportionate at 10k ASes.
framework::ExperimentConfig scale_config(bgp::RibLayout layout) {
  framework::ExperimentConfig cfg;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.rib_layout = layout;
  cfg.with_collector = false;  // 10k collector sessions are not the subject
  return cfg;
}

framework::ExperimentSpec make_spec(const Cell& cell) {
  framework::ExperimentSpecBuilder builder;
  builder.topology(cell.model, cell.size)
      .event(cell.event)
      .config(scale_config(cell.layout))
      .trials(cell.runs)
      .base_seed(kBaseSeed);
  // 16 origins spread over the top half of the AS range (the stub tier of
  // internet_like numbers stubs last), 11 /24s each. The withdrawal event
  // retracts the first declared announcement, so it always retracts one
  // stub-homed prefix whose loss path-hunts across the whole hierarchy.
  const std::size_t step =
      std::max<std::size_t>(1, cell.size / (2 * kOrigins));
  for (std::size_t i = 0; i < kOrigins && i * step < cell.size; ++i) {
    const auto as =
        core::AsNumber{static_cast<std::uint32_t>(cell.size - i * step)};
    for (std::size_t j = 0; j < kPrefixesPerOrigin; ++j) {
      const auto octet =
          static_cast<std::uint8_t>(i * kPrefixesPerOrigin + j);
      builder.announce(as, net::Prefix{net::Ipv4Addr{198, 18, octet, 0}, 24});
    }
  }
  return builder.build();
}

TrialResult run_cell(const Cell& cell, std::uint64_t seed,
                     std::map<std::string, std::int64_t>* counters_out) {
  const framework::ExperimentSpec spec = make_spec(cell);
  auto experiment = spec.make_experiment(seed);
  if (!experiment->start(core::Duration::seconds(600))) {
    std::fprintf(stderr, "%s: trial failed to start (seed %llu)\n",
                 cell.label.c_str(), static_cast<unsigned long long>(seed));
    return {};
  }
  TrialResult result;
  const auto t0 = spec.inject_event(*experiment);
  const auto conv = experiment->wait_converged(
      framework::WaitOpts{spec.effective_quiet(), core::Duration::seconds(3600)});
  result.seconds = conv.since(t0).to_seconds();
  result.mem = experiment->memory_stats();
  std::map<std::string, std::int64_t> counters;
  bench::accumulate_counters(*experiment, counters);
  result.updates_rx = counters["bgp.session.updates_rx"];
  result.decision_runs = counters["bgp.decision.runs"];
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return result;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

telemetry::Json mem_json(const core::MemStats& mem) {
  telemetry::Json m = telemetry::Json::object();
  m["rib_in"] = static_cast<std::int64_t>(mem.rib_in);
  m["loc_rib"] = static_cast<std::int64_t>(mem.loc_rib);
  m["rib_out"] = static_cast<std::int64_t>(mem.rib_out);
  m["rib_total"] = static_cast<std::int64_t>(mem.rib_total());
  m["attr_pool"] = static_cast<std::int64_t>(mem.attr_pool);
  m["attr_registry"] = static_cast<std::int64_t>(mem.attr_registry);
  m["flow_tables"] = static_cast<std::int64_t>(mem.flow_tables);
  m["speaker_ribs"] = static_cast<std::int64_t>(mem.speaker_ribs);
  m["total"] = static_cast<std::int64_t>(mem.total());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const char* quick_env = std::getenv("BGPSDN_QUICK");
  const bool quick = quick_env != nullptr && quick_env[0] == '1';
  // Same run count (and thus the same seeds) under BGPSDN_QUICK: point
  // values are virtual-time deterministic per seed, so a quick sweep's
  // shared labels stay median-identical to the committed full baseline and
  // check.sh can gate them at near-zero tolerance.
  const std::size_t runs = cli.runs_or(3);

  const std::vector<std::size_t> il_sizes =
      quick ? std::vector<std::size_t>{100, 1000}
            : std::vector<std::size_t>{100, 1000, 10000};
  const std::vector<std::size_t> caida_sizes =
      quick ? std::vector<std::size_t>{100}
            : std::vector<std::size_t>{100, 1000};
  const std::size_t mem_size = il_sizes.back();

  std::vector<Cell> cells;
  for (const std::size_t size : il_sizes) {
    for (const auto event :
         {bench::EventKind::kWithdrawal, bench::EventKind::kAnnouncement}) {
      cells.push_back({"il" + std::to_string(size) + "_" +
                           framework::to_string(event),
                       framework::TopologyModel::kInternetLike, size, event,
                       bgp::RibLayout::kCompact, runs, false});
    }
  }
  for (const std::size_t size : caida_sizes) {
    cells.push_back({"caida" + std::to_string(size) + "_withdrawal",
                     framework::TopologyModel::kSynthCaida, size,
                     bench::EventKind::kWithdrawal, bgp::RibLayout::kCompact,
                     runs, false});
  }
  // The memory pair: one seeded trial each, identical except for the layout.
  cells.push_back({"mem_compact_" + std::to_string(mem_size),
                   framework::TopologyModel::kInternetLike, mem_size,
                   bench::EventKind::kWithdrawal, bgp::RibLayout::kCompact, 1,
                   true});
  cells.push_back({"mem_reference_" + std::to_string(mem_size),
                   framework::TopologyModel::kInternetLike, mem_size,
                   bench::EventKind::kWithdrawal, bgp::RibLayout::kReference,
                   1, true});

  // Task grid: cells have differing run counts, so flatten to (cell, run)
  // tasks by prefix sums rather than a rectangular grid.
  std::vector<std::size_t> first_task(cells.size() + 1, 0);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    first_task[c + 1] = first_task[c] + cells[c].runs;
  }
  const std::size_t tasks = first_task.back();

  std::printf("# convergence time [s] vs AS count (internet-like + synthetic "
              "CAIDA), %zu runs per sweep cell\n", runs);
  std::printf("# mem_* pair: same seeded trial under both RIB layouts; "
              "extras carry the deterministic mem model bytes\n");
  std::printf("%s\n", framework::boxplot_header("cell").c_str());

  std::vector<TrialResult> results;
  std::vector<std::map<std::string, std::int64_t>> task_counters(
      cli.want_json() ? tasks : 0);
  const auto timing = bench::run_trial_grid(
      tasks, 1, results, [&](std::size_t task, std::size_t) {
        const std::size_t c = static_cast<std::size_t>(
            std::upper_bound(first_task.begin(), first_task.end(), task) -
            first_task.begin() - 1);
        auto* counters = cli.want_json() ? &task_counters[task] : nullptr;
        return run_cell(cells[c], kBaseSeed + (task - first_task[c]),
                        counters);
      });

  framework::BenchReport report{"bench_scale"};
  core::MemStats compact_mem;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    std::vector<double> values, updates, decisions;
    for (std::size_t t = first_task[c]; t < first_task[c + 1]; ++t) {
      values.push_back(results[t].seconds);
      updates.push_back(static_cast<double>(results[t].updates_rx));
      decisions.push_back(static_cast<double>(results[t].decision_runs));
    }
    const auto summary = framework::summarize(values);
    std::printf("%s\n",
                framework::boxplot_row(cell.label, summary).c_str());
    telemetry::Json extra = telemetry::Json::object();
    extra["ases"] = static_cast<std::int64_t>(cell.size);
    extra["rib_layout"] = std::string{bgp::to_string(cell.layout)};
    extra["updates_rx_median"] = median_of(std::move(updates));
    extra["decision_runs_median"] = median_of(std::move(decisions));
    if (cell.mem_cell) {
      const core::MemStats& mem = results[first_task[c]].mem;
      extra["mem"] = mem_json(mem);
      std::printf("#   %s: rib %.1f MiB (in %.1f, loc %.1f, out %.1f), "
                  "attrs %.1f MiB, registry %.1f MiB\n",
                  cell.label.c_str(),
                  static_cast<double>(mem.rib_total()) / (1024.0 * 1024.0),
                  static_cast<double>(mem.rib_in) / (1024.0 * 1024.0),
                  static_cast<double>(mem.loc_rib) / (1024.0 * 1024.0),
                  static_cast<double>(mem.rib_out) / (1024.0 * 1024.0),
                  static_cast<double>(mem.attr_pool) / (1024.0 * 1024.0),
                  static_cast<double>(mem.attr_registry) / (1024.0 * 1024.0));
      if (cell.layout == bgp::RibLayout::kCompact) {
        compact_mem = mem;
      }
    }
    report.add_point(cell.label, summary, values, std::move(extra));
  }
  bench::print_parallel_footer(timing);

  if (cli.want_json()) {
    telemetry::Json sizes = telemetry::Json::array();
    for (const std::size_t size : il_sizes) {
      sizes.push_back(static_cast<std::int64_t>(size));
    }
    telemetry::Json caida = telemetry::Json::array();
    for (const std::size_t size : caida_sizes) {
      caida.push_back(static_cast<std::int64_t>(size));
    }
    report.set_param("il_sizes", std::move(sizes));
    report.set_param("caida_sizes", std::move(caida));
    report.set_param("mem_size",
                     telemetry::Json{static_cast<std::int64_t>(mem_size)});
    report.set_param("origins",
                     telemetry::Json{static_cast<std::int64_t>(kOrigins)});
    report.set_param(
        "prefixes_per_origin",
        telemetry::Json{static_cast<std::int64_t>(kPrefixesPerOrigin)});
    report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
    // The compact memory model as flat counters — the `mem.*` block new
    // tooling keys on (all keys new in bgpsdn.bench/1 documents).
    report.add_counter("mem.rib_in",
                       static_cast<std::int64_t>(compact_mem.rib_in));
    report.add_counter("mem.loc_rib",
                       static_cast<std::int64_t>(compact_mem.loc_rib));
    report.add_counter("mem.rib_out",
                       static_cast<std::int64_t>(compact_mem.rib_out));
    report.add_counter("mem.attr_pool",
                       static_cast<std::int64_t>(compact_mem.attr_pool));
    report.add_counter("mem.attr_registry",
                       static_cast<std::int64_t>(compact_mem.attr_registry));
    report.add_counter("mem.flow_tables",
                       static_cast<std::int64_t>(compact_mem.flow_tables));
    report.add_counter("mem.speaker_ribs",
                       static_cast<std::int64_t>(compact_mem.speaker_ribs));
    report.add_counter("mem.total",
                       static_cast<std::int64_t>(compact_mem.total()));
    for (const auto& per_task : task_counters) {
      for (const auto& [name, value] : per_task) {
        report.add_counter(name, value);
      }
    }
    report.set_footer(static_cast<std::int64_t>(timing.trials),
                      static_cast<std::int64_t>(timing.jobs),
                      timing.wall_seconds, timing.trial_seconds);
    bench::finish_report(report, cli);
  }
  return 0;
}
