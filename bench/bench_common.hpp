// Shared driver for the paper-reproduction experiment benches.
//
// Each bench binary reproduces one table/figure: it sweeps a parameter
// (SDN fraction, recompute delay, MRAI, clique size), runs N seeded trials
// per point, and prints the same boxplot rows the paper's figures show.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::bench {

/// Scenario injected after the network converged; returns the virtual time
/// of injection.
enum class Event { kWithdrawal, kFailover, kAnnouncement };

inline const char* to_string(Event e) {
  switch (e) {
    case Event::kWithdrawal: return "withdrawal";
    case Event::kFailover: return "failover";
    case Event::kAnnouncement: return "announcement";
  }
  return "?";
}

struct ScenarioParams {
  std::size_t clique_size{16};
  std::size_t sdn_count{0};
  Event event{Event::kWithdrawal};
  framework::ExperimentConfig config{};
};

/// One trial: build the hybrid clique (AS 1 is always legacy; members are
/// taken from the top AS numbers), converge, inject the event, and return
/// the convergence time in seconds.
///
/// Scenario shapes:
///  * kWithdrawal — AS 1 originates 10.0.0.0/16 and withdraws it; the
///    classic Tdown path-hunting experiment (paper Fig. 2).
///  * kFailover — a dual-homed stub (AS 100) originates the prefix with a
///    primary link to AS 1 and a backup path via AS 101 -> the highest
///    clique AS; the primary link fails (Tlong: hunt to a valid, longer
///    backup).
///  * kAnnouncement — after convergence AS 1 announces a fresh prefix
///    (Tup: a single propagation wave, no hunting).
inline double run_convergence_trial(const ScenarioParams& params,
                                    std::uint64_t seed) {
  framework::ExperimentConfig cfg = params.config;
  cfg.seed = seed;
  auto spec = topology::clique(params.clique_size);
  const core::AsNumber stub{100}, mid{101};
  const core::AsNumber primary{1};
  const core::AsNumber backup_attach{
      static_cast<std::uint32_t>(params.clique_size)};
  if (params.event == Event::kFailover) {
    spec.add_as(stub);
    spec.add_as(mid);
    spec.add_link(stub, primary);
    spec.add_link(stub, mid);
    spec.add_link(mid, backup_attach);
  }
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < params.sdn_count; ++i) {
    members.insert(core::AsNumber{
        static_cast<std::uint32_t>(params.clique_size - i)});
  }
  framework::Experiment exp{spec, members, cfg};
  const core::AsNumber origin =
      params.event == Event::kFailover ? stub : primary;
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(origin, pfx);
  if (!exp.start()) {
    std::fprintf(stderr, "trial failed to start (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
    return -1.0;
  }

  const auto t0 = exp.loop().now();
  switch (params.event) {
    case Event::kWithdrawal:
      exp.withdraw_prefix(origin, pfx);
      break;
    case Event::kFailover:
      exp.fail_link(stub, primary);
      break;
    case Event::kAnnouncement:
      exp.announce_prefix(origin, *net::Prefix::parse("10.200.0.0/16"));
      break;
  }
  const auto quiet = cfg.timers.mrai * 2 + core::Duration::seconds(1);
  const auto conv = exp.wait_converged(quiet, core::Duration::seconds(3600));
  return (conv - t0).to_seconds();
}

/// Footer every bench prints after a parallel sweep: real wall time, the
/// serial-equivalent time (sum of per-trial wall times — what jobs=1 would
/// have cost), and the measured speedup between the two.
inline void print_parallel_footer(std::size_t trials, std::size_t jobs,
                                  double wall_s, double trial_s) {
  std::printf(
      "# sweep: %zu trials, jobs=%zu, wall %.2f s, serial-equivalent %.2f s, "
      "speedup %.2fx, %.2f trials/s\n",
      trials, jobs, wall_s, trial_s, wall_s > 0 ? trial_s / wall_s : 0.0,
      wall_s > 0 ? static_cast<double>(trials) / wall_s : 0.0);
  std::fflush(stdout);
}

inline void print_parallel_footer(const framework::SweepResult& sweep) {
  print_parallel_footer(sweep.trials, sweep.jobs, sweep.wall_seconds,
                        sweep.trial_seconds);
}

/// Timing of a run_trial_grid call (benches whose trials return structs).
struct GridTiming {
  std::size_t trials{0};
  std::size_t jobs{1};
  double wall_seconds{0};
  double trial_seconds{0};
};

/// Runs fn(point, run) for every (point, run) pair on a shared worker pool
/// honoring BGPSDN_JOBS, storing results by index — deterministic output
/// order regardless of the job count. For benches whose trials produce a
/// metrics struct rather than one double.
template <typename R, typename Fn>
GridTiming run_trial_grid(std::size_t points, std::size_t runs,
                          std::vector<R>& results, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  GridTiming timing;
  timing.trials = points * runs;
  timing.jobs = framework::default_jobs();
  results.assign(points * runs, R{});
  std::vector<double> seconds(points * runs, 0.0);
  const auto t0 = Clock::now();
  framework::parallel_for_index(
      points * runs, timing.jobs, [&](std::size_t task) {
        const auto s0 = Clock::now();
        results[task] = fn(task / runs, task % runs);
        seconds[task] =
            std::chrono::duration<double>(Clock::now() - s0).count();
      });
  timing.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const double s : seconds) timing.trial_seconds += s;
  return timing;
}

inline void print_parallel_footer(const GridTiming& timing) {
  print_parallel_footer(timing.trials, timing.jobs, timing.wall_seconds,
                        timing.trial_seconds);
}

/// Print a full SDN-fraction sweep as boxplot rows. Trials run in parallel
/// across both fractions and seeds (BGPSDN_JOBS workers); rows keep the
/// exact serial-run values, plus each row's serial-equivalent seconds and
/// effective trials/sec.
inline void run_sdn_sweep(Event event, std::size_t clique_size, std::size_t runs,
                          const framework::ExperimentConfig& base_config) {
  std::printf("# %s convergence time [s] on a %zu-AS clique vs SDN fraction\n",
              to_string(event), clique_size);
  std::printf("# boxplots over %zu runs (paper: %s)\n", runs,
              event == Event::kWithdrawal
                  ? "Fig. 2"
                  : "SS4 prose result, smaller reductions than Fig. 2");
  std::printf("%s\ttrial_s\ttrials_per_s\n",
              framework::boxplot_header("sdn_frac").c_str());
  framework::ParamSweepRunner runner{runs, 1000};
  const auto sweep = runner.run(clique_size,
                                [&](std::size_t k, std::uint64_t seed) {
    ScenarioParams params;
    params.clique_size = clique_size;
    params.sdn_count = k;
    params.event = event;
    params.config = base_config;
    return run_convergence_trial(params, seed);
  });
  for (std::size_t k = 0; k < clique_size; ++k) {
    const auto& row = sweep.points[k];
    char label[32];
    std::snprintf(label, sizeof label, "%zu/%zu", k, clique_size);
    std::printf("%s\t%.2f\t%.2f\n",
                framework::boxplot_row(label, row.summary).c_str(),
                row.trial_seconds, row.trials_per_second());
  }
  print_parallel_footer(sweep);
}

/// Paper-faithful timer defaults (Quagga eBGP profile).
inline framework::ExperimentConfig paper_config() {
  framework::ExperimentConfig cfg;
  // Defaults in bgp::Timers already match (MRAI 30 s, keepalive 30 s,
  // hold 90 s); recompute delay 2 s.
  return cfg;
}

/// Trial count: 10 as in the paper; BGPSDN_QUICK=1 drops to 3 for smoke runs.
inline std::size_t default_runs() {
  const char* quick = std::getenv("BGPSDN_QUICK");
  return (quick != nullptr && quick[0] == '1') ? 3 : 10;
}

}  // namespace bgpsdn::bench
