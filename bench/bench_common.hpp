// Shared driver for the paper-reproduction experiment benches.
//
// Each bench binary reproduces one table/figure: it sweeps a parameter
// (SDN fraction, recompute delay, MRAI, clique size), runs N seeded trials
// per point, and prints the same boxplot rows the paper's figures show.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/report.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::bench {

/// Options common to every bench binary.
struct BenchCli {
  /// Where to write the bgpsdn.bench/1 JSON document; empty = stdout only.
  std::string json_path;

  bool want_json() const { return !json_path.empty(); }
};

/// Parses `--json <path>` / `--help`; exits on usage errors, so benches can
/// call it first thing in main().
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
        std::exit(2);
      }
      cli.json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--json <path>]\n\n"
          "Runs the bench and prints boxplot rows to stdout. With --json it\n"
          "additionally writes a schema-stable bgpsdn.bench/1 JSON document\n"
          "(everything but the wall-clock footer is deterministic per seed).\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0],
                   arg.c_str());
      std::exit(2);
    }
  }
  return cli;
}

/// Writes the report if --json was given; exits non-zero on I/O failure.
inline void finish_report(const framework::BenchReport& report,
                          const BenchCli& cli) {
  if (!cli.want_json()) return;
  if (!report.write_file(cli.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", cli.json_path.c_str());
    std::exit(1);
  }
  std::printf("# json: %s\n", cli.json_path.c_str());
}

/// Sums every telemetry counter of a finished experiment into `out` —
/// the "key counters" block of the JSON reports.
inline void accumulate_counters(framework::Experiment& exp,
                                std::map<std::string, std::int64_t>& out) {
  telemetry::Json snap = exp.telemetry().metrics().snapshot();
  for (const auto& [name, value] : snap["counters"].entries()) {
    out[name] += value.as_int();
  }
}

/// Scenario injected after the network converged; returns the virtual time
/// of injection.
enum class Event { kWithdrawal, kFailover, kAnnouncement };

inline const char* to_string(Event e) {
  switch (e) {
    case Event::kWithdrawal: return "withdrawal";
    case Event::kFailover: return "failover";
    case Event::kAnnouncement: return "announcement";
  }
  return "?";
}

struct ScenarioParams {
  std::size_t clique_size{16};
  std::size_t sdn_count{0};
  Event event{Event::kWithdrawal};
  framework::ExperimentConfig config{};
};

/// One trial: build the hybrid clique (AS 1 is always legacy; members are
/// taken from the top AS numbers), converge, inject the event, and return
/// the convergence time in seconds.
///
/// Scenario shapes:
///  * kWithdrawal — AS 1 originates 10.0.0.0/16 and withdraws it; the
///    classic Tdown path-hunting experiment (paper Fig. 2).
///  * kFailover — a dual-homed stub (AS 100) originates the prefix with a
///    primary link to AS 1 and a backup path via AS 101 -> the highest
///    clique AS; the primary link fails (Tlong: hunt to a valid, longer
///    backup).
///  * kAnnouncement — after convergence AS 1 announces a fresh prefix
///    (Tup: a single propagation wave, no hunting).
inline double run_convergence_trial(
    const ScenarioParams& params, std::uint64_t seed,
    std::map<std::string, std::int64_t>* counters_out = nullptr) {
  framework::ExperimentConfig cfg = params.config;
  cfg.seed = seed;
  auto spec = topology::clique(params.clique_size);
  const core::AsNumber stub{100}, mid{101};
  const core::AsNumber primary{1};
  const core::AsNumber backup_attach{
      static_cast<std::uint32_t>(params.clique_size)};
  if (params.event == Event::kFailover) {
    spec.add_as(stub);
    spec.add_as(mid);
    spec.add_link(stub, primary);
    spec.add_link(stub, mid);
    spec.add_link(mid, backup_attach);
  }
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < params.sdn_count; ++i) {
    members.insert(core::AsNumber{
        static_cast<std::uint32_t>(params.clique_size - i)});
  }
  framework::Experiment exp{spec, members, cfg};
  const core::AsNumber origin =
      params.event == Event::kFailover ? stub : primary;
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(origin, pfx);
  if (!exp.start()) {
    std::fprintf(stderr, "trial failed to start (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
    return -1.0;
  }

  const auto t0 = exp.loop().now();
  switch (params.event) {
    case Event::kWithdrawal:
      exp.withdraw_prefix(origin, pfx);
      break;
    case Event::kFailover:
      exp.fail_link(stub, primary);
      break;
    case Event::kAnnouncement:
      exp.announce_prefix(origin, *net::Prefix::parse("10.200.0.0/16"));
      break;
  }
  const auto quiet = cfg.timers.mrai * 2 + core::Duration::seconds(1);
  const auto conv = exp.wait_converged(
      framework::WaitOpts{quiet, core::Duration::seconds(3600)});
  if (counters_out != nullptr) accumulate_counters(exp, *counters_out);
  return conv.since(t0).to_seconds();
}

/// Footer every bench prints after a parallel sweep: real wall time, the
/// serial-equivalent time (sum of per-trial wall times — what jobs=1 would
/// have cost), and the measured speedup between the two.
inline void print_parallel_footer(std::size_t trials, std::size_t jobs,
                                  double wall_s, double trial_s) {
  std::printf(
      "# sweep: %zu trials, jobs=%zu, wall %.2f s, serial-equivalent %.2f s, "
      "speedup %.2fx, %.2f trials/s\n",
      trials, jobs, wall_s, trial_s, wall_s > 0 ? trial_s / wall_s : 0.0,
      wall_s > 0 ? static_cast<double>(trials) / wall_s : 0.0);
  std::fflush(stdout);
}

inline void print_parallel_footer(const framework::SweepResult& sweep) {
  print_parallel_footer(sweep.trials, sweep.jobs, sweep.wall_seconds,
                        sweep.trial_seconds);
}

/// Timing of a run_trial_grid call (benches whose trials return structs).
struct GridTiming {
  std::size_t trials{0};
  std::size_t jobs{1};
  double wall_seconds{0};
  double trial_seconds{0};
};

/// Runs fn(point, run) for every (point, run) pair on a shared worker pool
/// honoring BGPSDN_JOBS, storing results by index — deterministic output
/// order regardless of the job count. For benches whose trials produce a
/// metrics struct rather than one double.
template <typename R, typename Fn>
GridTiming run_trial_grid(std::size_t points, std::size_t runs,
                          std::vector<R>& results, Fn&& fn) {
  // lint: wall-clock-ok(wall/serial-equivalent footer timing only; never
  // feeds simulation state or the deterministic JSON points/counters)
  using Clock = std::chrono::steady_clock;
  GridTiming timing;
  timing.trials = points * runs;
  timing.jobs = framework::default_jobs();
  results.assign(points * runs, R{});
  std::vector<double> seconds(points * runs, 0.0);
  const auto t0 = Clock::now();
  framework::parallel_for_index(
      points * runs, timing.jobs, [&](std::size_t task) {
        const auto s0 = Clock::now();
        results[task] = fn(task / runs, task % runs);
        seconds[task] =
            std::chrono::duration<double>(Clock::now() - s0).count();
      });
  timing.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const double s : seconds) timing.trial_seconds += s;
  return timing;
}

inline void print_parallel_footer(const GridTiming& timing) {
  print_parallel_footer(timing.trials, timing.jobs, timing.wall_seconds,
                        timing.trial_seconds);
}

/// Print a full SDN-fraction sweep as boxplot rows. Trials run in parallel
/// across both fractions and seeds (BGPSDN_JOBS workers); rows keep the
/// exact serial-run values, plus each row's serial-equivalent seconds and
/// effective trials/sec.
inline void run_sdn_sweep(Event event, std::size_t clique_size, std::size_t runs,
                          const framework::ExperimentConfig& base_config,
                          framework::BenchReport* report = nullptr) {
  constexpr std::uint64_t kBaseSeed = 1000;
  std::printf("# %s convergence time [s] on a %zu-AS clique vs SDN fraction\n",
              to_string(event), clique_size);
  std::printf("# boxplots over %zu runs (paper: %s)\n", runs,
              event == Event::kWithdrawal
                  ? "Fig. 2"
                  : "SS4 prose result, smaller reductions than Fig. 2");
  std::printf("%s\ttrial_s\ttrials_per_s\n",
              framework::boxplot_header("sdn_frac").c_str());
  // Per-task counter snapshots land in index-addressed slots and are summed
  // in task order after the sweep — deterministic at any job count.
  std::vector<std::map<std::string, std::int64_t>> task_counters(
      report != nullptr ? clique_size * runs : 0);
  framework::ParamSweepRunner runner{runs, kBaseSeed};
  const auto sweep = runner.run(clique_size,
                                [&](std::size_t k, std::uint64_t seed) {
    ScenarioParams params;
    params.clique_size = clique_size;
    params.sdn_count = k;
    params.event = event;
    params.config = base_config;
    auto* counters =
        report != nullptr
            ? &task_counters[k * runs + static_cast<std::size_t>(seed - kBaseSeed)]
            : nullptr;
    return run_convergence_trial(params, seed, counters);
  });
  for (std::size_t k = 0; k < clique_size; ++k) {
    const auto& row = sweep.points[k];
    char label[32];
    std::snprintf(label, sizeof label, "%zu/%zu", k, clique_size);
    std::printf("%s\t%.2f\t%.2f\n",
                framework::boxplot_row(label, row.summary).c_str(),
                row.trial_seconds, row.trials_per_second());
    if (report != nullptr) report->add_point(label, row.summary, row.values);
  }
  print_parallel_footer(sweep);
  if (report != nullptr) {
    report->set_param("event", telemetry::Json{std::string{to_string(event)}});
    report->set_param("clique_size",
                      telemetry::Json{static_cast<std::int64_t>(clique_size)});
    report->set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
    for (const auto& per_task : task_counters) {
      for (const auto& [name, value] : per_task) {
        report->add_counter(name, value);
      }
    }
    report->set_footer(static_cast<std::int64_t>(sweep.trials),
                       static_cast<std::int64_t>(sweep.jobs),
                       sweep.wall_seconds, sweep.trial_seconds);
  }
}

/// Paper-faithful timer defaults (Quagga eBGP profile).
inline framework::ExperimentConfig paper_config() {
  framework::ExperimentConfig cfg;
  // Defaults in bgp::Timers already match (MRAI 30 s, keepalive 30 s,
  // hold 90 s); recompute delay 2 s.
  return cfg;
}

/// Trial count: 10 as in the paper; BGPSDN_QUICK=1 drops to 3 for smoke runs.
inline std::size_t default_runs() {
  const char* quick = std::getenv("BGPSDN_QUICK");
  return (quick != nullptr && quick[0] == '1') ? 3 : 10;
}

}  // namespace bgpsdn::bench
