// Shared driver for the paper-reproduction experiment benches.
//
// Each bench binary reproduces one table/figure: it sweeps a parameter
// (SDN fraction, recompute delay, MRAI, clique size), runs N seeded trials
// per point, and prints the same boxplot rows the paper's figures show.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "framework/experiment_spec.hpp"
#include "framework/report.hpp"
#include "topology/generators.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"

namespace bgpsdn::bench {

/// Options common to every bench binary.
struct BenchCli {
  /// Where to write the bgpsdn.bench/1 JSON document; empty = stdout only.
  std::string json_path;
  /// --trials / --seed overrides; unset = the bench's own defaults.
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;

  bool want_json() const { return !json_path.empty(); }
  std::size_t runs_or(std::size_t fallback) const {
    return trials ? *trials : fallback;
  }
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed ? *seed : fallback;
  }
};

/// Parses the shared bench options — `--json <path>`, `--trials N`,
/// `--seed S`, `--help` — and exits on usage errors, so benches can call it
/// first thing in main(). With `passthrough` non-null, unrecognized
/// arguments are collected there (argv[0] first) instead of rejected — for
/// benches that forward the rest to another parser (bench_micro ->
/// google-benchmark).
inline BenchCli parse_cli(int argc, char** argv,
                          std::vector<char*>* passthrough = nullptr) {
  BenchCli cli;
  if (passthrough != nullptr) passthrough->push_back(argv[0]);
  const auto value_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };
  const auto number_arg = [&](int& i, const char* flag) -> long long {
    const char* text = value_arg(i, flag);
    try {
      std::size_t used = 0;
      const long long parsed = std::stoll(text, &used);
      if (used != std::string{text}.size()) throw std::invalid_argument{text};
      return parsed;
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s: %s needs a number, got '%s'\n", argv[0], flag,
                   text);
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      cli.json_path = value_arg(i, "--json");
    } else if (arg == "--trials") {
      const long long v = number_arg(i, "--trials");
      if (v < 1) {
        std::fprintf(stderr, "%s: --trials must be >= 1\n", argv[0]);
        std::exit(2);
      }
      cli.trials = static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      cli.seed = static_cast<std::uint64_t>(number_arg(i, "--seed"));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--json <path>] [--trials N] [--seed S]\n\n"
          "Runs the bench and prints boxplot rows to stdout. With --json it\n"
          "additionally writes a schema-stable bgpsdn.bench/1 JSON document\n"
          "(everything but the wall-clock footer is deterministic per seed).\n"
          "--trials and --seed override the bench's run count and base seed\n"
          "(BGPSDN_QUICK=1 is the 3-run smoke default).\n",
          argv[0]);
      std::exit(0);
    } else if (passthrough != nullptr) {
      passthrough->push_back(argv[i]);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0],
                   arg.c_str());
      std::exit(2);
    }
  }
  return cli;
}

/// Writes the report if --json was given; exits non-zero on I/O failure.
inline void finish_report(const framework::BenchReport& report,
                          const BenchCli& cli) {
  if (!cli.want_json()) return;
  if (!report.write_file(cli.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", cli.json_path.c_str());
    std::exit(1);
  }
  std::printf("# json: %s\n", cli.json_path.c_str());
}

/// Sums every telemetry counter of a finished experiment into `out` —
/// the "key counters" block of the JSON reports (framework helper,
/// re-exported for the benches).
using framework::accumulate_counters;

/// Shorthands: the benches sweep EventKind cells over clique topologies.
using framework::EventKind;

/// The base spec every SDN-fraction sweep cell derives from: a hybrid
/// clique (AS 1 is always legacy; members come from the top AS numbers)
/// where the event is injected after convergence. See EventKind for the
/// scenario shapes (kWithdrawal = paper Fig. 2, kFailover = Tlong,
/// kAnnouncement = Tup).
inline framework::ExperimentSpec sweep_base_spec(
    EventKind event, std::size_t clique_size, std::size_t runs,
    const framework::ExperimentConfig& base_config, std::uint64_t base_seed) {
  return framework::ExperimentSpecBuilder{}
      .topology(framework::TopologyModel::kClique, clique_size)
      .event(event)
      .config(base_config)
      .trials(runs)
      .base_seed(base_seed)
      .build();
}

/// Footer every bench prints after a parallel sweep: real wall time, the
/// serial-equivalent time (sum of per-trial wall times — what jobs=1 would
/// have cost), and the measured speedup between the two.
inline void print_parallel_footer(std::size_t trials, std::size_t jobs,
                                  double wall_s, double trial_s) {
  std::printf(
      "# sweep: %zu trials, jobs=%zu, wall %.2f s, serial-equivalent %.2f s, "
      "speedup %.2fx, %.2f trials/s\n",
      trials, jobs, wall_s, trial_s, wall_s > 0 ? trial_s / wall_s : 0.0,
      wall_s > 0 ? static_cast<double>(trials) / wall_s : 0.0);
  std::fflush(stdout);
}

inline void print_parallel_footer(const framework::SweepResult& sweep) {
  print_parallel_footer(sweep.trials, sweep.jobs, sweep.wall_seconds,
                        sweep.trial_seconds);
}

/// Timing of a run_trial_grid call (benches whose trials return structs).
struct GridTiming {
  std::size_t trials{0};
  std::size_t jobs{1};
  double wall_seconds{0};
  double trial_seconds{0};
};

/// Runs fn(point, run) for every (point, run) pair on a shared worker pool
/// honoring BGPSDN_JOBS, storing results by index — deterministic output
/// order regardless of the job count. For benches whose trials produce a
/// metrics struct rather than one double.
template <typename R, typename Fn>
GridTiming run_trial_grid(std::size_t points, std::size_t runs,
                          std::vector<R>& results, Fn&& fn) {
  // lint: wall-clock-ok(wall/serial-equivalent footer timing only; never
  // feeds simulation state or the deterministic JSON points/counters)
  using Clock = std::chrono::steady_clock;
  GridTiming timing;
  timing.trials = points * runs;
  timing.jobs = framework::default_jobs();
  results.assign(points * runs, R{});
  std::vector<double> seconds(points * runs, 0.0);
  const auto t0 = Clock::now();
  framework::parallel_for_index(
      points * runs, timing.jobs, [&](std::size_t task) {
        const auto s0 = Clock::now();
        results[task] = fn(task / runs, task % runs);
        seconds[task] =
            std::chrono::duration<double>(Clock::now() - s0).count();
      });
  timing.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  // lint: float-order-ok(index-ordered vector, and wall timing is footer
  // diagnostics excluded from the determinism diff)
  for (const double s : seconds) timing.trial_seconds += s;
  return timing;
}

inline void print_parallel_footer(const GridTiming& timing) {
  print_parallel_footer(timing.trials, timing.jobs, timing.wall_seconds,
                        timing.trial_seconds);
}

/// Print a full SDN-fraction sweep as boxplot rows. Trials run in parallel
/// across both fractions and seeds (BGPSDN_JOBS workers); rows keep the
/// exact serial-run values, plus each row's serial-equivalent seconds and
/// effective trials/sec.
inline void run_sdn_sweep(EventKind event, std::size_t clique_size,
                          std::size_t runs,
                          const framework::ExperimentConfig& base_config,
                          framework::BenchReport* report = nullptr,
                          std::uint64_t base_seed = 1000) {
  std::printf("# %s convergence time [s] on a %zu-AS clique vs SDN fraction\n",
              framework::to_string(event), clique_size);
  std::printf("# boxplots over %zu runs (paper: %s)\n", runs,
              event == EventKind::kWithdrawal
                  ? "Fig. 2"
                  : "SS4 prose result, smaller reductions than Fig. 2");
  std::printf("%s\ttrial_s\ttrials_per_s\n",
              framework::boxplot_header("sdn_frac").c_str());
  const framework::ExperimentSpec base =
      sweep_base_spec(event, clique_size, runs, base_config, base_seed);
  // Per-task counter snapshots land in index-addressed slots and are summed
  // in task order after the sweep — deterministic at any job count.
  std::vector<std::map<std::string, std::int64_t>> task_counters(
      report != nullptr ? clique_size * runs : 0);
  framework::ParamSweepRunner runner{runs, base_seed};
  const auto sweep = runner.run(clique_size,
                                [&](std::size_t k, std::uint64_t seed) {
    framework::ExperimentSpec cell = base;
    cell.sdn_count = k;
    auto* counters =
        report != nullptr
            ? &task_counters[k * runs +
                             static_cast<std::size_t>(seed - base_seed)]
            : nullptr;
    return cell.run_trial(seed, counters);
  });
  for (std::size_t k = 0; k < clique_size; ++k) {
    const auto& row = sweep.points[k];
    char label[48];
    std::snprintf(label, sizeof label, "%zu/%zu", k, clique_size);
    std::printf("%s\t%.2f\t%.2f\n",
                framework::boxplot_row(label, row.summary).c_str(),
                row.trial_seconds, row.trials_per_second());
    if (report != nullptr) report->add_point(label, row.summary, row.values);
  }
  print_parallel_footer(sweep);
  if (report != nullptr) {
    report->set_param("event",
                      telemetry::Json{std::string{framework::to_string(event)}});
    report->set_param("clique_size",
                      telemetry::Json{static_cast<std::int64_t>(clique_size)});
    report->set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
    for (const auto& per_task : task_counters) {
      for (const auto& [name, value] : per_task) {
        report->add_counter(name, value);
      }
    }
    report->set_footer(static_cast<std::int64_t>(sweep.trials),
                       static_cast<std::int64_t>(sweep.jobs),
                       sweep.wall_seconds, sweep.trial_seconds);
  }
}

/// Paper-faithful timer defaults (Quagga eBGP profile).
inline framework::ExperimentConfig paper_config() {
  framework::ExperimentConfig cfg;
  // Defaults in bgp::Timers already match (MRAI 30 s, keepalive 30 s,
  // hold 90 s); recompute delay 2 s.
  return cfg;
}

/// Trial count: 10 as in the paper; BGPSDN_QUICK=1 drops to 3 for smoke runs.
inline std::size_t default_runs() {
  const char* quick = std::getenv("BGPSDN_QUICK");
  return (quick != nullptr && quick[0] == '1') ? 3 : 10;
}

}  // namespace bgpsdn::bench
