// Stability ablation: distributed route-flap damping (RFC 2439) versus the
// controller's centralized delayed recomputation, under a flapping origin.
//
// The paper motivates delayed recomputation as the controller-side defence
// against "bursts in external BGP input"; classic BGP defends the same
// flapping with per-router damping. This bench puts both on the same
// scenario — a 16-AS clique with 8 SDN members whose origin flaps its
// prefix 5 times — and reports the churn each mechanism (and their
// combination) leaves: BGP updates heard by a far legacy AS, flow-mods
// pushed into the cluster, and whether the prefix is usable at the end.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

namespace {

struct ChurnResult {
  double updates_at_observer{0};
  double flow_mods{0};
  double suppressions{0};
  bool usable_at_end{false};
};

ChurnResult run(bool damping, core::Duration recompute_delay,
                std::uint64_t seed) {
  framework::ExperimentConfig cfg = bench::paper_config();
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::seconds(5);
  cfg.recompute_delay = recompute_delay;
  cfg.damping.enabled = damping;
  cfg.damping.half_life = core::Duration::seconds(60);
  cfg.damping.max_suppress = core::Duration::seconds(240);

  const auto spec = topology::clique(16);
  std::set<core::AsNumber> members;
  for (std::uint32_t as = 9; as <= 16; ++as) members.insert(core::AsNumber{as});
  framework::Experiment exp{spec, members, cfg};
  const core::AsNumber origin{1}, observer{8};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(origin, pfx);
  if (!exp.start()) return {};

  const auto updates0 = exp.router(observer).counters().updates_rx;
  const auto mods0 = exp.idr_controller()->counters().flow_adds +
                     exp.idr_controller()->counters().flow_deletes;

  // Five withdraw/re-announce cycles, 8 s apart (inside the half-life).
  for (int i = 0; i < 5; ++i) {
    exp.withdraw_prefix(origin, pfx);
    exp.run_for(core::Duration::seconds(8));
    exp.announce_prefix(origin, pfx);
    exp.run_for(core::Duration::seconds(8));
  }
  exp.wait_converged(framework::WaitOpts{core::Duration::seconds(11),
                                         core::Duration::seconds(2400)});
  // Give damping reuse timers a chance before judging usability.
  exp.run_for(core::Duration::seconds(240));

  ChurnResult res;
  res.updates_at_observer = static_cast<double>(
      exp.router(observer).counters().updates_rx - updates0);
  res.flow_mods =
      static_cast<double>(exp.idr_controller()->counters().flow_adds +
                          exp.idr_controller()->counters().flow_deletes - mods0);
  std::uint64_t suppressions = 0;
  for (const auto as : spec.ases) {
    if (!exp.is_member(as)) {
      suppressions += exp.router(as).counters().routes_suppressed;
    }
  }
  res.suppressions = static_cast<double>(suppressions);
  res.usable_at_end = exp.router(observer).loc_rib().find(pfx) != nullptr;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  std::printf("# flap-stability ablation: 16-AS clique, 8 SDN members, origin "
              "flaps 5x (MRAI 5 s)\n");
  std::printf("# medians over %zu runs\n", runs);
  std::printf("damping\trecompute_s\tobs_updates\tflow_mods\tsuppressions\tusable\n");
  const double delays[] = {0.0, 2.0, 8.0};
  constexpr std::size_t kCols = std::size(delays);
  // Point = (damping, delay) combo; the whole grid shares the worker pool.
  std::vector<ChurnResult> grid;
  const auto timing = bench::run_trial_grid(
      2 * kCols, runs, grid, [&](std::size_t point, std::size_t r) {
        return run(point / kCols == 1,
                   core::Duration::seconds_f(delays[point % kCols]), 5000 + r);
      });
  framework::BenchReport report{"ablation_damping"};
  report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
  for (std::size_t point = 0; point < 2 * kCols; ++point) {
    const bool damping = point / kCols == 1;
    std::vector<double> upd, mods, sup;
    int usable = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto& res = grid[point * runs + r];
      upd.push_back(res.updates_at_observer);
      mods.push_back(res.flow_mods);
      sup.push_back(res.suppressions);
      usable += res.usable_at_end ? 1 : 0;
    }
    std::printf("%s\t%.0f\t%.0f\t%.0f\t%.0f\t%d/%zu\n",
                damping ? "on" : "off", delays[point % kCols],
                framework::quantile(upd, 0.5), framework::quantile(mods, 0.5),
                framework::quantile(sup, 0.5), usable, runs);
    std::fflush(stdout);
    if (cli.want_json()) {
      char label[48];
      std::snprintf(label, sizeof label, "damping_%s_delay%.0fs",
                    damping ? "on" : "off", delays[point % kCols]);
      telemetry::Json extra = telemetry::Json::object();
      extra["flow_mods_median"] = framework::quantile(mods, 0.5);
      extra["suppressions_median"] = framework::quantile(sup, 0.5);
      extra["usable_runs"] = static_cast<std::int64_t>(usable);
      report.add_point(label, framework::summarize(upd), upd,
                       std::move(extra));
    }
  }
  bench::print_parallel_footer(timing);
  report.set_footer(static_cast<std::int64_t>(timing.trials),
                    static_cast<std::int64_t>(timing.jobs),
                    timing.wall_seconds, timing.trial_seconds);
  bench::finish_report(report, cli);
  return 0;
}
