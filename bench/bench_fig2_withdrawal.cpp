// Fig. 2 reproduction: "IDR convergence time of route withdrawal on a
// 16-AS clique topology versus fraction of ASes with centralized route
// control. The remaining ASes use standard BGP. We show boxplots over 10
// runs."
//
// AS 1 (always legacy) originates 10.0.0.0/16, the network converges, the
// origin withdraws, and the convergence detector reports when routing goes
// quiet. The paper's claim is a roughly linear reduction with the SDN
// fraction; the pure-BGP end shows minutes of MRAI-paced path hunting, the
// full-SDN end collapses to the controller's single delayed recomputation.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bgpsdn;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  framework::BenchReport report{"fig2_withdrawal"};
  bench::run_sdn_sweep(bench::EventKind::kWithdrawal, 16,
                       cli.runs_or(bench::default_runs()),
                       bench::paper_config(),
                       cli.want_json() ? &report : nullptr,
                       cli.seed_or(1000));
  bench::finish_report(report, cli);
  return 0;
}
