// Framework micro-benchmarks (google-benchmark).
//
// Supports the paper's "rapid prototyping" positioning versus ONOS: the
// whole emulation is cheap enough that a 10-run, 16-fraction Fig. 2 sweep
// takes seconds of wall time. These benches pin down where the cycles go:
// event loop, BGP codec, decision process, FIB lookups, controller graph
// work, and a full hybrid-experiment bring-up.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bgp/attr_intern.hpp"
#include "bgp/decision.hpp"
#include "bgp/message.hpp"
#include "controller/as_topology.hpp"
#include "controller/dijkstra.hpp"
#include "core/event_loop.hpp"
#include "framework/experiment.hpp"
#include "net/lpm.hpp"
#include "sdn/flow.hpp"
#include "topology/generators.hpp"

namespace {

using namespace bgpsdn;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    core::EventLoop loop;
    for (std::int64_t i = 0; i < n; ++i) {
      loop.schedule(core::Duration::nanos(i), [] {});
    }
    benchmark::DoNotOptimize(loop.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventLoopCancel(benchmark::State& state) {
  for (auto _ : state) {
    core::EventLoop loop;
    std::vector<core::TimerId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(loop.schedule(core::Duration::nanos(i), [] {}));
    }
    for (const auto id : ids) loop.cancel(id);
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopCancel);

bgp::UpdateMessage sample_update(int nlri) {
  bgp::UpdateMessage u;
  u.attributes.origin = bgp::Origin::kIgp;
  u.attributes.as_path = bgp::AsPath{{core::AsNumber{65001}, core::AsNumber{3},
                                      core::AsNumber{2}, core::AsNumber{1}}};
  u.attributes.next_hop = *net::Ipv4Addr::parse("172.16.0.1");
  u.attributes.communities = {1, 2, 3};
  for (int i = 0; i < nlri; ++i) {
    u.nlri.push_back(net::Prefix{
        net::Ipv4Addr{(10u << 24) | (static_cast<std::uint32_t>(i) << 8)}, 24});
  }
  return u;
}

void BM_BgpEncode(benchmark::State& state) {
  const auto u = sample_update(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::encode(u));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BgpEncode)->Arg(1)->Arg(64);

void BM_BgpDecode(benchmark::State& state) {
  const auto wire = bgp::encode(sample_update(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::decode(wire));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BgpDecode)->Arg(1)->Arg(64);

void BM_DecisionProcess(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<bgp::Route> routes;
  for (std::int64_t i = 0; i < n; ++i) {
    bgp::Route r;
    r.prefix = *net::Prefix::parse("10.0.0.0/16");
    std::vector<core::AsNumber> hops;
    for (std::int64_t h = 0; h <= i % 7; ++h) {
      hops.emplace_back(static_cast<std::uint32_t>(100 + h));
    }
    bgp::PathAttributes attrs;
    attrs.as_path = bgp::AsPath{std::move(hops)};
    attrs.local_pref = 100;
    r.attributes = bgp::AttrSetRef::intern(std::move(attrs));
    r.peer_bgp_id = net::Ipv4Addr{static_cast<std::uint32_t>(i + 1)};
    r.learned_from = core::SessionId{static_cast<std::uint32_t>(i)};
    routes.push_back(std::move(r));
  }
  std::vector<const bgp::Route*> cands;
  for (const auto& r : routes) cands.push_back(&r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::select_best(cands));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DecisionProcess)->Arg(2)->Arg(16)->Arg(128);

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTable<int> table;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    table.insert(net::Prefix{net::Ipv4Addr{(10u << 24) | (i << 12)}, 20},
                 static_cast<int>(i));
  }
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(
        table.lookup(net::Ipv4Addr{(10u << 24) | (x % (1000u << 12))}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpmLookup);

// Flow table with n data-plane /24 rules plus the usual handful of
// higher-priority relay rules, mirroring a border switch's steady state.
sdn::FlowTable sample_flow_table(std::uint32_t n) {
  sdn::FlowTable table;
  for (std::uint32_t i = 0; i < n; ++i) {
    sdn::FlowEntry e;
    e.match.dst = net::Prefix{net::Ipv4Addr{(10u << 24) | (i << 8)}, 24};
    e.priority = sdn::kDataRulePriority;
    e.action = sdn::FlowAction::output(core::PortId{1 + i % 4});
    table.add(std::move(e));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    sdn::FlowEntry relay;
    relay.match.in_port = core::PortId{100 + i};
    relay.match.proto = net::Protocol::kBgp;
    relay.priority = sdn::kRelayRulePriority;
    relay.action = sdn::FlowAction::output(core::PortId{50});
    table.add(std::move(relay));
  }
  return table;
}

template <bool kLinear>
void BM_FlowTableLookupImpl(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto table = sample_flow_table(n);
  net::Packet p;
  p.proto = net::Protocol::kData;
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    p.dst = net::Ipv4Addr{(10u << 24) | ((x % n) << 8) | (x >> 28)};
    const auto* e = kLinear ? table.lookup_linear(core::PortId{3}, p)
                            : table.lookup(core::PortId{3}, p, false);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlowTableLookup(benchmark::State& state) {
  BM_FlowTableLookupImpl<false>(state);
}
BENCHMARK(BM_FlowTableLookup)->Arg(1024)->Arg(4096);

void BM_FlowTableLookupLinear(benchmark::State& state) {
  BM_FlowTableLookupImpl<true>(state);
}
BENCHMARK(BM_FlowTableLookupLinear)->Arg(1024)->Arg(4096);

void BM_AttrIntern(benchmark::State& state) {
  // Hit path: interning a bundle already in the pool (the common case once
  // a route has been seen on one session) must cost a hash + one compare.
  const auto canonical = bgp::AttrSetRef::intern([] {
    bgp::PathAttributes a;
    a.as_path = bgp::AsPath{{core::AsNumber{65001}, core::AsNumber{2},
                             core::AsNumber{1}}};
    a.next_hop = *net::Ipv4Addr::parse("172.16.0.1");
    a.local_pref = 100;
    a.communities = {1, 2, 3};
    return a;
  }());
  for (auto _ : state) {
    bgp::PathAttributes copy = *canonical;
    benchmark::DoNotOptimize(bgp::AttrSetRef::intern(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttrIntern);

template <bool kShared>
void BM_UpdateFanoutImpl(benchmark::State& state) {
  // One UPDATE fanned out to `n` peers, as a router flushing its Adj-RIBs-Out
  // does after a decision change: identical attributes, identical codec
  // options, n transmissions. Legacy encodes n times; the shared path encodes
  // once and hands out refcounted views of the same buffer.
  const auto n = state.range(0);
  const auto u = sample_update(8);
  const bgp::Message msg{u};
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::int64_t peer = 0; peer < n; ++peer) {
      if constexpr (kShared) {
        const net::Bytes wire = bgp::encode_shared(msg);
        total += wire.size();
      } else {
        const auto wire = bgp::encode(msg);
        total += wire.size();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_UpdateFanout(benchmark::State& state) {
  BM_UpdateFanoutImpl<true>(state);
}
BENCHMARK(BM_UpdateFanout)->Arg(16)->Arg(64);

void BM_UpdateFanoutLegacy(benchmark::State& state) {
  BM_UpdateFanoutImpl<false>(state);
}
BENCHMARK(BM_UpdateFanoutLegacy)->Arg(16)->Arg(64);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  controller::AdjacencyList g;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      if (i != j) g.add_edge(i, j, 1);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller::shortest_paths(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dijkstra)->Arg(8)->Arg(16)->Arg(64);

void BM_IncrementalSptFlap(benchmark::State& state) {
  // One edge flapping on a clique: the delta engine's steady-state cost,
  // versus BM_Dijkstra's from-scratch cost for the same graph.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  controller::IncrementalSpt spt{0};
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      if (i != j) spt.edge_added(i, j, 1);
    }
  }
  for (auto _ : state) {
    spt.edge_removed(0, 1, 1);
    spt.edge_added(0, 1, 1);
    benchmark::DoNotOptimize(spt.revision());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_IncrementalSptFlap)->Arg(8)->Arg(16)->Arg(64);

void BM_AsTopologyDecide(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  controller::SwitchGraph graph;
  speaker::ClusterBgpSpeaker speaker;
  for (std::uint64_t i = 0; i < n; ++i) {
    graph.add_switch(i, core::AsNumber{static_cast<std::uint32_t>(100 + i)});
  }
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    graph.add_link(i, core::PortId{1}, i + 1, core::PortId{2});
  }
  std::vector<controller::ExternalRoute> routes;
  for (std::uint64_t i = 0; i < n; ++i) {
    speaker::Peering p;
    p.cluster_as = core::AsNumber{static_cast<std::uint32_t>(100 + i)};
    p.border_dpid = i;
    p.switch_external_port = core::PortId{0};
    p.expected_peer_as = core::AsNumber{static_cast<std::uint32_t>(500 + i)};
    speaker.add_peering(core::PortId{static_cast<std::uint32_t>(i)}, p);
    controller::ExternalRoute r;
    r.peering = static_cast<speaker::PeeringId>(i);
    bgp::PathAttributes rattrs;
    rattrs.as_path =
        bgp::AsPath{{core::AsNumber{static_cast<std::uint32_t>(500 + i)},
                     core::AsNumber{999}}};
    r.attributes = bgp::AttrSetRef::intern(std::move(rattrs));
    routes.push_back(std::move(r));
  }
  controller::AsTopologyGraph topo{graph, speaker};
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.decide(routes, std::nullopt));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AsTopologyDecide)->Arg(4)->Arg(8)->Arg(16);

void BM_HybridExperimentBringup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    framework::ExperimentConfig cfg;
    cfg.timers.mrai = core::Duration::millis(500);
    cfg.recompute_delay = core::Duration::millis(200);
    const auto spec = topology::clique(n);
    std::set<core::AsNumber> members;
    for (std::size_t i = 0; i < n / 2; ++i) {
      members.insert(core::AsNumber{static_cast<std::uint32_t>(n - i)});
    }
    framework::Experiment exp{spec, members, cfg};
    exp.announce_prefix(core::AsNumber{1}, *net::Prefix::parse("10.0.0.0/16"));
    const bool ok = exp.start();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_HybridExperimentBringup)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WithdrawalConvergenceWallTime(benchmark::State& state) {
  // Wall-clock cost of one full Fig.-2 data point (virtual minutes of BGP
  // hunting) — the "rapid prototyping" claim in one number.
  for (auto _ : state) {
    framework::ExperimentSpec cell =
        bench::sweep_base_spec(bench::EventKind::kWithdrawal, 16, 1,
                               bench::paper_config(), 1234);
    cell.sdn_count = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(cell.run_trial(1234));
  }
}
BENCHMARK(BM_WithdrawalConvergenceWallTime)->Arg(0)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Console output as usual, plus a capture of every iteration run so main()
// can emit the same bgpsdn.bench/1 JSON document the macro benches write.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        captured_.push_back(run);
      }
    }
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off the shared bench options (--json and friends) before
  // google-benchmark sees the arguments.
  std::vector<char*> bench_argv;
  const bench::BenchCli cli = bench::parse_cli(argc, argv, &bench_argv);
  const std::string json_path = cli.json_path;
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }

  // lint: wall-clock-ok(perf bench measures real elapsed time by design;
  // wall_s lands in the footer which the determinism diff excludes)
  const auto t0 = std::chrono::steady_clock::now();
  CaptureReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() -  // lint: wall-clock-ok(footer)
          t0)
          .count();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    framework::BenchReport report{"micro"};
    for (const auto& run : reporter.captured()) {
      // One point per benchmark: the per-iteration real time in seconds.
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      const std::vector<double> values{run.real_accumulated_time / iters};
      telemetry::Json extra = telemetry::Json::object();
      extra["iterations"] = static_cast<std::int64_t>(run.iterations);
      extra["cpu_s_per_iter"] = run.cpu_accumulated_time / iters;
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        extra["items_per_s"] = static_cast<double>(it->second);
      }
      report.add_point(run.benchmark_name(), framework::summarize(values),
                       values, std::move(extra));
    }
    report.set_footer(static_cast<std::int64_t>(ran), 1, wall_s, wall_s);
    if (!report.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("# json: %s\n", json_path.c_str());
  }
  return 0;
}
