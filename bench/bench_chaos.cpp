// Chaos bench: data-plane time-to-recovery under injected faults, with and
// without the centralized controller.
//
// The paper argues centralization accelerates reconvergence; the robustness
// question is what it costs when the central component itself fails. Each
// row injects one FaultPlan into a converged 10-AS hybrid clique (members
// 7-10, a host behind legacy AS 1) and measures how long until every AS —
// legacy FIBs and member flow tables alike — can trace a live data-plane
// path to the host again:
//
//   bgp_linkfail      all-legacy baseline, one clique link fails
//   hybrid_linkfail   same failure with the controller in charge
//   degraded_linkfail same failure while degraded to distributed BGP
//   ctrl_crash        the controller crashes (switches flush; fallback
//                     reconverges the cluster over the relay links)
//   ctrl_restart      the controller returns and resyncs from the speaker
//   speaker_restart   the cluster speaker crashes silently and returns;
//                     peers rediscover it via hold-timer expiry
//   ha_failover_rN    replication-factor sweep (N = 1..5): the serving
//                     controller replica crashes at the same instant a
//                     clique link fails. r1 is the single-controller
//                     baseline (full degradation to distributed BGP);
//                     r>=2 elects a hot standby, which replays the
//                     unacknowledged delta suffix and reprograms — the
//                     failover hiccup the HA layer exists to shrink.
//
// Fast timers (MRAI 0.3 s, hold 6 s, recompute 100 ms) keep the virtual
// clock short; recovery is probed every 100 ms and censored at 60 s.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "framework/faults.hpp"

using namespace bgpsdn;

namespace {

constexpr std::size_t kCliqueSize = 10;
constexpr std::uint64_t kBaseSeed = 9000;
const core::AsNumber kHostAs{1};
constexpr double kTimeoutS = 60.0;

struct Row {
  const char* label;
  bool with_members;
  /// Crash the controller (and let the fallback reconverge) before t0.
  bool pre_degrade;
  /// FaultPlan armed at t0 — the disruption being measured.
  const char* plan;
  /// Controller replication factor (1 = the single-controller baseline).
  std::size_t replicas{1};
};

// The HA rows crash the serving replica (id 0) and fail a clique link in
// the same instant, so recovery needs a live controller to reprogram the
// member flow tables around the failure.
constexpr const char* kHaPlan = "at 0 controller-crash 0\nat 0 link-down 1 10";

constexpr Row kRows[] = {
    {"bgp_linkfail", false, false, "at 0 link-down 1 10"},
    {"hybrid_linkfail", true, false, "at 0 link-down 1 10"},
    {"degraded_linkfail", true, true, "at 0 link-down 1 10"},
    {"ctrl_crash", true, false, "at 0 controller-crash"},
    {"ctrl_restart", true, true, "at 0 controller-restart"},
    {"speaker_restart", true, false,
     "at 0 speaker-crash\nat 8 speaker-restart"},
    {"ha_failover_r1", true, false, kHaPlan, 1},
    {"ha_failover_r2", true, false, kHaPlan, 2},
    {"ha_failover_r3", true, false, kHaPlan, 3},
    {"ha_failover_r4", true, false, kHaPlan, 4},
    {"ha_failover_r5", true, false, kHaPlan, 5},
};

/// Per-trial HA failover observables, medians of which go into the row's
/// extra block. Zero for non-HA rows.
struct HaStats {
  double flow_mods_replayed{0.0};
  double election_latency_s{0.0};
};

framework::ExperimentConfig fast_config(std::uint64_t seed) {
  framework::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.timers.hold = core::Duration::seconds(6);
  cfg.timers.keepalive = core::Duration::seconds(2);
  cfg.recompute_delay = core::Duration::millis(100);
  return cfg;
}

bool all_reach(framework::Experiment& exp, net::Ipv4Addr host) {
  for (const auto as : exp.spec().ases) {
    if (as == kHostAs) continue;
    if (exp.trace_route(as, host).empty()) return false;
  }
  return true;
}

/// Virtual seconds from arming the row's plan until every AS reaches the
/// host again (100 ms probe; kTimeoutS when censored). -1 on setup failure.
double run_row(const Row& row, std::uint64_t seed,
               std::map<std::string, std::int64_t>* counters,
               HaStats* ha_stats) {
  auto cfg = fast_config(seed);
  cfg.controller_replicas = row.replicas;
  const auto spec = topology::clique(kCliqueSize);
  std::set<core::AsNumber> members;
  if (row.with_members) {
    for (std::uint32_t as = 7; as <= kCliqueSize; ++as) {
      members.insert(core::AsNumber{as});
    }
  }
  framework::Experiment exp{spec, members, cfg};
  const auto host_addr = exp.add_host(kHostAs).address();
  if (!exp.start(core::Duration::seconds(600))) return -1.0;

  const auto probe_until_reach = [&]() -> double {
    const auto t0 = exp.loop().now();
    while ((exp.loop().now() - t0).to_seconds() < kTimeoutS) {
      exp.run_for(core::Duration::millis(100));
      if (all_reach(exp, host_addr)) {
        return (exp.loop().now() - t0).to_seconds();
      }
    }
    return kTimeoutS;  // censored
  };

  if (row.pre_degrade) {
    exp.crash_controller();
    if (probe_until_reach() >= kTimeoutS) return -1.0;
  }

  exp.attach_monitor<framework::FaultInjector>(
      framework::FaultPlan::parse(row.plan));
  const double recovery = probe_until_reach();
  if (ha_stats != nullptr && exp.replica_set() != nullptr) {
    const auto& rc = exp.replica_set()->counters();
    ha_stats->flow_mods_replayed =
        static_cast<double>(rc.flow_mods_replayed);
    ha_stats->election_latency_s =
        exp.replica_set()->last_election_latency().to_seconds();
  }
  if (counters != nullptr) bench::accumulate_counters(exp, *counters);
  return recovery;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  const std::size_t points = std::size(kRows);
  std::printf("# data-plane time-to-recovery [s] under injected faults, "
              "%zu-AS clique, members 7-%zu\n",
              kCliqueSize, kCliqueSize);
  std::printf("# boxplots over %zu runs; 100 ms probe, censored at %.0f s\n",
              runs, kTimeoutS);
  std::printf("%s\n", framework::boxplot_header("fault").c_str());

  std::vector<std::map<std::string, std::int64_t>> task_counters(
      cli.want_json() ? points * runs : 0);
  std::vector<HaStats> ha_stats(points * runs);
  std::vector<double> results;
  const auto timing = bench::run_trial_grid(
      points, runs, results, [&](std::size_t point, std::size_t run) {
        auto* counters =
            cli.want_json() ? &task_counters[point * runs + run] : nullptr;
        return run_row(kRows[point], kBaseSeed + run, counters,
                       &ha_stats[point * runs + run]);
      });

  framework::BenchReport report{"bench_chaos"};
  for (std::size_t p = 0; p < points; ++p) {
    std::vector<double> values{results.begin() + p * runs,
                               results.begin() + (p + 1) * runs};
    const auto summary = framework::summarize(values);
    std::printf("%s\n",
                framework::boxplot_row(kRows[p].label, summary).c_str());
    telemetry::Json extra = telemetry::Json::object();
    extra["fault"] = std::string{kRows[p].plan};
    extra["replicas"] = static_cast<std::int64_t>(kRows[p].replicas);
    std::vector<double> replayed, latency;
    for (std::size_t r = 0; r < runs; ++r) {
      replayed.push_back(ha_stats[p * runs + r].flow_mods_replayed);
      latency.push_back(ha_stats[p * runs + r].election_latency_s);
    }
    extra["flow_mods_replayed_median"] = median_of(std::move(replayed));
    extra["election_latency_s_median"] = median_of(std::move(latency));
    report.add_point(kRows[p].label, summary, values, std::move(extra));
  }
  bench::print_parallel_footer(timing);

  if (cli.want_json()) {
    report.set_param("clique_size",
                     telemetry::Json{static_cast<std::int64_t>(kCliqueSize)});
    report.set_param("members", telemetry::Json{std::string{"7-10"}});
    report.set_param("runs",
                     telemetry::Json{static_cast<std::int64_t>(runs)});
    report.set_param("timeout_s", telemetry::Json{kTimeoutS});
    for (const auto& per_task : task_counters) {
      for (const auto& [name, value] : per_task) {
        report.add_counter(name, value);
      }
    }
    report.set_footer(static_cast<std::int64_t>(timing.trials),
                      static_cast<std::int64_t>(timing.jobs),
                      timing.wall_seconds, timing.trial_seconds);
    bench::finish_report(report, cli);
  }
  return 0;
}
