// Ablation of the paper's design insight #2: "the need for a delayed
// recomputation of best paths on the controller's side, so as to improve
// overall stability and rate-limit route flaps due to bursts in external
// BGP input."
//
// Two sweeps over the fixed evaluation topology (16-AS clique, 8 SDN
// members):
//
//   1. Delay sweep — origin withdrawal (the burstiest input) swept over the
//      controller's recompute delay. Reported per delay: convergence time,
//      recompute passes, flow-mods, announcements to the legacy world, and
//      the recompute cost (total virtual-time span of recompute_batch — the
//      sum of the ctrl.idr.batch_wait_ns histogram).
//
//   2. Churn ablation — a link-flap train on a cluster link, run once with
//      the incremental delta-SPT engine and once with the from-scratch
//      reference. Convergence must not move (the engines are equivalent);
//      the recomputation work — prefix recomputes and SPT vertices settled —
//      is the ablation result.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

namespace {

/// Total recompute_batch span (seconds of virtual time) accumulated so far:
/// the sum of the batch-wait histogram, which records one sample per pass
/// covering first-dirtying-input -> batch execution.
double batch_span_seconds(framework::Experiment& exp) {
  const auto* h =
      exp.telemetry().metrics().find_histogram("ctrl.idr.batch_wait_ns");
  return h == nullptr ? 0.0 : static_cast<double>(h->sum()) * 1e-9;
}

// --- sweep 1: recompute delay ----------------------------------------------

struct AblationPoint {
  double conv_seconds{0};
  double recomputes{0};
  double flow_mods{0};
  double speaker_msgs{0};
  double batch_span_s{0};
};

AblationPoint run_point(core::Duration recompute_delay, std::uint64_t seed) {
  const auto cell = framework::ExperimentSpecBuilder{}
                        .topology(framework::TopologyModel::kClique, 16)
                        .sdn_count(8)
                        .event(framework::EventKind::kWithdrawal)
                        .config(bench::paper_config())
                        .recompute_delay(recompute_delay)
                        .wait_quiet(core::Duration::seconds(61))
                        .build();
  // The cell is driven by hand (not run_trial) because the result reads
  // controller deltas around the event, not just the convergence time.
  const auto exp = cell.make_experiment(seed);
  if (!exp->start()) return {};

  auto* ctrl = exp->idr_controller();
  const auto recomputes0 = ctrl->counters().recompute_passes;
  const auto mods0 = ctrl->counters().flow_adds + ctrl->counters().flow_deletes;
  const auto spk0 = exp->cluster_speaker()->counters().announces_tx +
                    exp->cluster_speaker()->counters().withdraws_tx;
  const double span0 = batch_span_seconds(*exp);

  const auto t0 = cell.inject_event(*exp);
  const auto conv = exp->wait_converged(framework::WaitOpts{
      cell.effective_quiet(), core::Duration::seconds(3600)});

  AblationPoint p;
  p.conv_seconds = conv.since(t0).to_seconds();
  p.recomputes =
      static_cast<double>(ctrl->counters().recompute_passes - recomputes0);
  p.flow_mods = static_cast<double>(ctrl->counters().flow_adds +
                                    ctrl->counters().flow_deletes - mods0);
  p.speaker_msgs =
      static_cast<double>(exp->cluster_speaker()->counters().announces_tx +
                          exp->cluster_speaker()->counters().withdraws_tx -
                          spk0);
  p.batch_span_s = batch_span_seconds(*exp) - span0;
  return p;
}

// --- sweep 2: churn, incremental vs reference -------------------------------

struct ChurnPoint {
  double conv_seconds{0};       // virtual time of the whole flap train
  double prefix_recomputes{0};  // per-prefix decisions recomputed
  double settles{0};            // SPT vertices settled (see below)
  double flow_mods{0};
};

/// One flap train: `flaps` fail/restore cycles of the 9-10 cluster link,
/// waiting out convergence after every transition. The settle count is the
/// engine-fair cost unit: the incremental engine reports replayed vertices
/// directly; a from-scratch run settles every tree vertex (8 member
/// switches + the virtual destination) of every recomputed prefix.
ChurnPoint run_churn(bool incremental, std::size_t flaps, std::uint64_t seed) {
  const auto cell = framework::ExperimentSpecBuilder{}
                        .topology(framework::TopologyModel::kClique, 16)
                        .sdn_count(8)
                        .event(framework::EventKind::kFlapTrain)
                        .flap_cycles(flaps)
                        .config(bench::paper_config())
                        .incremental_spt(incremental)
                        .announce(core::AsNumber{1},
                                  *net::Prefix::parse("10.90.0.0/16"))
                        .announce(core::AsNumber{1},
                                  *net::Prefix::parse("10.91.0.0/16"))
                        .announce(core::AsNumber{2},
                                  *net::Prefix::parse("10.92.0.0/16"))
                        .announce(core::AsNumber{2},
                                  *net::Prefix::parse("10.93.0.0/16"))
                        .build();
  // Driven by hand (not run_trial) for the controller deltas; the flap
  // train itself — fail/restore the link between the two lowest members,
  // waiting out convergence after every transition — is inject_event().
  const auto exp = cell.make_experiment(seed);
  if (!exp->start()) return {};
  exp->wait_converged();

  auto* ctrl = exp->idr_controller();
  const auto recomputes0 = ctrl->counters().prefix_recomputes;
  const auto replayed0 = ctrl->counters().spt_vertices_replayed;
  const auto mods0 = ctrl->counters().flow_adds + ctrl->counters().flow_deletes;
  const auto t0 = exp->loop().now();
  cell.inject_event(*exp);

  ChurnPoint p;
  p.conv_seconds = (exp->loop().now() - t0).to_seconds();
  p.prefix_recomputes =
      static_cast<double>(ctrl->counters().prefix_recomputes - recomputes0);
  const double tree_vertices = static_cast<double>(cell.sdn_count + 1);
  p.settles =
      incremental
          ? static_cast<double>(ctrl->counters().spt_vertices_replayed -
                                replayed0)
          : p.prefix_recomputes * tree_vertices;
  p.flow_mods = static_cast<double>(ctrl->counters().flow_adds +
                                    ctrl->counters().flow_deletes - mods0);
  return p;
}

std::vector<double> column(const std::vector<ChurnPoint>& grid,
                           std::size_t point, std::size_t runs,
                           double ChurnPoint::* field) {
  std::vector<double> out;
  for (std::size_t r = 0; r < runs; ++r) out.push_back(grid[point * runs + r].*field);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = cli.runs_or(bench::default_runs());
  std::printf(
      "# delayed-recomputation ablation: 16-AS clique, 8 SDN members, "
      "withdrawal burst\n");
  std::printf("# medians over %zu runs\n", runs);
  std::printf("delay_s\tconv_s\trecomputes\tflow_mods\tspeaker_msgs\tbatch_span_s\n");
  const double delays[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<AblationPoint> grid;
  const auto timing = bench::run_trial_grid(
      std::size(delays), runs, grid, [&](std::size_t point, std::size_t r) {
        return run_point(core::Duration::seconds_f(delays[point]),
                         cli.seed_or(2000) + r);
      });
  framework::BenchReport report{"ablation_recompute"};
  report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
  for (std::size_t point = 0; point < std::size(delays); ++point) {
    std::vector<double> conv, rec, mods, spk, span;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto& p = grid[point * runs + r];
      conv.push_back(p.conv_seconds);
      rec.push_back(p.recomputes);
      mods.push_back(p.flow_mods);
      spk.push_back(p.speaker_msgs);
      span.push_back(p.batch_span_s);
    }
    std::printf("%.1f\t%.2f\t%.0f\t%.0f\t%.0f\t%.2f\n", delays[point],
                framework::quantile(conv, 0.5), framework::quantile(rec, 0.5),
                framework::quantile(mods, 0.5), framework::quantile(spk, 0.5),
                framework::quantile(span, 0.5));
    std::fflush(stdout);
    if (cli.want_json()) {
      char label[32];
      std::snprintf(label, sizeof label, "delay%.1fs", delays[point]);
      telemetry::Json extra = telemetry::Json::object();
      extra["recomputes_median"] = framework::quantile(rec, 0.5);
      extra["flow_mods_median"] = framework::quantile(mods, 0.5);
      extra["speaker_msgs_median"] = framework::quantile(spk, 0.5);
      extra["batch_span_s_median"] = framework::quantile(span, 0.5);
      report.add_point(label, framework::summarize(conv), conv,
                       std::move(extra));
    }
  }
  bench::print_parallel_footer(timing);

  // Churn ablation: same flap train, both recomputation engines. Equal
  // convergence + an order-of-magnitude settle gap is the result.
  std::printf(
      "\n# churn ablation: cluster-link flap train, incremental vs "
      "reference recomputation\n");
  std::printf("flaps\tengine\tconv_s\tprefix_recomputes\tsettles\tflow_mods\n");
  const std::size_t flap_counts[] = {2, 6, 12};
  constexpr std::size_t kModes = 2;  // 0 = incremental, 1 = reference
  std::vector<ChurnPoint> churn_grid;
  const auto churn_timing = bench::run_trial_grid(
      std::size(flap_counts) * kModes, runs, churn_grid,
      [&](std::size_t point, std::size_t r) {
        return run_churn(/*incremental=*/point % kModes == 0,
                         flap_counts[point / kModes], cli.seed_or(3000) + r);
      });
  for (std::size_t point = 0; point < std::size(flap_counts) * kModes; ++point) {
    const bool incremental = point % kModes == 0;
    const std::size_t flaps = flap_counts[point / kModes];
    const auto conv = column(churn_grid, point, runs, &ChurnPoint::conv_seconds);
    const auto rec =
        column(churn_grid, point, runs, &ChurnPoint::prefix_recomputes);
    const auto settles = column(churn_grid, point, runs, &ChurnPoint::settles);
    const auto mods = column(churn_grid, point, runs, &ChurnPoint::flow_mods);
    std::printf("%zu\t%s\t%.2f\t%.0f\t%.0f\t%.0f\n", flaps,
                incremental ? "incremental" : "reference",
                framework::quantile(conv, 0.5), framework::quantile(rec, 0.5),
                framework::quantile(settles, 0.5),
                framework::quantile(mods, 0.5));
    std::fflush(stdout);
    if (cli.want_json()) {
      char label[48];
      std::snprintf(label, sizeof label, "churn%zu_%s", flaps,
                    incremental ? "incremental" : "reference");
      telemetry::Json extra = telemetry::Json::object();
      extra["prefix_recomputes_median"] = framework::quantile(rec, 0.5);
      extra["settles_median"] = framework::quantile(settles, 0.5);
      extra["flow_mods_median"] = framework::quantile(mods, 0.5);
      report.add_point(label, framework::summarize(conv), conv,
                       std::move(extra));
    }
  }
  bench::print_parallel_footer(churn_timing);
  report.set_footer(
      static_cast<std::int64_t>(timing.trials + churn_timing.trials),
      static_cast<std::int64_t>(timing.jobs), timing.wall_seconds + churn_timing.wall_seconds,
      timing.trial_seconds + churn_timing.trial_seconds);
  bench::finish_report(report, cli);
  return 0;
}
