// Ablation of the paper's design insight #2: "the need for a delayed
// recomputation of best paths on the controller's side, so as to improve
// overall stability and rate-limit route flaps due to bursts in external
// BGP input."
//
// Fixed scenario — 16-AS clique, 8 SDN members, origin withdrawal (the
// burstiest input: every legacy AS floods exploration updates into the
// cluster's border sessions) — swept over the controller's recompute
// delay. Reported per delay: convergence time, controller recompute
// passes, flow-mods pushed, and announcements/withdrawals sent to the
// legacy world. Small delays react faster but churn rules and flap
// announcements; the paper's 2 s default buys stability at a bounded
// latency cost.
#include <cstdio>

#include "bench_common.hpp"

using namespace bgpsdn;

namespace {

struct AblationPoint {
  double conv_seconds{0};
  double recomputes{0};
  double flow_mods{0};
  double speaker_msgs{0};
};

AblationPoint run_point(core::Duration recompute_delay, std::uint64_t seed) {
  framework::ExperimentConfig cfg = bench::paper_config();
  cfg.seed = seed;
  cfg.recompute_delay = recompute_delay;
  const auto spec = topology::clique(16);
  std::set<core::AsNumber> members;
  for (std::uint32_t as = 9; as <= 16; ++as) members.insert(core::AsNumber{as});
  framework::Experiment exp{spec, members, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  if (!exp.start()) return {};

  auto* ctrl = exp.idr_controller();
  const auto recomputes0 = ctrl->counters().recompute_passes;
  const auto mods0 = ctrl->counters().flow_adds + ctrl->counters().flow_deletes;
  const auto spk0 = exp.cluster_speaker()->counters().announces_tx +
                    exp.cluster_speaker()->counters().withdraws_tx;

  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged(framework::WaitOpts{
      core::Duration::seconds(61), core::Duration::seconds(3600)});

  AblationPoint p;
  p.conv_seconds = conv.since(t0).to_seconds();
  p.recomputes =
      static_cast<double>(ctrl->counters().recompute_passes - recomputes0);
  p.flow_mods = static_cast<double>(ctrl->counters().flow_adds +
                                    ctrl->counters().flow_deletes - mods0);
  p.speaker_msgs =
      static_cast<double>(exp.cluster_speaker()->counters().announces_tx +
                          exp.cluster_speaker()->counters().withdraws_tx - spk0);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const std::size_t runs = bench::default_runs();
  std::printf(
      "# delayed-recomputation ablation: 16-AS clique, 8 SDN members, "
      "withdrawal burst\n");
  std::printf("# medians over %zu runs\n", runs);
  std::printf("delay_s\tconv_s\trecomputes\tflow_mods\tspeaker_msgs\n");
  const double delays[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<AblationPoint> grid;
  const auto timing = bench::run_trial_grid(
      std::size(delays), runs, grid, [&](std::size_t point, std::size_t r) {
        return run_point(core::Duration::seconds_f(delays[point]), 2000 + r);
      });
  framework::BenchReport report{"ablation_recompute"};
  report.set_param("runs", telemetry::Json{static_cast<std::int64_t>(runs)});
  for (std::size_t point = 0; point < std::size(delays); ++point) {
    std::vector<double> conv, rec, mods, spk;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto& p = grid[point * runs + r];
      conv.push_back(p.conv_seconds);
      rec.push_back(p.recomputes);
      mods.push_back(p.flow_mods);
      spk.push_back(p.speaker_msgs);
    }
    std::printf("%.1f\t%.2f\t%.0f\t%.0f\t%.0f\n", delays[point],
                framework::quantile(conv, 0.5), framework::quantile(rec, 0.5),
                framework::quantile(mods, 0.5), framework::quantile(spk, 0.5));
    std::fflush(stdout);
    if (cli.want_json()) {
      char label[32];
      std::snprintf(label, sizeof label, "delay%.1fs", delays[point]);
      telemetry::Json extra = telemetry::Json::object();
      extra["recomputes_median"] = framework::quantile(rec, 0.5);
      extra["flow_mods_median"] = framework::quantile(mods, 0.5);
      extra["speaker_msgs_median"] = framework::quantile(spk, 0.5);
      report.add_point(label, framework::summarize(conv), conv,
                       std::move(extra));
    }
  }
  bench::print_parallel_footer(timing);
  report.set_footer(static_cast<std::int64_t>(timing.trials),
                    static_cast<std::int64_t>(timing.jobs),
                    timing.wall_seconds, timing.trial_seconds);
  bench::finish_report(report, cli);
  return 0;
}
