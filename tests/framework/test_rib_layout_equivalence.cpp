// The RIB-compaction acceptance criteria: for the same seeded scenario, the
// compact slab layout and the node-based reference layout must leave every
// observable byte identical — legacy Loc-RIBs, member flow tables,
// convergence instants, and the full telemetry snapshot — at 1 and at 4
// worker threads, across ring, clique and internet-like churn. The layouts
// may differ only in mem.* accounting, which bench_scale gates separately.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "framework/trial.hpp"
#include "telemetry/json.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

using bgp::RibLayout;
using core::AsNumber;

struct LayoutCapture {
  std::string ribs;
  std::string flows;
  std::string metrics;
  std::vector<double> checkpoints;  // loop clock after each wait_converged
};

ExperimentConfig layout_config(RibLayout layout, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.rib_layout = layout;
  cfg.timers.mrai = core::Duration::millis(500);
  return cfg;
}

void capture_state(Experiment& exp, LayoutCapture& cap) {
  // Legacy Loc-RIBs, sorted AS-then-prefix so the dump is canonical. The
  // dump includes the tiebreak identity fields, not just the attributes:
  // the compact layout stores them out-of-line and must reproduce them.
  std::map<std::string, std::string> ribs;
  for (const auto as : exp.spec().ases) {
    if (exp.is_member(as)) continue;
    const auto& rib = exp.router(as).loc_rib();
    for (const auto& prefix : rib.prefixes()) {
      const auto* route = rib.find(prefix);
      ribs[as.to_string() + " " + prefix.to_string()] =
          route->attributes->to_string() + " from=" +
          std::to_string(route->learned_from.value()) + " id=" +
          std::to_string(route->peer_bgp_id.bits()) + " addr=" +
          std::to_string(route->peer_address.bits()) + " at=" +
          std::to_string(route->installed_at.nanos_since_origin());
    }
  }
  for (const auto& [key, value] : ribs) {
    cap.ribs += key + " -> " + value + "\n";
  }
  // Member flow tables, in table order (priority ties break on insertion
  // order, so the order itself is part of the contract).
  for (const auto as : exp.spec().ases) {
    if (!exp.is_member(as)) continue;
    cap.flows += "== " + as.to_string() + "\n";
    for (const auto& e : exp.member_switch(as).table().entries()) {
      cap.flows += e.to_string() + "\n";
    }
  }
  cap.metrics = exp.telemetry().metrics().snapshot().dump();
}

// Seeded churn on an 8-AS ring with a 4-member cluster chain: route churn,
// cluster-link churn and legacy-link churn, checkpointing the virtual clock
// after every convergence wait.
LayoutCapture run_ring_churn(RibLayout layout, std::uint64_t seed) {
  const auto spec = topology::ring(8);
  Experiment exp{spec,
                 {AsNumber{3}, AsNumber{4}, AsNumber{5}, AsNumber{6}},
                 layout_config(layout, seed)};
  const auto pfx = *net::Prefix::parse("10.99.0.0/16");
  exp.announce_prefix(AsNumber{1}, pfx);
  exp.announce_prefix(AsNumber{2}, *net::Prefix::parse("10.98.0.0/16"));

  LayoutCapture cap;
  const auto checkpoint = [&] {
    exp.wait_converged();
    cap.checkpoints.push_back(exp.loop().now().nanos_since_origin() * 1e-9);
  };

  EXPECT_TRUE(exp.start());
  checkpoint();
  exp.withdraw_prefix(AsNumber{1}, pfx);
  checkpoint();
  exp.announce_prefix(AsNumber{1}, pfx);
  checkpoint();
  exp.fail_link(AsNumber{4}, AsNumber{5});
  checkpoint();
  exp.restore_link(AsNumber{4}, AsNumber{5});
  checkpoint();
  exp.fail_link(AsNumber{1}, AsNumber{2});
  checkpoint();
  exp.restore_link(AsNumber{1}, AsNumber{2});
  checkpoint();

  capture_state(exp, cap);
  return cap;
}

// Clique churn: dense peering means every router holds a full candidate set
// per prefix, exercising multi-candidate spans and implicit withdraws.
LayoutCapture run_clique_churn(RibLayout layout, std::uint64_t seed) {
  const auto spec = topology::clique(6);
  Experiment exp{spec, {AsNumber{5}, AsNumber{6}}, layout_config(layout, seed)};
  exp.announce_prefix(AsNumber{1}, *net::Prefix::parse("10.91.0.0/16"));
  exp.announce_prefix(AsNumber{2}, *net::Prefix::parse("10.92.0.0/16"));
  exp.announce_prefix(AsNumber{3}, *net::Prefix::parse("10.93.0.0/16"));

  LayoutCapture cap;
  const auto checkpoint = [&] {
    exp.wait_converged();
    cap.checkpoints.push_back(exp.loop().now().nanos_since_origin() * 1e-9);
  };

  EXPECT_TRUE(exp.start());
  checkpoint();
  for (int i = 0; i < 3; ++i) {
    exp.fail_link(AsNumber{1}, AsNumber{2});
    checkpoint();
    exp.restore_link(AsNumber{1}, AsNumber{2});
    checkpoint();
  }
  exp.withdraw_prefix(AsNumber{2}, *net::Prefix::parse("10.92.0.0/16"));
  checkpoint();

  capture_state(exp, cap);
  return cap;
}

// Policy-routed internet-like churn (pure legacy): valley-free export gives
// asymmetric candidate sets, and the session-reset path (link failure drops
// the session entirely) exercises erase_session on populated slabs.
LayoutCapture run_internet_churn(RibLayout layout, std::uint64_t seed) {
  core::Rng topo_rng{seed};
  topology::InternetLikeParams params;
  params.tier1 = 3;
  params.transit = 6;
  params.stubs = 10;
  const auto spec = topology::internet_like(params, topo_rng);

  Experiment exp{spec, {}, layout_config(layout, seed)};
  const auto origin = spec.ases.back();  // a stub
  const auto pfx = *net::Prefix::parse("10.50.0.0/16");
  exp.announce_prefix(origin, pfx);
  exp.announce_prefix(origin, *net::Prefix::parse("10.51.0.0/16"));
  exp.announce_prefix(spec.ases.front(), *net::Prefix::parse("10.52.0.0/16"));

  LayoutCapture cap;
  const auto checkpoint = [&] {
    exp.wait_converged();
    cap.checkpoints.push_back(exp.loop().now().nanos_since_origin() * 1e-9);
  };

  EXPECT_TRUE(exp.start());
  checkpoint();
  exp.withdraw_prefix(origin, pfx);
  checkpoint();
  exp.announce_prefix(origin, pfx);
  checkpoint();
  // Fail one of the origin stub's provider links: its session resets and
  // every prefix learned over it is flushed.
  const auto& provider_link = [&]() -> const topology::LinkSpec& {
    for (const auto& l : spec.links) {
      if (l.a == origin || l.b == origin) return l;
    }
    throw std::logic_error("origin has no links");
  }();
  exp.fail_link(provider_link.a, provider_link.b);
  checkpoint();
  exp.restore_link(provider_link.a, provider_link.b);
  checkpoint();

  capture_state(exp, cap);
  return cap;
}

void expect_equal_captures(const LayoutCapture& compact,
                           const LayoutCapture& reference, const char* what) {
  // Guard against vacuous equality: the scenario must actually produce
  // routes (and flow rules, when a cluster is present).
  EXPECT_FALSE(compact.ribs.empty()) << what;
  EXPECT_EQ(compact.ribs, reference.ribs) << what;
  EXPECT_EQ(compact.flows, reference.flows) << what;
  EXPECT_EQ(compact.metrics, reference.metrics) << what;
  ASSERT_EQ(compact.checkpoints.size(), reference.checkpoints.size()) << what;
  for (std::size_t i = 0; i < compact.checkpoints.size(); ++i) {
    // Bit-equal, not approximately equal: convergence timing must not move.
    EXPECT_EQ(compact.checkpoints[i], reference.checkpoints[i])
        << what << " #" << i;
  }
}

TEST(RibLayoutEquivalence, RingChurn) {
  for (const std::uint64_t seed : {21u, 22u}) {
    expect_equal_captures(run_ring_churn(RibLayout::kCompact, seed),
                          run_ring_churn(RibLayout::kReference, seed), "ring");
  }
}

TEST(RibLayoutEquivalence, CliqueChurn) {
  expect_equal_captures(run_clique_churn(RibLayout::kCompact, 23),
                        run_clique_churn(RibLayout::kReference, 23), "clique");
}

TEST(RibLayoutEquivalence, InternetLikeChurn) {
  expect_equal_captures(run_internet_churn(RibLayout::kCompact, 24),
                        run_internet_churn(RibLayout::kReference, 24),
                        "internet");
}

TEST(RibLayoutEquivalence, ByteIdenticalAcrossJobCounts) {
  // Both layouts, two seeds, raced across worker threads: the captures must
  // not depend on the job count. The shared AttrRegistry and the per-thread
  // intern pool are the structures under suspicion here.
  const auto run_with_jobs = [](std::size_t jobs) {
    std::vector<LayoutCapture> caps(4);
    parallel_for_index(4, jobs, [&](std::size_t i) {
      caps[i] = run_ring_churn(
          i % 2 == 0 ? RibLayout::kCompact : RibLayout::kReference, 41 + i / 2);
    });
    return caps;
  };
  const auto serial = run_with_jobs(1);
  const auto threaded = run_with_jobs(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ribs, threaded[i].ribs) << i;
    EXPECT_EQ(serial[i].flows, threaded[i].flows) << i;
    EXPECT_EQ(serial[i].metrics, threaded[i].metrics) << i;
  }
}

TEST(RibLayoutEquivalence, CompactMemoryStaysBelowReference) {
  // The point of the refactor, at unit scale: same clique scenario, the
  // compact layout's RIB footprint must undercut the reference layout's.
  // (The 5x order-of-magnitude gate runs at 10k ASes in bench_scale; at 6
  // ASes the structural win is smaller but must already be visible.)
  const auto mem_of = [](RibLayout layout) {
    const auto spec = topology::clique(6);
    Experiment exp{spec, {}, layout_config(layout, 31)};
    for (std::uint32_t i = 0; i < 8; ++i) {
      exp.announce_prefix(
          AsNumber{1 + i % 4},
          net::Prefix{net::Ipv4Addr{10, 60, static_cast<std::uint8_t>(i), 0},
                      24});
    }
    EXPECT_TRUE(exp.start());
    exp.wait_converged();
    return exp.memory_stats();
  };
  const auto compact = mem_of(RibLayout::kCompact);
  const auto reference = mem_of(RibLayout::kReference);
  EXPECT_LT(compact.rib_total(), reference.rib_total());
  EXPECT_EQ(reference.attr_registry, 0u);
  EXPECT_GT(compact.attr_registry, 0u);
}

}  // namespace
}  // namespace bgpsdn::framework
