// Framework tool tests: stats, convergence detector, connectivity monitor,
// route-change tracking, trial runner.
#include <gtest/gtest.h>

#include "framework/connectivity.hpp"
#include "framework/convergence.hpp"
#include "framework/monitor.hpp"
#include "framework/report.hpp"
#include "framework/stats.hpp"
#include "framework/trial.hpp"
#include "net/network.hpp"

namespace bgpsdn::framework {
namespace {

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile({7}, 0.9), 7.0);
  // Unsorted input handled.
  EXPECT_DOUBLE_EQ(quantile({5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(Stats, SummaryFiveNumbers) {
  const auto s = summarize({4, 1, 3, 2, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryDegenerate) {
  const auto empty = summarize({});
  EXPECT_EQ(empty.n, 0u);
  const auto one = summarize({42});
  EXPECT_DOUBLE_EQ(one.min, 42);
  EXPECT_DOUBLE_EQ(one.max, 42);
  EXPECT_DOUBLE_EQ(one.stddev, 0);
}

TEST(Stats, RowFormatting) {
  const auto s = summarize({1, 2, 3});
  const auto row = boxplot_row("50%", s, 1);
  EXPECT_EQ(row, "50%\t1.0\t1.5\t2.0\t2.5\t3.0");
  EXPECT_EQ(boxplot_header("sdn"), "sdn\tmin\tq1\tmedian\tq3\tmax");
  EXPECT_NE(to_string(s).find("med="), std::string::npos);
}

TEST(TrialRunner, SweepsSeedsDeterministically) {
  TrialRunner runner{5, 100};
  std::vector<std::uint64_t> seeds;
  const auto s = runner.run([&](std::uint64_t seed) {
    seeds.push_back(seed);
    return static_cast<double>(seed);
  });
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.median, 102.0);
}

TEST(ConvergenceDetector, TracksActivityAndQuiesces) {
  core::EventLoop loop;
  core::Logger log;
  log.set_min_level(core::LogLevel::kDebug);
  ConvergenceDetector det{loop, log};

  // Activity at t=1s and t=2s, then silence.
  loop.schedule(core::Duration::seconds(1), [&] {
    log.log(loop.now(), core::LogLevel::kDebug, "bgp.AS1", "update_tx", "x");
  });
  loop.schedule(core::Duration::seconds(2), [&] {
    log.log(loop.now(), core::LogLevel::kDebug, "bgp.AS2", "update_tx", "x");
  });
  const auto conv = det.run_until_converged(core::Duration::seconds(5),
                                            core::Duration::seconds(60));
  EXPECT_FALSE(det.timed_out());
  EXPECT_EQ(conv, core::TimePoint::origin() + core::Duration::seconds(2));
  EXPECT_EQ(det.activity_count(), 2u);
}

TEST(ConvergenceDetector, IgnoresNonRoutingEvents) {
  core::EventLoop loop;
  core::Logger log;
  log.set_min_level(core::LogLevel::kDebug);
  ConvergenceDetector det{loop, log};
  loop.schedule(core::Duration::seconds(1), [&] {
    log.log(loop.now(), core::LogLevel::kDebug, "bgp.AS1", "keepalive", "x");
  });
  det.run_until_converged(core::Duration::seconds(2), core::Duration::seconds(60));
  EXPECT_EQ(det.activity_count(), 0u);
}

TEST(ConvergenceDetector, TimesOutUnderSustainedChatter) {
  core::EventLoop loop;
  core::Logger log;
  log.set_min_level(core::LogLevel::kDebug);
  ConvergenceDetector det{loop, log};
  // An update every second, forever (self-rescheduling).
  std::function<void()> chatter = [&] {
    log.log(loop.now(), core::LogLevel::kDebug, "bgp.AS1", "update_tx", "x");
    loop.schedule(core::Duration::seconds(1), chatter);
  };
  loop.schedule(core::Duration::seconds(1), chatter);
  det.run_until_converged(core::Duration::seconds(5), core::Duration::seconds(30));
  EXPECT_TRUE(det.timed_out());
}

TEST(ConvergenceDetector, CustomEventSet) {
  core::EventLoop loop;
  core::Logger log;
  log.set_min_level(core::LogLevel::kDebug);
  ConvergenceDetector det{loop, log};
  det.set_activity_events({"my_event"});
  loop.schedule(core::Duration::seconds(1), [&] {
    log.log(loop.now(), core::LogLevel::kDebug, "x", "update_tx", "ignored now");
    log.log(loop.now(), core::LogLevel::kDebug, "x", "my_event", "counted");
  });
  det.run_until_converged(core::Duration::seconds(2), core::Duration::seconds(30));
  EXPECT_EQ(det.activity_count(), 1u);
}

TEST(RouteChangeTracker, CapturesBestChanges) {
  core::Logger log;
  RouteChangeTracker tracker{log};
  log.log(core::TimePoint::origin(), core::LogLevel::kInfo, "bgp.AS1",
          "best_changed", "10.0.0.0/16 via [2 1]");
  log.log(core::TimePoint::origin(), core::LogLevel::kInfo, "bgp.AS2",
          "best_lost", "10.0.0.0/16");
  log.log(core::TimePoint::origin(), core::LogLevel::kInfo, "bgp.AS1",
          "update_tx", "not a change");
  ASSERT_EQ(tracker.changes().size(), 2u);
  EXPECT_FALSE(tracker.changes()[0].lost);
  EXPECT_TRUE(tracker.changes()[1].lost);
  EXPECT_EQ(tracker.count_for("bgp.AS1"), 1u);
  EXPECT_EQ(tracker.count_for("bgp."), 2u);
  const auto tl = tracker.timeline();
  EXPECT_NE(tl.find("bgp.AS1"), std::string::npos);
  EXPECT_NE(tl.find("LOST"), std::string::npos);
}

TEST(UpdateRateMonitor, BucketsByTime) {
  core::Logger log;
  log.set_min_level(core::LogLevel::kDebug);
  UpdateRateMonitor mon{log, core::Duration::seconds(1)};
  const auto at = [&](double t) {
    log.log(core::TimePoint::origin() + core::Duration::seconds_f(t),
            core::LogLevel::kDebug, "bgp.AS1", "update_tx", "");
  };
  at(0.1);
  at(0.2);
  at(1.5);
  at(5.0);
  EXPECT_EQ(mon.total(), 4u);
  ASSERT_EQ(mon.buckets().size(), 3u);
  EXPECT_EQ(mon.buckets().at(0), 2u);
  EXPECT_EQ(mon.buckets().at(1), 1u);
  EXPECT_EQ(mon.buckets().at(5), 1u);
  EXPECT_NE(mon.to_string().find("t=0.0s n=2"), std::string::npos);
}

TEST(ConnectivityMonitor, CountsLossAndBlackout) {
  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{1};
  net::Network net{loop, log, rng};
  auto& h1 = net.add<net::Host>("h1", net::Ipv4Addr{10, 0, 0, 2});
  auto& h2 = net.add<net::Host>("h2", net::Ipv4Addr{10, 1, 0, 2});
  const auto link = net.connect(h1.id(), h2.id(), {core::Duration::millis(1), 0, 0.0});

  ConnectivityMonitor mon{loop, h1, h2, core::Duration::millis(100)};
  mon.start();
  // 1 s of connectivity, 0.5 s of blackout, 1 s of connectivity.
  loop.schedule(core::Duration::seconds(1), [&] { net.set_link_up(link, false); });
  loop.schedule(core::Duration::seconds_f(1.5), [&] { net.set_link_up(link, true); });
  loop.schedule(core::Duration::seconds_f(2.5), [&] { mon.stop(); });
  loop.run(core::TimePoint::origin() + core::Duration::seconds(4));

  const auto rep = mon.report();
  EXPECT_GT(rep.sent, 20u);
  EXPECT_LT(rep.answered, rep.sent);
  EXPECT_GT(rep.delivery_ratio, 0.5);
  EXPECT_LT(rep.delivery_ratio, 1.0);
  EXPECT_GE(rep.longest_blackout, core::Duration::millis(300));
  EXPECT_LE(rep.longest_blackout, core::Duration::millis(700));
}

TEST(ConnectivityMonitor, CleanLinkIsLossless) {
  core::EventLoop loop;
  core::Logger log;
  core::Rng rng{1};
  net::Network net{loop, log, rng};
  auto& h1 = net.add<net::Host>("h1", net::Ipv4Addr{10, 0, 0, 2});
  auto& h2 = net.add<net::Host>("h2", net::Ipv4Addr{10, 1, 0, 2});
  net.connect(h1.id(), h2.id());
  ConnectivityMonitor mon{loop, h1, h2, core::Duration::millis(50)};
  mon.start();
  loop.schedule(core::Duration::seconds(1), [&] { mon.stop(); });
  loop.run(core::TimePoint::origin() + core::Duration::seconds(2));
  const auto rep = mon.report();
  EXPECT_DOUBLE_EQ(rep.delivery_ratio, 1.0);
  EXPECT_EQ(rep.longest_blackout, core::Duration::zero());
}

// D3 regression for the frozen bgpsdn.bench/1 schema: the `counters`
// object must render byte-identically no matter in which order the bench
// accumulated them (trial completion order varies with BGPSDN_JOBS).
TEST(BenchReport, CountersIndependentOfInsertionOrder) {
  BenchReport forward{"probe"};
  forward.add_counter("bgp.updates", 10);
  forward.add_counter("sdn.flow_mods", 3);
  forward.add_counter("ctrl.recomputes", 5);
  forward.add_counter("bgp.updates", 2);  // accumulation also order-free

  BenchReport reverse{"probe"};
  reverse.add_counter("bgp.updates", 2);
  reverse.add_counter("ctrl.recomputes", 5);
  reverse.add_counter("sdn.flow_mods", 3);
  reverse.add_counter("bgp.updates", 10);

  EXPECT_EQ(forward.dump(), reverse.dump());

  // And the keys come out sorted in the rendered document.
  const telemetry::Json doc = forward.to_json();
  std::vector<std::string> keys;
  for (const auto& [name, value] : doc.find("counters")->entries()) {
    keys.push_back(name);
  }
  const std::vector<std::string> sorted_keys = {"bgp.updates",
                                                "ctrl.recomputes",
                                                "sdn.flow_mods"};
  EXPECT_EQ(keys, sorted_keys);
}

}  // namespace
}  // namespace bgpsdn::framework
