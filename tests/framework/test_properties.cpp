// Property-based tests: invariants that must hold across randomized
// topologies, seeds and SDN membership choices.
#include <gtest/gtest.h>

#include <tuple>

#include "framework/experiment.hpp"
#include "topology/generators.hpp"

namespace bgpsdn {
namespace {

framework::ExperimentConfig fast_config(std::uint64_t seed) {
  framework::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(300);
  cfg.recompute_delay = core::Duration::millis(100);
  return cfg;
}

// --- determinism -----------------------------------------------------------

TEST(Properties, SameSeedSameTrace) {
  const auto run_once = [](std::uint64_t seed) {
    const auto spec = topology::clique(8);
    framework::Experiment exp{spec,
                              {core::AsNumber{7}, core::AsNumber{8}},
                              fast_config(seed)};
    const auto pfx = *net::Prefix::parse("10.0.0.0/16");
    exp.announce_prefix(core::AsNumber{1}, pfx);
    EXPECT_TRUE(exp.start());
    const auto t0 = exp.loop().now();
    exp.withdraw_prefix(core::AsNumber{1}, pfx);
    const auto conv = exp.wait_converged();
    return std::tuple{conv.since(t0).count_nanos(),
                      exp.router(core::AsNumber{2}).counters().updates_rx,
                      exp.network().stats().delivered};
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(std::get<0>(run_once(123)), std::get<0>(run_once(456)));
}

// --- forwarding soundness over random topologies --------------------------

/// After convergence, every AS must reach an announced host: FIB/flow walks
/// terminate at the host with no loop and no blackhole.
class ForwardingSoundness
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(ForwardingSoundness, AllPairsReachOriginHost) {
  const auto [seed, sdn_count] = GetParam();
  core::Rng topo_rng{seed};
  const auto spec = topology::erdos_renyi(10, 0.3, topo_rng);

  // Pick members deterministically from the seed: highest-degree ASes
  // excluding AS 1 (the origin).
  std::set<core::AsNumber> members;
  for (auto it = spec.ases.rbegin();
       it != spec.ases.rend() && members.size() < sdn_count; ++it) {
    if (it->value() != 1) members.insert(*it);
  }

  framework::Experiment exp{spec, members, fast_config(seed)};
  auto& host = exp.add_host(core::AsNumber{1});
  ASSERT_TRUE(exp.start());

  for (const auto as : spec.ases) {
    if (as == core::AsNumber{1}) continue;
    const auto path = exp.trace_route(as, host.address());
    ASSERT_FALSE(path.empty())
        << as.to_string() << " cannot reach the origin host (seed " << seed
        << ", sdn " << sdn_count << ")";
    EXPECT_EQ(path.back().value(), 1u);
    // trace_route already rejects loops; also bound the path length.
    EXPECT_LE(path.size(), spec.ases.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTopologies, ForwardingSoundness,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55),
                       ::testing::Values(0, 2, 4)));

// --- valley-free invariant under Gao-Rexford -------------------------------

/// In a policy-routed internet, every selected AS path must be valley-free:
/// after the path (read from origin outward) stops climbing
/// customer->provider edges, it may cross at most one peer link and then
/// only descend provider->customer.
TEST(Properties, GaoRexfordPathsAreValleyFree) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    core::Rng topo_rng{seed};
    topology::InternetLikeParams params;
    params.tier1 = 3;
    params.transit = 6;
    params.stubs = 10;
    const auto spec = topology::internet_like(params, topo_rng);

    framework::Experiment exp{spec, {}, fast_config(seed)};
    const auto origin = spec.ases.back();  // a stub
    const auto pfx = *net::Prefix::parse("10.0.0.0/16");
    exp.announce_prefix(origin, pfx);
    ASSERT_TRUE(exp.start());

    // Edge-kind lookup from the spec.
    const auto rel = [&](core::AsNumber from,
                         core::AsNumber to) -> std::optional<bgp::Relationship> {
      for (const auto& l : spec.links) {
        if (l.a == from && l.b == to) return l.a_sees_b;
        if (l.a == to && l.b == from) return bgp::reverse(l.a_sees_b);
      }
      return std::nullopt;
    };

    for (const auto as : spec.ases) {
      if (as == origin) continue;
      const auto* route = exp.router(as).loc_rib().find(pfx);
      if (route == nullptr) continue;  // policy may legitimately hide it
      // Walk the path from the origin towards `as` and classify each edge
      // as seen by the *receiver* of the advertisement.
      std::vector<core::AsNumber> chain = route->attributes->as_path.hops();
      chain.insert(chain.begin(), as);  // as, ..., origin (traffic direction)
      // Walking from the origin end (advertisement direction), a valley-free
      // path is: customer steps (traffic downhill), then at most one peer
      // step, then provider steps (traffic uphill) — the phase only climbs.
      int phase = 0;  // 0 = downhill segment, 1 = after the peer edge, 2 = uphill
      for (std::size_t i = chain.size() - 1; i > 0; --i) {
        const auto advertiser = chain[i];
        const auto receiver = chain[i - 1];
        const auto r = rel(receiver, advertiser);
        ASSERT_TRUE(r.has_value()) << "path uses a non-existent link";
        // receiver sees advertiser as:
        if (*r == bgp::Relationship::kCustomer) {
          EXPECT_EQ(phase, 0) << "valley: customer edge after peak/peer ("
                              << route->attributes->as_path.to_string() << ")";
        } else if (*r == bgp::Relationship::kPeer) {
          EXPECT_EQ(phase, 0) << "valley: second peer edge or peer after uphill ("
                              << route->attributes->as_path.to_string() << ")";
          phase = 1;
        } else {
          phase = 2;  // uphill tail; anything after must also be uphill
        }
      }
    }
  }
}

// --- MRAI styles agree on the fixed point ----------------------------------

TEST(Properties, MraiStylesConvergeToSameRibs) {
  const auto final_rib = [](bgp::MraiStyle style) {
    auto cfg = fast_config(5);
    cfg.timers.mrai_style = style;
    const auto spec = topology::clique(6);
    framework::Experiment exp{spec, {}, cfg};
    const auto pfx = *net::Prefix::parse("10.0.0.0/16");
    exp.announce_prefix(core::AsNumber{1}, pfx);
    EXPECT_TRUE(exp.start());
    std::vector<std::string> paths;
    for (const auto as : spec.ases) {
      const auto* r = exp.router(as).loc_rib().find(pfx);
      paths.push_back(r == nullptr ? "-" : r->attributes->as_path.to_string());
    }
    return paths;
  };
  EXPECT_EQ(final_rib(bgp::MraiStyle::kPeriodicQuagga),
            final_rib(bgp::MraiStyle::kImmediateThenGate));
}

// --- withdrawal leaves no residue -------------------------------------------

class WithdrawalCleanup
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WithdrawalCleanup, NoRouteSurvivesAnywhere) {
  const auto [n, sdn_count] = GetParam();
  const auto spec = topology::clique(n);
  std::set<core::AsNumber> members;
  for (std::size_t i = 0; i < sdn_count; ++i) {
    members.insert(core::AsNumber{static_cast<std::uint32_t>(n - i)});
  }
  framework::Experiment exp{spec, members, fast_config(n * 100 + sdn_count)};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());
  ASSERT_TRUE(exp.all_know_prefix(pfx));

  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged(
      framework::WaitOpts{core::Duration::zero(), core::Duration::seconds(600)});
  ASSERT_FALSE(conv.timed_out);
  EXPECT_TRUE(exp.all_know_prefix(pfx, /*expect_present=*/false));
  // Stronger: Adj-RIB-Ins are clean too (no stale candidates), and the
  // switches hold no data rule for the prefix.
  for (const auto as : spec.ases) {
    if (exp.is_member(as)) {
      for (const auto& e : exp.member_switch(as).table().entries()) {
        EXPECT_NE(e.match.dst, pfx) << as.to_string();
      }
    } else {
      EXPECT_TRUE(exp.router(as).adj_rib_in().candidates(pfx).empty())
          << as.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CliqueSweep, WithdrawalCleanup,
                         ::testing::Values(std::tuple{4u, 0u}, std::tuple{4u, 2u},
                                           std::tuple{6u, 0u}, std::tuple{6u, 3u},
                                           std::tuple{8u, 5u}, std::tuple{10u, 4u}));

// --- burst coalescing (delayed recomputation) -------------------------------

TEST(Properties, RecomputeBatchesBursts) {
  // With a large recompute delay, the withdrawal burst from many legacy
  // peers must coalesce into very few controller passes.
  auto cfg = fast_config(9);
  cfg.recompute_delay = core::Duration::seconds(5);
  cfg.timers.mrai = core::Duration::millis(200);
  const auto spec = topology::clique(8);
  std::set<core::AsNumber> members{core::AsNumber{7}, core::AsNumber{8}};
  framework::Experiment exp{spec, members, cfg};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());

  const auto passes0 = exp.idr_controller()->counters().recompute_passes;
  const auto updates0 = exp.cluster_speaker()->counters().updates_rx;
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  exp.wait_converged(framework::WaitOpts{core::Duration::seconds(11),
                                         core::Duration::seconds(600)});
  const auto passes = exp.idr_controller()->counters().recompute_passes - passes0;
  const auto updates = exp.cluster_speaker()->counters().updates_rx - updates0;
  EXPECT_GT(updates, passes * 2) << "batching should amortize many updates "
                                    "per recompute pass";
}

}  // namespace
}  // namespace bgpsdn
