// End-to-end tests of the hybrid BGP/SDN experiment builder: session
// bring-up across relay links, controller route computation, flow
// programming, legacy announcements with cluster-transparent AS paths, and
// data-plane connectivity through the cluster.
#include <gtest/gtest.h>

#include "framework/connectivity.hpp"
#include "framework/experiment.hpp"
#include "topology/generators.hpp"

namespace bgpsdn {
namespace {

using framework::Experiment;
using framework::ExperimentConfig;

ExperimentConfig quick_config(std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(500);
  cfg.recompute_delay = core::Duration::millis(200);
  return cfg;
}

TEST(HybridExperiment, PureBgpCliqueConverges) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {}, quick_config()};
  exp.announce_prefix(core::AsNumber{1}, *net::Prefix::parse("10.0.0.0/16"));
  ASSERT_TRUE(exp.start());
  EXPECT_TRUE(exp.all_know_prefix(*net::Prefix::parse("10.0.0.0/16")));
}

TEST(HybridExperiment, ClusterSessionsEstablish) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{3}, core::AsNumber{4}}, quick_config()};
  ASSERT_TRUE(exp.start());
  // 2 members x 2 legacy peers = 4 relayed peerings.
  ASSERT_NE(exp.cluster_speaker(), nullptr);
  EXPECT_EQ(exp.cluster_speaker()->peerings().size(), 4u);
  for (const auto* p : exp.cluster_speaker()->peerings()) {
    EXPECT_TRUE(exp.cluster_speaker()->peering_established(p->id))
        << "peering " << p->id;
  }
  // Both switches connected to the controller.
  EXPECT_EQ(exp.idr_controller()->switches().size(), 2u);
}

TEST(HybridExperiment, LegacyPrefixReachesClusterAndBeyond) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as2{2}, as3{3}, as4{4};
  Experiment exp{spec, {as3, as4}, quick_config()};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());

  // Legacy AS2 sees it via plain BGP.
  ASSERT_NE(exp.router(as2).loc_rib().find(pfx), nullptr);
  // The controller learned it on its border peerings and programmed flows.
  const auto* decision = exp.idr_controller()->decision_for(pfx);
  ASSERT_NE(decision, nullptr);
  EXPECT_TRUE(decision->reachable(exp.member_switch(as3).dpid()));
  EXPECT_TRUE(decision->reachable(exp.member_switch(as4).dpid()));
  EXPECT_GT(exp.member_switch(as3).table().size(), 2u);  // relay rules + data
}

TEST(HybridExperiment, ClusterOriginAnnouncedToLegacyTransparently) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  Experiment exp{spec, {as3, as4}, quick_config()};
  const auto pfx = *net::Prefix::parse("10.7.0.0/16");
  exp.announce_prefix(as3, pfx);  // SDN switch originates
  ASSERT_TRUE(exp.start());

  // Legacy AS1 must have a BGP route whose path enters the cluster at a
  // member AS.
  const bgp::Route* at1 = exp.router(as1).loc_rib().find(pfx);
  ASSERT_NE(at1, nullptr);
  const auto first = at1->attributes->as_path.first();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(*first == as3 || *first == as4);
  // Direct peering with AS3 should give the 1-hop path [3].
  EXPECT_EQ(at1->attributes->as_path.to_string(), "3");
}

TEST(HybridExperiment, DataPlaneEndToEndThroughCluster) {
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  Experiment exp{spec, {as3, as4}, quick_config()};
  auto& h1 = exp.add_host(as1);
  auto& h3 = exp.add_host(as3);
  ASSERT_TRUE(exp.start());

  // Control plane settled; trace both directions.
  const auto fwd = exp.trace_route(as1, h3.address());
  ASSERT_FALSE(fwd.empty());
  EXPECT_EQ(fwd.front(), as1);
  EXPECT_EQ(fwd.back(), as3);
  const auto rev = exp.trace_route(as3, h1.address());
  ASSERT_FALSE(rev.empty());

  // Live probes, via the monitor attachment API.
  auto& mon = exp.attach_monitor<framework::ConnectivityMonitor>(
      h1, h3, core::Duration::millis(100));
  mon.start();
  exp.run_for(core::Duration::seconds(2));
  mon.stop();
  exp.run_for(core::Duration::seconds(1));
  const auto rep = mon.report();
  EXPECT_GT(rep.sent, 15u);
  EXPECT_DOUBLE_EQ(rep.delivery_ratio, 1.0);
}

TEST(HybridExperiment, WithdrawalClearsHybridNetwork) {
  const auto spec = topology::clique(5);
  const core::AsNumber as1{1};
  Experiment exp{spec, {core::AsNumber{4}, core::AsNumber{5}}, quick_config()};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());
  ASSERT_TRUE(exp.all_know_prefix(pfx));

  exp.withdraw_prefix(as1, pfx);
  exp.wait_converged();
  EXPECT_TRUE(exp.all_know_prefix(pfx, /*expect_present=*/false));
}

TEST(HybridExperiment, BorderLinkFailureReroutes) {
  // Clique of 4: AS1 legacy origin, AS3+AS4 in the cluster. Failing the
  // AS1-AS3 border link forces AS3's traffic to egress via AS4 or AS2.
  const auto spec = topology::clique(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  Experiment exp{spec, {as3, as4}, quick_config()};
  auto& h1 = exp.add_host(as1);
  exp.add_host(as3);
  ASSERT_TRUE(exp.start());
  ASSERT_FALSE(exp.trace_route(as3, h1.address()).empty());

  exp.fail_link(as1, as3);
  exp.wait_converged();
  const auto path = exp.trace_route(as3, h1.address());
  ASSERT_FALSE(path.empty());
  EXPECT_GT(path.size(), 1u);  // no longer the direct egress
  EXPECT_EQ(path.back(), as1);
}

TEST(HybridExperiment, IntraClusterLinkFailureUsesOtherEgress) {
  // Line: 1-2-3-4, members {3,4}: AS4 reaches AS1 only through AS3's
  // border egress to AS2.
  auto spec = topology::line(4);
  const core::AsNumber as1{1}, as3{3}, as4{4};
  Experiment exp{spec, {as3, as4}, quick_config()};
  auto& h1 = exp.add_host(as1);
  exp.add_host(as4);
  ASSERT_TRUE(exp.start());
  const auto path = exp.trace_route(as4, h1.address());
  ASSERT_FALSE(path.empty());

  // Failing the intra-cluster 3-4 link isolates AS4 (no other egress).
  exp.fail_link(as3, as4);
  exp.wait_converged();
  EXPECT_TRUE(exp.trace_route(as4, h1.address()).empty());

  exp.restore_link(as3, as4);
  exp.wait_converged();
  EXPECT_FALSE(exp.trace_route(as4, h1.address()).empty());
}

TEST(HybridExperiment, RuntimeLinkAdditionShortensPaths) {
  // Line 1-2-3-4; after convergence a direct 1-4 link appears and AS4's
  // path to AS1's prefix collapses from [3 2 1] to [1].
  const auto spec = topology::line(4);
  const core::AsNumber as1{1}, as4{4};
  Experiment exp{spec, {}, quick_config()};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(as1, pfx);
  ASSERT_TRUE(exp.start());
  ASSERT_EQ(exp.router(as4).loc_rib().find(pfx)->attributes->as_path.to_string(),
            "3 2 1");

  exp.add_link(as1, as4);
  exp.wait_converged();
  EXPECT_EQ(exp.router(as4).loc_rib().find(pfx)->attributes->as_path.to_string(),
            "1");

  // Duplicates and member endpoints are rejected.
  EXPECT_THROW(exp.add_link(as1, as4), std::invalid_argument);
  Experiment hybrid{topology::line(3), {core::AsNumber{3}}, quick_config()};
  ASSERT_TRUE(hybrid.start());
  EXPECT_THROW(hybrid.add_link(core::AsNumber{1}, core::AsNumber{3}),
               std::invalid_argument);
}

TEST(HybridExperiment, DisjointSubClustersBridgeOverLegacy) {
  // Line 1-2-3-4-5 with members {3,5}: two disjoint sub-clusters under one
  // controller. Switch 5's only route to AS1's prefix crosses cluster
  // member AS3 ([4 3 2 1]) — the paper's explicit design goal: the legacy
  // path through AS4 must still connect the sub-clusters.
  const auto spec = topology::line(5);
  const core::AsNumber as1{1}, as3{3}, as5{5};
  Experiment exp{spec, {as3, as5}, quick_config()};
  auto& h1 = exp.add_host(as1);
  exp.add_host(as5);
  ASSERT_TRUE(exp.start());

  ASSERT_FALSE(exp.idr_controller()->switch_graph().is_connected());
  EXPECT_EQ(exp.idr_controller()->switch_graph().components().size(), 2u);

  const auto pfx = exp.as_prefix(as1);
  const auto* decision = exp.idr_controller()->decision_for(pfx);
  ASSERT_NE(decision, nullptr);
  EXPECT_TRUE(decision->reachable(exp.member_switch(as3).dpid()));
  EXPECT_TRUE(decision->reachable(exp.member_switch(as5).dpid()));
  // Switch 5's AS-level path runs through the other sub-cluster.
  EXPECT_EQ(decision->as_paths.at(exp.member_switch(as5).dpid()).to_string(),
            "5 4 3 2 1");

  // And the data plane delivers end to end: 5 -> 4 -> 3 -> 2 -> 1.
  const auto path = exp.trace_route(as5, h1.address());
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), as5);
  EXPECT_EQ(path.back(), as1);
  const auto rev = exp.trace_route(as1, exp.allocator().host_address(as5, 0));
  EXPECT_EQ(rev.size(), 5u);
}

}  // namespace
}  // namespace bgpsdn
