// The telemetry acceptance criteria: capture works end-to-end through the
// Monitor API, and both the metrics snapshot and the span stream are
// byte-identical for a given seed regardless of the worker-thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "framework/connectivity.hpp"
#include "framework/experiment.hpp"
#include "framework/monitor.hpp"
#include "framework/telemetry_monitor.hpp"
#include "framework/trial.hpp"
#include "telemetry/json.hpp"
#include "topology/generators.hpp"

namespace bgpsdn::framework {
namespace {

ExperimentConfig fast_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.timers.mrai = core::Duration::millis(500);
  cfg.recompute_delay = core::Duration::millis(200);
  return cfg;
}

struct Capture {
  std::string trace_jsonl;
  std::string metrics_dump;
  double conv_seconds{0};
};

/// One fully-instrumented withdrawal run on a small hybrid clique.
Capture run_instrumented(std::uint64_t seed) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{3}, core::AsNumber{4}},
                 fast_config(seed)};
  auto& tel = exp.attach_monitor<TelemetryMonitor>();
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  EXPECT_TRUE(exp.start());
  const auto t0 = exp.loop().now();
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const auto conv = exp.wait_converged();
  Capture cap;
  cap.trace_jsonl = tel.trace_jsonl();
  cap.metrics_dump = exp.telemetry().metrics().snapshot().dump();
  cap.conv_seconds = conv.since(t0).to_seconds();
  return cap;
}

TEST(TelemetryCapture, SpansFlowAndParse) {
  const Capture cap = run_instrumented(7);
  ASSERT_FALSE(cap.trace_jsonl.empty());

  // Every line is valid JSON with the span schema; all categories of the
  // update lifecycle show up on this scenario.
  std::size_t lines = 0;
  bool saw_bgp = false, saw_ctrl = false, saw_sdn = false, saw_speaker = false;
  std::size_t start = 0;
  while (start < cap.trace_jsonl.size()) {
    const std::size_t nl = cap.trace_jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    const auto parsed =
        telemetry::Json::parse(cap.trace_jsonl.substr(start, nl - start));
    ASSERT_TRUE(parsed.has_value()) << "line " << lines;
    ASSERT_NE(parsed->find("t_ns"), nullptr);
    ASSERT_NE(parsed->find("cat"), nullptr);
    ASSERT_NE(parsed->find("name"), nullptr);
    const std::string& cat = parsed->find("cat")->as_string();
    saw_bgp = saw_bgp || cat == "bgp";
    saw_ctrl = saw_ctrl || cat == "ctrl";
    saw_sdn = saw_sdn || cat == "sdn";
    saw_speaker = saw_speaker || cat == "speaker";
    ++lines;
    start = nl + 1;
  }
  EXPECT_GT(lines, 50u);
  EXPECT_TRUE(saw_bgp);
  EXPECT_TRUE(saw_ctrl);
  EXPECT_TRUE(saw_sdn);
  EXPECT_TRUE(saw_speaker);
}

TEST(TelemetryCapture, MetricsCoverEveryLayer) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{3}, core::AsNumber{4}}, fast_config(7)};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  exp.wait_converged();

  const auto& m = exp.telemetry().metrics();
  for (const char* name :
       {"bgp.session.updates_tx", "bgp.session.updates_rx",
        "bgp.session.transitions", "bgp.session.established",
        "bgp.decision.runs", "sdn.switch.flow_mods",
        "ctrl.idr.recompute_passes", "ctrl.idr.flow_adds",
        "speaker.announces_tx", "framework.wait_converged.runs"}) {
    const auto* c = m.find_counter(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_GT(c->value(), 0) << name;
  }
  ASSERT_NE(m.find_histogram("bgp.decision.candidates"), nullptr);
  ASSERT_NE(m.find_histogram("ctrl.idr.batch_wait_ns"), nullptr);
  EXPECT_GT(m.find_histogram("bgp.session.establish_ns")->count(), 0u);
}

TEST(TelemetryDeterminism, SameSeedIsByteIdentical) {
  const Capture a = run_instrumented(21);
  const Capture b = run_instrumented(21);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.metrics_dump, b.metrics_dump);
  EXPECT_EQ(a.conv_seconds, b.conv_seconds);

  const Capture c = run_instrumented(22);
  EXPECT_NE(a.trace_jsonl, c.trace_jsonl);
}

TEST(TelemetryDeterminism, ByteIdenticalAcrossJobCounts) {
  // The PR-1 invariant extended to telemetry: running the same seeded
  // trials on 1 worker vs 4 workers must produce identical captures.
  const auto run_with_jobs = [](std::size_t jobs) {
    std::vector<Capture> caps(4);
    parallel_for_index(4, jobs, [&](std::size_t i) {
      caps[i] = run_instrumented(100 + i);
    });
    return caps;
  };
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].trace_jsonl, parallel[i].trace_jsonl) << "seed " << i;
    EXPECT_EQ(serial[i].metrics_dump, parallel[i].metrics_dump) << "seed " << i;
  }
}

TEST(TelemetryCapture, NoSinkMeansNoSpanStorage) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{4}}, fast_config(3)};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());
  EXPECT_FALSE(exp.telemetry().tracing());
  // Metrics still collect without any sink.
  EXPECT_GT(exp.telemetry().metrics().counter("bgp.session.updates_tx").value(),
            0);
}

TEST(MonitorApi, AttachRetrieveAndSnapshot) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {core::AsNumber{4}}, fast_config(5)};
  // The built-in convergence detector is always monitors_[0].
  ASSERT_EQ(exp.monitors().size(), 1u);
  EXPECT_STREQ(exp.monitors()[0]->kind(), "convergence");
  ASSERT_NE(exp.monitor<ConvergenceDetector>(), nullptr);

  auto& changes = exp.attach_monitor<RouteChangeTracker>();
  auto& tel = exp.attach_monitor<TelemetryMonitor>();
  EXPECT_EQ(exp.monitor<RouteChangeTracker>(), &changes);
  EXPECT_EQ(exp.monitor<TelemetryMonitor>(), &tel);
  EXPECT_EQ(exp.monitor<ConnectivityMonitor>(), nullptr);

  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());

  const telemetry::Json snap = exp.monitors_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at(0).find("kind")->as_string(), "convergence");
  EXPECT_EQ(snap.at(1).find("kind")->as_string(), "route_changes");
  EXPECT_EQ(snap.at(2).find("kind")->as_string(), "telemetry");
  // Each entry carries a data object; telemetry's includes the metrics.
  ASSERT_NE(snap.at(2).find("data"), nullptr);
  ASSERT_NE(snap.at(2).find("data")->find("metrics"), nullptr);
}

TEST(WaitApi, ResultCarriesTimeoutAndQuietWindow) {
  const auto spec = topology::clique(4);
  Experiment exp{spec, {}, fast_config(9)};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());

  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  // Absurdly short timeout: the wait must report timed_out.
  const auto timed = exp.wait_converged(
      WaitOpts{core::Duration::seconds(100), core::Duration::millis(1)});
  EXPECT_TRUE(timed.timed_out);
  EXPECT_EQ(timed.quiet_window, core::Duration::seconds(100));

  const auto ok = exp.wait_converged(
      WaitOpts{core::Duration::seconds(2), core::Duration::seconds(600)});
  EXPECT_FALSE(ok.timed_out);
  EXPECT_EQ(ok.quiet_window, core::Duration::seconds(2));
  // Zero quiet defaults to 2x MRAI + 1 s.
  const auto defaulted = exp.wait_converged();
  EXPECT_EQ(defaulted.quiet_window,
            core::Duration::millis(500) * std::int64_t{2} +
                core::Duration::seconds(1));
}

TEST(WaitApi, StructuredResultAndTypedMonitorRetrieval) {
  // The replacement surface for the removed PR-2 shims: the structured
  // ConvergenceResult carries instant + timed_out, and the built-in
  // detector is reachable via the typed monitor<T>() accessor.
  const auto spec = topology::clique(4);
  Experiment exp{spec, {}, fast_config(13)};
  const auto pfx = *net::Prefix::parse("10.0.0.0/16");
  exp.announce_prefix(core::AsNumber{1}, pfx);
  ASSERT_TRUE(exp.start());
  exp.withdraw_prefix(core::AsNumber{1}, pfx);
  const ConvergenceResult conv = exp.wait_converged(
      WaitOpts{core::Duration::seconds(2), core::Duration::seconds(600)});
  EXPECT_FALSE(conv.timed_out);
  EXPECT_GT(conv.instant.nanos_since_origin(), 0);
  ASSERT_NE(exp.monitor<ConvergenceDetector>(), nullptr);
  EXPECT_EQ(exp.monitor<ConvergenceDetector>()->kind(), "convergence");
}

}  // namespace
}  // namespace bgpsdn::framework
